from setuptools import setup

# All metadata lives in pyproject.toml, including the optional numpy
# dependency for the vectorized batch tier (`pip install repro[batch]`);
# setuptools rejects duplicating [project] fields here.
setup()
