"""Programming-model comparison vs prior work (Sections 3.7 and 6).

Prices Optimus Prime's per-message-instance schema tables against this
paper's per-type ADTs + sparse hasbits over (1) the fleet density
distribution and (2) concrete generated workloads, reproducing the
Section 3.7 conclusion that at least 92% of fleet messages favour the
per-type design -- plus the setter-path cost prior work adds that never
shows up in accelerator-side numbers.
"""

from repro.accel.prior_work import (
    break_even_density,
    fleet_share_favouring_adts,
    message_cost_comparison,
)
from repro.hyperprotobench import bench_names, build_hyperprotobench

from conftest import register_table


def _run() -> str:
    lines = [
        "Per-type ADTs + sparse hasbits vs per-instance tables "
        "(Optimus Prime [36]):",
        f"  break-even density: {break_even_density():.4f} (= 1/64)",
        f"  fleet messages above it: "
        f"{fleet_share_favouring_adts():.0%}  (paper: at least 92%)",
        "",
        f"{'workload':<10} {'avg present':>12} {'avg span':>9} "
        f"{'ADT bits':>9} {'prior bits':>11} {'setter bits saved':>18}",
    ]
    for name in bench_names():
        workload = build_hyperprotobench(name, batch=12)
        rows = [message_cost_comparison(message)
                for message in workload.messages]
        count = len(rows)
        lines.append(
            f"{name:<10} "
            f"{sum(r['present_fields'] for r in rows) / count:>12.1f} "
            f"{sum(r['field_number_span'] for r in rows) / count:>9.1f} "
            f"{sum(r['adt_bits'] for r in rows) / count:>9.0f} "
            f"{sum(r['per_instance_bits'] for r in rows) / count:>11.0f} "
            f"{sum(r['setter_path_bits_saved'] for r in rows) / count:>18.0f}")
    lines.append("")
    lines.append("Per-message-instance programming bits (lower is "
                 "better); the last column")
    lines.append("is CPU work prior work injects into every setter/clear "
                 "-- cost that exists")
    lines.append("even when the accelerator is idle (Section 3.7's "
                 "co-design argument).")
    return "\n".join(lines)


def test_prior_work_comparison(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    register_table("Prior-work programming-model comparison", table)
    assert "1/64" in table
