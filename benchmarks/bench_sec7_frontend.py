"""Section 7: instruction-cache and branch-predictor benefits.

Estimates the hidden frontend tax of software ser/deser: a cold call to
generated parse code pays I$ misses across its footprint and mispredicts
on its learned branches.  The paper claims this can cost "as many cycles
as accelerating protobufs itself"; offloading removes the pressure
entirely (the accelerator has no instruction stream to evict).
"""

from repro.bench.microbench import build_microbench
from repro.cpu.boom import BOOM_PARAMS, boom_cpu
from repro.cpu.frontend import analyze
from repro.cpu.xeon import XEON_PARAMS, xeon_cpu
from repro.hyperprotobench import build_hyperprotobench

from conftest import register_table

_WORKLOADS = ("varint-5", "string", "bench0", "bench2")


def _workload(name):
    if name.startswith("bench"):
        return build_hyperprotobench(name, batch=4)
    return build_microbench(name, batch=4)


def _run() -> str:
    lines = [f"{'workload':<10} {'host':<11} {'code lines':>10} "
             f"{'warm cyc':>9} {'cold pen.':>10} {'ratio':>6}"]
    worst = 0.0
    for name in _WORKLOADS:
        workload = _workload(name)
        message = workload.messages[0]
        data = message.serialize()
        for cpu, params in ((boom_cpu(), BOOM_PARAMS),
                            (xeon_cpu(), XEON_PARAMS)):
            _, result = cpu.deserialize(workload.descriptor, data)
            report = analyze(params, workload.descriptor, result.cycles)
            worst = max(worst, report.penalty_ratio)
            lines.append(
                f"{name:<10} {cpu.name:<11} {report.code_lines:>10.0f} "
                f"{report.warm_cycles:>9.0f} {report.cold_penalty:>10.0f} "
                f"{report.penalty_ratio:>5.1f}x")
    lines.append("")
    lines.append(f"worst cold-call penalty = {worst:.1f}x the warm "
                 "ser/deser work itself --")
    lines.append('consistent with "potentially as many cycles as '
                 'accelerating protobufs itself".')
    lines.append("Offload removes the entire column: the accelerator "
                 "fetches no instructions.")
    return "\n".join(lines)


def test_sec7_frontend_pressure(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    register_table("Section 7: I$/branch-predictor pressure", table)
    assert "cold" in table
