"""Section 5.3: ASIC critical path and area in 22 nm FinFET.

Thin wrapper over :mod:`repro.bench.figures`.
"""

from repro.bench import figures

from conftest import register_table


def test_sec53_asic(benchmark):
    table = benchmark.pedantic(lambda: figures.section53(), rounds=1,
                               iterations=1)
    register_table('Section 5.3: ASIC area and frequency', table)
    assert 'deserializer' in table
