"""Figure 13: HyperProtoBench serialization on all three systems.

Thin wrapper over :mod:`repro.bench.figures`.
"""

from repro.bench import figures

from conftest import register_table


def test_fig13_hyper_ser(benchmark):
    table = benchmark.pedantic(lambda: figures.figure13(), rounds=1,
                               iterations=1)
    register_table('Figure 13', table)
    assert 'bench0' in table
