"""Figure 3: fleet-wide top-level message size distribution (published + Monte Carlo re-derivation).

Thin wrapper over :mod:`repro.bench.figures`.
"""

from repro.bench import figures

from conftest import register_table


def test_fig03_msg_sizes(benchmark):
    table = benchmark.pedantic(lambda: figures.figure3(), rounds=1,
                               iterations=1)
    register_table('Figure 3: message size distribution', table)
    assert 'cumulative' in table
