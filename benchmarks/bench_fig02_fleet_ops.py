"""Figure 2: fleet C++ protobuf cycles by operation, plus the Section 3.2-3.4 scalar statistics.

Thin wrapper over :mod:`repro.bench.figures`.
"""

from repro.bench import figures

from conftest import register_table


def test_fig02_fleet_ops(benchmark):
    table = benchmark.pedantic(lambda: figures.figure2(), rounds=1,
                               iterations=1)
    register_table('Figure 2 + Section 3.2-3.4 scalars', table)
    assert 'deserialize' in table
