"""Ablations of the accelerator's design choices.

Quantifies the decisions DESIGN.md calls out:

1. field serializer unit count (Section 4.5.4's parallel FSU pool);
2. on-chip context stack depth (Section 3.8's depth-25 sizing) on a
   deeply nested workload;
3. the ADT entry cache (our behavioral stand-in for the RTL's ADT-load
   pipelining) on a many-type workload;
4. batched operation with prefetch (hide_startup) vs one-at-a-time
   dispatch (Section 4.4.1's batching support).

Each ablation also reports the ASIC area cost of the varied resource.
"""

from repro.accel.asic_model import AsicModel
from repro.accel.deserializer import DeserTimingParams, DeserializerUnit
from repro.accel.driver import ProtoAccelerator
from repro.bench.microbench import build_microbench
from repro.hyperprotobench import build_hyperprotobench
from repro.proto import parse_schema
from repro.soc.config import SoCConfig

from conftest import register_table


def _fsu_ablation() -> list[str]:
    workload = build_microbench("varint-5-R", batch=8)
    lines = ["FSU count ablation (varint-5-R serialization):",
             f"{'FSUs':>6} {'cycles':>12} {'ser area mm^2':>14}"]
    for units in (1, 2, 4, 8):
        accel = ProtoAccelerator(config=SoCConfig(
            field_serializer_units=units))
        accel.register_types([workload.descriptor])
        addresses = [accel.load_object(m) for m in workload.messages]
        _, stats = accel.serialize_batch(workload.descriptor, addresses)
        area = AsicModel(num_field_serializer_units=units).serializer
        lines.append(f"{units:>6} {stats.cycles:>12.0f} "
                     f"{area.area_mm2:>14.3f}")
    return lines


def _stack_depth_ablation() -> list[str]:
    schema = parse_schema(
        "message Deep { optional Deep next = 1; optional int32 v = 2; }")
    message = schema["Deep"].new_message()
    node = message
    for level in range(40):
        node["v"] = level
        node = node.mutable("next")
    node["v"] = -1
    data = message.serialize()
    lines = ["", "Context stack depth ablation (depth-41 message deser):",
             f"{'depth':>6} {'cycles':>12} {'spills':>8} "
             f"{'deser area mm^2':>16}"]
    for depth in (4, 12, 25, 64):
        accel = ProtoAccelerator(config=SoCConfig(
            context_stack_depth=depth))
        accel.register_schema(schema)
        stats = accel.deserialize(schema["Deep"], data).stats
        area = AsicModel(context_stack_depth=depth).deserializer
        lines.append(f"{depth:>6} {stats.cycles:>12.0f} "
                     f"{stats.stack_spills:>8} {area.area_mm2:>16.3f}")
    lines.append("Section 3.8: depth 25 covers 99.999% of fleet bytes, so")
    lines.append("spilling beyond it is rare in practice.")
    return lines


def _adt_cache_ablation() -> list[str]:
    workload = build_hyperprotobench("bench3", batch=4)
    data = [m.serialize() for m in workload.messages]
    lines = ["", "ADT entry cache ablation (bench3, many message types):",
             f"{'entries':>8} {'cycles':>12} {'hit rate':>10}"]
    for entries in (4, 16, 64, 256):
        accel = ProtoAccelerator()
        accel.deserializer.params = DeserTimingParams(
            adt_cache_entries=entries)
        accel.deserializer._adt_cache = type(
            accel.deserializer._adt_cache)(entries)
        accel.register_types([workload.descriptor])
        _, stats = accel.deserialize_batch(workload.descriptor, data)
        total = stats.adt_cache_hits + stats.adt_cache_misses
        rate = stats.adt_cache_hits / total if total else 1.0
        lines.append(f"{entries:>8} {stats.cycles:>12.0f} "
                     f"{rate * 100:>9.1f}%")
    return lines


def _varint_width_ablation() -> list[str]:
    """A wider packed-varint decoder: Section 4.4.4's combinational unit
    handles one varint per cycle; speculative multi-varint decode is a
    natural what-if."""
    workload = build_microbench("varint-2-R", batch=8)
    # Force the packed encoding for this ablation workload.
    lines = ["", "Packed-varint decode width ablation (varint-2-R deser):",
             f"{'varints/cycle':>14} {'cycles':>12}"]
    buffers = None
    for width in (1.0, 2.0, 4.0):
        accel = ProtoAccelerator()
        accel.deserializer.params = DeserTimingParams(
            packed_varints_per_cycle=width)
        accel.register_types([workload.descriptor])
        if buffers is None:
            import repro.proto.wire as wire_mod
            from repro.proto.varint import encode_varint
            from repro.proto.types import WireType
            buffers = []
            for message in workload.messages:
                out = bytearray()
                for fd in message.descriptor.fields:
                    payload = bytearray()
                    for value in message[fd.name]:
                        payload += encode_varint(value)
                    out += wire_mod.encode_tag(
                        fd.number, WireType.LENGTH_DELIMITED)
                    out += encode_varint(len(payload)) + payload
                buffers.append(bytes(out))
        _, stats = accel.deserialize_batch(workload.descriptor, buffers)
        lines.append(f"{width:>14.0f} {stats.cycles:>12.0f}")
    return lines


def _hasbits_ablation() -> list[str]:
    """Sparse vs dense hasbits (Sections 3.7/4.2): bits the serializer
    frontend moves per instance under each layout."""
    from repro.accel.hasbits import compare
    from repro.hyperprotobench import build_hyperprotobench

    lines = ["", "Hasbits layout ablation (bits moved per serialization):",
             f"{'workload':<10} {'sparse':>8} {'dense':>8} "
             f"{'sparse wins':>12}"]
    for name in ("bench0", "bench2", "bench4"):
        workload = build_hyperprotobench(name, batch=12)
        sparse_total = 0.0
        dense_total = 0.0
        wins = 0
        for message in workload.messages:
            result = compare(message.descriptor,
                             len(message.present_field_numbers()))
            sparse_total += result["sparse_bits"]
            dense_total += result["dense_bits"]
            wins += int(result["sparse_wins"])
        count = len(workload.messages)
        lines.append(f"{name:<10} {sparse_total / count:>8.0f} "
                     f"{dense_total / count:>8.0f} "
                     f"{wins}/{count:>6}")
    lines.append("Dense packing would add a 32-bit mapping read per "
                 "handled field (Sec 4.2);")
    lines.append("fleet density (Fig 7) keeps the sparse layout ahead "
                 "almost everywhere.")
    return lines


def _batching_ablation() -> list[str]:
    workload = build_microbench("varint-3", batch=16)
    data = [m.serialize() for m in workload.messages]
    lines = ["", "Batching ablation (varint-3 deserialization):"]
    accel = ProtoAccelerator()
    accel.register_types([workload.descriptor])
    serial_cycles = sum(
        accel.deserialize(workload.descriptor, buffer).stats.cycles
        for buffer in data)
    accel = ProtoAccelerator()
    accel.register_types([workload.descriptor])
    prefetch_cycles = sum(
        accel.deserialize(workload.descriptor, buffer,
                          hide_startup=index > 0).stats.cycles
        for index, buffer in enumerate(data))
    lines.append(f"  one-at-a-time dispatch: {serial_cycles:>10.0f} cycles")
    lines.append(f"  batched w/ stream prefetch: {prefetch_cycles:>6.0f} "
                 "cycles")
    lines.append(f"  batching benefit: "
                 f"{serial_cycles / prefetch_cycles:.2f}x")
    return lines


def _run() -> str:
    lines = _fsu_ablation()
    lines += _stack_depth_ablation()
    lines += _adt_cache_ablation()
    lines += _varint_width_ablation()
    lines += _hasbits_ablation()
    lines += _batching_ablation()
    return "\n".join(lines)


def test_design_ablation(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    register_table("Design-choice ablations", table)
    assert "FSU count" in table
