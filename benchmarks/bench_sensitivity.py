"""Configuration sensitivity sweeps (Appendix A.7.1 customization).

The artifact supports re-configuring the SoC -- memory hierarchy, TLBs,
clock -- and re-running the benchmarks.  This bench sweeps the knobs the
accelerator is most sensitive to and reports deserialization and
serialization throughput for a mixed workload:

1. memory latency mix (L2-resident vs LLC vs DRAM-bound working sets);
2. maximum outstanding memory requests in the interface wrappers;
3. TLB reach (entries per wrapper);
4. deeper insight: deserialization is latency-sensitive (serial pointer
   chasing) while serialization is bandwidth-sensitive (parallel loads),
   the asymmetry behind the paper's placement argument (Section 3.9).
"""

from repro.accel.driver import ProtoAccelerator
from repro.bench.microbench import build_microbench
from repro.memory.timing import MemoryTimingModel
from repro.soc.config import SoCConfig

from conftest import register_table

_BATCH = 16


def _throughputs(config: SoCConfig) -> tuple[float, float]:
    """(deser, ser) Gbit/s for a mixed small-message workload."""
    workload = build_microbench("varint-5", batch=_BATCH)
    strings = build_microbench("string", batch=_BATCH)
    deser_bits = 0.0
    deser_cycles = 0.0
    ser_bits = 0.0
    ser_cycles = 0.0
    for load in (workload, strings):
        accel = ProtoAccelerator(config=config)
        accel.register_types([load.descriptor])
        buffers = [m.serialize() for m in load.messages]
        _, stats = accel.deserialize_batch(load.descriptor, buffers)
        deser_bits += stats.wire_bytes * 8
        deser_cycles += stats.cycles
        accel = ProtoAccelerator(config=config)
        accel.register_types([load.descriptor])
        addresses = [accel.load_object(m) for m in load.messages]
        _, stats = accel.serialize_batch(load.descriptor, addresses)
        ser_bits += stats.output_bytes * 8
        ser_cycles += stats.cycles
    seconds_per_cycle = 1.0 / config.clock_hz
    return (deser_bits / (deser_cycles * seconds_per_cycle) / 1e9,
            ser_bits / (ser_cycles * seconds_per_cycle) / 1e9)


def _latency_sweep(lines: list[str]) -> None:
    lines.append("Working-set residency sweep (deser / ser Gbit/s):")
    mixes = (
        ("L2-resident", MemoryTimingModel(l2_fraction=0.95,
                                          llc_fraction=0.05)),
        ("default mix", MemoryTimingModel()),
        ("LLC-resident", MemoryTimingModel(l2_fraction=0.2,
                                           llc_fraction=0.7)),
        ("DRAM-bound", MemoryTimingModel(l2_fraction=0.0,
                                         llc_fraction=0.1)),
    )
    for label, timing in mixes:
        config = SoCConfig(memory=timing)
        deser, ser = _throughputs(config)
        lines.append(f"  {label:<14} latency {timing.average_latency:>6.1f} "
                     f"cyc   deser {deser:>6.2f}   ser {ser:>6.2f}")


def _outstanding_sweep(lines: list[str]) -> None:
    lines.append("")
    lines.append("Outstanding-request sweep (deser / ser Gbit/s; the "
                 "wrappers' in-flight window")
    lines.append("bounds sustained stream bandwidth by Little's law):")
    for outstanding in (1, 2, 4, 8):
        timing = MemoryTimingModel(max_outstanding=outstanding)
        config = SoCConfig(memory=timing)
        deser, ser = _throughputs(config)
        lines.append(f"  {outstanding:>3} in flight   stream "
                     f"{timing.stream_bytes_per_cycle:>5.1f} B/cyc   "
                     f"deser {deser:>6.2f}   ser {ser:>6.2f}")


def _bulk_copy_sweep(lines: list[str]) -> None:
    lines.append("")
    lines.append("Long-string deserialization vs in-flight window "
                 "(memcpy-bound regime):")
    workload = build_microbench("string_very_long", batch=4)
    buffers = [m.serialize() for m in workload.messages]
    for outstanding in (1, 2, 4, 8):
        config = SoCConfig(memory=MemoryTimingModel(
            max_outstanding=outstanding))
        accel = ProtoAccelerator(config=config)
        accel.register_types([workload.descriptor])
        _, stats = accel.deserialize_batch(workload.descriptor, buffers)
        gbps = config.gbits_per_second(stats.wire_bytes, stats.cycles)
        lines.append(f"  {outstanding:>3} in flight   {gbps:>7.1f} Gbit/s")


def _run() -> str:
    lines: list[str] = []
    _latency_sweep(lines)
    _outstanding_sweep(lines)
    _bulk_copy_sweep(lines)
    lines.append("")
    lines.append("Takeaway: deserialization throughput tracks memory "
                 "latency (serial pointer")
    lines.append("chasing), matching Section 3.9's case against "
                 "high-latency PCIe placement.")
    return "\n".join(lines)


def test_sensitivity_sweeps(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    register_table("Configuration sensitivity sweeps", table)
    assert "DRAM-bound" in table
