"""Section 7 extension: accelerated merge / copy / clear.

The paper: reusing the ser/deser hardware blocks with new custom
instructions addresses another 17.1% of fleet-wide C++ protobuf cycles
(merge + copy + clear), and fully migrating to arenas addresses the
13.9% destructor share.  This bench measures the extension unit against
the software baselines on representative workloads.
"""

from repro.accel.driver import ProtoAccelerator
from repro.bench.microbench import build_microbench
from repro.cpu.boom import BOOM_PARAMS
from repro.cpu.ops import clear_cycles, copy_cycles, merge_cycles
from repro.cpu.xeon import XEON_PARAMS
from repro.fleet.distributions import FLEET_OP_SHARES
from repro.hyperprotobench import build_hyperprotobench

from conftest import register_table

_WORKLOADS = ("varint-5", "string", "string_long", "double-SUB", "bench0")


def _workload(name):
    if name.startswith("bench"):
        return build_hyperprotobench(name, batch=8)
    return build_microbench(name, batch=8)


def _measure(workload) -> dict[str, dict[str, float]]:
    accel = ProtoAccelerator()
    accel.register_types([workload.descriptor])
    totals = {
        "clear": {"accel": 0.0, "riscv-boom": 0.0, "Xeon": 0.0},
        "copy": {"accel": 0.0, "riscv-boom": 0.0, "Xeon": 0.0},
        "merge": {"accel": 0.0, "riscv-boom": 0.0, "Xeon": 0.0},
    }
    for message in workload.messages:
        src = accel.load_object(message)
        dest, copy_stats = accel.copy_message(workload.descriptor, src)
        merge_stats = accel.merge_messages(workload.descriptor, src, dest)
        clear_stats = accel.clear_message(workload.descriptor, dest)
        totals["copy"]["accel"] += copy_stats.cycles
        totals["merge"]["accel"] += merge_stats.cycles
        totals["clear"]["accel"] += clear_stats.cycles
        for label, params in (("riscv-boom", BOOM_PARAMS),
                              ("Xeon", XEON_PARAMS)):
            scale = params.clock_hz / BOOM_PARAMS.clock_hz
            del scale  # cycle counts compared at each host's own clock
            totals["copy"][label] += copy_cycles(params, message)
            totals["merge"][label] += merge_cycles(params, message,
                                                   message)
            totals["clear"][label] += clear_cycles(params, message)
    return totals


def _run() -> str:
    lines = [f"{'workload':<12} {'op':<7} {'BOOM cyc':>10} {'Xeon cyc':>10} "
             f"{'accel cyc':>10} {'vs BOOM':>8}"]
    for name in _WORKLOADS:
        totals = _measure(_workload(name))
        for op in ("clear", "copy", "merge"):
            row = totals[op]
            speedup = row["riscv-boom"] / row["accel"]
            lines.append(f"{name:<12} {op:<7} {row['riscv-boom']:>10.0f} "
                         f"{row['Xeon']:>10.0f} {row['accel']:>10.0f} "
                         f"{speedup:>7.1f}x")
    share = (FLEET_OP_SHARES["merge"] + FLEET_OP_SHARES["copy"]
             + FLEET_OP_SHARES["clear"])
    lines.append("")
    lines.append(f"fleet cycles addressed by these ops: {share * 100:.1f}% "
                 "of C++ protobuf cycles (paper: 17.1%)")
    lines.append(f"destructor share addressable via arenas: "
                 f"{FLEET_OP_SHARES['destructor'] * 100:.1f}% "
                 "(paper: 13.9%)")
    return "\n".join(lines)


def test_sec7_dataops(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    register_table("Section 7: accelerated merge/copy/clear", table)
    assert "17.1%" in table
