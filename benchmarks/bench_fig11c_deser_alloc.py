"""Figure 11c: deserialization microbenchmarks, allocating types (paper: accel 14.2x BOOM, 6.9x Xeon).

Thin wrapper over :mod:`repro.bench.figures`.
"""

from repro.bench import figures

from conftest import register_table


def test_fig11c_deser_alloc(benchmark):
    table = benchmark.pedantic(lambda: figures.figure11("11c"), rounds=1,
                               iterations=1)
    register_table('Figure 11c', table)
    assert 'string_very_long' in table
