"""Figure 11b: serialization microbenchmarks, inline types (paper: accel 15.5x BOOM, 4.5x Xeon).

Thin wrapper over :mod:`repro.bench.figures`.
"""

from repro.bench import figures

from conftest import register_table


def test_fig11b_ser_inline(benchmark):
    table = benchmark.pedantic(lambda: figures.figure11("11b"), rounds=1,
                               iterations=1)
    register_table('Figure 11b', table)
    assert 'geomean' in table
