"""Accelerator placement: near-core vs PCIe-attached (Section 3.9).

Runs the near-core behavioral model on workloads spanning the fleet's
message-size range, then estimates the *same datapath's* cost behind a
PCIe link.  Reproduces the paper's placement conclusions:

- for the small messages that dominate the fleet (93% under 512 B),
  PCIe dispatch overhead swamps the work -- near-core wins decisively;
- pointer-chasing deserialization (sub-messages, strings) exposes PCIe
  round trips;
- only bulk transfers (the [32769, inf) bucket, 0.08% of messages but
  most of the bytes) could tolerate NIC distance, and even those only
  break even;
- 83.7% of deserialization cycles are not RPC-initiated, so NIC
  placement moves that data for nothing.
"""

from repro.accel.driver import ProtoAccelerator
from repro.accel.placement import (
    PcieAttachedModel,
    fleet_message_share_won_by_near_core,
    non_rpc_deser_share,
)
from repro.bench.microbench import build_microbench
from repro.hyperprotobench import build_hyperprotobench

from conftest import register_table

_WORKLOADS = ("varint-2", "varint-8", "string", "bool-SUB",
              "string_long", "string_very_long", "bench0", "bench3")


def _workload(name):
    if name.startswith("bench"):
        return build_hyperprotobench(name, batch=8)
    return build_microbench(name, batch=8)


def _run() -> str:
    pcie = PcieAttachedModel()
    lines = [f"{'workload':<18} {'avg bytes':>10} {'near-core cyc':>14} "
             f"{'PCIe cyc':>10} {'near-core win':>14}"]
    for name in _WORKLOADS:
        workload = _workload(name)
        accel = ProtoAccelerator()
        accel.register_types([workload.descriptor])
        buffers = [m.serialize() for m in workload.messages]
        near_total = 0.0
        pcie_total = 0.0
        for data in buffers:
            result = accel.deserialize(workload.descriptor, data)
            near_total += result.stats.cycles
            pcie_total += pcie.deserialize_cycles(result.stats)
        count = len(buffers)
        avg_bytes = sum(len(b) for b in buffers) // count
        lines.append(f"{name:<18} {avg_bytes:>10} "
                     f"{near_total / count:>14.0f} "
                     f"{pcie_total / count:>10.0f} "
                     f"{pcie_total / near_total:>13.1f}x")
    lines.append("")
    # Flat-message crossover: near-core overhead ~40 cycles, ~0.1
    # cycles/byte marginal; PCIe pays 2600 dispatch + 1/3 cycle per byte.
    crossover = pcie.crossover_bytes(near_core_cycles_per_byte=0.1,
                                     near_core_overhead=40.0)
    share = fleet_message_share_won_by_near_core(crossover)
    lines.append(f"flat-message crossover size: ~{crossover:,.0f} B; "
                 f"{share:.0%} of fleet messages fall below it")
    lines.append(f"non-RPC deserialization cycles (never at the NIC): "
                 f"{non_rpc_deser_share():.1%}  (paper: over 83%)")
    lines.append("Conclusion (Section 3.9): place the accelerator near "
                 "the core.")
    return "\n".join(lines)


def test_placement_study(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    register_table("Placement study: near-core vs PCIe", table)
    assert "near-core win" in table
