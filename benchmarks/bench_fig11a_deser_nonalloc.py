"""Figure 11a: deserialization microbenchmarks, non-allocating types (paper: accel 7.0x BOOM, 2.6x Xeon).

Thin wrapper over :mod:`repro.bench.figures`.
"""

from repro.bench import figures

from conftest import register_table


def test_fig11a_deser_nonalloc(benchmark):
    table = benchmark.pedantic(lambda: figures.figure11("11a"), rounds=1,
                               iterations=1)
    register_table('Figure 11a', table)
    assert 'varint-10' in table
