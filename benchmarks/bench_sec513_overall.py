"""Section 5.1.3: overall microbenchmark geomeans (paper: 11.2x vs BOOM, 3.8x vs Xeon).

Thin wrapper over :mod:`repro.bench.figures`.
"""

from repro.bench import figures

from conftest import register_table


def test_sec513_overall(benchmark):
    table = benchmark.pedantic(lambda: figures.section513(), rounds=1,
                               iterations=1)
    register_table('Section 5.1.3: overall microbenchmark geomeans', table)
    assert 'overall geomean' in table
