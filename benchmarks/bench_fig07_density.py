"""Figure 7: field-number usage density and the Section 3.7 ADT break-even argument.

Thin wrapper over :mod:`repro.bench.figures`.
"""

from repro.bench import figures

from conftest import register_table


def test_fig07_density(benchmark):
    table = benchmark.pedantic(lambda: figures.figure7(), rounds=1,
                               iterations=1)
    register_table('Figure 7: field-number usage density', table)
    assert '1/64' in table
