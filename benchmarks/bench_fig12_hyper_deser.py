"""Figure 12: HyperProtoBench deserialization on all three systems.

Thin wrapper over :mod:`repro.bench.figures`.
"""

from repro.bench import figures

from conftest import register_table


def test_fig12_hyper_deser(benchmark):
    table = benchmark.pedantic(lambda: figures.figure12(), rounds=1,
                               iterations=1)
    register_table('Figure 12', table)
    assert 'bench5' in table
