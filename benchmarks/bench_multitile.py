"""Multi-tile scaling (Appendix A.7.1: multi-core customization).

Scales the accelerated tile count against the shared TileLink system bus
for three workload regimes, using per-tile cycles and measured bus
traffic from the behavioral model.  Compute-bound small-message work
scales linearly to many tiles; memcpy-bound long-string work saturates
the single 128-bit bus almost immediately -- the uncore, not the
accelerator, bounds fleet-wide deployment density.
"""

from repro.accel.driver import ProtoAccelerator
from repro.bench.microbench import build_microbench
from repro.soc.multitile import MultiTileModel, TileWorkProfile

from conftest import register_table

_WORKLOADS = ("varint-2", "varint-8", "string", "string_long",
              "string_very_long")
_TILES = (1, 2, 4, 8, 16)


def _profile(name: str) -> TileWorkProfile:
    workload = build_microbench(name, batch=8)
    accel = ProtoAccelerator()
    accel.register_types([workload.descriptor])
    buffers = [m.serialize() for m in workload.messages]
    before = accel.memory.stats.snapshot()
    _, stats = accel.deserialize_batch(workload.descriptor, buffers)
    moved = (accel.memory.stats.read_bytes - before.read_bytes
             + accel.memory.stats.written_bytes - before.written_bytes)
    return TileWorkProfile(payload_bytes=stats.wire_bytes,
                           cycles=stats.cycles, bus_beats=moved / 16)


def _run() -> str:
    header = f"{'workload':<18} {'bus util/tile':>13} {'sat. tiles':>11}"
    header += "".join(f"{f'{t} tiles':>10}" for t in _TILES)
    lines = [header, "-" * len(header)]
    for name in _WORKLOADS:
        model = MultiTileModel(_profile(name))
        row = (f"{name:<18} "
               f"{model.profile.beats_per_cycle:>12.2f} "
               f"{min(model.saturation_tiles(), 99):>11.1f}")
        for tiles in _TILES:
            row += f"{model.aggregate_gbps(tiles):>10.1f}"
        lines.append(row)
    lines.append("")
    lines.append("Aggregate deserialization Gbit/s per tile count; a "
                 "single 16 B/cycle system")
    lines.append("bus is shared.  Long-string (memcpy-bound) work "
                 "saturates it at ~1 tile;")
    lines.append("small-message work scales to several tiles before the "
                 "uncore binds.")
    return "\n".join(lines)


def test_multitile_scaling(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    register_table("Multi-tile scaling (A.7.1)", table)
    assert "sat. tiles" in table
