"""Figures 5 and 6: the 24-slice bytes-to-cycles attribution model."""

from repro.bench.figures import figure5_6
from repro.fleet.cycle_model import CycleAttributionModel

from conftest import register_table


def test_fig05_deser_time_model(benchmark):
    model = CycleAttributionModel()
    table = benchmark.pedantic(lambda: figure5_6("deserialize", model),
                               rounds=1, iterations=1)
    register_table("Figure 5: deserialization cycle attribution", table)
    assert "varint" in table


def test_fig06_ser_time_model(benchmark):
    model = CycleAttributionModel()
    table = benchmark.pedantic(lambda: figure5_6("serialize", model),
                               rounds=1, iterations=1)
    register_table("Figure 6: serialization cycle attribution", table)
    assert "bytes" in table
