"""Figure 11d: serialization microbenchmarks, non-inline types (paper: accel 10.1x BOOM, 2.8x Xeon).

Thin wrapper over :mod:`repro.bench.figures`.
"""

from repro.bench import figures

from conftest import register_table


def test_fig11d_ser_noninline(benchmark):
    table = benchmark.pedantic(lambda: figures.figure11("11d"), rounds=1,
                               iterations=1)
    register_table('Figure 11d', table)
    assert 'string_very_long' in table
