"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark regenerates one table or figure from the paper's
evaluation and registers its rows here; a terminal-summary hook prints
every registered table after the pytest-benchmark timing summary, and a
copy is written under ``results/`` for later inspection.
"""

from __future__ import annotations

import pathlib

_TABLES: list[tuple[str, str]] = []

_RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def register_table(name: str, text: str) -> None:
    """Record one regenerated figure/table for the summary printout."""
    _TABLES.append((name, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    safe = name.replace(" ", "_").replace("/", "-").lower()
    (_RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("Regenerated paper figures/tables "
                                "(also saved under results/)")
    terminalreporter.write_line("=" * 72)
    for name, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)
