"""Figures 4a/4b/4c: field-type and bytes-field breakdowns.

Thin wrapper over :mod:`repro.bench.figures`.
"""

from repro.bench import figures

from conftest import register_table


def test_fig04_field_types(benchmark):
    table = benchmark.pedantic(lambda: figures.figure4(), rounds=1,
                               iterations=1)
    register_table('Figure 4: field type breakdowns', table)
    assert 'varint-like total' in table
