"""Offload granularity (Section 3.5).

Sweeps message size across the fleet's range and reports deserialization
throughput on all three systems, alongside Figure 3's population shares:
the accelerator must win at *small* sizes, because 93% of fleet messages
are under 512 B even though the [32769, inf) bucket carries most bytes.
Near-core dispatch overhead is what makes that possible (contrast
bench_placement.py, where PCIe dispatch erases it).
"""

from repro.bench.microbench import build_microbench
from repro.bench.runner import SYSTEMS, Workload, run_deserialization
from repro.fleet.distributions import MESSAGE_SIZE_BUCKETS
from repro.proto.descriptor import FieldDescriptor, MessageDescriptor
from repro.proto.types import FieldType

from conftest import register_table

_SIZES = (8, 32, 128, 512, 2048, 8192, 32768)
_BATCH = 12


def _sized_workload(payload_bytes: int) -> Workload:
    """One string-carrying message tuned to a target encoded size."""
    descriptor = MessageDescriptor(
        f"Sized{payload_bytes}",
        [FieldDescriptor(name="id", number=1, field_type=FieldType.INT64),
         FieldDescriptor(name="body", number=2,
                         field_type=FieldType.STRING)])
    messages = []
    for index in range(_BATCH):
        message = descriptor.new_message()
        message["id"] = index
        message["body"] = "x" * max(payload_bytes - 8, 1)
        messages.append(message)
    return Workload(f"~{payload_bytes}B", descriptor, messages)


def _population_share(size: int) -> float:
    for bucket in MESSAGE_SIZE_BUCKETS:
        if bucket.contains(size):
            return bucket.share
    return 0.0


def _run() -> str:
    header = (f"{'msg size':>9} {'fleet %':>8}"
              + "".join(f"{system:>18}" for system in SYSTEMS)
              + f"{'accel/BOOM':>12}")
    lines = [header, "-" * len(header)]
    for size in _SIZES:
        result = run_deserialization(_sized_workload(size))
        row = f"{size:>8}B {_population_share(size) * 100:>7.1f}%"
        for system in SYSTEMS:
            row += f"{result.gbps(system):>18.2f}"
        row += f"{result.speedup('riscv-boom-accel'):>11.1f}x"
        lines.append(row)
    lines.append("")
    lines.append("Deserialization Gbit/s by encoded message size.  The "
                 "advantage is largest")
    lines.append("exactly where the fleet's messages are (Figure 3: 93% "
                 "under 512 B) and")
    lines.append("narrows toward pure memcpy at bulk sizes -- the "
                 "granularity argument for")
    lines.append("low-overhead, near-core offload (Section 3.5).")
    return "\n".join(lines)


def test_offload_granularity(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    register_table("Offload granularity (Section 3.5)", table)
    assert "fleet %" in table
