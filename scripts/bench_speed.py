#!/usr/bin/env python
"""Measure the benchmark harness's own speed and record it.

Runs a fixed subset of the evaluation -- the four Figure 11 classes,
the Section 5.1.3 sweep, and HyperProtoBench's bench0 (both operations)
-- twice: once serial with every cache disabled (the pre-optimisation
baseline), once with the memoisation caches, disk cache, and requested
job count (the shipped path).  Writes wall-clock seconds, the speedup,
cache hit rates, and the job count to ``BENCH_harness.json``.

``--serve`` switches to the resilient-serving benchmark instead: an
offered-load sweep through the 2-tile deadline-gated server
(docs/SERVING.md), writing shed rate and p50/p99 latency per load point
to ``BENCH_serving.json``.

``--codegen`` switches to the codegen-tier benchmark: accelerator-only
wall-clock of the schema-specialized kernels vs the interpretive FSM on
the Figure 11 + bench0 workloads plus the per-field-type microbench,
writing the speedups to ``BENCH_codegen.json`` and failing if the
deserialization speedup drops below 2x (the shipped-default tier must
stay decisively faster).

``--batch`` switches to the vectorized-batch-tier benchmark: whole-batch
wall-clock of the numpy batch kernels vs the interpretive FSM on the
regular micro grid (the batch-eligible Figure 11 cases), writing the
speedups to ``BENCH_batch.json`` and enforcing the geomean acceptance
floors (>=10x deserialize, >=4x serialize; warnings only on --smoke).

``--fleet`` switches to the sharded-fabric fleet sweep: the seeded
fleet replay (Section 3 message-size and schema-mix distributions, plus
the echo acceptance workload) through 1, 2, and 4 fabric shards at each
offered-load point, writing shed/p99/throughput curves per shard count
to ``BENCH_fleet.json`` and failing if the echo curves are not monotone
in shard count.  ``--jobs N`` runs each sweep point host-parallel (one
worker process per shard, ``repro.serve.parallel``); the sweep also
records ``scaling_rows`` -- the 1k-message scaling replay run serially
and at jobs 2/4 -- failing unless every parallel run charges
byte-identically to serial and the LPT ideal speedup at the top jobs
level reaches 1.6x (the measured wall-clock speedup is held to the
same floor whenever the runner has at least that many usable cores).
Adding ``--resize`` also replays each load point
across an online 2 -> 3 shard resize and fails unless zero calls are
dropped (per-tenant accounting identity) and unmoved tenants' per-call
charging is bit-identical to the no-resize replay (docs/SERVING.md,
resharding section).

``--transport`` switches to the attach-point benchmark: the RoCC-vs-
PCIe sweep over message size x batch size (docs/MODEL.md, "Attach
points"), writing per-cell cycle totals and the per-size crossover
table to ``BENCH_transport.json``.  Two gates always run: protocol
cycles must be bit-identical across transports in every cell, and the
PCIe per-op transport cost must fall monotonically with batch size.

``--check-regression`` compares the optimised run's wall-clock against
the committed baseline (``BENCH_harness.json`` by default) and fails on
a >15% regression, provided the baseline was recorded with the same
smoke/jobs settings (otherwise the check is skipped with a warning).
Combined with ``--batch`` it instead gates the per-operation geomean
speedups against the committed ``BENCH_batch.json``; combined with
``--fleet`` it gates the echo p99/throughput curves against the
committed ``BENCH_fleet.json`` and requires the scaling replay's
charging digest to be byte-identical to the committed serial baseline
(whatever ``--jobs`` either run used); combined with ``--transport`` it
requires this run's RoCC cycle totals to be *bit-identical* to the
committed ``BENCH_transport.json`` on every shared cell (the cycle
model is deterministic, so the gate is exact) and fails on a >15%
wall-clock regression.

Usage::

    python scripts/bench_speed.py             # full subset
    python scripts/bench_speed.py --smoke     # small batches, CI-sized
    python scripts/bench_speed.py --jobs 4
    python scripts/bench_speed.py --serve --fault-rate 0.01
    python scripts/bench_speed.py --codegen
    python scripts/bench_speed.py --batch
    python scripts/bench_speed.py --fleet
    python scripts/bench_speed.py --transport
    python scripts/bench_speed.py --check-regression
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.accel import adt, driver                         # noqa: E402
from repro.accel.perf import render_memoization_line        # noqa: E402
from repro.bench import harness                             # noqa: E402
from repro.bench.harness import WorkloadSpec, run_many      # noqa: E402
from repro.cpu import model                                 # noqa: E402
from repro.faults import FaultPlan                          # noqa: E402


def subset_specs(micro_batch: int, hyper_batch: int) -> list[WorkloadSpec]:
    """The fixed Fig-11 + bench0 measurement subset (ISSUE acceptance)."""
    from repro.bench.figures import _FIG11, _fig11_specs
    specs: list[WorkloadSpec] = []
    for which in _FIG11:
        specs.extend(_fig11_specs(which, micro_batch))
    # Section 5.1.3 re-runs the same four classes; include the repeat
    # explicitly, as the figure pipeline does.
    for which in _FIG11:
        specs.extend(_fig11_specs(which, micro_batch))
    specs.append(WorkloadSpec("hyper", "bench0", "deserialize", hyper_batch))
    specs.append(WorkloadSpec("hyper", "bench0", "serialize", hyper_batch))
    return specs


def clear_memo_caches() -> None:
    for cache in (model.DESER_CYCLE_CACHE, model.SER_CYCLE_CACHE,
                  driver.DESER_BATCH_CACHE, driver.SER_BATCH_CACHE):
        cache.clear()


def set_caches(enabled: bool) -> None:
    model.set_cycle_cache_enabled(enabled)
    driver.set_batch_cache_enabled(enabled)
    harness.set_workload_cache_enabled(enabled)
    adt.set_adt_caches_enabled(enabled)


def timed_run(specs, jobs: int, caches: bool,
              cache_dir: Path | None,
              faults: FaultPlan | None = None) -> tuple[float, list]:
    clear_memo_caches()
    set_caches(caches)
    # One entry point shared with ``python -m repro.bench``: install
    # the harness options (the same ones the shared pool initializer
    # pushes into each worker) and let run_many inherit them, instead
    # of threading a parallel set of keyword arguments.
    previous = harness.get_options()
    harness.set_options(jobs=jobs, disk_cache=cache_dir is not None,
                        fault_plan=faults)
    try:
        start = time.perf_counter()
        results = run_many(specs, cache_dir=cache_dir)
        return time.perf_counter() - start, results
    finally:
        harness._OPTIONS = previous
        set_caches(True)


def hit_rates() -> dict[str, float]:
    return {
        "cpu_deser": model.DESER_CYCLE_CACHE.hit_rate,
        "cpu_ser": model.SER_CYCLE_CACHE.hit_rate,
        "accel_deser": driver.DESER_BATCH_CACHE.hit_rate,
        "accel_ser": driver.SER_BATCH_CACHE.hit_rate,
    }


def run_serving_bench(args: argparse.Namespace) -> int:
    """The --serve mode: offered-load sweep -> BENCH_serving.json."""
    from repro.bench.report import serving_table
    from repro.serve import (
        AdmissionPolicy,
        ServePolicy,
        ServingWorkloadSpec,
        sweep_offered_load,
    )

    deadline, budget = 50_000.0, 10_000.0
    interarrivals = ((2_000.0, 500.0) if args.smoke
                     else (4_000.0, 2_000.0, 1_000.0, 500.0, 250.0))
    calls = 100 if args.smoke else 400
    plan = (FaultPlan(seed=args.fault_seed, rate=args.fault_rate)
            if args.fault_rate > 0 else None)
    policy = ServePolicy(
        tiles=2, fault_plan=plan, watchdog_budget_cycles=budget,
        admission=AdmissionPolicy(max_depth=16, deadline_cycles=deadline))
    print(f"serving sweep: {len(interarrivals)} load points x {calls} "
          f"calls, fault rate {args.fault_rate}")
    start = time.perf_counter()
    rows = sweep_offered_load(interarrivals, ServingWorkloadSpec(calls=calls),
                              policy)
    elapsed = time.perf_counter() - start
    print(serving_table(rows))
    bound = deadline + budget
    worst_p99 = max(row["p99_cycles"] for row in rows)
    if worst_p99 > bound:
        print(f"ERROR: p99 {worst_p99:.0f} exceeds the "
              f"deadline+watchdog bound {bound:.0f}")
        return 1
    print(f"latency bound holds: worst p99 {worst_p99:.0f} <= "
          f"deadline {deadline:.0f} + watchdog budget {budget:.0f}")
    output = args.output
    if output == REPO / "BENCH_harness.json":
        output = REPO / "BENCH_serving.json"
    payload = {
        "smoke": args.smoke,
        "calls_per_point": calls,
        "fault_rate": args.fault_rate,
        "deadline_cycles": deadline,
        "watchdog_budget_cycles": budget,
        "tiles": policy.tiles,
        "wall_seconds": elapsed,
        "rows": rows,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    print(f"{elapsed:.2f} s -> {output}")
    return 0


#: Shard counts swept at every offered-load point of the --fleet mode.
FLEET_SHARD_COUNTS = (1, 2, 4)


def run_fleet_bench(args: argparse.Namespace) -> int:
    """The --fleet mode: sharded-fabric fleet sweep -> BENCH_fleet.json.

    Replays the seeded fleet distributions (message sizes, schema mix)
    and the echo acceptance workload through 1, 2, and 4 fabric shards
    at each offered-load point.  Fails if the echo scaling curves are
    not monotone (p99 falling, throughput non-decreasing as shards are
    added); with --check-regression additionally gates the echo curves
    against the committed baseline.
    """
    from repro.bench.fleet import measure_scaling, scaling_spec
    from repro.bench.pool import effective_cores, make_pool
    from repro.bench.report import fleet_table, scaling_table
    from repro.serve import FleetReplaySpec, sweep_fleet
    from repro.serve.parallel import warm_fleet_worker

    if args.smoke:
        interarrivals, messages = (1_000.0, 400.0), 150
    else:
        interarrivals, messages = (2_000.0, 1_000.0, 500.0, 300.0), 1_000
    print(f"fleet sweep: {len(interarrivals)} load points x "
          f"{len(FLEET_SHARD_COUNTS)} shard counts x {messages} messages, "
          f"workloads echo + fleet, jobs {args.jobs}")
    start = time.perf_counter()
    rows_by_workload = {}
    pool = (make_pool(args.jobs, warm=warm_fleet_worker)
            if args.jobs > 1 else None)
    try:
        for workload in ("echo", "fleet"):
            spec = FleetReplaySpec(messages=messages, workload=workload)
            rows = sweep_fleet(FLEET_SHARD_COUNTS, interarrivals, spec,
                               jobs=args.jobs, pool=pool)
            rows_by_workload[workload] = rows
            print(fleet_table(rows))
            print()
    finally:
        if pool is not None:
            pool.shutdown()
    elapsed = time.perf_counter() - start

    status = _check_fleet_scaling(rows_by_workload["echo"])

    # Host-parallel scaling rows: the same seeded replay serially and
    # with one worker process per shard, plus the serial charging
    # digest every later run is gated against byte-for-byte.
    jobs_ladder = tuple(sorted({2, 4} | ({args.jobs} if args.jobs > 1
                                         else set())))
    scaling_rows, charging = measure_scaling(
        scaling_spec(messages=messages), jobs_list=jobs_ladder)
    print(scaling_table(scaling_rows))
    print()
    status = max(status, _check_scaling_rows(args, scaling_rows))

    resize_rows = []
    if args.resize:
        resize_rows = _run_resize_replays(messages, interarrivals)
        status = max(status, _check_resize_invariants(resize_rows))
    output = args.output
    if output == REPO / "BENCH_harness.json":
        output = REPO / "BENCH_fleet.json"
    payload = {
        "smoke": args.smoke,
        "jobs": args.jobs,
        "cores": effective_cores(),
        "messages_per_point": messages,
        "shard_counts": list(FLEET_SHARD_COUNTS),
        "interarrival_cycles": list(interarrivals),
        "wall_seconds": elapsed,
        "charging_digest": charging,
        "echo_rows": rows_by_workload["echo"],
        "fleet_rows": rows_by_workload["fleet"],
        "scaling_rows": scaling_rows,
        "resize_rows": resize_rows,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    print(f"{elapsed:.2f} s -> {output}")
    if args.check_regression:
        baseline_path = args.baseline
        if baseline_path == REPO / "BENCH_harness.json":
            baseline_path = REPO / "BENCH_fleet.json"
        status = max(status, _check_fleet_regression(
            args, baseline_path, rows_by_workload["echo"],
            resize_rows, charging))
    return status


def _check_scaling_rows(args: argparse.Namespace,
                        scaling_rows: list[dict]) -> int:
    """The host-parallel acceptance gate.

    Exact parts (always enforced): every parallel row's charging digest
    equals the serial one, and no worker served a call the serial
    fabric would have re-routed cross-shard (``route_deviations`` == 0
    on a fault-free replay).  Speed parts: the LPT ideal speedup at the
    top jobs level must reach the 1.6x floor (this gates the shard
    partition and is machine-independent); the *measured* wall-clock
    speedup is held to the same floor only when the runner actually has
    that many usable cores -- on fewer cores it is physically
    unreachable and is reported, not gated.  Both speed floors demote
    to warnings on --smoke (150-message replays are dominated by
    process start-up).
    """
    from repro.bench.fleet import SCALING_FLOOR

    status = 0
    parallel = [row for row in scaling_rows if row["mode"] == "parallel"]
    for row in parallel:
        if not row["cycles_identical"]:
            print(f"ERROR: parallel charging diverged from serial at "
                  f"jobs={row['jobs']} (digest "
                  f"{row['charging_digest'][:12]}… != serial)")
            status = 1
        if row["route_deviations"]:
            print(f"ERROR: {row['route_deviations']} route deviation(s) "
                  f"at jobs={row['jobs']} -- workers served calls the "
                  "serial fabric would have re-routed")
            status = 1
    if status == 0 and parallel:
        print(f"parallel gate: {len(parallel)} jobs levels charge "
              "byte-identically to the serial replay")
    top = max(parallel, key=lambda r: r["jobs"], default=None)
    if top is None:
        return status
    ideal = top["ideal_speedup"] or 0.0
    if ideal < SCALING_FLOOR:
        message = (f"ideal speedup {ideal:.2f}x at jobs={top['jobs']} "
                   f"below the {SCALING_FLOOR}x floor (shard partition "
                   "too skewed)")
        if args.smoke:
            print(f"WARNING: {message} (smoke run, not failing)")
        else:
            print(f"ERROR: {message}")
            status = 1
    if top["cores"] >= top["jobs"]:
        if top["speedup"] < SCALING_FLOOR:
            message = (f"measured wall speedup {top['speedup']:.2f}x at "
                       f"jobs={top['jobs']} below the {SCALING_FLOOR}x "
                       f"floor on {top['cores']} cores")
            if args.smoke:
                print(f"WARNING: {message} (smoke run, not failing)")
            else:
                print(f"ERROR: {message}")
                status = 1
        else:
            print(f"scaling gate: measured {top['speedup']:.2f}x, ideal "
                  f"{ideal:.2f}x at jobs={top['jobs']} "
                  f"(floor {SCALING_FLOOR}x)")
    else:
        print(f"scaling note: {top['cores']} usable core(s) < "
              f"jobs={top['jobs']}; measured wall speedup "
              f"{top['speedup']:.2f}x not gated on this machine "
              f"(ideal {ideal:.2f}x gates the shard partition)")
    return status


#: Tenants in the --resize replay: wide enough that a 2 -> 3 resize
#: splits the fleet into non-empty moved AND unmoved sets.
RESIZE_TENANTS = 8


def _run_resize_replays(messages: int, interarrivals) -> list[dict]:
    """The --resize figure: the seeded replay across a 2 -> 3 shard
    grow event fired one third of the way in, compared per tenant
    against the no-resize replay of the identical call sequence."""
    from repro.bench.report import resize_table
    from repro.serve import (
        REPLAY_SERVE_POLICY,
        FabricPolicy,
        FleetReplaySpec,
        ResizeEvent,
        build_fleet_fabric,
        generate_calls,
        replay_through_fabric,
        resize_row,
        run_resize_replay,
    )

    rows = []
    events = [ResizeEvent(at_call=max(1, messages // 3), action="add")]
    for workload in ("echo", "fleet"):
        for interarrival in interarrivals:
            spec = FleetReplaySpec(
                messages=messages, workload=workload,
                tenants=RESIZE_TENANTS,
                interarrival_cycles=float(interarrival))
            static = build_fleet_fabric(
                FabricPolicy(shards=2, serve=REPLAY_SERVE_POLICY), spec)
            baseline = replay_through_fabric(static,
                                             generate_calls(spec))
            report = run_resize_replay(spec, base_shards=2,
                                       events=events)
            rows.append(resize_row(spec, report, baseline))
    print(resize_table(rows))
    print()
    return rows


def _check_resize_invariants(resize_rows: list[dict]) -> int:
    """The resize acceptance gate, exact by construction: zero dropped
    calls (the per-tenant identity closes), non-trivial tenant split,
    and unmoved tenants bit-identical to the no-resize replay."""
    status = 0
    for row in resize_rows:
        point = (f"{row['workload']} @ interarrival "
                 f"{row['interarrival_cycles']:.0f}")
        accounted = (row["shed"] + row["failed"] + row["succeeded"]
                     + row["migrated"])
        if accounted != row["offered"]:
            print(f"ERROR: resize dropped calls at {point}: "
                  f"{accounted} accounted != {row['offered']} offered")
            status = 1
        if not row["accounting_identity_ok"]:
            print(f"ERROR: per-tenant accounting identity broken at "
                  f"{point}")
            status = 1
        if not row["moved_tenants"] or not row["unmoved_tenants"]:
            print(f"ERROR: resize split degenerate at {point}: "
                  f"moved={row['moved_tenants']} "
                  f"unmoved={row['unmoved_tenants']}")
            status = 1
        if not row["unmoved_bit_identical"]:
            print(f"ERROR: unmoved tenants' charging diverged from the "
                  f"no-resize replay at {point}")
            status = 1
    if status == 0:
        print(f"resize gate: {len(resize_rows)} resized replays -- "
              "zero drops, unmoved tenants bit-identical")
    return status


def _check_fleet_scaling(echo_rows: list[dict]) -> int:
    """The acceptance gate: on the echo workload, every offered-load
    point must scale monotonically with shard count -- p99 of admitted
    calls non-increasing, delivered throughput non-decreasing.  The
    sweep is fully deterministic (seeded arrivals on the simulated
    cycle clock), so the gate is exact, not statistical.
    """
    status = 0
    by_load: dict[float, list[dict]] = {}
    for row in echo_rows:
        by_load.setdefault(row["interarrival_cycles"], []).append(row)
    for load, rows in by_load.items():
        rows = sorted(rows, key=lambda r: r["shards"])
        for thin, wide in zip(rows, rows[1:]):
            if wide["p99_cycles"] > thin["p99_cycles"]:
                print(f"ERROR: echo p99 rose {thin['p99_cycles']:.0f} -> "
                      f"{wide['p99_cycles']:.0f} going "
                      f"{thin['shards']} -> {wide['shards']} shards at "
                      f"interarrival {load:.0f}")
                status = 1
            if (wide["throughput_per_mcycle"]
                    < thin["throughput_per_mcycle"]):
                print(f"ERROR: echo throughput fell "
                      f"{thin['throughput_per_mcycle']:.1f} -> "
                      f"{wide['throughput_per_mcycle']:.1f} going "
                      f"{thin['shards']} -> {wide['shards']} shards at "
                      f"interarrival {load:.0f}")
                status = 1
    if status == 0:
        print("scaling gate: echo p99 and throughput monotone in shard "
              "count at every load point")
    return status


def _check_fleet_regression(args: argparse.Namespace, baseline_path: Path,
                            echo_rows: list[dict],
                            resize_rows: list[dict] | None = None,
                            charging_digest: str | None = None) -> int:
    """Gate the echo curves against the committed BENCH_fleet.json:
    fail when p99 worsens or throughput drops more than the threshold
    at any (load, shards) point the baseline also measured.  When both
    this run and the baseline carry resized replays, the resized p99 is
    gated the same way per (workload, load) point.  The scaling
    replay's charging digest is gated *exactly*: cycle charging must be
    byte-identical to the committed serial baseline, whatever ``jobs``
    either run used (results must never depend on parallelism)."""
    try:
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        print(f"WARNING: fleet baseline {baseline_path} missing or "
              "unreadable; skipping regression check")
        return 0
    if baseline.get("smoke") != args.smoke:
        print(f"WARNING: baseline recorded with smoke="
              f"{baseline.get('smoke')} but this run used "
              f"smoke={args.smoke}; skipping regression check")
        return 0
    status = 0
    base_digest = baseline.get("charging_digest")
    if charging_digest and base_digest:
        if charging_digest != base_digest:
            print("ERROR: scaling-replay charging digest "
                  f"{charging_digest[:12]}… differs from the committed "
                  f"baseline {base_digest[:12]}… (per-call cycle "
                  "charging must be byte-identical)")
            status = 1
        else:
            print("regression check: charging digest byte-identical to "
                  "the committed baseline")
    elif charging_digest:
        print("WARNING: baseline has no charging_digest; cycle "
              "byte-identity not gated against it")
    base_rows = {(row["interarrival_cycles"], row["shards"]): row
                 for row in baseline.get("echo_rows", [])}
    checked = 0
    for row in echo_rows:
        base = base_rows.get((row["interarrival_cycles"], row["shards"]))
        if base is None:
            continue
        checked += 1
        point = (f"interarrival {row['interarrival_cycles']:.0f}, "
                 f"{row['shards']} shard(s)")
        if row["p99_cycles"] > base["p99_cycles"] * (
                1.0 + args.regression_threshold):
            print(f"ERROR: echo p99 {row['p99_cycles']:.0f} regressed "
                  f"more than {args.regression_threshold:.0%} over "
                  f"baseline {base['p99_cycles']:.0f} at {point}")
            status = 1
        if row["throughput_per_mcycle"] < base["throughput_per_mcycle"] * (
                1.0 - args.regression_threshold):
            print(f"ERROR: echo throughput "
                  f"{row['throughput_per_mcycle']:.1f} regressed more "
                  f"than {args.regression_threshold:.0%} below baseline "
                  f"{base['throughput_per_mcycle']:.1f} at {point}")
            status = 1
    if not checked:
        print("WARNING: baseline shares no (load, shards) points with "
              "this run; nothing gated")
    elif status == 0:
        print(f"regression check: {checked} echo points within "
              f"{args.regression_threshold:.0%} of baseline")
    base_resize = {(row["workload"], row["interarrival_cycles"]): row
                   for row in baseline.get("resize_rows", [])}
    resized_checked = 0
    for row in resize_rows or []:
        base = base_resize.get((row["workload"],
                                row["interarrival_cycles"]))
        if base is None:
            continue
        resized_checked += 1
        point = (f"resized {row['workload']} at interarrival "
                 f"{row['interarrival_cycles']:.0f}")
        if row["p99_cycles"] > base["p99_cycles"] * (
                1.0 + args.regression_threshold):
            print(f"ERROR: p99 {row['p99_cycles']:.0f} regressed more "
                  f"than {args.regression_threshold:.0%} over baseline "
                  f"{base['p99_cycles']:.0f} at {point}")
            status = 1
    if resized_checked and status == 0:
        print(f"regression check: {resized_checked} resized points "
              f"within {args.regression_threshold:.0%} of baseline")
    return status


def run_transport_bench(args: argparse.Namespace) -> int:
    """The --transport mode: RoCC-vs-PCIe attach-point sweep ->
    BENCH_transport.json.

    Sweeps message size x batch size on both transports, prints the
    per-size crossover table, and enforces two exact gates: protocol
    cycles bit-identical across transports in every cell (asserted by
    the sweep itself), and PCIe per-op transport cost monotonically
    non-increasing in batch size.  With --check-regression the RoCC
    cycle totals must additionally be bit-identical to the committed
    baseline on every shared cell, and wall-clock must stay within the
    threshold.
    """
    from repro.bench import transport as transport_bench
    from repro.bench.report import transport_crossover_table, transport_table

    if args.smoke:
        sizes = transport_bench.SMOKE_SIZES
        batches = transport_bench.SMOKE_BATCHES
        operations = ("deserialize",)
    else:
        sizes = transport_bench.SWEEP_SIZES
        batches = transport_bench.SWEEP_BATCHES
        operations = ("deserialize", "serialize")
    print(f"transport sweep: {len(sizes)} sizes x {len(batches)} batches "
          f"x 2 transports, operations {', '.join(operations)}")
    start = time.perf_counter()
    rows_by_op, crossovers_by_op = {}, {}
    status = 0
    for operation in operations:
        rows = transport_bench.sweep_transports(sizes, batches, operation)
        rows_by_op[operation] = rows
        crossovers_by_op[operation] = transport_bench.crossover_batches(rows)
        print(transport_table(rows))
        print()
        print(transport_crossover_table(crossovers_by_op[operation]))
        print()
        violations = transport_bench.amortization_violations(rows)
        for v in violations:
            print(f"ERROR: PCIe per-op transport cost rose "
                  f"{v['per_op_before']:.3f} -> {v['per_op_after']:.3f} "
                  f"going batch {v['batch_before']} -> {v['batch_after']} "
                  f"at size {v['size']} ({operation})")
            status = 1
    elapsed = time.perf_counter() - start
    if status == 0:
        print("transport gates: protocol cycles identical across "
              "transports; PCIe amortisation monotone in batch size")

    output = args.output
    if output == REPO / "BENCH_harness.json":
        output = REPO / "BENCH_transport.json"
    payload = {
        "smoke": args.smoke,
        "sizes": list(sizes),
        "batches": list(batches),
        "operations": list(operations),
        "wall_seconds": elapsed,
        "rows": rows_by_op,
        "crossovers": crossovers_by_op,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    print(f"{elapsed:.2f} s -> {output}")
    if args.check_regression:
        baseline_path = args.baseline
        if baseline_path == REPO / "BENCH_harness.json":
            baseline_path = REPO / "BENCH_transport.json"
        status = max(status, _check_transport_regression(
            args, baseline_path, rows_by_op, elapsed))
    return status


def _check_transport_regression(args: argparse.Namespace,
                                baseline_path: Path,
                                rows_by_op: dict, elapsed: float) -> int:
    """Gate against the committed BENCH_transport.json.

    RoCC cycle totals are a deterministic function of the workload and
    the cycle model, so the gate is *exact*: any shared (operation,
    size, batch) cell whose RoCC ``cycles`` or total differs from the
    baseline at all is a failure (this is the "transport=rocc stays
    bit-identical" acceptance criterion, continuously enforced).
    Wall-clock gets the usual fractional threshold.
    """
    try:
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        print(f"WARNING: transport baseline {baseline_path} missing or "
              "unreadable; skipping regression check")
        return 0
    status, checked = 0, 0
    for operation, rows in rows_by_op.items():
        base_rows = {(r["size"], r["batch"]): r
                     for r in baseline.get("rows", {}).get(operation, [])}
        for row in rows:
            base = base_rows.get((row["size"], row["batch"]))
            if base is None:
                continue
            checked += 1
            point = (f"{operation} size={row['size']} "
                     f"batch={row['batch']}")
            for field in ("cycles", "rocc_total_cycles"):
                if row[field] != base[field]:
                    print(f"ERROR: RoCC {field} changed "
                          f"{base[field]!r} -> {row[field]!r} at {point} "
                          "(must be bit-identical to the committed "
                          "baseline)")
                    status = 1
    if not checked:
        print("WARNING: baseline shares no cells with this run; "
              "nothing gated")
    elif status == 0:
        print(f"regression check: {checked} RoCC cells bit-identical "
              "to baseline")
    base_wall = baseline.get("wall_seconds")
    if (baseline.get("smoke") == args.smoke
            and isinstance(base_wall, (int, float)) and base_wall > 0):
        bound = base_wall * (1.0 + args.regression_threshold)
        if elapsed > bound:
            print(f"ERROR: transport sweep took {elapsed:.2f} s, more "
                  f"than {args.regression_threshold:.0%} over the "
                  f"baseline {base_wall:.2f} s")
            status = 1
        else:
            print(f"regression check: {elapsed:.2f} s within "
                  f"{args.regression_threshold:.0%} of baseline "
                  f"{base_wall:.2f} s")
    return status


def _codegen_workloads(micro_batch: int, hyper_batch: int) -> list:
    from repro.bench.microbench import (
        alloc_bench_names,
        build_microbench,
        nonalloc_bench_names,
    )
    from repro.hyperprotobench import build_hyperprotobench
    workloads = [build_microbench(name, batch=micro_batch)
                 for name in nonalloc_bench_names() + alloc_bench_names()]
    workloads.append(build_hyperprotobench("bench0", seed=0,
                                           batch=hyper_batch))
    return workloads


def _time_tier(workloads, operation: str, fast_path: str,
               repeat: int) -> float:
    """Accelerator-only host seconds for one tier over all workloads.

    Times per-message driver calls (no batch-cycle cache on this path)
    so the figure isolates the execution tier, not the software CPU
    models or memo caches.  Best-of-``repeat`` after a warm-up pass per
    workload; kernel compilation lands in the warm-up.
    """
    total = 0.0
    for workload in workloads:
        accel = driver.ProtoAccelerator(fast_path=fast_path)
        accel.register_types([workload.descriptor])
        buffers = workload.wire_buffers()
        if operation == "deserialize":
            def body():
                for buffer in buffers:
                    accel.deserialize(workload.descriptor, buffer,
                                      auto_renew_arena=True)
        else:
            addresses = [accel.load_object(m) for m in workload.messages]

            def body():
                for addr in addresses:
                    accel.serialize(workload.descriptor, addr)
        body()
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            body()
            best = min(best, time.perf_counter() - start)
        total += best
    return total


def run_codegen_bench(args: argparse.Namespace) -> int:
    """The --codegen mode: tier-vs-tier wall-clock -> BENCH_codegen.json."""
    from repro.accel.perf import render_codegen_line
    from repro.bench.microbench import time_codegen_microbench
    from repro.bench.report import codegen_speedup_table

    micro_batch, hyper_batch = (8, 2) if args.smoke else (32, 10)
    repeat = 2 if args.smoke else 3
    workloads = _codegen_workloads(micro_batch, hyper_batch)
    print(f"codegen bench: {len(workloads)} workloads "
          f"(micro batch {micro_batch}, hyper batch {hyper_batch}, "
          f"best of {repeat})")

    sections = {}
    for operation in ("deserialize", "serialize"):
        interp_s = _time_tier(workloads, operation, "interp", repeat)
        codegen_s = _time_tier(workloads, operation, "codegen", repeat)
        speedup = interp_s / codegen_s if codegen_s else float("inf")
        sections[operation] = {
            "interp_seconds": interp_s,
            "codegen_seconds": codegen_s,
            "speedup": speedup,
        }
        print(f"{operation}: interp {interp_s:.3f} s, "
              f"codegen {codegen_s:.3f} s -> {speedup:.2f}x")

    micro_rows = time_codegen_microbench(
        batch=micro_batch, repeat=repeat)
    print(codegen_speedup_table(micro_rows))
    print(render_codegen_line())

    output = args.output
    if output == REPO / "BENCH_harness.json":
        output = REPO / "BENCH_codegen.json"
    payload = {
        "smoke": args.smoke,
        "micro_batch": micro_batch,
        "hyper_batch": hyper_batch,
        "repeat": repeat,
        "workloads": [w.name for w in workloads],
        "deserialize": sections["deserialize"],
        "serialize": sections["serialize"],
        "microbench": micro_rows,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    print(f"-> {output}")

    deser_speedup = sections["deserialize"]["speedup"]
    if deser_speedup < 2.0:
        message = (f"codegen deserialize speedup {deser_speedup:.2f}x "
                   "below the 2x acceptance floor")
        if args.smoke:
            # Smoke batches are noise-dominated on busy CI runners; the
            # committed full-size BENCH_codegen.json enforces the floor.
            print(f"WARNING: {message} (smoke run, not failing)")
        else:
            print(f"ERROR: {message}")
            return 1
    return 0


def run_batch_bench(args: argparse.Namespace) -> int:
    """The --batch mode: vectorized-batch-tier benchmark over the
    regular micro grid -> BENCH_batch.json.

    Times whole-batch driver calls on the interp and batch tiers,
    enforces the acceptance floors (geomean >=10x deserialize, >=4x
    serialize -- warnings only on --smoke), and with --check-regression
    gates the per-operation geomean speedups against the committed
    baseline.
    """
    from repro.bench.microbench import time_batch_microbench
    from repro.bench.report import batch_speedup_table, geomean
    from repro.proto import batchwire

    if not batchwire.numpy_available():
        print("WARNING: numpy unavailable; the batch tier cannot "
              "vectorize -- skipping the batch benchmark")
        return 0
    micro_batch = 8 if args.smoke else 64
    repeat = 2 if args.smoke else 3
    print(f"batch bench: regular micro grid, batch {micro_batch}, "
          f"best of {repeat}")
    rows = time_batch_microbench(batch=micro_batch, repeat=repeat)
    print(batch_speedup_table(rows))

    speedups = {
        operation: geomean(row["speedup"] for row in rows
                           if row["operation"] == operation)
        for operation in ("deserialize", "serialize")
    }
    output = args.output
    if output == REPO / "BENCH_harness.json":
        output = REPO / "BENCH_batch.json"
    payload = {
        "smoke": args.smoke,
        "micro_batch": micro_batch,
        "repeat": repeat,
        "deserialize_speedup": speedups["deserialize"],
        "serialize_speedup": speedups["serialize"],
        "rows": rows,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    print(f"geomean: deserialize {speedups['deserialize']:.2f}x, "
          f"serialize {speedups['serialize']:.2f}x -> {output}")

    status = 0
    for operation, floor in (("deserialize", 10.0), ("serialize", 4.0)):
        if speedups[operation] < floor:
            message = (f"batch {operation} speedup "
                       f"{speedups[operation]:.2f}x below the "
                       f"{floor:.0f}x acceptance floor")
            if args.smoke:
                # Smoke batches are noise-dominated on busy CI runners;
                # the committed full-size baseline enforces the floor.
                print(f"WARNING: {message} (smoke run, not failing)")
            else:
                print(f"ERROR: {message}")
                status = 1
    if args.check_regression:
        baseline_path = args.baseline
        if baseline_path == REPO / "BENCH_harness.json":
            baseline_path = REPO / "BENCH_batch.json"
        status = max(status,
                     _check_batch_regression(args, baseline_path, speedups))
    return status


def _check_batch_regression(args: argparse.Namespace, baseline_path: Path,
                            speedups: dict) -> int:
    """Fail when a geomean speedup drops >threshold below the baseline."""
    try:
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        print(f"WARNING: batch baseline {baseline_path} missing or "
              "unreadable; skipping regression check")
        return 0
    if baseline.get("smoke") != args.smoke:
        print(f"WARNING: baseline recorded with smoke="
              f"{baseline.get('smoke')} but this run used "
              f"smoke={args.smoke}; skipping regression check")
        return 0
    status = 0
    for operation in ("deserialize", "serialize"):
        base = baseline.get(f"{operation}_speedup")
        if not isinstance(base, (int, float)) or base <= 0:
            print(f"WARNING: baseline has no usable {operation}_speedup; "
                  "skipping")
            continue
        floor = base * (1.0 - args.regression_threshold)
        if speedups[operation] < floor:
            print(f"ERROR: batch {operation} speedup "
                  f"{speedups[operation]:.2f}x regressed more than "
                  f"{args.regression_threshold:.0%} below the baseline "
                  f"{base:.2f}x")
            status = 1
        else:
            print(f"regression check: {operation} {speedups[operation]:.2f}x "
                  f"within {args.regression_threshold:.0%} of baseline "
                  f"{base:.2f}x")
    return status


def check_regression(args: argparse.Namespace, cached_seconds: float,
                     baseline: dict | None) -> int:
    """Fail on a >threshold wall-clock regression vs the committed run."""
    if baseline is None:
        print(f"WARNING: regression baseline {args.baseline} missing or "
              "unreadable; skipping check")
        return 0
    if (baseline.get("smoke") != args.smoke
            or baseline.get("jobs") != args.jobs):
        print("WARNING: baseline recorded with smoke="
              f"{baseline.get('smoke')}, jobs={baseline.get('jobs')} but "
              f"this run used smoke={args.smoke}, jobs={args.jobs}; "
              "skipping regression check")
        return 0
    base = baseline.get("cached_seconds")
    if not isinstance(base, (int, float)) or base <= 0:
        print("WARNING: baseline has no usable cached_seconds; skipping")
        return 0
    bound = base * (1.0 + args.regression_threshold)
    if cached_seconds > bound:
        print(f"ERROR: cached run took {cached_seconds:.2f} s, more than "
              f"{args.regression_threshold:.0%} over the baseline "
              f"{base:.2f} s")
        return 1
    print(f"regression check: {cached_seconds:.2f} s within "
          f"{args.regression_threshold:.0%} of baseline {base:.2f} s")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the optimised run; "
                             "with --fleet, runs each sweep point "
                             "host-parallel (one worker per shard)")
    parser.add_argument("--smoke", action="store_true",
                        help="small batches (CI smoke test)")
    parser.add_argument("--output", type=Path,
                        default=REPO / "BENCH_harness.json")
    parser.add_argument("--fault-rate", type=float, default=0.0,
                        help="per-message fault-injection probability for "
                             "the accelerated runs (default 0)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="fault-injection RNG seed")
    parser.add_argument("--serve", action="store_true",
                        help="run the resilient-serving offered-load sweep "
                             "instead (writes BENCH_serving.json)")
    parser.add_argument("--codegen", action="store_true",
                        help="run the codegen-vs-interpreter tier benchmark "
                             "instead (writes BENCH_codegen.json)")
    parser.add_argument("--batch", action="store_true",
                        help="run the vectorized-batch-tier benchmark on "
                             "the regular micro grid instead (writes "
                             "BENCH_batch.json)")
    parser.add_argument("--fleet", action="store_true",
                        help="run the sharded-fabric fleet sweep instead "
                             "(writes BENCH_fleet.json)")
    parser.add_argument("--transport", action="store_true",
                        help="run the RoCC-vs-PCIe attach-point sweep "
                             "instead (writes BENCH_transport.json)")
    parser.add_argument("--resize", action="store_true",
                        help="with --fleet: also replay each load point "
                             "across an online 2 -> 3 shard resize and "
                             "gate the zero-drop / bit-identity "
                             "invariants")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail if the cached run regresses more than "
                             "the threshold vs the committed baseline")
    parser.add_argument("--baseline", type=Path,
                        default=REPO / "BENCH_harness.json",
                        help="baseline JSON for --check-regression")
    parser.add_argument("--regression-threshold", type=float, default=0.15,
                        help="allowed fractional wall-clock regression "
                             "(default 0.15)")
    args = parser.parse_args(argv)

    if args.serve:
        return run_serving_bench(args)
    if args.fleet:
        return run_fleet_bench(args)
    if args.transport:
        return run_transport_bench(args)
    if args.codegen:
        return run_codegen_bench(args)
    if args.batch:
        return run_batch_bench(args)

    baseline = None
    if args.check_regression:
        # Read before the run: --output may overwrite the baseline file.
        try:
            baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            baseline = None

    plan = (FaultPlan(seed=args.fault_seed, rate=args.fault_rate)
            if args.fault_rate > 0 else None)
    micro_batch, hyper_batch = (8, 2) if args.smoke else (32, 10)
    specs = subset_specs(micro_batch, hyper_batch)
    print(f"subset: {len(specs)} benchmark runs "
          f"(micro batch {micro_batch}, hyper batch {hyper_batch}"
          + (f", fault rate {args.fault_rate}" if plan else "") + ")")

    cache_dir = Path(tempfile.mkdtemp(prefix="bench-speed-cache-"))
    try:
        serial_s, serial_results = timed_run(specs, jobs=1, caches=False,
                                             cache_dir=None, faults=plan)
        print(f"serial uncached: {serial_s:.2f} s")
        fast_s, fast_results = timed_run(specs, jobs=args.jobs, caches=True,
                                         cache_dir=cache_dir, faults=plan)
        print(f"cached (jobs={args.jobs}): {fast_s:.2f} s")
        if args.jobs > 1:
            # Memo-cache counters live in the worker processes; the
            # parent's are empty and would misreport as 0%.
            rates = None
            print("memo caches: per-worker (hit rates not aggregated "
                  "across processes)")
        else:
            rates = hit_rates()
            print(render_memoization_line())
        replay_s, replay_results = timed_run(specs, jobs=args.jobs,
                                             caches=True,
                                             cache_dir=cache_dir,
                                             faults=plan)
        print(f"disk-cache replay: {replay_s:.2f} s")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    for label, results in (("cached", fast_results),
                           ("replay", replay_results)):
        for want, got in zip(serial_results, results):
            if want != got:
                print(f"ERROR: {label} run diverged on {want.workload} "
                      f"{want.operation}")
                return 1
    print("differential check: fast paths match serial-uncached exactly")

    faults_injected = sum(
        r.results["riscv-boom-accel"].faults_injected
        for r in serial_results)
    if plan is not None:
        print(f"faults injected across subset: {faults_injected} "
              "(all recovered; differential check passed)")

    speedup = serial_s / fast_s if fast_s else float("inf")
    payload = {
        "subset": [spec.__dict__ for spec in specs],
        "jobs": args.jobs,
        "smoke": args.smoke,
        "fault_rate": args.fault_rate,
        "faults_injected": faults_injected,
        "serial_uncached_seconds": serial_s,
        "cached_seconds": fast_s,
        "disk_replay_seconds": replay_s,
        "speedup": speedup,
        "replay_speedup": serial_s / replay_s if replay_s else float("inf"),
        "cache_hit_rates": rates,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print(f"speedup: {speedup:.2f}x (replay {payload['replay_speedup']:.2f}x)"
          f" -> {args.output}")
    if args.check_regression:
        return check_regression(args, fast_s, baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
