#!/usr/bin/env bash
# Artifact-evaluation runner (the Appendix A.5 workflow, minus the FPGAs):
# install, run the full test suite, regenerate every paper figure/table,
# and leave the outputs where EXPERIMENTS.md expects them.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== installing (editable) =="
pip install -e . --no-build-isolation 2>/dev/null || python setup.py develop

echo "== test suite =="
python -m pytest tests/ 2>&1 | tee test_output.txt

echo "== figure regeneration =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

echo "== done =="
echo "figure tables: results/   logs: test_output.txt bench_output.txt"
