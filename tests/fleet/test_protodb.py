"""Tests for the synthetic protodb."""

from repro.fleet.protodb import MessageTypeRecord, ProtoDb


class TestProtoDb:
    def test_population_size(self):
        db = ProtoDb(types=500)
        assert len(db) == 500

    def test_deterministic_per_seed(self):
        a = [r.field_number_span for r in ProtoDb(types=50, seed=3)]
        b = [r.field_number_span for r in ProtoDb(types=50, seed=3)]
        assert a == b

    def test_proto2_dominates(self):
        db = ProtoDb(types=2000)
        assert db.proto2_share() > 0.9

    def test_spans_cover_defined_fields(self):
        for record in ProtoDb(types=300):
            assert record.field_number_span >= record.defined_fields
            assert record.min_field_number >= 1

    def test_field_type_mix_counts(self):
        for record in ProtoDb(types=100):
            assert sum(record.field_type_mix.values()) == \
                record.defined_fields

    def test_span_histogram(self):
        db = ProtoDb(types=200)
        histogram = db.span_histogram()
        assert sum(histogram.values()) == 200

    def test_record_accessor(self):
        db = ProtoDb(types=10)
        assert isinstance(db.record(0), MessageTypeRecord)
