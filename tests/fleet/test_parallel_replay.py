"""Parallel/serial equivalence of host-parallel shard execution.

ISSUE 10 acceptance, verbatim: the 1k-message replay at ``jobs=1,2,4``
yields identical per-call cycles, identical :class:`ReshardEvent` logs
(empty on both sides -- the parallel path refuses reshard-armed
fabrics), and the tenant accounting identity
``shed + failed + succeeded + migrated == offered`` per tenant.

Everything here is exact, not statistical: the replay is seeded, the
ring is hash-stable across processes, and the pure-charging serving
discipline makes each call's bill independent of execution order
across shards.
"""

import pytest

from repro.bench.fleet import charging_digest
from repro.serve import (
    REPLAY_SERVE_POLICY,
    FabricPolicy,
    FleetReplaySpec,
    ReshardPolicy,
    TenantPolicy,
    build_fleet_fabric,
    generate_calls,
    replay_through_fabric,
    run_parallel_replay,
    sweep_fleet,
    tenant_signature,
)
from repro.serve.replay import fleet_row, tenant_plan

#: The acceptance replay: 1k messages of the Section 3 fleet mix, wide
#: enough (16 tenants) that all 4 shards carry traffic.
_SPEC = FleetReplaySpec(messages=1_000, interarrival_cycles=2_000.0,
                        tenants=16, workload="fleet")
_POLICY = FabricPolicy(shards=4, serve=REPLAY_SERVE_POLICY)


def _signature(outcomes):
    """The full per-call comparand: charging plus placement."""
    return [(o.status, o.response, o.accel_cycles, o.cpu_cycles,
             o.arrival, o.completed_at, o.shard, o.tenant, o.migrated,
             o.ring_epoch)
            for o in outcomes]


@pytest.fixture(scope="module")
def calls():
    return generate_calls(_SPEC)


@pytest.fixture(scope="module")
def serial(calls):
    fabric = build_fleet_fabric(_POLICY, _SPEC)
    outcomes = replay_through_fabric(fabric, calls)
    return fabric, outcomes


@pytest.fixture(scope="module", params=[1, 2, 4])
def parallel(request, calls):
    return run_parallel_replay(_SPEC, _POLICY, jobs=request.param,
                               calls=calls)


def test_per_call_charging_identical(serial, parallel):
    _, serial_outcomes = serial
    assert _signature(parallel.outcomes) == _signature(serial_outcomes)
    assert (charging_digest(parallel.outcomes)
            == charging_digest(serial_outcomes))


def test_no_route_deviations(parallel):
    # Fault-free replay: every call served on its ring home, so the
    # serial fabric never consulted cross-shard fallback either.
    assert parallel.route_deviations == 0
    assert parallel.fallback_routes == []


def test_reshard_event_logs_identical(serial, parallel):
    fabric, _ = serial
    # A static fabric logs no lifecycle transitions; the parallel path
    # has no reshard machinery at all, so both logs are empty.
    assert fabric.reshard_events == []
    assert all(o.ring_epoch == 0 for o in parallel.outcomes)


def test_tenant_accounting_identity(serial, parallel):
    fabric, _ = serial
    for tenant, _ in tenant_plan(_SPEC):
        stats = parallel.tenant_stats(tenant)
        assert (stats.shed + stats.failed + stats.succeeded
                + stats.migrated == stats.offered)
        serial_stats = fabric.tenant_stats(tenant)
        if stats.offered:
            assert (stats.offered, stats.shed, stats.succeeded,
                    stats.failed, stats.migrated) == (
                serial_stats.offered, serial_stats.shed,
                serial_stats.succeeded, serial_stats.failed,
                serial_stats.migrated)


def test_fleet_aggregates_identical(serial, parallel):
    fabric, serial_outcomes = serial
    want = fleet_row(4, _SPEC, fabric, serial_outcomes)
    got = fleet_row(4, _SPEC, parallel, parallel.outcomes)
    assert got == want


def test_sweep_rows_identical_across_jobs():
    spec = FleetReplaySpec(messages=200, tenants=8, workload="echo")
    serial_rows = sweep_fleet((1, 2), (1_500.0,), spec)
    parallel_rows = sweep_fleet((1, 2), (1_500.0,), spec, jobs=2)
    assert parallel_rows == serial_rows


def test_shed_path_identical_under_tight_budget():
    budget = TenantPolicy(max_inflight=2)
    hot = FleetReplaySpec(messages=400, interarrival_cycles=300.0,
                          tenants=8, workload="fleet")
    hot_calls = generate_calls(hot)
    fabric = build_fleet_fabric(_POLICY, hot, budget)
    serial_outcomes = replay_through_fabric(fabric, hot_calls)
    assert fabric.stats.shed > 0  # the budget actually bites
    result = run_parallel_replay(hot, _POLICY, jobs=2, budget=budget,
                                 calls=hot_calls)
    assert _signature(result.outcomes) == _signature(serial_outcomes)
    assert result.tenant_sheds == {
        t: n for t, n in fabric.tenant_sheds.items() if n}


def test_unmoved_tenant_signatures_match(serial, parallel):
    _, serial_outcomes = serial
    for tenant, _ in tenant_plan(_SPEC):
        assert (tenant_signature(parallel.outcomes, tenant)
                == tenant_signature(serial_outcomes, tenant))


def test_parallel_refuses_reshardable_fabric():
    armed = FabricPolicy(
        shards=2, serve=REPLAY_SERVE_POLICY,
        reshard=ReshardPolicy(auto_evict_after_cycles=1_000.0))
    with pytest.raises(ValueError, match="static fabric"):
        run_parallel_replay(_SPEC, armed, jobs=2)


def test_healths_cover_all_shards(parallel):
    assert len(parallel.healths) == _POLICY.shards
    assert len(parallel.busy_seconds) == _POLICY.shards
