"""Resize-under-load acceptance: the PR 6 fleet replay across a ring
resize (ISSUE 8).

The acceptance criteria, verbatim:

* the 2 -> 3 shard resize under load drops **zero** in-flight calls --
  the per-tenant identity ``shed + expired + faulted + succeeded +
  migrated == offered`` closes for every tenant;
* tenants whose ring home did not move see per-call charging
  **bit-identical** to the no-resize replay of the identical call
  sequence;
* every lifecycle transition appears in the structured
  :class:`ReshardEvent` log with simulated-clock timestamps.
"""

import pytest

from repro.serve import (
    REPLAY_SERVE_POLICY,
    FabricPolicy,
    FleetReplaySpec,
    ResizeEvent,
    accounting_identity_ok,
    build_fleet_fabric,
    generate_calls,
    replay_through_fabric,
    resize_row,
    run_resize_replay,
    tenant_signature,
)

_SPEC = FleetReplaySpec(messages=600, interarrival_cycles=2_500.0,
                        seed=424242, tenants=8, workload="fleet")


@pytest.fixture(scope="module")
def baseline_outcomes():
    """The no-resize replay of the identical call sequence on the
    static 2-shard fabric."""
    fabric = build_fleet_fabric(
        FabricPolicy(shards=2, serve=REPLAY_SERVE_POLICY), _SPEC)
    return replay_through_fabric(fabric, generate_calls(_SPEC))


@pytest.fixture(scope="module")
def grown():
    """2 -> 3 resize mid-replay (one "add" event at call 200)."""
    return run_resize_replay(_SPEC, base_shards=2,
                             events=[ResizeEvent(at_call=200,
                                                 action="add")])


def test_resize_drops_zero_calls(grown):
    assert len(grown.outcomes) == _SPEC.messages
    assert accounting_identity_ok(grown.fabric)
    for account in grown.fabric.registry:
        s = account.stats
        offered = sum(1 for o in grown.outcomes
                      if o.tenant == account.tenant)
        assert s.offered == offered
        assert (s.shed + s.expired + s.faulted + s.succeeded
                + s.migrated == offered)


def test_resize_moves_and_keeps_tenants(grown):
    # The acceptance replay must exercise both sides of the split.
    assert grown.moved_tenants
    assert grown.unmoved_tenants
    final = grown.fabric.routing_table()
    assert all(final[t] == 2 for t in grown.moved_tenants)


def test_unmoved_tenants_bit_identical_to_no_resize(grown,
                                                    baseline_outcomes):
    for tenant in grown.unmoved_tenants:
        assert (tenant_signature(grown.outcomes, tenant)
                == tenant_signature(baseline_outcomes, tenant))


def test_moved_tenants_actually_land_on_the_joiner(grown):
    late = [o for o in grown.outcomes[400:]
            if o.tenant in grown.moved_tenants]
    assert late
    assert all(o.shard == 2 for o in late)


def test_resize_event_log_is_structured(grown):
    events = grown.fabric.reshard_events
    kinds = [e.kind for e in events]
    assert kinds == ["shard_joined", "warmup_complete"]
    joined, warmed = events
    assert joined.shard == warmed.shard == 2
    assert joined.epoch == 1
    assert grown.fabric.ring_epoch == 1
    warmup = grown.fabric.policy.reshard.warmup_cycles
    assert warmed.at >= joined.at + warmup
    # Every outcome after the swap is stamped with the new epoch.
    assert all(o.ring_epoch == 1 for o in grown.outcomes[200:])
    assert all(o.ring_epoch == 0 for o in grown.outcomes[:200])


def test_resize_row_reports_acceptance(grown, baseline_outcomes):
    row = resize_row(_SPEC, grown, baseline_outcomes)
    assert row["base_shards"] == 2
    assert row["final_shards"] == 3
    assert row["offered"] == _SPEC.messages
    assert row["unmoved_bit_identical"] is True
    assert row["accounting_identity_ok"] is True
    assert sorted(row["moved_tenants"] + row["unmoved_tenants"]) \
        == sorted(f"tenant-{i}" for i in range(8))


def test_drain_replay_migrates_without_drops():
    report = run_resize_replay(
        _SPEC, base_shards=3,
        events=[ResizeEvent(at_call=150, action="drain", shard=1)])
    fabric = report.fabric
    assert accounting_identity_ok(fabric)
    assert fabric.stats.migrated > 0
    assert fabric.stats.offered == _SPEC.messages
    # Migrated calls were never charged to the drained shard.
    migrated = [o for o in report.outcomes if o.migrated]
    assert migrated
    assert all(o.shard != 1 for o in migrated)
    kinds = [e.kind for e in fabric.reshard_events]
    assert kinds[0] == "drain_start"
    assert "shard_removed" in kinds
    assert fabric.shards[1].state.value == "removed"
    # Tenants that never lived on the drained shard are untouched by
    # the evict: bit-identical to the static 3-shard replay.
    static = build_fleet_fabric(
        FabricPolicy(shards=3, serve=REPLAY_SERVE_POLICY), _SPEC)
    static_outcomes = replay_through_fabric(static,
                                            generate_calls(_SPEC))
    for tenant in report.unmoved_tenants:
        assert (tenant_signature(report.outcomes, tenant)
                == tenant_signature(static_outcomes, tenant))


def test_resize_event_validation():
    with pytest.raises(ValueError):
        ResizeEvent(at_call=-1, action="add")
    with pytest.raises(ValueError):
        ResizeEvent(at_call=0, action="shrink")
    with pytest.raises(ValueError):
        ResizeEvent(at_call=0, action="drain")
