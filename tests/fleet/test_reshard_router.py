"""Property tests for the resharding half of the router (ISSUE 8).

* **Round trip** -- ``without(s).with_shard(s)`` restores the *exact*
  tenant -> shard mapping: the ring is a pure function of (seed, shard
  set), so an evict followed by a re-add is a true identity.
* **Growth stability** -- adding a shard moves tenants only *onto* the
  new shard, never between surviving shards (the mirror image of the
  removal-stability property in ``tests/serve/test_router.py``).
* **Structured validation** -- the vnode count is a policy knob
  validated at construction with a :class:`FabricConfigError` naming
  the knob, reachable both directly and through the fabric-level
  ``FabricPolicy.vnodes`` override.
* **Probe-ready tiering** -- a fully-quarantined shard whose breaker
  cool-down elapsed ranks as tier 1 (its next offload is the half-open
  probe), which is what closes the double-quarantine fallback hole.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.breaker import BreakerState
from repro.serve.errors import FabricConfigError
from repro.serve.fabric import FabricPolicy
from repro.serve.router import (
    ConsistentHashRouter,
    RouterPolicy,
    ShardView,
    least_loaded_fallback,
    ranked_fallbacks,
)

_TENANTS = st.lists(
    st.text(alphabet="abcdefghij-0123456789", min_size=1, max_size=12),
    min_size=1, max_size=24, unique=True)

_POLICIES = st.builds(
    RouterPolicy,
    vnodes=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**32 - 1))

_SHARD_COUNTS = st.integers(min_value=2, max_value=8)


@given(tenants=_TENANTS, policy=_POLICIES, shards=_SHARD_COUNTS,
       data=st.data())
@settings(max_examples=150)
def test_without_then_with_shard_is_identity(tenants, policy, shards,
                                             data):
    router = ConsistentHashRouter(list(range(shards)), policy)
    before = router.table(tenants)
    victim = data.draw(st.integers(min_value=0, max_value=shards - 1))
    restored = router.without(victim).with_shard(victim)
    assert restored.table(tenants) == before
    assert restored.shard_ids == router.shard_ids


@given(tenants=_TENANTS, policy=_POLICIES, shards=_SHARD_COUNTS)
@settings(max_examples=150)
def test_adding_a_shard_moves_tenants_only_onto_it(tenants, policy,
                                                   shards):
    router = ConsistentHashRouter(list(range(shards)), policy)
    before = router.table(tenants)
    after = router.with_shard(shards).table(tenants)
    for tenant in tenants:
        if after[tenant] != before[tenant]:
            assert after[tenant] == shards


def test_vnodes_must_be_positive():
    with pytest.raises(FabricConfigError) as exc:
        RouterPolicy(vnodes=0)
    assert exc.value.knob == "vnodes"
    assert exc.value.value == 0
    with pytest.raises(FabricConfigError):
        RouterPolicy(vnodes=-3)


def test_fabric_vnodes_override():
    policy = FabricPolicy(shards=2, vnodes=7)
    assert policy.router.vnodes == 7
    with pytest.raises(FabricConfigError) as exc:
        FabricPolicy(shards=2, vnodes=0)
    assert exc.value.knob == "vnodes"
    # FabricConfigError stays a ValueError for pre-existing call sites.
    with pytest.raises(ValueError):
        FabricPolicy(shards=0)


@given(vnodes=st.integers(min_value=1, max_value=32),
       tenants=_TENANTS, shards=_SHARD_COUNTS)
@settings(max_examples=50)
def test_fabric_vnodes_override_routes_like_router_policy(vnodes,
                                                          tenants,
                                                          shards):
    override = FabricPolicy(shards=shards, vnodes=vnodes)
    direct = ConsistentHashRouter(
        list(range(shards)), RouterPolicy(vnodes=vnodes))
    assert ConsistentHashRouter(
        list(range(shards)), override.router).table(tenants) \
        == direct.table(tenants)


def _view(index, states, load=0.0, probe_ready=()):
    return ShardView(index=index, breaker_states=tuple(states),
                     load=load, probe_ready=tuple(probe_ready))


def test_probe_ready_open_shard_ranks_as_probing():
    quarantined = _view(0, [BreakerState.OPEN], probe_ready=[False])
    probe_ready = _view(1, [BreakerState.OPEN], probe_ready=[True])
    assert quarantined.effective_tier() == 2
    assert not quarantined.routable
    assert probe_ready.effective_tier() == 1
    assert probe_ready.routable
    assert ranked_fallbacks([quarantined, probe_ready]) == [1, 0]


def test_empty_probe_ready_degrades_to_static_tier():
    view = _view(0, [BreakerState.OPEN])
    assert view.effective_tier() == view.health_tier() == 2


_TILES = st.lists(
    st.tuples(st.sampled_from([BreakerState.CLOSED, BreakerState.OPEN,
                               BreakerState.HALF_OPEN]),
              st.booleans()),
    min_size=1, max_size=4)


@given(views=st.lists(
    st.tuples(_TILES,
              st.floats(min_value=0.0, max_value=1e6,
                        allow_nan=False)),
    min_size=1, max_size=8))
@settings(max_examples=100)
def test_ranked_fallbacks_head_matches_least_loaded(views):
    shard_views = []
    for i, (tiles, load) in enumerate(views):
        states = [s for s, _ in tiles]
        probe = tuple(p for _, p in tiles)
        shard_views.append(_view(i, states, load, probe))
    ranked = ranked_fallbacks(shard_views)
    assert sorted(ranked) == list(range(len(shard_views)))
    assert least_loaded_fallback(shard_views) == ranked[0]
    tiers = [next(v for v in shard_views if v.index == i)
             .effective_tier() for i in ranked]
    assert tiers == sorted(tiers)
