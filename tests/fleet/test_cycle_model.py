"""Tests for the 24-slice cycle attribution model (Figures 5 and 6)."""

import pytest

from repro.fleet.cycle_model import CycleAttributionModel, build_slices


@pytest.fixture(scope="module")
def model():
    return CycleAttributionModel()


class TestSlices:
    def test_exactly_24_slices(self):
        slices = build_slices()
        assert len(slices) == 24  # 10 bytes + 10 varint + 4 fixed-width

    def test_byte_shares_sum_to_one(self):
        assert sum(s.byte_share for s in build_slices()) == \
            pytest.approx(1.0)

    def test_slice_kinds(self):
        kinds = {s.kind for s in build_slices()}
        assert kinds == {"bytes-like", "varint", "double-like",
                         "float-like", "fixed32-like", "fixed64-like"}

    def test_messages_buildable(self):
        for slice_ in build_slices():
            message = slice_.build_message()
            assert message.serialize()


class TestTimeShares(object):
    def test_normalised(self, model):
        for operation in ("deserialize", "serialize"):
            shares = model.time_shares(operation)
            assert sum(shares.values()) == pytest.approx(1.0)
            assert len(shares) == 24

    def test_no_silver_bullet(self, model):
        # Section 3.6.4's first insight: no single slice dominates.
        shares = model.time_shares("deserialize")
        assert max(shares.values()) < 0.35

    def test_minority_of_time_above_1_gbyte_per_sec(self, model):
        # Paper: only ~14% of deserialization time runs above 1 GB/s
        # (our model measures somewhat higher but the qualitative claim
        # -- a small minority -- holds).
        assert model.share_of_time_above(8.0, "deserialize") < 0.35

    def test_large_bytes_vastly_faster_per_byte(self, model):
        # Paper: 100-500x faster per byte for large bytes-like fields.
        ratio = model.per_byte_speed_ratio("deserialize")
        assert 100 <= ratio <= 500

    def test_invalid_operation_rejected(self, model):
        with pytest.raises(ValueError):
            model.time_shares("transmogrify")

    def test_throughput_increases_with_bytes_size(self, model):
        bytes_slices = [s for s in model.slices if s.kind == "bytes-like"]
        small = model.throughput_gbps(bytes_slices[0], "deserialize")
        large = model.throughput_gbps(bytes_slices[-1], "deserialize")
        assert large > small * 20
