"""Shard lifecycle unit tests: drain barrier, warm-up admission, the
structured event log, auto-evict, and the double-quarantine fallback
regression (ISSUE 8).
"""

import pytest

from repro.proto import parse_schema
from repro.serve import (
    FabricConfigError,
    FabricPolicy,
    ReshardPolicy,
    ServePolicy,
    ServingFabric,
    ShardState,
)
from repro.serve.breaker import BreakerState
from repro.serve.workload import SERVING_SCHEMA

_TENANTS = tuple(f"tenant-{i}" for i in range(8))


def _echo_handler(schema):
    def repeat(request):
        response = schema["EchoResponse"].new_message()
        for _ in range(request["repeats"]):
            response["texts"].append(request["text"])
        response["cookie"] = request["cookie"]
        return response
    return repeat


def _request_bytes(schema, cookie: int = 0) -> bytes:
    request = schema["EchoRequest"].new_message()
    request["text"] = "reshard probe"
    request["repeats"] = 2
    request["cookie"] = cookie
    return request.serialize()


def _build_fabric(shards: int = 2,
                  reshard: ReshardPolicy | None = None,
                  tenants=_TENANTS) -> ServingFabric:
    policy = FabricPolicy(
        shards=shards,
        serve=ServePolicy(tiles=2, stateless_tiles=True),
        reshard=reshard or ReshardPolicy())
    fabric = ServingFabric(policy)
    for tenant in tenants:
        schema = parse_schema(SERVING_SCHEMA)
        fabric.add_tenant(tenant, schema.service("Echo"))
        fabric.register(tenant, "Repeat", _echo_handler(schema))
    return fabric


def _trip_all_tiles(shard, at: float) -> None:
    """Force every tile breaker OPEN as if it tripped at cycle ``at``."""
    for tile in shard.server.tiles:
        tile.breaker.state = BreakerState.OPEN
        tile.breaker.opened_at = at


_SCHEMA = parse_schema(SERVING_SCHEMA)


# -- policy validation -----------------------------------------------------------


def test_reshard_policy_validation():
    with pytest.raises(FabricConfigError) as exc:
        ReshardPolicy(drain_cycles=-1.0)
    assert exc.value.knob == "drain_cycles"
    with pytest.raises(FabricConfigError):
        ReshardPolicy(warmup_initial_inflight=0)
    with pytest.raises(FabricConfigError):
        ReshardPolicy(warmup_target_inflight=1,
                      warmup_initial_inflight=4)
    with pytest.raises(FabricConfigError):
        ReshardPolicy(auto_evict_after_cycles=-5.0)


# -- drain ----------------------------------------------------------------------


def test_drain_swaps_ring_and_walks_the_lifecycle():
    fabric = _build_fabric(shards=2,
                           reshard=ReshardPolicy(drain_cycles=10_000.0))
    victim = fabric.shards[1]
    fabric.controller.drain(1, now=100.0)

    assert victim.state is ShardState.DRAINING
    assert fabric.ring_epoch == 1
    assert fabric.router.shard_ids == (0,)
    assert victim.server.draining

    # New arrivals never land on the draining shard.
    for i, tenant in enumerate(_TENANTS):
        outcome = fabric.call(tenant, "Repeat",
                              _request_bytes(_SCHEMA, i), at=200.0 + i)
        assert outcome.shard == 0
        assert outcome.ring_epoch == 1

    # The drain finalizes once the window elapsed and pending hit zero.
    fabric.controller.tick(now=9_000.0)
    assert victim.state is ShardState.DRAINING
    fabric.controller.tick(now=100.0 + 10_000.0 + 1.0)
    assert victim.state is ShardState.REMOVED

    kinds = [e.kind for e in fabric.reshard_events]
    assert kinds == ["drain_start", "shard_removed"]
    start, removed = fabric.reshard_events
    assert start.shard == removed.shard == 1
    assert start.epoch == removed.epoch == 1
    assert removed.at >= start.at + 10_000.0


def test_drain_barrier_refuses_new_work_with_structured_error():
    fabric = _build_fabric(shards=2)
    fabric.controller.drain(1, now=0.0)
    # Bypassing the router hits the barrier: a zero-cycle structured
    # refusal, never a silent drop.
    outcome = fabric.shards[1].server.call(
        "Repeat", _request_bytes(_SCHEMA), at=50.0, tenant=_TENANTS[0])
    assert outcome.status == "shed"
    assert outcome.error is not None
    assert outcome.error.site == "serve.drain"
    assert outcome.accel_cycles == 0.0


def test_cannot_drain_last_routable_shard():
    fabric = _build_fabric(shards=2)
    fabric.controller.drain(1, now=0.0)
    with pytest.raises(ValueError, match="last routable"):
        fabric.controller.drain(0, now=10.0)
    with pytest.raises(ValueError, match="state"):
        fabric.controller.drain(1, now=10.0)  # already draining
    with pytest.raises(ValueError, match="no shard"):
        fabric.controller.drain(9, now=10.0)


def test_no_call_is_both_migrated_and_charged_to_the_old_shard():
    """The drain-barrier invariant: a migrated call's outcome is never
    charged against the draining shard's ledger."""
    fabric = _build_fabric(
        shards=2, reshard=ReshardPolicy(drain_cycles=500_000.0))
    drained = 1
    victims = [t for t in _TENANTS if fabric.route(t) == drained]
    assert victims, "expected at least one tenant homed on shard 1"
    fabric.controller.drain(drained, now=0.0)

    outcomes = []
    for i in range(64):
        tenant = _TENANTS[i % len(_TENANTS)]
        outcomes.append(fabric.call(tenant, "Repeat",
                                    _request_bytes(_SCHEMA, i),
                                    at=100.0 + 2_000.0 * i))

    migrated = [o for o in outcomes if o.migrated]
    assert migrated, "expected migrated calls during the drain window"
    assert {o.tenant for o in migrated} <= set(victims)
    for outcome in migrated:
        assert outcome.shard != drained
    # The draining shard's own ledger saw none of the fabric's calls.
    assert fabric.shards[drained].server.stats.offered == 0
    # Migrated successes land in the migrated bucket, not succeeded,
    # and the per-tenant identity still closes.
    for tenant in victims:
        stats = fabric.tenant_stats(tenant)
        offered = sum(1 for o in outcomes if o.tenant == tenant)
        assert stats.migrated == sum(
            1 for o in migrated if o.tenant == tenant and o.ok)
        assert (stats.shed + stats.expired + stats.faulted
                + stats.succeeded + stats.migrated == offered)


# -- join / warm-up --------------------------------------------------------------


def test_add_shard_warms_up_then_activates():
    fabric = _build_fabric(
        shards=2, reshard=ReshardPolicy(warmup_cycles=10_000.0,
                                        warmup_initial_inflight=1,
                                        warmup_target_inflight=9))
    index = fabric.controller.add_shard(now=1_000.0)
    joiner = fabric.shards[index]
    assert index == 2
    assert joiner.state is ShardState.JOINING
    assert fabric.ring_epoch == 1
    assert fabric.router.shard_ids == (0, 1, 2)

    # The admission budget ramps linearly over the warm-up window.
    budget = fabric.controller.warm_budget
    assert budget(joiner, 1_000.0) == 1
    assert budget(joiner, 6_000.0) == 5
    assert budget(joiner, 11_000.0) == 9
    assert budget(joiner, 50_000.0) == 9

    fabric.controller.tick(now=11_500.0)
    assert joiner.state is ShardState.ACTIVE
    kinds = [e.kind for e in fabric.reshard_events]
    assert kinds == ["shard_joined", "warmup_complete"]


def test_joiner_serves_remapped_tenants():
    fabric = _build_fabric(shards=2)
    before = fabric.routing_table()
    index = fabric.controller.add_shard(now=0.0)
    after = fabric.routing_table()
    remapped = [t for t in _TENANTS if after[t] != before[t]]
    assert remapped, "expected the new shard to take some tenants"
    assert all(after[t] == index for t in remapped)
    for i, tenant in enumerate(remapped):
        outcome = fabric.call(tenant, "Repeat",
                              _request_bytes(_SCHEMA, i),
                              at=100_000.0 + 5_000.0 * i)
        assert outcome.ok
        assert outcome.shard == index


def test_warmup_overflow_deflects_to_fallback():
    fabric = _build_fabric(
        shards=2, reshard=ReshardPolicy(warmup_cycles=1e9,
                                        warmup_initial_inflight=1,
                                        warmup_target_inflight=1))
    index = fabric.controller.add_shard(now=0.0)
    remapped = [t for t in _TENANTS
                if fabric.route(t) == index]
    assert remapped
    tenant = remapped[0]
    # Burst well past the budget of 1 at a single arrival cycle: the
    # joiner takes one call, the rest deflect to a warm shard.
    outcomes = [fabric.call(tenant, "Repeat", _request_bytes(_SCHEMA, i),
                            at=10.0)
                for i in range(4)]
    assert all(o.ok for o in outcomes)
    shards_used = [o.shard for o in outcomes]
    assert shards_used.count(index) == 1
    assert fabric.warmup_deflections == 3
    assert all(s != index for s in shards_used[1:])


def test_zero_warmup_join_is_immediately_active():
    fabric = _build_fabric(
        shards=2, reshard=ReshardPolicy(warmup_cycles=0.0))
    index = fabric.controller.add_shard(now=5.0)
    assert fabric.shards[index].state is ShardState.ACTIVE
    assert [e.kind for e in fabric.reshard_events] == ["shard_joined"]


# -- double-quarantine fallback regression ---------------------------------------


def test_probe_ready_shard_is_retried_not_failed():
    """Regression for the double-quarantine hole: primary freshly
    quarantined (cool-down not elapsed) AND the fallback statically
    quarantined -- but the fallback's cool-down *has* elapsed, so its
    next offload is a half-open probe.  The old one-shot fallback gave
    up and returned the primary (the call then failed or fell back to
    the host); the ranked walk now routes to the probe-ready shard."""
    fabric = _build_fabric(shards=2)
    now = 200_000.0
    tenant = _TENANTS[0]
    primary = fabric.shards[fabric.route(tenant)]
    other = fabric.shards[1 - primary.index]
    # Primary: tripped 1k cycles ago -- still inside the 50k cool-down.
    _trip_all_tiles(primary, at=now - 1_000.0)
    # Fallback: tripped 100k cycles ago -- probe-ready.
    _trip_all_tiles(other, at=now - 100_000.0)

    assert primary.view(now).effective_tier() == 2
    assert other.view(now).effective_tier() == 1

    outcome = fabric.call(tenant, "Repeat", _request_bytes(_SCHEMA),
                          at=now)
    assert outcome.shard == other.index
    assert outcome.ok
    assert not outcome.host_fallback


def test_fully_quarantined_fleet_still_serves_via_primary():
    """When *no* shard is probe-ready the walk returns the primary and
    its own machinery (host fallback) decides -- no call is dropped."""
    fabric = _build_fabric(shards=2)
    now = 10_000.0
    tenant = _TENANTS[0]
    for shard in fabric.shards:
        _trip_all_tiles(shard, at=now - 1.0)
    outcome = fabric.call(tenant, "Repeat", _request_bytes(_SCHEMA),
                          at=now)
    assert outcome.shard == fabric.route(tenant)
    assert outcome.status in ("ok", "failed")


# -- auto-evict ------------------------------------------------------------------


def test_persistently_quarantined_shard_is_auto_evicted():
    fabric = _build_fabric(
        shards=2,
        reshard=ReshardPolicy(auto_evict_after_cycles=30_000.0,
                              drain_cycles=5_000.0))
    sick = fabric.shards[1]
    _trip_all_tiles(sick, at=0.0)

    # First tick starts the quarantine clock; before the threshold the
    # shard is still in the fleet.
    fabric.controller.tick(now=100.0)
    fabric.controller.tick(now=20_000.0)
    assert sick.state is ShardState.ACTIVE

    # Keep the breakers freshly tripped so no probe window opens while
    # the quarantine clock runs past the threshold.
    _trip_all_tiles(sick, at=25_000.0)
    fabric.controller.tick(now=31_000.0)
    assert sick.state is ShardState.DRAINING
    assert fabric.ring_epoch == 1
    kinds = [e.kind for e in fabric.reshard_events]
    assert kinds == ["auto_evict", "drain_start"]

    fabric.controller.tick(now=80_000.0)
    assert sick.state is ShardState.REMOVED


def test_healthy_fleet_never_auto_evicts():
    fabric = _build_fabric(
        shards=2, reshard=ReshardPolicy(auto_evict_after_cycles=1_000.0))
    for now in (0.0, 5_000.0, 50_000.0, 500_000.0):
        fabric.controller.tick(now)
    assert all(s.state is ShardState.ACTIVE for s in fabric.shards)
    assert fabric.reshard_events == []
