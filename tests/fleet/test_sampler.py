"""Tests for the protobufz-style sampler and its analysis pipeline."""

import pytest

from repro.fleet.sampler import FleetSampler, SampleAnalysis


@pytest.fixture(scope="module")
def analysis():
    return SampleAnalysis(FleetSampler(seed=5).sample_many(15000))


class TestSampling:
    def test_deterministic_per_seed(self):
        a = FleetSampler(seed=1).sample_many(50)
        b = FleetSampler(seed=1).sample_many(50)
        assert [s.encoded_size for s in a] == [s.encoded_size for s in b]

    def test_fields_fit_budget_roughly(self):
        for sample in FleetSampler(seed=2).sample_many(200):
            # Field value bytes can only marginally exceed the message
            # size (final field truncation is budget-capped).
            assert sample.field_bytes <= sample.encoded_size + 16

    def test_density_in_unit_interval(self):
        for sample in FleetSampler(seed=3).sample_many(200):
            assert 0.0 <= sample.density <= 1.0

    def test_depth_at_least_one(self):
        for sample in FleetSampler(seed=4).sample_many(200):
            assert 1 <= sample.max_depth < 100


class TestFigureReconstruction:
    """Monte Carlo re-derivation converges back to the inputs."""

    def test_figure3_histogram(self, analysis):
        histogram = analysis.message_size_histogram()
        assert histogram["0 - 8"] == pytest.approx(0.24, abs=0.03)
        small = (histogram["0 - 8"] + histogram["9 - 16"]
                 + histogram["17 - 32"])
        assert small == pytest.approx(0.56, abs=0.04)

    def test_figure4a_varint_like_majority(self, analysis):
        assert analysis.varint_like_count_share() > 0.5

    def test_figure4b_bytes_like_dominates(self, analysis):
        assert analysis.bytes_like_byte_share() > 0.80

    def test_figure4c_small_fields_dominate_count(self, analysis):
        histogram = analysis.bytes_field_size_histogram()
        assert histogram["0 - 8"] > 0.3

    def test_figure7_density(self, analysis):
        assert analysis.density_share_above(1 / 64) == \
            pytest.approx(0.92, abs=0.03)

    def test_depth_coverage(self, analysis):
        assert analysis.byte_share_at_depth(12) >= 0.99
        assert analysis.byte_share_at_depth(25) >= \
            analysis.byte_share_at_depth(12)

    def test_empty_analysis_rejected(self):
        with pytest.raises(ValueError):
            SampleAnalysis([])
