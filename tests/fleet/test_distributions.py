"""Tests pinning the fleet distributions to the paper's anchors."""

import pytest

from repro.fleet.distributions import (
    BYTES_FIELD_SIZE_BUCKETS,
    DENSITY_HISTOGRAM,
    DEPTH_CDF_POINTS,
    FIELD_BYTES_SHARES,
    FIELD_COUNT_SHARES,
    FLEET_OP_SHARES,
    MESSAGE_SIZE_BUCKETS,
    PROTO2_BYTES_SHARE,
    PROTOBUF_FLEET_CYCLE_SHARE,
    CPP_SHARE_OF_PROTOBUF,
    RPC_SHARE_OF_DESER,
    RPC_SHARE_OF_SER,
    VARINT_SIZE_SHARES,
    SizeBucket,
    bucket_byte_volumes,
    cumulative_message_size_share,
    density_share_above,
    depth_coverage,
    validate_distribution,
)


class TestNormalisation:
    @pytest.mark.parametrize("dist", [
        FLEET_OP_SHARES, FIELD_COUNT_SHARES, FIELD_BYTES_SHARES,
        VARINT_SIZE_SHARES, DENSITY_HISTOGRAM,
        MESSAGE_SIZE_BUCKETS, BYTES_FIELD_SIZE_BUCKETS,
    ])
    def test_sums_to_one(self, dist):
        validate_distribution(dist)

    def test_validator_rejects_bad(self):
        with pytest.raises(ValueError):
            validate_distribution({"a": 0.5, "b": 0.4})


class TestSection32Scalars:
    def test_protobuf_share(self):
        assert PROTOBUF_FLEET_CYCLE_SHARE == pytest.approx(0.096)
        assert CPP_SHARE_OF_PROTOBUF == pytest.approx(0.88)

    def test_deser_fleet_share_is_2_2_percent(self):
        deser = (PROTOBUF_FLEET_CYCLE_SHARE * CPP_SHARE_OF_PROTOBUF
                 * FLEET_OP_SHARES["deserialize"])
        assert deser == pytest.approx(0.022, rel=0.02)

    def test_ser_fleet_share_is_1_25_percent(self):
        ser = (PROTOBUF_FLEET_CYCLE_SHARE * CPP_SHARE_OF_PROTOBUF
               * (FLEET_OP_SHARES["serialize"]
                  + FLEET_OP_SHARES["byte_size"]))
        assert ser == pytest.approx(0.0125, rel=0.02)

    def test_footnote4_serialize_and_bytesize(self):
        assert FLEET_OP_SHARES["serialize"] == pytest.approx(0.088)
        assert FLEET_OP_SHARES["byte_size"] == pytest.approx(0.060)

    def test_section7_future_ops(self):
        merge_copy_clear = (FLEET_OP_SHARES["merge"]
                            + FLEET_OP_SHARES["copy"]
                            + FLEET_OP_SHARES["clear"])
        assert merge_copy_clear == pytest.approx(0.171, abs=0.001)
        assert FLEET_OP_SHARES["constructor"] == pytest.approx(0.064)
        assert FLEET_OP_SHARES["destructor"] == pytest.approx(0.139)


class TestFigure3:
    def test_cdf_anchors(self):
        assert cumulative_message_size_share(8) == pytest.approx(0.24)
        assert cumulative_message_size_share(32) == pytest.approx(0.56)
        assert cumulative_message_size_share(512) == pytest.approx(0.93)

    def test_top_bucket_tiny_by_count(self):
        assert MESSAGE_SIZE_BUCKETS[-1].share == pytest.approx(0.0008)

    def test_top_bucket_dominates_by_bytes(self):
        # Section 3.5: [32769, inf) holds at least 13.7x the bytes of
        # [0, 8] despite holding 0.08% of messages.
        volumes = bucket_byte_volumes(MESSAGE_SIZE_BUCKETS)
        assert volumes["32769 - inf"] / volumes["0 - 8"] >= 13.7


class TestFigure4:
    def test_varint_like_over_56_percent_of_fields(self):
        varint_like = sum(FIELD_COUNT_SHARES[t] for t in (
            "int32", "int64", "enum", "bool", "uint64", "other_varint"))
        assert varint_like > 0.56

    def test_bytes_like_over_92_percent_of_bytes(self):
        bytes_like = sum(FIELD_BYTES_SHARES[t] for t in (
            "string", "bytes", "repeated string", "repeated bytes"))
        assert bytes_like > 0.92

    def test_figure_4c_tail_anchors(self):
        by_label = {b.label: b.share for b in BYTES_FIELD_SIZE_BUCKETS}
        assert by_label["4097 - 32768"] == pytest.approx(0.013)
        assert by_label["32769 - inf"] == pytest.approx(0.0006)

    def test_figure_4c_byte_volume_ratio(self):
        # Section 3.6.3: the top bucket has at least 7.2x the bytes of
        # the 0-8 bucket.
        volumes = bucket_byte_volumes(BYTES_FIELD_SIZE_BUCKETS)
        assert volumes["32769 - inf"] / volumes["0 - 8"] >= 7.2


class TestFigure7:
    def test_at_least_92_percent_above_1_64(self):
        assert density_share_above(1 / 64) >= 0.92

    def test_over_90_percent_below_52_percent_density(self):
        below = 1.0 - density_share_above(0.52)
        assert below > 0.90


class TestSection38Depth:
    def test_anchors(self):
        assert depth_coverage(12) >= 0.999
        assert depth_coverage(25) >= 0.99999
        assert depth_coverage(99) == 1.0

    def test_monotone(self):
        values = [depth_coverage(d) for d in range(1, 100)]
        assert values == sorted(values)

    def test_interpolation_between_anchors(self):
        assert depth_coverage(1) < depth_coverage(3) < depth_coverage(12)

    def test_below_depth_one(self):
        assert depth_coverage(0) == 0.0


class TestOtherScalars:
    def test_proto2_share(self):
        assert PROTO2_BYTES_SHARE == pytest.approx(0.96)

    def test_rpc_shares(self):
        # Section 3.4: most ser/deser is NOT RPC-initiated, the argument
        # against NIC placement.
        assert RPC_SHARE_OF_DESER == pytest.approx(0.163)
        assert RPC_SHARE_OF_SER == pytest.approx(0.352)
        assert 1 - RPC_SHARE_OF_DESER > 0.83
        assert 1 - RPC_SHARE_OF_SER > 0.64


class TestSizeBucket:
    def test_contains(self):
        bucket = SizeBucket(9, 16, 0.1)
        assert bucket.contains(9) and bucket.contains(16)
        assert not bucket.contains(8) and not bucket.contains(17)

    def test_open_top_bucket(self):
        top = SizeBucket(32769, None, 0.1)
        assert top.contains(10**9)
        assert top.label == "32769 - inf"
