"""Tests for the GWP cycle-attribution model (Section 3.2 arithmetic)."""

import pytest

from repro.fleet.profiler import (
    GwpProfile,
    fleet_opportunity,
    realized_savings,
)


class TestOpportunity:
    def test_headline_numbers(self):
        numbers = fleet_opportunity()
        assert numbers["protobuf_share"] == pytest.approx(0.096)
        assert numbers["deser_fleet_share"] == pytest.approx(0.022,
                                                             rel=0.02)
        assert numbers["ser_fleet_share"] == pytest.approx(0.0125,
                                                           rel=0.02)
        # Section 3.2: the 3.45% opportunity.
        assert numbers["accelerated_opportunity"] == pytest.approx(
            0.0345, rel=0.02)

    def test_future_ops_are_17_percent_of_protobuf(self):
        numbers = fleet_opportunity()
        profile = GwpProfile()
        assert numbers["future_ops_opportunity"] == pytest.approx(
            profile.cpp_protobuf_cycles * 0.171
            / profile.total_fleet_cycles, rel=0.02)


class TestRealizedSavings:
    def test_section52_extrapolation(self):
        # With the paper's 6.2x HyperProtoBench speedup the recovered
        # cycles exceed 2.5% of the fleet ("savings of over 2.5%").
        assert realized_savings(6.2, 6.2) > 0.025

    def test_infinite_speedup_bounded_by_opportunity(self):
        assert realized_savings(1e9, 1e9) == pytest.approx(0.0345,
                                                           rel=0.02)

    def test_no_speedup_no_savings(self):
        assert realized_savings(1.0, 1.0) == 0.0

    def test_invalid_speedups_rejected(self):
        with pytest.raises(ValueError):
            realized_savings(0, 1)


class TestFigure2Rows:
    def test_rows_sorted_descending(self):
        rows = GwpProfile().figure2_rows()
        shares = [share for _, share in rows]
        assert shares == sorted(shares, reverse=True)
        assert rows[0][0] == "deserialize"

    def test_op_cycles_scale(self):
        profile = GwpProfile(total_fleet_cycles=100.0)
        assert profile.op_cycles("deserialize") == pytest.approx(
            100.0 * 0.096 * 0.88 * 0.26)
