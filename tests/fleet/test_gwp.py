"""Tests for the GWP-style sampling profiler."""

import pytest

from repro.cpu.boom import boom_cpu
from repro.fleet.gwp import (
    CycleProfile,
    GwpSampler,
    accelerator_savings,
    profile_software_service,
)
from repro.hyperprotobench import build_hyperprotobench
from repro.proto import parse_schema


@pytest.fixture(scope="module")
def workload():
    return build_hyperprotobench("bench0", batch=16)


class TestCycleProfile:
    def test_add_and_shares(self):
        profile = CycleProfile()
        profile.add("deserialize", 75.0)
        profile.add("serialize", 25.0)
        assert profile.total == 100.0
        assert profile.shares()["deserialize"] == 0.75

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            CycleProfile().add("transmogrify", 1.0)

    def test_top_sorted(self):
        profile = CycleProfile()
        profile.add("clear", 1.0)
        profile.add("deserialize", 9.0)
        assert profile.top(1) == [("deserialize", 0.9)]

    def test_merge(self):
        a = CycleProfile()
        a.add("copy", 2.0)
        b = CycleProfile()
        b.add("copy", 3.0)
        a.merge(b)
        assert a.cycles["copy"] == 5.0

    def test_empty_shares(self):
        assert CycleProfile().shares() == {}


class TestSampler:
    def test_full_rate_records_everything(self):
        sampler = GwpSampler(sample_rate=1.0)
        for _ in range(50):
            sampler.record("serialize", 10.0)
        assert sampler.events_recorded == 50
        assert sampler.profile.total == 500.0

    def test_sampling_is_unbiased(self):
        sampler = GwpSampler(sample_rate=0.2, seed=3)
        for _ in range(5000):
            sampler.record("serialize", 10.0)
        # Expected total is 50,000 regardless of the rate.
        assert sampler.profile.total == pytest.approx(50_000, rel=0.1)
        assert sampler.events_recorded < 1500

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            GwpSampler(sample_rate=0.0)
        with pytest.raises(ValueError):
            GwpSampler(sample_rate=1.5)


class TestServiceProfiling:
    def test_profile_covers_expected_categories(self, workload):
        profile = profile_software_service(
            boom_cpu(), workload.descriptor, workload.messages)
        shares = profile.shares()
        for category in ("deserialize", "serialize", "byte_size",
                         "constructor", "destructor", "other"):
            assert shares.get(category, 0) > 0, category

    def test_deserialize_dominates(self, workload):
        # Figure 2's headline relationship: deserialization is the
        # largest protobuf consumer.
        profile = profile_software_service(
            boom_cpu(), workload.descriptor, workload.messages)
        assert profile.top(1)[0][0] == "deserialize"

    def test_glue_share_matches_parameter(self, workload):
        profile = profile_software_service(
            boom_cpu(), workload.descriptor, workload.messages,
            glue_overhead=0.25)
        assert profile.shares()["other"] == pytest.approx(0.25, abs=0.02)

    def test_custom_op_mix(self, workload):
        profile = profile_software_service(
            boom_cpu(), workload.descriptor, workload.messages,
            op_mix={"serialize": 1.0}, glue_overhead=0.0)
        assert "deserialize" not in profile.cycles
        assert profile.cycles["serialize"] > 0


class TestSavings:
    def test_savings_arithmetic(self):
        profile = CycleProfile()
        profile.add("deserialize", 60.0)
        profile.add("other", 40.0)
        saved = accelerator_savings(profile, {"deserialize": 6.0})
        assert saved == pytest.approx(0.6 * (1 - 1 / 6.0))

    def test_uncovered_categories_save_nothing(self):
        profile = CycleProfile()
        profile.add("other", 10.0)
        assert accelerator_savings(profile, {"deserialize": 10.0}) == 0.0

    def test_invalid_speedup_rejected(self):
        profile = CycleProfile()
        profile.add("copy", 1.0)
        with pytest.raises(ValueError):
            accelerator_savings(profile, {"copy": 0.0})

    def test_end_to_end_savings_meaningful(self, workload):
        profile = profile_software_service(
            boom_cpu(), workload.descriptor, workload.messages)
        saved = accelerator_savings(profile, {
            "deserialize": 8.0, "serialize": 10.0, "byte_size": 10.0,
            "merge": 8.0, "copy": 10.0, "clear": 15.0})
        assert 0.3 < saved < 0.9
