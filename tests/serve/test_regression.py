"""PR 2 compatibility: the serving layer adds zero cycles when off.

With fault rate 0, breakers disabled, and no deadlines, the accelerator
cycle counts must be bit-identical to driving the PR 2 device directly
(the watchdog is a pure comparator on the fault-free path, and the
serving layer charges only what the driver reports).  The seed-era
golden numbers in tests/integration/test_cycle_regression.py pin the
absolute values; this file pins the *relative* identities.
"""

from repro.accel.driver import ProtoAccelerator
from repro.accel.watchdog import FsmWatchdog
from repro.serve import (
    AdmissionPolicy,
    BreakerPolicy,
    ServePolicy,
    ServingWorkloadSpec,
)
from repro.serve.workload import (
    build_echo_server,
    echo_schema,
    make_request_bytes,
)
import random


def _requests(count=12, seed=21):
    schema = echo_schema()
    rng = random.Random(seed)
    spec = ServingWorkloadSpec()
    return schema, [make_request_bytes(schema, rng, spec)
                    for _ in range(count)]


def test_watchdog_is_a_pure_comparator_when_not_tripped():
    """Identical cycle counts under wildly different (ample) budgets."""
    schema, payloads = _requests()
    totals = []
    for budget in (50_000.0, 10_000_000.0):
        accel = ProtoAccelerator(watchdog=FsmWatchdog(budget))
        accel.register_schema(schema)
        cycles = []
        for wire in payloads:
            result = accel.deserialize(schema["EchoRequest"], wire)
            message = accel.read_message(schema["EchoRequest"],
                                         result.dest_addr)
            addr = accel.load_object(message)
            ser = accel.serialize(schema["EchoRequest"], addr)
            cycles.append((result.stats.cycles, ser.stats.cycles))
        totals.append(cycles)
        assert accel.watchdog.aborts == 0
    assert totals[0] == totals[1]


def test_serving_layer_charges_exactly_the_driver_cycles():
    """One tile, breaker off, no deadline, no faults: per-call accel
    cycles equal a bare PR 2-style driver performing the same
    deser/ser sequence, call by call."""
    policy = ServePolicy(
        tiles=1,
        breaker=BreakerPolicy(enabled=False),
        admission=AdmissionPolicy(deadline_cycles=None),
        handler_cycles=0.0)
    schema, payloads = _requests()
    server = build_echo_server(policy, schema)

    bare = ProtoAccelerator(
        watchdog=FsmWatchdog(policy.watchdog_budget_cycles))
    bare.register_schema(schema)

    def bare_call(wire):
        result = bare.deserialize(schema["EchoRequest"], wire,
                                  auto_renew_arena=True)
        request = bare.read_message(schema["EchoRequest"],
                                    result.dest_addr)
        response = schema["EchoResponse"].new_message()
        for _ in range(request["repeats"]):
            response["texts"].append(request["text"])
        response["cookie"] = request["cookie"]
        addr = bare.load_object(response)
        ser = bare.serialize(schema["EchoResponse"], addr)
        bare.reset_arenas()
        # The serving layer charges unit cycles plus the attach-point
        # cost of each successful stage (RoCC dispatch here).
        return (result.stats.cycles + result.stats.transport_cycles
                + ser.stats.cycles + ser.stats.transport_cycles,
                ser.data)

    now = 0.0
    for wire in payloads:
        now += 10_000.0
        outcome = server.call("Repeat", wire, at=now)
        expected_cycles, expected_data = bare_call(wire)
        assert outcome.ok
        assert outcome.accel_cycles == expected_cycles
        assert outcome.cpu_cycles == 0.0
        assert outcome.response == expected_data
    stats = server.stats
    assert stats.succeeded == len(payloads)
    assert stats.shed == stats.failed == 0
    assert stats.host_fallbacks == stats.hedges == 0
    assert server.watchdog_aborts == 0
