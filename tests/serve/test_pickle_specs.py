"""Pickle-safety audit for host-parallel shard construction (ISSUE 10).

A worker process rebuilds a shard from a :class:`ShardSpec` -- so every
policy bundle the spec carries must survive pickling bit-identically,
derived fault-plan seeds must be stable across the process boundary,
and the structured error types riding on :class:`CallOutcome` must
round-trip with their attributes intact.  The spawn-context test is the
strongest form: a fresh interpreter (no forked state at all) rebuilds a
shard from the pickled spec and must charge every call identically.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import pytest

from repro.faults import FaultPlan
from repro.serve import (
    REPLAY_SERVE_POLICY,
    CallOutcome,
    FabricPolicy,
    FleetReplaySpec,
    ReshardPolicy,
    RouterPolicy,
    ServePolicy,
    ShardSpec,
    TenantOverloaded,
    TenantPolicy,
)
from repro.serve.errors import DeadlineExceeded, Overloaded, ShardDraining
from repro.serve.parallel import _worker_entry, execute_shard
from repro.serve.replay import generate_calls
from repro.soc.config import SoCConfig


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


@pytest.mark.parametrize("value", [
    ServePolicy(),
    ServePolicy(stateless_tiles=True, transport="pcie",
                fault_plan=FaultPlan(seed=7, rate=0.01)),
    REPLAY_SERVE_POLICY,
    FaultPlan(seed=42, rate=0.25, sites=("deser.hang",)),
    FabricPolicy(shards=4, serve=REPLAY_SERVE_POLICY, vnodes=16),
    RouterPolicy(vnodes=32, seed=9),
    TenantPolicy(max_inflight=3),
    ReshardPolicy(drain_cycles=10.0, auto_evict_after_cycles=5.0),
    FleetReplaySpec(messages=10, tenants=3, workload="echo"),
], ids=lambda v: type(v).__name__)
def test_policy_roundtrip(value):
    assert roundtrip(value) == value


def test_soc_config_roundtrip():
    config = SoCConfig(transport="pcie")
    clone = roundtrip(config)
    assert clone.transport == config.transport
    assert clone.pcie == config.pcie
    assert clone.memory == config.memory


def test_derived_seed_stable_across_pickle():
    plan = FaultPlan(seed=1234, rate=0.5)
    clone = roundtrip(plan)
    for index in range(4):
        want = plan.derive("fabric.shard", str(index))
        got = clone.derive("fabric.shard", str(index))
        assert got == want
        assert got.fingerprint() == want.fingerprint()
        # Two derivation layers, like a shard deriving its tiles.
        assert (got.derive("serve.tile", "1")
                == want.derive("serve.tile", "1"))


def test_getstate_skips_validation_rerun():
    # Frozen policy dataclasses validate in __post_init__; unpickling
    # restores state directly (default __reduce_ex__), so a pickled
    # valid policy must come back equal without re-running validation
    # side effects (FabricPolicy's vnodes override must not re-apply).
    policy = FabricPolicy(shards=2, vnodes=8)
    clone = roundtrip(policy)
    assert clone.router.vnodes == 8
    assert clone == policy


@pytest.mark.parametrize("error", [
    TenantOverloaded("tenant over budget", method="Fleet.Ingest",
                     tenant="tenant-1"),
    Overloaded("queue full at depth 16", method="Echo.Repeat"),
    DeadlineExceeded("deadline passed", method="Echo.Repeat"),
    ShardDraining("shard 2 draining", method="Echo.Repeat"),
], ids=lambda e: type(e).__name__)
def test_rpc_errors_roundtrip(error):
    clone = roundtrip(error)
    assert type(clone) is type(error)
    assert str(clone) == str(error)
    assert clone.__dict__ == error.__dict__


def test_call_outcome_roundtrip():
    outcome = CallOutcome(
        status="shed", arrival=10.0, completed_at=10.0,
        error=TenantOverloaded("over budget", method="Fleet.Ingest",
                               tenant="tenant-0"),
        tenant="tenant-0", ring_epoch=0)
    clone = roundtrip(outcome)
    assert clone.status == outcome.status
    assert clone.tenant == outcome.tenant
    assert isinstance(clone.error, TenantOverloaded)
    assert clone.error.__dict__ == outcome.error.__dict__


def _shard_task(transport: str = "rocc"):
    spec = FleetReplaySpec(messages=40, interarrival_cycles=800.0,
                           tenants=4, workload="fleet")
    serve = ServePolicy(stateless_tiles=True, transport=transport,
                        fault_plan=FaultPlan(seed=99, rate=0.02))
    policy = FabricPolicy(shards=2, serve=serve)
    shard_spec = ShardSpec(index=0, policy=policy, replay=spec)
    calls = list(enumerate(generate_calls(spec)))
    return shard_spec, calls


def _charging(result):
    return [(i, o.status, o.response, o.accel_cycles, o.cpu_cycles)
            for i, o in result.outcomes]


@pytest.mark.parametrize("transport", ["rocc", "pcie"])
def test_spawn_context_rebuild_is_bit_identical(transport):
    # The strongest pickle-safety statement: a *spawned* interpreter
    # (nothing inherited by fork) rebuilds the shard -- transport
    # included -- purely from the pickled spec and charges every call
    # exactly like the in-process build.  Exercises the derived fault
    # plan too (rate > 0), so fault streams are also process-stable.
    shard_spec, calls = _shard_task(transport)
    local = execute_shard(shard_spec, calls)
    with ProcessPoolExecutor(max_workers=1,
                             mp_context=get_context("spawn")) as pool:
        remote = pool.submit(_worker_entry, (shard_spec, calls)).result()
    assert _charging(remote) == _charging(local)
    assert remote.tenant_sheds == local.tenant_sheds
    assert remote.watchdog_aborts == local.watchdog_aborts
    assert remote.health == local.health
