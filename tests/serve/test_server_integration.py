"""End-to-end serving under fault load: accounting closes, nothing hangs.

The acceptance run: 1,000 calls at a 1% fault rate through a two-tile
server with breakers, deadlines, and the watchdog armed.  Every offered
call must reach a terminal state (``shed + failed + succeeded ==
offered``), every admitted call must respect the latency bound, and the
responses that do come back must be correct.
"""

import random

from repro.faults import FaultPlan
from repro.proto.decoder import parse_message
from repro.serve import (
    AdmissionPolicy,
    HedgePolicy,
    ServePolicy,
    ServingWorkloadSpec,
)
from repro.serve.errors import DeadlineExceeded, Overloaded
from repro.serve.workload import (
    build_echo_server,
    echo_schema,
    make_request_bytes,
)

_DEADLINE = 50_000.0
_BUDGET = 10_000.0


def test_thousand_calls_at_one_percent_faults():
    policy = ServePolicy(
        tiles=2,
        fault_plan=FaultPlan(seed=97, rate=0.01),
        watchdog_budget_cycles=_BUDGET,
        admission=AdmissionPolicy(max_depth=16,
                                  deadline_cycles=_DEADLINE))
    schema = echo_schema()
    server = build_echo_server(policy, schema)
    rng = random.Random(2024)
    spec = ServingWorkloadSpec(text_bytes=48, repeats=3)
    response_descriptor = schema["EchoResponse"]

    now = 0.0
    terminal = 0
    for _ in range(1000):
        now += rng.expovariate(1.0 / 2_000.0)
        payload = make_request_bytes(schema, rng, spec)
        request = parse_message(schema["EchoRequest"], payload)
        outcome = server.call("Repeat", payload, at=now)
        terminal += 1
        # Zero hung calls: every outcome is terminal and bounded.
        assert outcome.status in ("ok", "shed", "expired", "failed")
        assert outcome.latency_cycles <= _DEADLINE + _BUDGET + 1e-9
        if outcome.ok:
            response = parse_message(response_descriptor,
                                     outcome.response)
            assert list(response["texts"]) == \
                [request["text"]] * request["repeats"]
            assert response["cookie"] == request["cookie"]
        else:
            assert outcome.error is not None
            assert outcome.error.method == "/Echo/Repeat"

    stats = server.stats
    assert terminal == stats.offered == 1000
    # The books close exactly.
    assert stats.shed + stats.failed + stats.succeeded == stats.offered
    assert stats.expired + stats.faulted == stats.failed
    assert len(stats.latencies) == stats.offered - stats.shed
    # 1% faults must not sink the service.
    assert stats.succeeded >= 950
    # ... but the campaign must have actually fired somewhere.
    assert sum(t.accel.faults.injected for t in server.tiles
               if t.accel.faults is not None) > 0


def test_overload_sheds_instead_of_queueing_unboundedly():
    """Arrivals far beyond capacity: shed rate climbs, yet admitted-call
    p99 stays bounded by the deadline budget (graceful degradation)."""
    policy = ServePolicy(
        tiles=1,
        admission=AdmissionPolicy(max_depth=4,
                                  deadline_cycles=_DEADLINE))
    schema = echo_schema()
    server = build_echo_server(policy, schema)
    rng = random.Random(7)
    spec = ServingWorkloadSpec()
    now = 0.0
    for _ in range(300):
        now += 50.0  # far hotter than one tile can serve
        outcome = server.call(
            "Repeat", make_request_bytes(schema, rng, spec), at=now)
        if outcome.status == "shed":
            assert isinstance(outcome.error, Overloaded)
            assert outcome.error.site == "serve.queue"
            assert outcome.accel_cycles == 0.0
    stats = server.stats
    assert stats.shed > 0
    assert stats.p99_cycles <= _DEADLINE + _BUDGET
    assert stats.shed + stats.failed + stats.succeeded == stats.offered


def test_expired_calls_consume_no_accelerator_cycles_in_queue():
    """A call whose wait alone exceeds the deadline expires with zero
    accelerator cycles charged."""
    policy = ServePolicy(
        tiles=1,
        admission=AdmissionPolicy(max_depth=64,
                                  deadline_cycles=2_000.0))
    schema = echo_schema()
    server = build_echo_server(policy, schema)
    rng = random.Random(9)
    spec = ServingWorkloadSpec()
    expired = [
        outcome
        for _ in range(40)
        if (outcome := server.call(
            "Repeat", make_request_bytes(schema, rng, spec),
            at=0.0)).status == "expired"
    ]
    assert expired, "back-to-back arrivals must blow a 2k-cycle deadline"
    queue_expired = [o for o in expired if o.attempts == 0]
    assert queue_expired, "deep queue waits must expire before service"
    for outcome in queue_expired:
        # Expired while still queued: zero accelerator cycles spent.
        assert isinstance(outcome.error, DeadlineExceeded)
        assert outcome.accel_cycles == 0.0
        assert outcome.latency_cycles <= 2_000.0 + 1e-9


def test_hedging_races_a_second_tile():
    """With an aggressive hedge trigger every successful call is raced;
    the hedge accounting (hedges, wins, wasted cycles) stays coherent."""
    policy = ServePolicy(
        tiles=2,
        hedge=HedgePolicy(enabled=True, after_cycles=0.0),
        admission=AdmissionPolicy(deadline_cycles=None))
    schema = echo_schema()
    server = build_echo_server(policy, schema)
    rng = random.Random(13)
    spec = ServingWorkloadSpec()
    now = 0.0
    for _ in range(20):
        now += 10_000.0
        outcome = server.call(
            "Repeat", make_request_bytes(schema, rng, spec), at=now)
        assert outcome.ok
        assert outcome.hedged
        assert outcome.attempts == 2
    stats = server.stats
    assert stats.hedges == 20
    assert stats.wasted_hedge_cycles > 0
    assert stats.hedge_wins <= stats.hedges


def test_hedge_stretch_comes_from_the_contention_model():
    """Concurrent hedged attempts pay the shared-bus utilisation ratio
    from the multi-tile model; with no model, hedging is free."""
    import pytest

    from repro.soc.multitile import MultiTileModel, TileWorkProfile

    saturating = MultiTileModel(
        TileWorkProfile(payload_bytes=1000, cycles=1000.0,
                        bus_beats=800.0))
    policy = ServePolicy(contention=saturating)
    # Two active tiles demand 1.6 beats/cycle on a 1 beat/cycle bus.
    assert policy.hedge_stretch() == pytest.approx(1.6)
    assert ServePolicy().hedge_stretch() == 1.0
