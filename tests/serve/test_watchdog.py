"""The watchdog's worst-case latency bound, under total hang injection.

Acceptance property: with hang faults injected on *every* operation,
every admitted call still terminates -- response, structured error, or
expiry -- within ``deadline + watchdog_budget`` cycles of arrival, and
no call hangs forever.  This is the provable bound docs/SERVING.md
argues: stages start only while the deadline budget remains, each
accelerator stage is hard-capped by the watchdog, and the host fallback
is fit-gated against the remaining budget.
"""

import random

import pytest

from repro.faults import FaultPlan, FaultSite, HANG_SITES
from repro.proto.errors import WatchdogAbort
from repro.serve import AdmissionPolicy, ServePolicy, ServingWorkloadSpec
from repro.serve.workload import (
    build_echo_server,
    echo_schema,
    make_request_bytes,
)

_DEADLINE = 20_000.0
_BUDGET = 5_000.0


def _hang_policy(**kwargs):
    kwargs.setdefault("fault_plan", FaultPlan(
        seed=11, rate=1.0, sites=tuple(sorted(HANG_SITES,
                                              key=lambda s: s.value))))
    kwargs.setdefault("watchdog_budget_cycles", _BUDGET)
    kwargs.setdefault("admission", AdmissionPolicy(
        max_depth=8, deadline_cycles=_DEADLINE))
    return ServePolicy(**kwargs)


def test_every_call_terminates_within_deadline_plus_budget():
    server = build_echo_server(_hang_policy())
    schema = echo_schema()
    rng = random.Random(5)
    spec = ServingWorkloadSpec()
    now = 0.0
    terminated = 0
    for _ in range(150):
        now += rng.expovariate(1.0 / 3_000.0)
        outcome = server.call(
            "Repeat", make_request_bytes(schema, rng, spec), at=now)
        terminated += 1
        assert outcome.status in ("ok", "shed", "expired", "failed")
        assert outcome.latency_cycles <= _DEADLINE + _BUDGET + 1e-9, \
            outcome.status
    stats = server.stats
    assert terminated == stats.offered == 150
    assert stats.shed + stats.failed + stats.succeeded == stats.offered
    # Hangs really fired and the watchdog really killed them.
    assert server.watchdog_aborts > 0


def test_hang_charges_the_full_watchdog_budget():
    """An injected hang burns exactly the budget before aborting, and
    surfaces as a WatchdogAbort with the cycles attached."""
    from repro.accel.driver import ProtoAccelerator
    from repro.accel.watchdog import FsmWatchdog
    from repro.faults import RecoveryPolicy

    schema = echo_schema()
    accel = ProtoAccelerator(
        faults=FaultPlan(seed=1, rate=1.0, max_trigger=1,
                         sites=(FaultSite.DESER_HANG,)),
        recovery=RecoveryPolicy(max_retries=0, cpu_fallback=False),
        watchdog=FsmWatchdog(2_000.0))
    accel.register_schema(schema)
    request = schema["EchoRequest"].new_message()
    request["text"] = "ping"
    request["repeats"] = 1
    wire = request.serialize()
    with pytest.raises(WatchdogAbort) as excinfo:
        accel.deserialize(schema["EchoRequest"], wire)
    fault = excinfo.value
    assert fault.injected
    assert fault.charged_cycles == 2_000.0
    assert accel.watchdog.aborts == 1
    assert accel.fault_stats.wasted_accel_cycles == 2_000.0


def test_watchdog_abort_falls_back_under_default_driver():
    """Outside the serving layer (default RecoveryPolicy), a hang is a
    persistent fault: the driver charges the budget and decodes on the
    host, producing the exact software result."""
    from repro.accel.driver import ProtoAccelerator
    from repro.accel.watchdog import FsmWatchdog

    schema = echo_schema()
    accel = ProtoAccelerator(
        faults=FaultPlan(seed=1, rate=1.0, max_trigger=1,
                         sites=(FaultSite.DESER_HANG,)),
        watchdog=FsmWatchdog(2_000.0))
    accel.register_schema(schema)
    request = schema["EchoRequest"].new_message()
    request["text"] = "ping"
    request["repeats"] = 2
    result = accel.deserialize(schema["EchoRequest"], request.serialize())
    assert result.stats.cpu_fallbacks == 1
    assert result.stats.wasted_accel_cycles == 2_000.0
    observed = accel.read_message(schema["EchoRequest"], result.dest_addr)
    assert observed == request


def test_serializer_hang_is_also_bounded():
    from repro.accel.driver import ProtoAccelerator
    from repro.accel.watchdog import FsmWatchdog
    from repro.faults import RecoveryPolicy

    schema = echo_schema()
    accel = ProtoAccelerator(
        faults=FaultPlan(seed=1, rate=1.0, max_trigger=1,
                         sites=(FaultSite.SER_HANG,)),
        recovery=RecoveryPolicy(max_retries=0, cpu_fallback=False),
        watchdog=FsmWatchdog(2_000.0))
    accel.register_schema(schema)
    message = schema["EchoResponse"].new_message()
    message["texts"].append("alpha")
    addr = accel.load_object(message)
    with pytest.raises(WatchdogAbort) as excinfo:
        accel.serialize(schema["EchoResponse"], addr)
    assert excinfo.value.charged_cycles == 2_000.0
    assert accel.watchdog.aborts == 1
