"""Multi-tenant isolation: one tenant's overload sheds that tenant.

Tenant A floods the fabric at ~10x its in-flight budget while tenant B
offers a trickle well under its own.  The isolation claim: A's overload
is absorbed at the fabric front door (``serve.tenant`` sheds, zero
cycles, zero shard-queue occupancy), so B's shed rate stays zero and
B's latency stays flat.  Per-tenant ledgers must individually satisfy
the serving accounting invariant ``shed + failed + succeeded ==
offered``.
"""

import pytest

from repro.proto import parse_schema
from repro.serve import (
    AdmissionPolicy,
    FabricPolicy,
    ServePolicy,
    ServingFabric,
    TenantPolicy,
)
from repro.serve.workload import SERVING_SCHEMA

_DEADLINE = 50_000.0


def _echo_handler(schema):
    def repeat(request):
        response = schema["EchoResponse"].new_message()
        for _ in range(request["repeats"]):
            response["texts"].append(request["text"])
        response["cookie"] = request["cookie"]
        return response
    return repeat


def _request_bytes(schema, cookie: int) -> bytes:
    request = schema["EchoRequest"].new_message()
    request["text"] = "isolation probe"
    request["repeats"] = 2
    request["cookie"] = cookie
    return request.serialize()


@pytest.fixture()
def fabric():
    policy = FabricPolicy(
        shards=2,
        serve=ServePolicy(
            tiles=2,
            admission=AdmissionPolicy(max_depth=16,
                                      deadline_cycles=_DEADLINE)))
    fabric = ServingFabric(policy)
    for tenant, budget in (("tenant-a", TenantPolicy(max_inflight=4)),
                           ("tenant-b", TenantPolicy(max_inflight=64))):
        schema = parse_schema(SERVING_SCHEMA)  # per-tenant registry
        fabric.add_tenant(tenant, schema.service("Echo"), budget)
        fabric.register(tenant, "Repeat", _echo_handler(schema))
    return fabric


def test_flooded_tenant_sheds_alone(fabric):
    schema = parse_schema(SERVING_SCHEMA)
    offered_a = offered_b = 0
    now, next_b = 0.0, 0.0
    # A arrives every 100 cycles (~10x what a 4-in-flight budget can
    # carry at ~1300 cycles/call); B arrives every 4000, comfortably
    # under budget.
    for i in range(400):
        now = i * 100.0
        if now >= next_b:
            fabric.call("tenant-b", "Repeat",
                        _request_bytes(schema, offered_b), at=now)
            offered_b += 1
            next_b += 4_000.0
        fabric.call("tenant-a", "Repeat",
                    _request_bytes(schema, offered_a), at=now)
        offered_a += 1

    stats_a = fabric.tenant_stats("tenant-a")
    stats_b = fabric.tenant_stats("tenant-b")

    # Per-tenant accounting closes exactly.
    assert stats_a.offered == offered_a
    assert stats_b.offered == offered_b
    assert stats_a.shed + stats_a.failed + stats_a.succeeded == offered_a
    assert stats_b.shed + stats_b.failed + stats_b.succeeded == offered_b

    # A really overloaded; B never shed a single call.
    assert fabric.tenant_sheds["tenant-a"] > 0
    assert stats_a.shed >= fabric.tenant_sheds["tenant-a"]
    assert fabric.tenant_sheds["tenant-b"] == 0
    assert stats_b.shed == 0
    assert stats_b.succeeded == offered_b

    # The fleet aggregate is the sum of the tenant ledgers.
    total = fabric.stats
    assert total.offered == offered_a + offered_b
    assert total.shed + total.failed + total.succeeded == total.offered


def test_budget_sheds_cost_zero_cycles(fabric):
    """A front-door shed consumes no accelerator or host cycles and
    completes at its arrival cycle (latency 0)."""
    schema = parse_schema(SERVING_SCHEMA)
    outcomes = [fabric.call("tenant-a", "Repeat",
                            _request_bytes(schema, i), at=0.0)
                for i in range(20)]
    sheds = [o for o in outcomes if o.status == "shed"]
    assert sheds, "expected the in-flight budget to shed at least once"
    for outcome in sheds:
        assert outcome.accel_cycles == 0.0
        assert outcome.cpu_cycles == 0.0
        assert outcome.completed_at == outcome.arrival
        assert outcome.error is not None
        assert outcome.error.site == "serve.tenant"
        assert outcome.error.tenant == "tenant-a"
