"""Deterministic fleet replay: shard count must not change semantics
or cycle charging.

A fixed-seed 1k-message replay of the fleet distributions runs through
1, 2, and 4 fabric shards and through a single multi-tenant
ResilientServer.  Under the pure-charging serving discipline
(``ServePolicy.stateless_tiles``) every per-message result -- status,
response bytes, accelerator cycles, host cycles -- and the total cycle
bill are bit-identical across all four runs.  Only queueing delay may
differ (more shards = shorter waits; that is the point of sharding).
"""

import pytest

from repro.serve import (
    FabricPolicy,
    FleetReplaySpec,
    REPLAY_SERVE_POLICY,
    build_fleet_fabric,
    build_fleet_server,
    generate_calls,
    replay_through_fabric,
    replay_through_server,
)

_SPEC = FleetReplaySpec(messages=1_000, interarrival_cycles=2_500.0,
                        seed=424242, workload="fleet")


def _charging_signature(outcomes):
    return [(o.status, o.response, o.accel_cycles, o.cpu_cycles)
            for o in outcomes]


@pytest.fixture(scope="module")
def calls():
    return generate_calls(_SPEC)


@pytest.fixture(scope="module")
def reference(calls):
    server = build_fleet_server(REPLAY_SERVE_POLICY, _SPEC)
    outcomes = replay_through_server(server, calls)
    return server, outcomes


def test_generator_is_deterministic(calls):
    again = generate_calls(_SPEC)
    assert calls == again
    assert len(calls) == _SPEC.messages


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_fabric_bit_identical_to_single_node(shards, calls, reference):
    server, ref_outcomes = reference
    fabric = build_fleet_fabric(
        FabricPolicy(shards=shards, serve=REPLAY_SERVE_POLICY), _SPEC)
    outcomes = replay_through_fabric(fabric, calls)

    assert _charging_signature(outcomes) == _charging_signature(
        ref_outcomes)
    # Total cycle bill, summed in arrival order on both sides: exact.
    assert (sum(o.accel_cycles for o in outcomes)
            == sum(o.accel_cycles for o in ref_outcomes))
    assert (sum(o.cpu_cycles for o in outcomes)
            == sum(o.cpu_cycles for o in ref_outcomes))
    # Every admitted call really went somewhere real.
    for outcome in outcomes:
        assert outcome.tenant is not None
        if outcome.status != "shed":
            assert outcome.shard is not None
            assert 0 <= outcome.shard < shards


def test_replay_covers_the_template_mix(calls):
    """The seeded tenant plan should exercise more than one fleet
    schema template (the Figure 4 mix, not a single shape)."""
    from repro.serve.replay import tenant_plan
    templates = {template for _, template in tenant_plan(_SPEC)}
    assert len(templates) > 1
    tenants_seen = {call.tenant for call in calls}
    assert len(tenants_seen) == _SPEC.tenants
