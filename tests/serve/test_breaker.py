"""Circuit breaker and health FSM properties.

The load-bearing invariant: a breaker can never jump OPEN -> CLOSED.
Recovery *must* pass through HALF_OPEN and record the configured number
of successful probes.  Hypothesis drives arbitrary interleavings of
successes, failures, and allow() polls over a monotone cycle clock and
checks every transition edge the machine ever took.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.breaker import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    HealthMonitor,
    HealthState,
)

#: (kind, cycle-delta) event streams; deltas keep the clock monotone.
_EVENTS = st.lists(
    st.tuples(st.sampled_from(["success", "failure", "allow"]),
              st.floats(min_value=0.0, max_value=100_000.0,
                        allow_nan=False)),
    max_size=60)

_POLICIES = st.builds(
    BreakerPolicy,
    failure_threshold=st.integers(min_value=1, max_value=5),
    recovery_cycles=st.floats(min_value=0.0, max_value=200_000.0),
    probe_successes=st.integers(min_value=1, max_value=4))


def _drive(breaker, events):
    now = 0.0
    for kind, delta in events:
        now += delta
        if kind == "allow":
            breaker.allow(now)
        elif kind == "success":
            if breaker.allow(now):
                breaker.record_success(now)
        else:
            if breaker.allow(now):
                breaker.record_failure(now)
    return now


@given(policy=_POLICIES, events=_EVENTS)
@settings(max_examples=200)
def test_no_open_to_closed_without_probe(policy, events):
    """Every CLOSED entry comes from HALF_OPEN, never from OPEN."""
    breaker = CircuitBreaker(policy)
    _drive(breaker, events)
    for _, from_state, to_state in breaker.transitions:
        assert (from_state, to_state) != (BreakerState.OPEN,
                                          BreakerState.CLOSED)
        if to_state is BreakerState.CLOSED:
            assert from_state is BreakerState.HALF_OPEN


@given(policy=_POLICIES, events=_EVENTS)
@settings(max_examples=200)
def test_closing_requires_probe_success_streak(policy, events):
    """Re-closing requires ``probe_successes`` successes strictly after
    the HALF_OPEN entry, with no failure in between."""
    breaker = CircuitBreaker(policy)
    successes = []  # cycles at which a success was recorded

    original = breaker.record_success

    def tracking_success(now):
        successes.append(now)
        original(now)

    breaker.record_success = tracking_success
    _drive(breaker, events)
    half_open_entry = None
    for cycle, from_state, to_state in breaker.transitions:
        if to_state is BreakerState.HALF_OPEN:
            half_open_entry = cycle
        if (from_state, to_state) == (BreakerState.HALF_OPEN,
                                      BreakerState.CLOSED):
            assert half_open_entry is not None
            window = [s for s in successes
                      if half_open_entry <= s <= cycle]
            assert len(window) >= policy.probe_successes


@given(events=_EVENTS)
@settings(max_examples=100)
def test_disabled_breaker_never_trips(events):
    """``enabled=False`` is the bare PR 2 driver: always allow, no
    transitions, state forever CLOSED."""
    breaker = CircuitBreaker(BreakerPolicy(enabled=False,
                                           failure_threshold=1))
    now = 0.0
    for kind, delta in events:
        now += delta
        assert breaker.allow(now)
        if kind == "failure":
            breaker.record_failure(now)
        elif kind == "success":
            breaker.record_success(now)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.transitions == []


def test_trip_quarantine_probe_recover_cycle():
    policy = BreakerPolicy(failure_threshold=2, recovery_cycles=1000.0,
                           probe_successes=2)
    breaker = CircuitBreaker(policy)
    assert breaker.allow(0.0)
    breaker.record_failure(10.0)
    breaker.record_failure(20.0)
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow(500.0)          # still cooling down
    assert breaker.allow(1020.0)             # probe admitted
    assert breaker.state is BreakerState.HALF_OPEN
    breaker.record_success(1030.0)
    assert breaker.state is BreakerState.HALF_OPEN  # one probe not enough
    breaker.record_success(1040.0)
    assert breaker.state is BreakerState.CLOSED


def test_failed_probe_reopens_and_restarts_cooldown():
    policy = BreakerPolicy(failure_threshold=1, recovery_cycles=1000.0)
    breaker = CircuitBreaker(policy)
    breaker.record_failure(0.0)
    assert breaker.allow(1000.0)
    breaker.record_failure(1100.0)
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow(1500.0)         # cooldown restarted at 1100
    assert breaker.allow(2100.0)


def test_health_monitor_derivation():
    breakers = [CircuitBreaker(BreakerPolicy(failure_threshold=1))
                for _ in range(2)]
    health = HealthMonitor(breakers)
    assert health.state is HealthState.HEALTHY
    breakers[0].record_failure(10.0)
    assert health.refresh(10.0) is HealthState.DEGRADED
    breakers[1].record_failure(20.0)
    assert health.refresh(20.0) is HealthState.BYPASSED
    # Recovery through probes flows back to HEALTHY.
    for breaker in breakers:
        assert breaker.allow(1e9)
        breaker.record_success(1e9)
        breaker.record_success(1e9 + 1)
    assert health.refresh(1e9 + 1) is HealthState.HEALTHY
    assert [t[2] for t in health.transitions] == [
        HealthState.DEGRADED, HealthState.BYPASSED, HealthState.HEALTHY]
