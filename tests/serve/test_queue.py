"""Admission queue: depth accounting, shedding, deadline budgets."""

import pytest

from repro.serve.queue import AdmissionPolicy, AdmissionQueue


def test_admits_until_depth_then_sheds():
    queue = AdmissionQueue(AdmissionPolicy(max_depth=2))
    assert queue.offer(0.0)
    queue.note_start(100.0)       # waiting until cycle 100
    assert queue.offer(0.0)
    queue.note_start(200.0)
    assert not queue.offer(0.0)   # depth 2 == max_depth: shed
    assert (queue.offered, queue.admitted, queue.shed) == (3, 2, 1)


def test_depth_drains_as_calls_start_service():
    queue = AdmissionQueue(AdmissionPolicy(max_depth=1))
    assert queue.offer(0.0)
    queue.note_start(50.0)
    assert not queue.offer(10.0)  # still waiting at cycle 10
    assert queue.offer(60.0)      # started at 50: queue empty again


def test_deadline_is_arrival_plus_budget():
    queue = AdmissionQueue(AdmissionPolicy(deadline_cycles=1000.0))
    assert queue.deadline(250.0) == 1250.0


def test_no_deadline_means_infinite_budget():
    queue = AdmissionQueue(AdmissionPolicy(deadline_cycles=None))
    assert queue.deadline(0.0) == float("inf")


def test_policy_validation():
    with pytest.raises(ValueError):
        AdmissionPolicy(max_depth=0)
    with pytest.raises(ValueError):
        AdmissionPolicy(deadline_cycles=0.0)
