"""PR 3's latency-bound proof, re-run through the sharded fabric.

With hang faults injected on 100% of accelerator operations on every
shard, every call the fabric accepts still terminates -- response,
structured error, or expiry -- within ``deadline + watchdog_budget``
cycles of arrival.  The routing layer must not stretch the bound: the
tenant-budget check and shard pick are zero-cycle, and each shard's own
admission/watchdog machinery runs unchanged.
"""

from repro.faults import FaultPlan, HANG_SITES
from repro.serve import (
    AdmissionPolicy,
    FabricPolicy,
    FleetReplaySpec,
    ServePolicy,
    build_fleet_fabric,
    generate_calls,
    replay_through_fabric,
)

_DEADLINE = 20_000.0
_BUDGET = 5_000.0


def _hang_fabric_policy(shards: int) -> FabricPolicy:
    serve = ServePolicy(
        tiles=2,
        fault_plan=FaultPlan(
            seed=11, rate=1.0,
            sites=tuple(sorted(HANG_SITES, key=lambda s: s.value))),
        watchdog_budget_cycles=_BUDGET,
        admission=AdmissionPolicy(max_depth=8,
                                  deadline_cycles=_DEADLINE),
        stateless_tiles=True)
    return FabricPolicy(shards=shards, serve=serve)


def test_latency_bound_holds_through_the_fabric():
    spec = FleetReplaySpec(messages=200, interarrival_cycles=3_000.0,
                           seed=5, workload="echo")
    fabric = build_fleet_fabric(_hang_fabric_policy(shards=2), spec)
    outcomes = replay_through_fabric(fabric, generate_calls(spec))

    assert len(outcomes) == spec.messages
    for outcome in outcomes:
        assert outcome.status in ("ok", "shed", "expired", "failed")
        assert (outcome.completed_at - outcome.arrival
                <= _DEADLINE + _BUDGET + 1e-9), outcome.status

    stats = fabric.stats
    assert stats.offered == spec.messages
    assert stats.shed + stats.failed + stats.succeeded == stats.offered
    # Hangs really fired on the shards and the watchdogs killed them.
    assert fabric.watchdog_aborts > 0


def test_shard_fault_campaigns_are_decorrelated():
    """Each shard derives its own fault stream from the plan: the
    per-shard watchdog-abort counts must not be identical mirrors of a
    single shared RNG stream (they diverge on a long replay)."""
    spec = FleetReplaySpec(messages=300, interarrival_cycles=2_000.0,
                           seed=9, workload="echo")
    fabric = build_fleet_fabric(_hang_fabric_policy(shards=4), spec)
    replay_through_fabric(fabric, generate_calls(spec))
    aborts = [shard.server.watchdog_aborts for shard in fabric.shards]
    assert sum(aborts) == fabric.watchdog_aborts > 0
    served = [shard.server.stats.offered for shard in fabric.shards]
    assert sum(served) == spec.messages
