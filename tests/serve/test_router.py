"""Property tests for the fabric's consistent-hash router.

Three load-bearing properties, Hypothesis-driven:

* **Removal stability** -- taking one shard out of the ring remaps only
  the tenants that were routed to it; everyone else keeps their shard.
  This is the whole point of consistent hashing: shard loss must not
  reshuffle the fleet.
* **Fallback safety** -- the least-loaded fallback never picks a shard
  whose breakers are all OPEN while a shard with a CLOSED breaker
  exists; health tier dominates load.
* **Determinism** -- the routing table is a pure function of (seed,
  shard set, tenant set): two independently built routers agree
  exactly, and routing never depends on query order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.breaker import BreakerState
from repro.serve.router import (
    ConsistentHashRouter,
    RouterPolicy,
    ShardView,
    least_loaded_fallback,
)

_TENANTS = st.lists(
    st.text(alphabet="abcdefghij-0123456789", min_size=1, max_size=12),
    min_size=1, max_size=24, unique=True)

_POLICIES = st.builds(
    RouterPolicy,
    vnodes=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**32 - 1))

_SHARD_COUNTS = st.integers(min_value=2, max_value=8)


@given(tenants=_TENANTS, policy=_POLICIES, shards=_SHARD_COUNTS,
       data=st.data())
@settings(max_examples=150)
def test_removing_one_shard_remaps_only_its_tenants(tenants, policy,
                                                    shards, data):
    router = ConsistentHashRouter(list(range(shards)), policy)
    before = router.table(tenants)
    victim = data.draw(st.sampled_from(sorted(set(before.values()))))
    after = router.without(victim).table(tenants)
    for tenant in tenants:
        if before[tenant] == victim:
            assert after[tenant] != victim
        else:
            assert after[tenant] == before[tenant]


@given(tenants=_TENANTS, policy=_POLICIES, shards=_SHARD_COUNTS)
@settings(max_examples=100)
def test_same_seed_and_tenants_identical_table(tenants, policy, shards):
    ids = list(range(shards))
    table = ConsistentHashRouter(ids, policy).table(tenants)
    again = ConsistentHashRouter(ids, policy).table(tenants)
    assert table == again
    # Routing is per-tenant pure: query order cannot matter.
    router = ConsistentHashRouter(ids, policy)
    assert {t: router.route(t) for t in reversed(tenants)} == table


@given(tenants=_TENANTS, shards=_SHARD_COUNTS,
       seeds=st.tuples(st.integers(min_value=0, max_value=2**32 - 1),
                       st.integers(min_value=0, max_value=2**32 - 1)))
@settings(max_examples=50)
def test_every_tenant_routes_to_a_real_shard(tenants, shards, seeds):
    for seed in seeds:
        router = ConsistentHashRouter(list(range(shards)),
                                      RouterPolicy(seed=seed))
        for tenant in tenants:
            assert 0 <= router.route(tenant) < shards


_STATES = st.sampled_from([BreakerState.CLOSED, BreakerState.OPEN,
                           BreakerState.HALF_OPEN])

_VIEWS = st.lists(
    st.tuples(st.lists(_STATES, min_size=1, max_size=4),
              st.floats(min_value=0.0, max_value=1e6, allow_nan=False)),
    min_size=1, max_size=8)


@given(views=_VIEWS)
@settings(max_examples=200)
def test_fallback_never_picks_all_open_while_closed_exists(views):
    shard_views = [ShardView(index=i, breaker_states=tuple(states),
                             load=load)
                   for i, (states, load) in enumerate(views)]
    chosen = least_loaded_fallback(shard_views)
    has_closed = [v for v in shard_views
                  if BreakerState.CLOSED in v.breaker_states]
    if chosen is None:
        assert not shard_views
        return
    if has_closed:
        assert BreakerState.CLOSED in shard_views[chosen].breaker_states


@given(views=_VIEWS, data=st.data())
@settings(max_examples=100)
def test_fallback_respects_exclusions(views, data):
    shard_views = [ShardView(index=i, breaker_states=tuple(states),
                             load=load)
                   for i, (states, load) in enumerate(views)]
    exclude = tuple(data.draw(st.sets(
        st.integers(min_value=0, max_value=len(shard_views) - 1))))
    chosen = least_loaded_fallback(shard_views, exclude=exclude)
    if len(exclude) == len(shard_views):
        assert chosen is None
    else:
        assert chosen is not None and chosen not in exclude


@given(views=_VIEWS)
@settings(max_examples=100)
def test_fallback_prefers_lower_load_within_a_tier(views):
    shard_views = [ShardView(index=i, breaker_states=tuple(states),
                             load=load)
                   for i, (states, load) in enumerate(views)]
    chosen = least_loaded_fallback(shard_views)
    winner = shard_views[chosen]
    same_tier = [v for v in shard_views
                 if v.health_tier() == winner.health_tier()]
    assert winner.load == min(v.load for v in same_tier)
