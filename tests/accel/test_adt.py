"""Tests for Accelerator Descriptor Tables (Section 4.2)."""

import pytest

from repro.accel.adt import (
    ADT_ENTRY_BYTES,
    ADT_HEADER_BYTES,
    AdtBuilder,
    AdtView,
    adt_size_bytes,
)
from repro.memory.layout import LayoutCache
from repro.memory.memspace import SimMemory
from repro.proto import parse_schema
from repro.proto.types import FieldType


@pytest.fixture()
def schema():
    return parse_schema("""
        message Inner { optional int32 a = 1; }
        message M {
          optional int64 x = 3;
          optional string s = 4;
          repeated int32 packed_nums = 6 [packed = true];
          optional sint64 z = 7;
          optional Inner inner = 9;
          repeated Inner kids = 10;
        }
        message Node { optional Node next = 1; optional int32 v = 2; }
    """)


def _build(schema):
    memory = SimMemory()
    cache = LayoutCache()
    builder = AdtBuilder(memory, cache)
    builder.build(schema.messages())
    return memory, cache, builder


class TestHeader:
    def test_header_contents(self, schema):
        memory, cache, builder = _build(schema)
        view = AdtView(memory, builder.adt_address(schema["M"]))
        layout = cache.layout(schema["M"])
        assert view.default_vptr == layout.vptr
        assert view.object_size == layout.object_size
        assert view.hasbits_offset == layout.hasbits_offset
        assert view.min_field_number == 3
        assert view.max_field_number == 10
        assert view.span == 8

    def test_one_adt_per_type_not_instance(self, schema):
        _, _, builder = _build(schema)
        # Building again must not allocate a second table.
        first = builder.adt_address(schema["M"])
        builder.build([schema["M"]])
        assert builder.adt_address(schema["M"]) == first

    def test_size_accounts_for_regions(self, schema):
        size = adt_size_bytes(schema["M"])
        assert size == ADT_HEADER_BYTES + 8 * ADT_ENTRY_BYTES + 8


class TestEntries:
    def test_entry_indexed_by_field_number(self, schema):
        memory, cache, builder = _build(schema)
        view = AdtView(memory, builder.adt_address(schema["M"]))
        entry = view.entry(4)
        assert entry is not None and entry.defined
        assert entry.field_type is FieldType.STRING
        layout = cache.layout(schema["M"])
        assert entry.field_offset == layout.field_offsets[4]

    def test_hole_entries_undefined(self, schema):
        memory, _, builder = _build(schema)
        view = AdtView(memory, builder.adt_address(schema["M"]))
        entry = view.entry(5)
        assert entry is not None and not entry.defined
        entry8 = view.entry(8)
        assert entry8 is not None and not entry8.defined

    def test_out_of_range_is_none(self, schema):
        memory, _, builder = _build(schema)
        view = AdtView(memory, builder.adt_address(schema["M"]))
        assert view.entry(2) is None
        assert view.entry(11) is None

    def test_flags(self, schema):
        memory, _, builder = _build(schema)
        view = AdtView(memory, builder.adt_address(schema["M"]))
        packed = view.entry(6)
        assert packed.repeated and packed.packed
        zigzag = view.entry(7)
        assert zigzag.zigzag and not zigzag.repeated
        sub = view.entry(9)
        assert sub.is_message and not sub.repeated
        kids = view.entry(10)
        assert kids.is_message and kids.repeated

    def test_sub_adt_pointer(self, schema):
        memory, _, builder = _build(schema)
        view = AdtView(memory, builder.adt_address(schema["M"]))
        assert view.entry(9).sub_adt_ptr == \
            builder.adt_address(schema["Inner"])

    def test_recursive_type_points_to_itself(self, schema):
        memory, _, builder = _build(schema)
        addr = builder.adt_address(schema["Node"])
        view = AdtView(memory, addr)
        assert view.entry(1).sub_adt_ptr == addr


class TestIsSubmessageBits:
    def test_bits_set_for_message_fields(self, schema):
        memory, _, builder = _build(schema)
        view = AdtView(memory, builder.adt_address(schema["M"]))
        assert view.is_submessage_bit(9)
        assert view.is_submessage_bit(10)
        assert not view.is_submessage_bit(4)
        assert not view.is_submessage_bit(5)
        assert not view.is_submessage_bit(99)


class TestBuilder:
    def test_reachable_types_built_automatically(self, schema):
        memory = SimMemory()
        builder = AdtBuilder(memory, LayoutCache())
        builder.build([schema["M"]])  # Inner reachable via fields
        assert builder.adt_address(schema["Inner"]) > 0

    def test_unknown_type_raises(self, schema):
        builder = AdtBuilder(SimMemory(), LayoutCache())
        with pytest.raises(KeyError):
            builder.adt_address(schema["M"])

    def test_descriptor_for_reverse_lookup(self, schema):
        _, _, builder = _build(schema)
        addr = builder.adt_address(schema["M"])
        assert builder.descriptor_for(addr) is schema["M"]
