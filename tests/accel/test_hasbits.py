"""Tests for the sparse-vs-dense hasbits trade-off model."""

import pytest

from repro.accel.hasbits import (
    break_even_present_fields,
    compare,
    dense_cost,
    sparse_cost,
    sparse_wins,
)
from repro.proto import parse_schema


def _type_with(span: int, defined: int):
    step = max(1, (span - 1) // max(defined - 1, 1)) if defined > 1 else 1
    numbers = [1 + i * step for i in range(defined - 1)] + [span]
    fields = "\n".join(f"optional int32 f{n} = {n};"
                       for n in sorted(set(numbers)))
    return parse_schema(f"message T {{ {fields} }}")["T"]


class TestCosts:
    def test_sparse_streams_span_words(self):
        descriptor = _type_with(span=100, defined=5)
        assert sparse_cost(descriptor).bitfield_bits == 128  # 2 words
        assert sparse_cost(descriptor).mapping_bits == 0

    def test_dense_streams_defined_words_plus_mapping(self):
        descriptor = _type_with(span=100, defined=5)
        cost = dense_cost(descriptor, present_fields=3)
        assert cost.bitfield_bits == 64
        assert cost.mapping_bits == 3 * 32

    def test_contiguous_types_always_favour_sparse(self):
        # span == defined: sparse streams the same words and skips the
        # mapping reads entirely.
        descriptor = _type_with(span=10, defined=10)
        for present in range(11):
            assert sparse_wins(descriptor, present)

    def test_extremely_sparse_type_can_favour_dense(self):
        wide = parse_schema("""
            message W {
              optional int32 lo = 1;
              optional int32 hi = 2000;
            }
        """)["W"]
        # 2000-bit sparse field vs 64 dense bits + 1 mapping read.
        assert not sparse_wins(wide, present_fields=1)
        assert break_even_present_fields(wide) > 10


class TestFleetConclusion:
    def test_typical_fleet_shapes_favour_sparse(self):
        from repro.fleet.protodb import ProtoDb

        wins = 0
        total = 0
        for record in ProtoDb(types=400):
            descriptor = _type_with(
                span=min(record.field_number_span, 300),
                defined=min(record.defined_fields,
                            record.field_number_span, 40))
            present = max(1, int(record.defined_fields * 0.45))
            total += 1
            wins += sparse_wins(descriptor, present)
        assert wins / total > 0.9

    def test_compare_dict(self):
        descriptor = _type_with(span=64, defined=8)
        result = compare(descriptor, present_fields=4)
        assert result["sparse_bits"] == 64
        assert result["dense_bits"] == 64 + 128
        assert result["sparse_wins"] == 1.0
