"""Tests for the deserializer unit: functional behaviour and cycle model."""

import pytest

from repro.accel.driver import ProtoAccelerator
from repro.memory.arena import ArenaExhausted
from repro.proto import parse_schema
from repro.proto.errors import DecodeError
from repro.proto.wire import encode_tag
from repro.proto.types import WireType
from repro.soc.config import SoCConfig


@pytest.fixture()
def schema():
    return parse_schema("""
        message Inner { optional int32 a = 1; optional string tag = 2; }
        message M {
          optional int64 x = 1;
          optional string s = 2;
          repeated int32 packed_nums = 3 [packed = true];
          repeated uint32 plain_nums = 4;
          optional Inner inner = 5;
          repeated Inner kids = 6;
          optional sint32 z = 7;
          optional bool b = 8;
          optional double d = 9;
          optional float f = 10;
          optional bytes raw = 11;
          repeated string labels = 12;
          repeated double packed_ds = 13 [packed = true];
        }
        message Deep { optional Deep next = 1; optional int32 v = 2; }
    """)


def _accel_for(schema):
    accel = ProtoAccelerator()
    accel.register_schema(schema)
    return accel


def _roundtrip(accel, descriptor, message):
    data = message.serialize()
    result = accel.deserialize(descriptor, data)
    return accel.read_message(descriptor, result.dest_addr), result.stats


class TestFunctional:
    def test_scalars(self, schema):
        accel = _accel_for(schema)
        m = schema["M"].new_message()
        m["x"] = -42
        m["z"] = -7
        m["b"] = True
        m["d"] = 3.25
        m["f"] = -0.5
        back, stats = _roundtrip(accel, schema["M"], m)
        assert back == m
        assert stats.fields_parsed == 5

    def test_strings_and_bytes(self, schema):
        accel = _accel_for(schema)
        m = schema["M"].new_message()
        m["s"] = "short"
        m["raw"] = bytes(range(100))
        back, stats = _roundtrip(accel, schema["M"], m)
        assert back == m
        assert stats.strings == 2

    def test_long_string(self, schema):
        accel = _accel_for(schema)
        m = schema["M"].new_message()
        m["s"] = "z" * 5000
        back, _ = _roundtrip(accel, schema["M"], m)
        assert back["s"] == m["s"]

    def test_packed_repeated(self, schema):
        accel = _accel_for(schema)
        m = schema["M"].new_message()
        m["packed_nums"] = [0, 1, -1, 2**31 - 1, -(2**31)]
        m["packed_ds"] = [1.0, -2.5]
        back, _ = _roundtrip(accel, schema["M"], m)
        assert back == m

    def test_unpacked_repeated(self, schema):
        accel = _accel_for(schema)
        m = schema["M"].new_message()
        m["plain_nums"] = [7, 8, 9]
        back, stats = _roundtrip(accel, schema["M"], m)
        assert back == m
        assert stats.repeated_elements == 3

    def test_repeated_strings(self, schema):
        accel = _accel_for(schema)
        m = schema["M"].new_message()
        m["labels"] = ["a", "b" * 40, ""]
        back, _ = _roundtrip(accel, schema["M"], m)
        assert back == m

    def test_submessage(self, schema):
        accel = _accel_for(schema)
        m = schema["M"].new_message()
        inner = m.mutable("inner")
        inner["a"] = 5
        inner["tag"] = "hi"
        back, stats = _roundtrip(accel, schema["M"], m)
        assert back == m
        assert stats.submessages == 1

    def test_repeated_submessages(self, schema):
        accel = _accel_for(schema)
        m = schema["M"].new_message()
        for index in range(4):
            kid = m["kids"].add()
            kid["a"] = index
        back, _ = _roundtrip(accel, schema["M"], m)
        assert back == m

    def test_deep_nesting(self, schema):
        accel = _accel_for(schema)
        m = schema["Deep"].new_message()
        node = m
        for level in range(30):
            node["v"] = level
            node = node.mutable("next")
        node["v"] = 99
        back, stats = _roundtrip(accel, schema["Deep"], m)
        assert back == m
        assert stats.max_stack_depth == 31
        # Depth beyond the on-chip stacks (25) spills to memory.
        assert stats.stack_spills > 0

    def test_interleaved_repeated_fields_reopen(self, schema):
        # Same unpacked field appears, another field intervenes, then the
        # first continues: the tagged region closes and reopens.
        accel = _accel_for(schema)
        data = (encode_tag(4, WireType.VARINT) + b"\x01"
                + encode_tag(1, WireType.VARINT) + b"\x05"
                + encode_tag(4, WireType.VARINT) + b"\x02")
        result = accel.deserialize(schema["M"], data)
        back = accel.read_message(schema["M"], result.dest_addr)
        assert list(back["plain_nums"]) == [1, 2]
        assert back["x"] == 5

    def test_split_submessage_merges(self, schema):
        data = (b"\x2a\x02\x08\x07" + b"\x2a\x04\x12\x02hi")
        accel = _accel_for(schema)
        result = accel.deserialize(schema["M"], data)
        back = accel.read_message(schema["M"], result.dest_addr)
        assert back["inner"]["a"] == 7
        assert back["inner"]["tag"] == "hi"

    def test_unknown_fields_skipped(self, schema):
        accel = _accel_for(schema)
        data = (encode_tag(55, WireType.VARINT) + b"\x07"
                + encode_tag(56, WireType.LENGTH_DELIMITED) + b"\x02xy"
                + encode_tag(1, WireType.VARINT) + b"\x03")
        result = accel.deserialize(schema["M"], data)
        back = accel.read_message(schema["M"], result.dest_addr)
        assert back["x"] == 3
        assert result.stats.unknown_fields_skipped == 2

    def test_empty_message(self, schema):
        accel = _accel_for(schema)
        result = accel.deserialize(schema["M"], b"")
        back = accel.read_message(schema["M"], result.dest_addr)
        assert back.present_field_numbers() == []

    def test_matches_software_parser(self, schema, kitchen_schema,
                                     kitchen_message):
        accel = ProtoAccelerator()
        accel.register_schema(kitchen_schema)
        data = kitchen_message.serialize()
        result = accel.deserialize(kitchen_schema["Outer"], data)
        back = accel.read_message(kitchen_schema["Outer"],
                                  result.dest_addr)
        software = kitchen_schema["Outer"].parse(data)
        assert back == software == kitchen_message


class TestErrors:
    def test_truncated_input(self, schema):
        accel = _accel_for(schema)
        with pytest.raises(DecodeError):
            accel.deserialize(schema["M"], b"\x12\x05hi")

    def test_truncated_submessage(self, schema):
        accel = _accel_for(schema)
        with pytest.raises(DecodeError):
            accel.deserialize(schema["M"], b"\x2a\x10\x08\x01")

    def test_bad_wire_type(self, schema):
        accel = _accel_for(schema)
        data = encode_tag(1, WireType.FIXED32) + b"\x00" * 4
        with pytest.raises(DecodeError):
            accel.deserialize(schema["M"], data)

    def test_arena_exhaustion_surfaces(self, schema):
        accel = ProtoAccelerator(deser_arena_bytes=256)
        accel.register_schema(schema)
        m = schema["M"].new_message()
        m["s"] = "x" * 1024
        with pytest.raises(ArenaExhausted):
            accel.deserialize(schema["M"], m.serialize())

    def test_requires_arena_assignment(self, schema):
        from repro.accel.deserializer import DeserializerUnit
        from repro.memory.memspace import SimMemory

        unit = DeserializerUnit(SimMemory())
        with pytest.raises(RuntimeError):
            unit.deserialize(0x2000, 0x3000, 0x4000, 0)


class TestCycleModel:
    def test_cycles_positive_and_scale_with_size(self, schema):
        accel = _accel_for(schema)
        small = schema["M"].new_message()
        small["x"] = 1
        big = schema["M"].new_message()
        big["s"] = "q" * 4096
        _, small_stats = _roundtrip(accel, schema["M"], small)
        _, big_stats = _roundtrip(accel, schema["M"], big)
        assert 0 < small_stats.cycles < big_stats.cycles

    def test_adt_cache_warms_across_messages(self, schema):
        accel = _accel_for(schema)
        m = schema["M"].new_message()
        m["x"] = 1
        data = m.serialize()
        first = accel.deserialize(schema["M"], data).stats
        second = accel.deserialize(schema["M"], data).stats
        assert second.cycles <= first.cycles

    def test_varint_size_does_not_slow_fsm(self, schema):
        # Single-cycle varint decode: a 10-byte varint costs the same FSM
        # cycles as a 1-byte varint, so throughput rises with size.
        accel = _accel_for(schema)
        small = schema["M"].new_message()
        small["x"] = 1
        large = schema["M"].new_message()
        large["x"] = -1  # 10-byte varint
        _, s = _roundtrip(accel, schema["M"], small)
        accel2 = _accel_for(schema)
        large_data = large.serialize()
        l = accel2.deserialize(schema["M"], large_data).stats
        small_gbps = s.wire_bytes / s.cycles
        large_gbps = l.wire_bytes / l.cycles
        assert large_gbps > small_gbps

    def test_bulk_copy_rate_is_16_bytes_per_cycle(self, schema):
        accel = _accel_for(schema)
        m = schema["M"].new_message()
        m["s"] = "x" * 16384
        _, stats = _roundtrip(accel, schema["M"], m)
        # Bytes per cycle should approach (not exceed) the window width.
        rate = stats.wire_bytes / stats.cycles
        assert 4.0 < rate <= 16.0
