"""Tests for the near-core vs PCIe placement model."""

import pytest

from repro.accel.deserializer import DeserStats
from repro.accel.driver import ProtoAccelerator
from repro.accel.placement import (
    PcieAttachedModel,
    fleet_message_share_won_by_near_core,
    non_rpc_deser_share,
)
from repro.proto import parse_schema


class TestPcieModel:
    def test_dispatch_dominates_small_messages(self):
        pcie = PcieAttachedModel()
        tiny = DeserStats(wire_bytes=16, fields_parsed=2)
        assert pcie.deserialize_cycles(tiny) >= pcie.dispatch_cycles

    def test_dependent_ops_expose_round_trips(self):
        pcie = PcieAttachedModel()
        flat = DeserStats(wire_bytes=100, fields_parsed=10)
        nested = DeserStats(wire_bytes=100, fields_parsed=10,
                            submessages=3, strings=2)
        assert pcie.deserialize_cycles(nested) - \
            pcie.deserialize_cycles(flat) == \
            pytest.approx(5 * pcie.round_trip_cycles)

    def test_dma_cost_scales_with_bytes(self):
        pcie = PcieAttachedModel()
        small = DeserStats(wire_bytes=1000)
        large = DeserStats(wire_bytes=31000)
        delta = (pcie.deserialize_cycles(large)
                 - pcie.deserialize_cycles(small))
        assert delta == pytest.approx(30000 / pcie.dma_bytes_per_cycle)

    def test_crossover_positive_when_near_core_faster_per_byte(self):
        pcie = PcieAttachedModel()
        crossover = pcie.crossover_bytes(0.1, 40.0)
        assert crossover > 512  # beyond 93% of fleet messages

    def test_crossover_zero_when_near_core_slower_per_byte(self):
        pcie = PcieAttachedModel()
        assert pcie.crossover_bytes(10.0, 40.0) == 0.0


class TestFleetShares:
    def test_share_monotone_in_crossover(self):
        assert fleet_message_share_won_by_near_core(8) <= \
            fleet_message_share_won_by_near_core(512) <= \
            fleet_message_share_won_by_near_core(40000)

    def test_crossover_above_512_wins_most_messages(self):
        # Figure 3: 93% of messages are <= 512 B.
        assert fleet_message_share_won_by_near_core(513) >= 0.93

    def test_non_rpc_share_matches_section_34(self):
        assert non_rpc_deser_share() == pytest.approx(0.837)


class TestEndToEnd:
    def test_near_core_beats_pcie_on_fleet_median_message(self):
        schema = parse_schema(
            "message M { optional int64 a = 1; optional string s = 2; }")
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        m = schema["M"].new_message()
        m["a"] = 12345
        m["s"] = "twenty-byte payload"
        result = accel.deserialize(schema["M"], m.serialize())
        pcie = PcieAttachedModel()
        assert pcie.deserialize_cycles(result.stats) > \
            10 * result.stats.cycles
