"""Differential suite: RoCC vs PCIe attach points.

The transport seam's contract: the attach point changes *where* the
accelerator hangs, never *what* it computes or how many unit cycles it
charges.  On arbitrary valid messages, adversarially mutated wire, and
the PR 2 known-bad vector corpus, both transports must produce
identical decoded messages, identical structured errors, and identical
stats except the ``transport_cycles`` field -- which in turn must be
bit-identical across the interp/codegen/batch execution tiers on each
transport (the schedule is a pure function of the submission stream).
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings

from repro.accel import driver as driver_mod
from repro.accel.driver import ProtoAccelerator
from repro.proto import parse_schema
from repro.proto.decoder import parse_message
from repro.proto.errors import DecodeError
from repro.soc.config import SoCConfig

from tests.accel.test_codegen_diff import (
    _VICTIM_SCHEMA,
    _load_bad_vectors,
    _probe_message,
)
from tests.accel.test_codegen_diff import _PROBE_SCHEMA as _SCHEMA
from tests.strategies import schema_and_message, schema_wire_and_mutant

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

TRANSPORTS = ("rocc", "pcie")


def _accel(schema, transport, fast_path="codegen"):
    device = ProtoAccelerator(config=SoCConfig(transport=transport),
                              deser_arena_bytes=1 << 20,
                              ser_arena_bytes=1 << 20,
                              fast_path=fast_path)
    device.register_schema(schema)
    return device


def _stats_minus_transport(stats):
    return dataclasses.replace(stats, transport_cycles=0.0)


@_SETTINGS
@given(schema_and_message())
def test_valid_messages_identical_across_transports(pair):
    """Decoded message, re-encoded wire, and every stats field except
    transport_cycles agree across attach points."""
    schema, message = pair
    from repro.proto.encoder import serialize_message
    wire = serialize_message(message, check_required=False)
    outcomes = {}
    for transport in TRANSPORTS:
        device = _accel(schema, transport)
        result = device.deserialize(schema["Root"], wire)
        decoded = device.read_message(schema["Root"], result.dest_addr)
        addr = device.load_object(message)
        ser = device.serialize(schema["Root"], addr)
        outcomes[transport] = (decoded, ser.data,
                               _stats_minus_transport(result.stats),
                               _stats_minus_transport(ser.stats))
    assert outcomes["rocc"] == outcomes["pcie"]
    assert outcomes["rocc"][0] == parse_message(schema["Root"], wire)
    assert outcomes["rocc"][1] == wire


@_SETTINGS
@given(schema_wire_and_mutant())
def test_mutated_wire_verdicts_identical_across_transports(triple):
    schema, _, mutant = triple
    outcomes = []
    for transport in TRANSPORTS:
        device = _accel(schema, transport)
        try:
            result = device.deserialize(schema["Root"], mutant)
            outcomes.append(("ok", _stats_minus_transport(result.stats),
                             device.read_message(schema["Root"],
                                                 result.dest_addr)))
        except DecodeError as error:
            outcomes.append(("err", type(error), str(error),
                             getattr(error, "site", None)))
    assert outcomes[0] == outcomes[1]


@pytest.mark.parametrize("data", _load_bad_vectors())
def test_known_bad_vectors_rejected_identically(data):
    rejections = []
    for transport in TRANSPORTS:
        device = _accel(_VICTIM_SCHEMA, transport)
        with pytest.raises(DecodeError) as excinfo:
            device.deserialize(_VICTIM_SCHEMA["Victim"], data)
        rejections.append(excinfo.value)
    rocc_error, pcie_error = rejections
    assert type(pcie_error) is type(rocc_error)
    assert str(pcie_error) == str(rocc_error)
    assert pcie_error.site == rocc_error.site
    assert pcie_error.cycle == rocc_error.cycle


# -- tier identity of the transport schedule ---------------------------------

def test_transport_cycles_identical_across_execution_tiers():
    """The PCIe interrupt/doorbell schedule is a pure function of the
    submission stream, so batch-tier and codegen-tier runs charge
    bit-identical transport_cycles -- the same invariant the repo pins
    for unit cycles."""
    message = _probe_message()
    wires = [message.serialize()] * 12
    driver_mod.set_batch_cache_enabled(False)
    try:
        for transport in TRANSPORTS:
            per_tier = {}
            for fast_path in ("interp", "codegen", "batch"):
                device = _accel(_SCHEMA, transport, fast_path=fast_path)
                _, stats = device.deserialize_batch(_SCHEMA["Probe"], wires)
                addresses = [device.load_object(message) for _ in wires]
                _, ser_stats = device.serialize_batch(_SCHEMA["Probe"],
                                                      addresses)
                per_tier[fast_path] = (stats.transport_cycles,
                                       ser_stats.transport_cycles,
                                       stats.cycles, ser_stats.cycles)
            assert per_tier["interp"] == per_tier["codegen"] == \
                per_tier["batch"], f"tier divergence on {transport}"
    finally:
        driver_mod.set_batch_cache_enabled(True)


def test_rocc_transport_cycles_are_dispatch_cost():
    """RoCC per-op transport cost is exactly two custom instructions'
    dispatch (INFO + DO_PROTO), 8 cycles at the default 4/instruction;
    the batch fence adds one fence instruction per batch call."""
    message = _probe_message()
    wire = message.serialize()
    device = _accel(_SCHEMA, "rocc")
    result = device.deserialize(_SCHEMA["Probe"], wire)
    assert result.stats.transport_cycles == 8.0
    addr = device.load_object(message)
    ser = device.serialize(_SCHEMA["Probe"], addr)
    assert ser.stats.transport_cycles == 8.0


def test_pcie_amortises_across_a_batch():
    """One message alone pays the full doorbell+DMA+interrupt path; the
    same message inside a large batch pays a small amortised share."""
    message = _probe_message()
    wire = message.serialize()
    solo = _accel(_SCHEMA, "pcie")
    solo_cost = solo.deserialize(_SCHEMA["Probe"],
                                 wire).stats.transport_cycles
    batched = _accel(_SCHEMA, "pcie")
    _, stats = batched.deserialize_batch(_SCHEMA["Probe"], [wire] * 64)
    per_op = stats.transport_cycles / 64
    assert per_op < solo_cost / 10


def test_unit_cycles_do_not_depend_on_transport():
    """stats.cycles (and therefore Gbit/s) is byte-identical across
    transports -- the acceptance criterion that keeps every committed
    baseline valid."""
    message = _probe_message()
    wire = message.serialize()
    cycles = {}
    for transport in TRANSPORTS:
        device = _accel(_SCHEMA, transport)
        result = device.deserialize(_SCHEMA["Probe"], wire)
        addr = device.load_object(message)
        ser = device.serialize(_SCHEMA["Probe"], addr)
        cycles[transport] = (result.stats.cycles, ser.stats.cycles)
    assert cycles["rocc"] == cycles["pcie"]
