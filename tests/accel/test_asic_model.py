"""Tests for the Section 5.3 ASIC area/frequency model."""

import pytest

from repro.accel.asic_model import AsicModel


class TestPaperNumbers:
    """The paper: deserializer 1.95 GHz / 0.133 mm^2; serializer
    1.84 GHz / 0.278 mm^2 in a commercial 22 nm process."""

    def test_deserializer(self):
        unit = AsicModel().deserializer
        assert unit.frequency_ghz == pytest.approx(1.95, rel=0.02)
        assert unit.area_mm2 == pytest.approx(0.133, rel=0.03)

    def test_serializer(self):
        unit = AsicModel().serializer
        assert unit.frequency_ghz == pytest.approx(1.84, rel=0.02)
        assert unit.area_mm2 == pytest.approx(0.278, rel=0.03)

    def test_serializer_bigger_and_slower(self):
        model = AsicModel()
        assert model.serializer.area_mm2 > model.deserializer.area_mm2
        assert model.serializer.frequency_ghz < \
            model.deserializer.frequency_ghz


class TestScaling:
    def test_more_fsus_cost_area(self):
        small = AsicModel(num_field_serializer_units=2)
        large = AsicModel(num_field_serializer_units=8)
        assert large.serializer.area_mm2 > small.serializer.area_mm2
        # FSU count does not change the deserializer.
        assert large.deserializer.area_mm2 == small.deserializer.area_mm2

    def test_deeper_stacks_cost_area(self):
        shallow = AsicModel(context_stack_depth=12)
        deep = AsicModel(context_stack_depth=100)
        assert deep.deserializer.area_mm2 > shallow.deserializer.area_mm2
        assert deep.serializer.area_mm2 > shallow.serializer.area_mm2

    def test_breakdown_sums_to_total(self):
        unit = AsicModel().deserializer
        assert sum(area for _, area in unit.breakdown()) == \
            pytest.approx(unit.area_mm2)

    def test_report_format(self):
        report = AsicModel().report()
        assert "deserializer" in report and "serializer" in report
        assert "GHz" in report and "mm^2" in report
