"""Property tests: accelerator <-> software equivalence on random data.

These are the repository's strongest invariants:

1. the accelerator serializer's output is byte-identical to the software
   serializer for arbitrary messages (Section 4.5.1's claim); and
2. the accelerator deserializer populates object images that read back
   equal to the software parser's result.
"""

from hypothesis import HealthCheck, given, settings

from repro.accel.driver import ProtoAccelerator
from repro.proto.decoder import parse_message
from repro.proto.encoder import serialize_message

from tests.strategies import schema_and_message

_SETTINGS = settings(max_examples=40, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@_SETTINGS
@given(schema_and_message())
def test_accelerator_serializer_wire_identical(pair):
    schema, message = pair
    accel = ProtoAccelerator()
    accel.register_types([schema["Root"]])
    addr = accel.load_object(message)
    result = accel.serialize(message.descriptor, addr)
    assert result.data == serialize_message(message, check_required=False)


@_SETTINGS
@given(schema_and_message())
def test_accelerator_deserializer_matches_software(pair):
    schema, message = pair
    data = serialize_message(message, check_required=False)
    accel = ProtoAccelerator()
    accel.register_types([schema["Root"]])
    result = accel.deserialize(message.descriptor, data)
    observed = accel.read_message(message.descriptor, result.dest_addr)
    assert observed == parse_message(message.descriptor, data)


@_SETTINGS
@given(schema_and_message())
def test_full_accelerator_round_trip(pair):
    """serialize-on-accel(deserialize-on-accel(wire)) == wire."""
    schema, message = pair
    data = serialize_message(message, check_required=False)
    accel = ProtoAccelerator()
    accel.register_types([schema["Root"]])
    deser = accel.deserialize(message.descriptor, data)
    # Re-serialize from the object image the deserializer built.  Note the
    # image was written by the accelerator itself, not load_object.
    result = accel.serialize(message.descriptor, deser.dest_addr)
    # Canonical form: our software encoder is deterministic, so comparing
    # against a software re-encode of the parsed message is exact.
    expected = serialize_message(
        parse_message(message.descriptor, data), check_required=False)
    assert result.data == expected
