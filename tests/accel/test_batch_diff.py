"""Differential suite: batch tier vs interpretive FSM, whole batches.

The vectorized tier's contract is total behavioural equivalence at
batch granularity: on batches of arbitrary valid messages, on batches
salted with adversarially mutated wire, and on the PR 2 known-bad
vector corpus, ``fast_path="batch"`` must produce identical messages,
identical modeled totals (cycles included), and identical structured
errors to ``fast_path="interp"`` -- whether a given message replays on
the vector path or falls back to a scalar tier.
"""

import dataclasses
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings

from repro.accel import codegen
from repro.accel.driver import ProtoAccelerator
from repro.bench.microbench import batch_bench_names, build_microbench
from repro.proto import parse_schema
from repro.proto.encoder import serialize_message
from repro.proto.errors import DecodeError

from tests.strategies import schema_and_message, schema_wire_and_mutant

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@pytest.fixture(autouse=True)
def _clean_state():
    codegen.set_codegen_enabled(True)
    codegen.invalidate_kernel_caches()
    yield
    codegen.set_codegen_enabled(True)
    codegen.invalidate_kernel_caches()


def _accel_pair(schema):
    pair = []
    for fast_path in ("interp", "batch"):
        device = ProtoAccelerator(deser_arena_bytes=1 << 20,
                                  ser_arena_bytes=1 << 20,
                                  fast_path=fast_path)
        device.register_schema(schema)
        pair.append(device)
    return pair


def _deser_outcome(device, descriptor, buffers):
    """Everything observable from one deserialize_batch call."""
    try:
        addresses, stats = device.deserialize_batch(descriptor, buffers)
    except DecodeError as error:
        return ("err", type(error), str(error),
                getattr(error, "site", None))
    return ("ok", stats,
            [device.read_message(descriptor, addr) for addr in addresses])


@_SETTINGS
@given(schema_and_message())
def test_valid_batches_identical_across_tiers(pair):
    schema, message = pair
    wire = serialize_message(message, check_required=False)
    buffers = [wire] * 6
    interp, batch = _accel_pair(schema)
    interp_out = _deser_outcome(interp, schema["Root"], buffers)
    batch_out = _deser_outcome(batch, schema["Root"], buffers)
    assert batch_out == interp_out

    interp_addrs = [interp.load_object(message) for _ in range(6)]
    batch_addrs = [batch.load_object(message) for _ in range(6)]
    interp_ser = interp.serialize_batch(schema["Root"], interp_addrs)
    batch_ser = batch.serialize_batch(schema["Root"], batch_addrs)
    assert batch_ser[0] == interp_ser[0]
    assert batch_ser[1] == interp_ser[1]


@_SETTINGS
@given(schema_wire_and_mutant())
def test_mutant_salted_batches_identical(triple):
    """A mutant buried mid-batch: both tiers must reach the same
    verdict -- same messages and totals on accept, the same structured
    error (type, text, site) on reject."""
    schema, wire, mutant = triple
    buffers = [wire] * 3 + [mutant] + [wire] * 3
    interp, batch = _accel_pair(schema)
    interp_out = _deser_outcome(interp, schema["Root"], buffers)
    batch_out = _deser_outcome(batch, schema["Root"], buffers)
    assert batch_out == interp_out


# -- regular micro grid: the acceptance criterion -----------------------------


@pytest.mark.parametrize("name", ["varint-3", "varint-7-R", "double",
                                  "float-R", "varint-0", "varint-10-R"])
def test_micro_grid_cycles_bit_identical(name):
    """On the bench grid the batch tier's totals -- cycles included --
    and every deserialized object must equal the interpreter's
    bit-for-bit (the ISSUE's acceptance assertion)."""
    workload = build_microbench(name, batch=16)
    buffers = workload.wire_buffers()
    descriptor = workload.descriptor
    per_tier = {}
    for fast_path in ("interp", "batch"):
        accel = ProtoAccelerator(fast_path=fast_path)
        accel.register_types([descriptor])
        addresses, deser_stats = accel.deserialize_batch(descriptor,
                                                         buffers)
        messages = [accel.read_message(descriptor, addr)
                    for addr in addresses]
        obj_addrs = [accel.load_object(m) for m in workload.messages]
        outputs, ser_stats = accel.serialize_batch(descriptor, obj_addrs)
        per_tier[fast_path] = (dataclasses.asdict(deser_stats), messages,
                               outputs, dataclasses.asdict(ser_stats))
    assert per_tier["batch"] == per_tier["interp"]


def test_grid_names_are_batch_eligible():
    """The bench grid filter only admits schemas the classifier accepts
    (strings and sub-messages stay out by construction)."""
    from repro.proto import batchwire
    names = batch_bench_names()
    assert "varint-0" in names and "varint-0-R" in names
    assert "strings" not in names
    for name in names:
        workload = build_microbench(name, batch=1)
        assert batchwire.batch_eligible(workload.descriptor)


# -- PR 2 known-bad vector corpus ---------------------------------------------

_VICTIM_SCHEMA = parse_schema("""
    message Inner {
      optional int32 a = 1;
      optional Inner child = 3;
    }
    message Victim {
      optional int32 a = 1;
      optional string s = 2;
      optional Inner child = 3;
      repeated int32 packed = 4 [packed = true];
      optional fixed32 fx = 5;
    }
""")
_VICTIM_SCHEMA["Victim"].field_by_name("s").validate_utf8 = True

_VECTORS_DIR = Path(__file__).parent.parent / "proto" / "vectors"


def _load_bad_vectors():
    vectors = []
    for path in sorted(_VECTORS_DIR.glob("*.hex")):
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, _, hexbytes = line.partition(":")
            vectors.append(pytest.param(
                bytes.fromhex(hexbytes.strip()),
                id=f"{path.stem}/{name.strip()}"))
    assert vectors, f"no vectors found under {_VECTORS_DIR}"
    return vectors


@pytest.mark.parametrize("data", _load_bad_vectors())
def test_known_bad_vectors_rejected_identically_in_batches(data):
    valid = _VICTIM_SCHEMA["Victim"].new_message()
    valid["a"] = 7
    wire = valid.serialize()
    buffers = [wire] * 4 + [data]
    interp, batch = _accel_pair(_VICTIM_SCHEMA)
    rejections = []
    for device in (interp, batch):
        with pytest.raises(DecodeError) as excinfo:
            device.deserialize_batch(_VICTIM_SCHEMA["Victim"], buffers)
        rejections.append(excinfo.value)
    interp_error, batch_error = rejections
    assert type(batch_error) is type(interp_error)
    assert str(batch_error) == str(interp_error)
    assert batch_error.site == interp_error.site
    assert batch_error.cycle == interp_error.cycle
