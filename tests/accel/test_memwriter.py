"""Tests for the memwriter unit (high-to-low writes, length stack)."""

import pytest

from repro.accel.memwriter import Memwriter
from repro.memory.arena import ArenaExhausted, SerializerArena
from repro.memory.memspace import SimMemory
from repro.memory.timing import MemoryTimingModel


@pytest.fixture()
def memwriter():
    return Memwriter(SerializerArena(SimMemory(), data_size=4096),
                     MemoryTimingModel())


class TestPushing:
    def test_high_to_low_layout(self, memwriter):
        memwriter.push(b"tail")
        memwriter.push(b"head-")
        start = memwriter.arena.cursor
        assert memwriter.arena.memory.read(start, 9) == b"head-tail"

    def test_cycles_per_push(self, memwriter):
        memwriter.push(b"ab")           # 1 cycle minimum
        memwriter.push(b"x" * 48)       # 3 beats
        assert memwriter.cycles == pytest.approx(4.0)
        assert memwriter.bytes_written == 50

    def test_empty_push_free(self, memwriter):
        cursor = memwriter.arena.cursor
        memwriter.push(b"")
        assert memwriter.arena.cursor == cursor
        assert memwriter.cycles == 0.0


class TestLengthStack:
    def test_end_returns_bytes_since_begin(self, memwriter):
        memwriter.begin_message()
        memwriter.push(b"12345")
        memwriter.push(b"678")
        assert memwriter.end_message() == 8

    def test_nested_messages(self, memwriter):
        memwriter.begin_message()          # outer
        memwriter.push(b"oo")
        memwriter.begin_message()          # inner
        memwriter.push(b"iii")
        assert memwriter.end_message() == 3
        memwriter.push(b"k")               # inner key, counted in outer
        assert memwriter.end_message() == 6
        assert memwriter.depth == 0

    def test_unbalanced_end_rejected(self, memwriter):
        with pytest.raises(RuntimeError):
            memwriter.end_message()

    def test_depth_tracking(self, memwriter):
        assert memwriter.depth == 0
        memwriter.begin_message()
        memwriter.begin_message()
        assert memwriter.depth == 2


class TestTopLevel:
    def test_finish_records_pointer_table_entry(self, memwriter):
        memwriter.push(b"payload")
        addr, length = memwriter.finish_top_level()
        assert length == 7
        assert memwriter.arena.output(0) == b"payload"
        assert addr == memwriter.arena.cursor

    def test_arena_exhaustion_propagates(self):
        memwriter = Memwriter(SerializerArena(SimMemory(), data_size=16),
                              MemoryTimingModel())
        with pytest.raises(ArenaExhausted):
            memwriter.push(b"x" * 64)
