"""Tests for the Section 4.2 min-field-number offset.

"To save memory in the common case where field numbers are contiguous
but start at a large number, we provide the accelerator with the minimum
defined field number in a message type, with respect to which it
calculates field-number offsets."
"""

import pytest

from repro.accel.adt import AdtView, adt_size_bytes
from repro.accel.driver import ProtoAccelerator
from repro.memory.layout import LayoutCache
from repro.proto import parse_schema


@pytest.fixture()
def schema():
    return parse_schema("""
        message HighNumbered {
          optional int64 a = 1000;
          optional string b = 1001;
          optional int32 c = 1003;
          repeated double d = 1005 [packed = true];
        }
    """)


class TestOffsetStorage:
    def test_hasbits_sized_by_span_not_max(self, schema):
        layout = LayoutCache().layout(schema["HighNumbered"])
        # Span is 6 (1000..1005): one 64-bit word, not sixteen.
        assert layout.hasbits_words == 1

    def test_adt_sized_by_span_not_max(self, schema):
        # 6 entries, not 1005.
        assert adt_size_bytes(schema["HighNumbered"]) == 64 + 6 * 16 + 8

    def test_hasbit_positions_relative_to_min(self, schema):
        layout = LayoutCache().layout(schema["HighNumbered"])
        assert layout.hasbit_position(1000) == (0, 0)
        assert layout.hasbit_position(1005) == (0, 5)


class TestFunctional:
    def _message(self, schema):
        m = schema["HighNumbered"].new_message()
        m["a"] = -7
        m["b"] = "offset-indexed"
        m["c"] = 42
        m["d"] = [1.0, 2.0]
        return m

    def test_accel_deser(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        m = self._message(schema)
        result = accel.deserialize(schema["HighNumbered"], m.serialize())
        assert accel.read_message(schema["HighNumbered"],
                                  result.dest_addr) == m

    def test_accel_ser_wire_identical(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        m = self._message(schema)
        addr = accel.load_object(m)
        assert accel.serialize(schema["HighNumbered"], addr).data == \
            m.serialize()

    def test_adt_range_check_rejects_out_of_range_numbers(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        memory = accel.memory
        addr = accel.adts.adt_address(schema["HighNumbered"])
        view = AdtView(memory, addr)
        assert view.min_field_number == 1000
        assert view.entry(999) is None
        assert view.entry(1006) is None
        assert view.entry(1) is None

    def test_keys_are_two_bytes_on_wire(self, schema):
        # Field 1000 needs a 2-byte key; the varint unit handles it the
        # same as any key.
        m = self._message(schema)
        wire = m.serialize()
        assert wire[0:2] == b"\xc0\x3e"  # (1000 << 3 | 0) varint
