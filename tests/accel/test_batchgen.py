"""Unit tests for the vectorized batch tier (repro.accel.batchgen).

Covers what the differential suite does not: driver wiring of
``fast_path="batch"``, the batch/scalar fallback boundary (empty
batches, batches below MIN_BATCH, mixed regular/irregular batches),
the process-wide codegen kill switch, the per-tier perf table, and the
rule that an armed fault plan keeps the engine uninstalled so every
named injection site still fires through the scalar paths.
"""

import dataclasses

import pytest

np = pytest.importorskip("numpy")

from repro.accel import batchgen, codegen, perf, tiers
from repro.accel.driver import ProtoAccelerator
from repro.faults import FaultPlan, FaultSite
from repro.faults.plan import PCIE_SITES
from repro.proto import batchwire, parse_schema
from repro.soc.config import SoCConfig

_SCHEMA = parse_schema("""
    message Flat {
      optional uint64 v = 1;
      optional sint32 z = 2;
      optional double d = 3;
      repeated int32 r = 4 [packed = true];
    }
""")

# Fault-site probe schema: deliberately batch-INELIGIBLE (string,
# sub-message) so every injection site is reachable, mirroring
# tests/accel/test_codegen.py.
_PROBE_SCHEMA = parse_schema("""
    message Inner { optional int32 v = 1; optional string tag = 2; }
    message Probe {
      optional int32 a = 1;
      optional string s = 2;
      optional Inner child = 3;
      repeated int32 packed = 4 [packed = true];
      repeated Inner kids = 5;
      optional sint64 z = 6;
      optional double d = 7;
    }
""")
_PROBE_SCHEMA["Probe"].field_by_name("s").validate_utf8 = True

_DESER_SITES = [s for s in FaultSite
                if s not in (FaultSite.SER_ABORT, FaultSite.SER_HANG)]
_SER_SITES = [FaultSite.SER_ABORT, FaultSite.SER_HANG]


def _accel(**kwargs):
    device = ProtoAccelerator(deser_arena_bytes=1 << 20,
                              ser_arena_bytes=1 << 20, **kwargs)
    device.register_schema(_SCHEMA)
    return device


def _flat_message(value=1, elements=(1, 2, 3)):
    message = _SCHEMA["Flat"].new_message()
    message["v"] = value
    message["z"] = -4
    message["d"] = 2.5
    message["r"] = list(elements)
    return message


def _probe_message():
    message = _PROBE_SCHEMA["Probe"].new_message()
    message["a"] = 150
    message["s"] = "héllo wörld"
    message["z"] = -7
    message["d"] = 2.5
    message["packed"] = [3, 270, 86942]
    message.mutable("child")["v"] = 99
    for tag in ("x", "y"):
        message["kids"].add()["tag"] = tag
    return message


def _regular_batch(n):
    """n same-shape wires: identical varint widths, identical counts."""
    return [_flat_message(value=10 + i).serialize() for i in range(n)]


def _both_tiers(buffers):
    """(interp result, batch result) for one deserialize_batch call."""
    results = []
    for fast_path in ("interp", "batch"):
        accel = _accel(fast_path=fast_path)
        addresses, stats = accel.deserialize_batch(_SCHEMA["Flat"], buffers)
        messages = [accel.read_message(_SCHEMA["Flat"], addr)
                    for addr in addresses]
        results.append((messages, stats))
    return results


@pytest.fixture(autouse=True)
def _clean_state():
    codegen.set_codegen_enabled(True)
    codegen.invalidate_kernel_caches()
    tiers.reset()
    yield
    codegen.set_codegen_enabled(True)
    codegen.invalidate_kernel_caches()
    tiers.reset()


# -- driver wiring ------------------------------------------------------------


def test_driver_accepts_batch_fast_path():
    accel = _accel(fast_path="batch")
    assert accel.batch is not None
    assert accel.deserializer.fast_path == "batch"
    assert accel.serializer.fast_path == "batch"
    # The scalar kernels stay installed: they run the anchor and every
    # per-message fallback.
    assert accel.deserializer.codegen is not None
    assert accel.serializer.codegen is not None


def test_other_fast_paths_install_no_engine():
    for fast_path in ("interp", "codegen"):
        assert _accel(fast_path=fast_path).batch is None


def test_driver_rejects_unknown_fast_path():
    with pytest.raises(ValueError, match="fast_path"):
        ProtoAccelerator(fast_path="vector")


# -- the batch/scalar fallback boundary ---------------------------------------


def test_empty_batch():
    (interp_msgs, interp_stats), (batch_msgs, batch_stats) = _both_tiers([])
    assert interp_msgs == batch_msgs == []
    assert batch_stats == interp_stats
    assert tiers.counters()["deser"]["batch-vector"] == 0


def test_batch_of_one_runs_scalar():
    buffers = _regular_batch(1)
    (interp_msgs, interp_stats), (batch_msgs, batch_stats) = \
        _both_tiers(buffers)
    assert batch_msgs == interp_msgs
    assert batch_stats == interp_stats
    assert tiers.counters()["deser"]["batch-vector"] == 0


def test_batch_below_min_batch_runs_scalar():
    buffers = _regular_batch(batchgen.MIN_BATCH - 1)
    (interp_msgs, interp_stats), (batch_msgs, batch_stats) = \
        _both_tiers(buffers)
    assert batch_msgs == interp_msgs
    assert batch_stats == interp_stats
    assert tiers.counters()["deser"]["batch-vector"] == 0


def test_regular_batch_vectorizes():
    buffers = _regular_batch(12)
    (interp_msgs, interp_stats), (batch_msgs, batch_stats) = \
        _both_tiers(buffers)
    assert batch_msgs == interp_msgs
    assert batch_stats == interp_stats
    counters = tiers.counters()["deser"]
    assert counters["batch-vector"] > 0
    assert counters["batch-scalar"] >= 1  # at least the anchor


def test_mixed_batch_falls_back_per_message():
    """Messages whose varint widths or element counts differ from the
    anchor template run scalar; everything else still vectorizes, and
    the combined results match the interpreter bit-for-bit."""
    buffers = []
    for i in range(16):
        if i % 5 == 2:
            # Irregular: wider varint and a different element count.
            buffers.append(
                _flat_message(value=2 ** 40 + i,
                              elements=(1,) * 7).serialize())
        else:
            buffers.append(_flat_message(value=20 + i).serialize())
    (interp_msgs, interp_stats), (batch_msgs, batch_stats) = \
        _both_tiers(buffers)
    assert batch_msgs == interp_msgs
    assert batch_stats == interp_stats
    counters = tiers.counters()["deser"]
    assert counters["batch-vector"] > 0
    assert counters["batch-scalar"] >= 3  # anchor + the irregular ones


def test_ineligible_schema_runs_scalar():
    assert not batchwire.batch_eligible(_PROBE_SCHEMA["Probe"])
    accel = ProtoAccelerator(deser_arena_bytes=1 << 20,
                             ser_arena_bytes=1 << 20, fast_path="batch")
    accel.register_schema(_PROBE_SCHEMA)
    wire = _probe_message().serialize()
    accel.deserialize_batch(_PROBE_SCHEMA["Probe"], [wire] * 8)
    assert tiers.counters()["deser"]["batch-vector"] == 0


def test_codegen_kill_switch_disables_vectorization():
    codegen.set_codegen_enabled(False)
    buffers = _regular_batch(8)
    (interp_msgs, interp_stats), (batch_msgs, batch_stats) = \
        _both_tiers(buffers)
    assert batch_msgs == interp_msgs
    assert batch_stats == interp_stats
    assert tiers.counters()["deser"]["batch-vector"] == 0


def test_serialize_batch_round_trip_and_stats():
    messages = [_flat_message(value=30 + i) for i in range(10)]
    wires = [m.serialize() for m in messages]
    results = []
    for fast_path in ("interp", "batch"):
        accel = _accel(fast_path=fast_path)
        addresses = [accel.load_object(m) for m in messages]
        outputs, stats = accel.serialize_batch(_SCHEMA["Flat"], addresses)
        results.append((outputs, stats))
    (interp_out, interp_stats), (batch_out, batch_stats) = results
    assert batch_out == interp_out == wires
    assert batch_stats == interp_stats
    assert tiers.counters()["ser"]["batch-vector"] > 0


def test_batch_cycles_bit_identical_to_interp():
    """The ISSUE's cycle-identity acceptance criterion, field by field
    (dataclasses.asdict makes a mismatch readable)."""
    buffers = _regular_batch(16)
    (_, interp_stats), (_, batch_stats) = _both_tiers(buffers)
    assert dataclasses.asdict(batch_stats) == \
        dataclasses.asdict(interp_stats)


# -- observability ------------------------------------------------------------


def test_perf_line_reports_tier_table():
    buffers = _regular_batch(8)
    accel = _accel(fast_path="batch")
    accel.deserialize_batch(_SCHEMA["Flat"], buffers)
    rendered = perf.render_codegen_line()
    assert "codegen cache" in rendered
    assert "deser tiers:" in rendered
    assert "ser tiers:" in rendered
    assert "batch-vector" in rendered
    counters = perf.tier_counters()
    assert counters["deser"]["batch-vector"] > 0


# -- armed fault plans keep the engine out ------------------------------------


def _fault_accel(site):
    plan = FaultPlan(seed=1, rate=1.0, sites=(site,), max_trigger=1)
    # The transport's own sites are only reachable over PCIe (the RoCC
    # path draws from the historical site set, bit-identically).
    transport = "pcie" if site in PCIE_SITES else "rocc"
    device = ProtoAccelerator(config=SoCConfig(transport=transport),
                              deser_arena_bytes=1 << 20,
                              ser_arena_bytes=1 << 20,
                              faults=plan, fast_path="batch")
    device.register_schema(_PROBE_SCHEMA)
    return device


@pytest.mark.parametrize("site", list(FaultSite),
                         ids=[s.value for s in FaultSite])
def test_armed_fault_plan_keeps_batch_engine_uninstalled(site):
    """Requesting the batch tier must not shadow a single injection
    site: with any plan armed the driver installs neither the batch
    engine nor the scalar kernel bindings."""
    accel = _fault_accel(site)
    assert accel.batch is None
    assert accel.deserializer.codegen is None
    assert accel.serializer.codegen is None


@pytest.mark.parametrize("site", _DESER_SITES,
                         ids=[s.value for s in _DESER_SITES])
def test_deser_fault_sites_fire_despite_batch_tier(site):
    accel = _fault_accel(site)
    wire = _probe_message().serialize()
    _, stats = accel.deserialize_batch(_PROBE_SCHEMA["Probe"], [wire] * 5)
    assert stats.faults_injected >= 1
    assert tiers.counters()["deser"]["batch-vector"] == 0


@pytest.mark.parametrize("site", _SER_SITES,
                         ids=[s.value for s in _SER_SITES])
def test_ser_fault_sites_fire_despite_batch_tier(site):
    accel = _fault_accel(site)
    addresses = [accel.load_object(_probe_message()) for _ in range(5)]
    _, stats = accel.serialize_batch(_PROBE_SCHEMA["Probe"], addresses)
    assert stats.faults_injected >= 1
    assert tiers.counters()["ser"]["batch-vector"] == 0
