"""Tests for performance counters and arena auto-renewal."""

import pytest

from repro.accel.driver import ProtoAccelerator
from repro.accel.perf import collect
from repro.memory.arena import ArenaExhausted
from repro.proto import parse_schema


@pytest.fixture()
def schema():
    return parse_schema("""
        message M { optional string s = 1; optional sint64 z = 2; }
    """)


class TestPerfCounters:
    def test_counters_accumulate(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        m = schema["M"].new_message()
        m["s"] = "payload"
        m["z"] = -5
        accel.deserialize(schema["M"], m.serialize())
        accel.serialize(schema["M"], accel.load_object(m))
        report = collect(accel)
        assert report.rocc_instructions >= 6
        assert report.varint_decodes > 0
        assert report.varint_encodes > 0
        assert report.zigzag_ops >= 2  # decode + encode of z
        assert report.deser_arena_bytes_used > 0
        assert report.ser_outputs == 1
        assert report.memory_read_bytes > 0

    def test_render_contains_all_sections(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        text = collect(accel).render()
        for fragment in ("RoCC", "varint", "UTF-8", "ADT", "TLB",
                         "arena", "memory"):
            assert fragment in text

    def test_adt_hit_rate_bounds(self, schema):
        accel = ProtoAccelerator()
        report = collect(accel)
        assert report.adt_cache_hit_rate == 1.0  # no accesses yet


class TestArenaRenewal:
    def test_exhaustion_raises_without_opt_in(self, schema):
        accel = ProtoAccelerator(deser_arena_bytes=256)
        accel.register_schema(schema)
        m = schema["M"].new_message()
        m["s"] = "x" * 1024
        with pytest.raises(ArenaExhausted):
            accel.deserialize(schema["M"], m.serialize())

    def test_auto_renewal_recovers(self, schema):
        accel = ProtoAccelerator(deser_arena_bytes=2048)
        accel.register_schema(schema)
        m = schema["M"].new_message()
        m["s"] = "y" * 1500
        wire = m.serialize()
        # Each op consumes ~1.5 KB of arena; the second would exhaust a
        # 2 KB arena without renewal.
        first = accel.deserialize(schema["M"], wire, auto_renew_arena=True)
        second = accel.deserialize(schema["M"], wire,
                                   auto_renew_arena=True)
        for result in (first, second):
            assert accel.read_message(schema["M"], result.dest_addr) == m
        # The renewal's interrupt cost shows up in the second op.
        assert second.stats.cycles >= \
            first.stats.cycles + ProtoAccelerator.ARENA_RENEWAL_CYCLES / 2

    def test_renewal_charges_interrupt_cycles(self, schema):
        accel = ProtoAccelerator(deser_arena_bytes=2048)
        accel.register_schema(schema)
        m = schema["M"].new_message()
        m["s"] = "z" * 1500
        wire = m.serialize()
        accel.deserialize(schema["M"], wire, auto_renew_arena=True)
        renewed = accel.deserialize(schema["M"], wire,
                                    auto_renew_arena=True)
        assert renewed.stats.cycles > \
            ProtoAccelerator.ARENA_RENEWAL_CYCLES

    def test_message_too_big_for_any_arena_still_fails(self, schema):
        accel = ProtoAccelerator(deser_arena_bytes=512)
        accel.register_schema(schema)
        m = schema["M"].new_message()
        m["s"] = "w" * 4096
        with pytest.raises(ArenaExhausted):
            accel.deserialize(schema["M"], m.serialize(),
                              auto_renew_arena=True)
