"""Unit tests for the schema-specialized kernel tier (repro.accel.codegen).

Covers the pieces the differential suite does not: the bounded LRU code
cache and its counters, process-wide enable/disable, invalidation
alongside the ADT caches, the driver's fast-path validation, and the
rule that an armed fault plan keeps the bindings uninstalled so every
named injection site still fires through the interpretive FSMs.
"""

import pytest

from repro.accel import adt, codegen, perf
from repro.accel.codegen import KernelCodeCache
from repro.accel.driver import ProtoAccelerator
from repro.faults import FaultPlan, FaultSite
from repro.proto import parse_schema
from repro.proto.decoder import parse_message
from repro.proto.descriptor import FieldDescriptor, MessageDescriptor

_SCHEMA = parse_schema("""
    message Inner { optional int64 v = 1; optional string tag = 2; }
    message Probe {
      optional int32 a = 1;
      optional string s = 2;
      optional Inner child = 3;
      repeated int32 packed = 4 [packed = true];
      repeated Inner kids = 5;
      optional sint64 z = 6;
      optional double d = 7;
      optional bytes raw = 8;
    }
""")


def _probe_message():
    message = _SCHEMA["Probe"].new_message()
    message["a"] = 150
    message["s"] = "héllo wörld"
    message["z"] = -7
    message["d"] = 2.5
    message["raw"] = b"\x00\xff\x7f"
    message["packed"] = [3, 270, 86942]
    child = message.mutable("child")
    child["v"] = -(2**40)
    for tag in ("x", "y"):
        kid = message["kids"].add()
        kid["tag"] = tag
    return message


def _accel(**kwargs):
    device = ProtoAccelerator(deser_arena_bytes=1 << 20,
                              ser_arena_bytes=1 << 20, **kwargs)
    device.register_schema(_SCHEMA)
    return device


@pytest.fixture(autouse=True)
def _clean_codegen_state():
    codegen.set_codegen_enabled(True)
    codegen.invalidate_kernel_caches()
    yield
    codegen.set_codegen_enabled(True)
    codegen.invalidate_kernel_caches()


def test_driver_rejects_unknown_fast_path():
    with pytest.raises(ValueError, match="fast_path"):
        ProtoAccelerator(fast_path="vectorized")


def test_interp_mode_installs_no_bindings():
    accel = _accel(fast_path="interp")
    assert accel.deserializer.codegen is None
    assert accel.serializer.codegen is None


def test_codegen_mode_installs_bindings_and_matches_software():
    message = _probe_message()
    wire = message.serialize()
    accel = _accel(fast_path="codegen")
    assert accel.deserializer.codegen is not None
    assert accel.serializer.codegen is not None
    result = accel.deserialize(_SCHEMA["Probe"], wire)
    observed = accel.read_message(_SCHEMA["Probe"], result.dest_addr)
    assert observed == parse_message(_SCHEMA["Probe"], wire)
    addr = accel.load_object(message)
    assert accel.serialize(_SCHEMA["Probe"], addr).data == wire


def test_modeled_cycles_bit_identical_across_tiers():
    """The tier only changes host wall-clock; every modeled quantity --
    cycles and the full stats breakdown -- must match the interpreter
    exactly (the ISSUE's cycle-identity acceptance criterion)."""
    message = _probe_message()
    wire = message.serialize()
    by_tier = {}
    for fast_path in ("interp", "codegen"):
        accel = _accel(fast_path=fast_path)
        deser = accel.deserialize(_SCHEMA["Probe"], wire)
        addr = accel.load_object(message)
        ser = accel.serialize(_SCHEMA["Probe"], addr)
        by_tier[fast_path] = (deser.stats, ser.stats, ser.data)
    interp_deser, interp_ser, interp_data = by_tier["interp"]
    codegen_deser, codegen_ser, codegen_data = by_tier["codegen"]
    assert codegen_deser == interp_deser
    assert codegen_ser == interp_ser
    assert codegen_data == interp_data


def test_armed_fault_plan_keeps_bindings_uninstalled():
    plan = FaultPlan(seed=1, rate=1.0,
                     sites=(FaultSite.MEMLOADER_BITFLIP,), max_trigger=1)
    accel = _accel(faults=plan, fast_path="codegen")
    assert accel.deserializer.codegen is None
    assert accel.serializer.codegen is None
    message = _probe_message()
    wire = message.serialize()
    result = accel.deserialize(_SCHEMA["Probe"], wire)
    assert result.stats.faults_injected == 1
    observed = accel.read_message(_SCHEMA["Probe"], result.dest_addr)
    assert observed == message


def test_set_codegen_enabled_bypasses_installed_bindings():
    accel = _accel(fast_path="codegen")
    codegen.set_codegen_enabled(False)
    assert not codegen.codegen_enabled()
    assert accel.deserializer.codegen.kernel_for(0) is None
    # The accelerator still works (interpreted) and the cache is empty.
    message = _probe_message()
    result = accel.deserialize(_SCHEMA["Probe"], message.serialize())
    observed = accel.read_message(_SCHEMA["Probe"], result.dest_addr)
    assert observed == message
    assert codegen.cache_counters()[2] == 0
    codegen.set_codegen_enabled(True)
    result = accel.deserialize(_SCHEMA["Probe"], message.serialize())
    assert accel.read_message(_SCHEMA["Probe"], result.dest_addr) == message
    assert codegen.cache_counters()[2] > 0  # kernels recompiled


def test_code_cache_hits_across_accelerator_instances():
    wire = _probe_message().serialize()
    first = _accel(fast_path="codegen")
    first.deserialize(_SCHEMA["Probe"], wire)
    _, misses_after_first, _, _ = codegen.cache_counters()
    second = _accel(fast_path="codegen")
    second.deserialize(_SCHEMA["Probe"], wire)
    hits, misses, _, _ = codegen.cache_counters()
    assert hits > 0, "second accelerator should reuse compiled kernels"
    assert misses == misses_after_first


def test_code_cache_is_bounded_lru(monkeypatch):
    monkeypatch.setattr(codegen, "CODE_CACHE", KernelCodeCache(capacity=3))
    wire = b"\x08\x01"  # field 1, varint 1
    for number in range(1, 7):
        descriptor = MessageDescriptor(
            f"Solo{number}",
            [FieldDescriptor(name="v", number=number,
                             field_type=_SCHEMA["Probe"]
                             .field_by_name("a").field_type)])
        accel = ProtoAccelerator(deser_arena_bytes=1 << 20,
                                 fast_path="codegen")
        accel.register_types([descriptor])
        accel.deserialize(descriptor, wire if number == 1 else b"")
    hits, misses, entries, capacity = codegen.cache_counters()
    assert capacity == 3
    assert entries <= 3
    assert misses >= 6


def test_adt_cache_toggle_invalidates_kernel_cache():
    accel = _accel(fast_path="codegen")
    accel.deserialize(_SCHEMA["Probe"], _probe_message().serialize())
    assert codegen.cache_counters()[2] > 0
    generation = codegen._GENERATION
    adt.set_adt_caches_enabled(False)
    try:
        assert codegen.cache_counters()[2] == 0
        assert codegen._GENERATION > generation
    finally:
        adt.set_adt_caches_enabled(True)


def test_perf_surface_exposes_codegen_counters():
    _accel(fast_path="codegen").deserialize(
        _SCHEMA["Probe"], _probe_message().serialize())
    counters = perf.memoization_counters()
    assert "codegen" in counters
    hits, misses = counters["codegen"]
    assert misses > 0
    line = perf.render_codegen_line()
    assert "codegen cache" in line and "[on]" in line
