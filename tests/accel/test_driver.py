"""Tests for the device driver / modified-library API."""

import pytest

from repro.accel.driver import ProtoAccelerator
from repro.proto import parse_schema
from repro.soc.rocc import RoccFunct


@pytest.fixture()
def schema():
    return parse_schema("""
        message M { optional int64 x = 1; optional string s = 2; }
    """)


class TestRoccProtocol:
    def test_arena_assignment_on_construction(self, schema):
        accel = ProtoAccelerator()
        functs = [inst.funct for inst in accel.rocc.log]
        assert RoccFunct.DESER_ASSIGN_ARENA in functs
        assert RoccFunct.SER_ASSIGN_ARENA in functs

    def test_deser_issues_info_then_do(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        m = schema["M"].new_message()
        m["x"] = 1
        accel.deserialize(schema["M"], m.serialize())
        functs = [inst.funct for inst in accel.rocc.log]
        info = functs.index(RoccFunct.DESER_INFO)
        assert functs[info + 1] is RoccFunct.DO_PROTO_DESER

    def test_batch_ends_with_completion_fence(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        m = schema["M"].new_message()
        m["x"] = 1
        accel.deserialize_batch(schema["M"], [m.serialize()] * 3)
        assert accel.rocc.log[-1].funct is \
            RoccFunct.BLOCK_FOR_DESER_COMPLETION
        assert accel.rocc.inflight_deserializations == 0

    def test_ser_instruction_order(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        m = schema["M"].new_message()
        m["x"] = 1
        accel.serialize(schema["M"], accel.load_object(m))
        functs = [inst.funct for inst in accel.rocc.log]
        info = functs.index(RoccFunct.SER_INFO)
        assert functs[info + 1] is RoccFunct.DO_PROTO_SER


class TestBatching:
    def test_deserialize_batch_returns_all(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        messages = []
        for index in range(5):
            m = schema["M"].new_message()
            m["x"] = index
            messages.append(m)
        addresses, stats = accel.deserialize_batch(
            schema["M"], [m.serialize() for m in messages])
        assert len(addresses) == 5
        for addr, message in zip(addresses, messages):
            assert accel.read_message(schema["M"], addr) == message
        assert stats.wire_bytes == sum(len(m.serialize())
                                       for m in messages)

    def test_serialize_batch_round_trip(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        m = schema["M"].new_message()
        m["s"] = "payload"
        outputs, stats = accel.serialize_batch(
            schema["M"], [accel.load_object(m)] * 4)
        assert all(output == m.serialize() for output in outputs)
        assert stats.output_bytes == 4 * len(m.serialize())


class TestMaintenance:
    def test_reset_arenas_allows_reuse(self, schema):
        accel = ProtoAccelerator(deser_arena_bytes=4096,
                                 ser_arena_bytes=4096)
        accel.register_schema(schema)
        m = schema["M"].new_message()
        m["s"] = "x" * 500
        for _ in range(8):
            accel.deserialize(schema["M"], m.serialize())
            accel.serialize(schema["M"], accel.load_object(m))
            accel.reset_arenas()

    def test_throughput_helper(self, schema):
        accel = ProtoAccelerator()
        assert accel.throughput_gbps(250, 1000) == pytest.approx(4.0)
