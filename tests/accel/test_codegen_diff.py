"""Differential suite: codegen kernels vs interpretive FSM vs software.

The specialized tier's contract is total behavioural equivalence -- on
arbitrary valid messages, on adversarially mutated wire, and on the
PR 2 known-bad vector corpus, the two accelerator tiers must produce
identical messages, identical modeled stats (cycles included), and
identical structured errors.  A final set forces every named fault site
with ``fast_path="codegen"`` requested, proving the driver's bypass
keeps the whole injection surface reachable.
"""

from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings

from repro.accel import driver as driver_mod
from repro.accel.driver import ProtoAccelerator
from repro.faults import FaultPlan, FaultSite, TRANSIENT_SITES
from repro.faults.plan import PCIE_SITES
from repro.proto import parse_schema
from repro.soc.config import SoCConfig
from repro.proto.decoder import parse_message
from repro.proto.errors import DecodeError

from tests.strategies import schema_and_message, schema_wire_and_mutant

_SETTINGS = settings(max_examples=30, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _accel_pair(schema):
    pair = []
    for fast_path in ("interp", "codegen"):
        device = ProtoAccelerator(deser_arena_bytes=1 << 20,
                                  ser_arena_bytes=1 << 20,
                                  fast_path=fast_path)
        device.register_schema(schema)
        pair.append(device)
    return pair


@_SETTINGS
@given(schema_and_message())
def test_valid_messages_identical_across_tiers(pair):
    schema, message = pair
    from repro.proto.encoder import serialize_message
    wire = serialize_message(message, check_required=False)
    interp, codegen = _accel_pair(schema)
    interp_result = interp.deserialize(schema["Root"], wire)
    codegen_result = codegen.deserialize(schema["Root"], wire)
    assert codegen_result.stats == interp_result.stats
    interp_msg = interp.read_message(schema["Root"],
                                     interp_result.dest_addr)
    codegen_msg = codegen.read_message(schema["Root"],
                                       codegen_result.dest_addr)
    assert codegen_msg == interp_msg
    assert codegen_msg == parse_message(schema["Root"], wire)

    interp_addr = interp.load_object(message)
    codegen_addr = codegen.load_object(message)
    interp_ser = interp.serialize(schema["Root"], interp_addr)
    codegen_ser = codegen.serialize(schema["Root"], codegen_addr)
    assert codegen_ser.data == interp_ser.data == wire
    assert codegen_ser.stats == interp_ser.stats


@_SETTINGS
@given(schema_wire_and_mutant())
def test_mutated_wire_verdicts_identical(triple):
    """Both tiers accept or both reject -- and on rejection the error
    type, message text, and fault site all match."""
    schema, _, mutant = triple
    interp, codegen = _accel_pair(schema)
    outcomes = []
    for device in (interp, codegen):
        try:
            result = device.deserialize(schema["Root"], mutant)
            outcomes.append(("ok", result.stats,
                             device.read_message(schema["Root"],
                                                 result.dest_addr)))
        except DecodeError as error:
            outcomes.append(("err", type(error), str(error),
                             getattr(error, "site", None)))
    assert outcomes[0] == outcomes[1]


# -- PR 2 known-bad vector corpus --------------------------------------------

_VICTIM_SCHEMA = parse_schema("""
    message Inner {
      optional int32 a = 1;
      optional Inner child = 3;
    }
    message Victim {
      optional int32 a = 1;
      optional string s = 2;
      optional Inner child = 3;
      repeated int32 packed = 4 [packed = true];
      optional fixed32 fx = 5;
    }
""")
_VICTIM_SCHEMA["Victim"].field_by_name("s").validate_utf8 = True

_VECTORS_DIR = Path(__file__).parent.parent / "proto" / "vectors"


def _load_bad_vectors():
    vectors = []
    for path in sorted(_VECTORS_DIR.glob("*.hex")):
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, _, hexbytes = line.partition(":")
            vectors.append(pytest.param(
                bytes.fromhex(hexbytes.strip()),
                id=f"{path.stem}/{name.strip()}"))
    assert vectors, f"no vectors found under {_VECTORS_DIR}"
    return vectors


@pytest.mark.parametrize("data", _load_bad_vectors())
def test_known_bad_vectors_rejected_identically(data):
    interp, codegen = _accel_pair(_VICTIM_SCHEMA)
    rejections = []
    for device in (interp, codegen):
        with pytest.raises(DecodeError) as excinfo:
            device.deserialize(_VICTIM_SCHEMA["Victim"], data)
        rejections.append(excinfo.value)
    interp_error, codegen_error = rejections
    assert type(codegen_error) is type(interp_error)
    assert str(codegen_error) == str(interp_error)
    assert codegen_error.site == interp_error.site
    assert codegen_error.cycle == interp_error.cycle
    assert not codegen_error.injected


# -- fault-plan interaction ---------------------------------------------------

_PROBE_SCHEMA = parse_schema("""
    message Inner { optional int32 v = 1; optional string tag = 2; }
    message Probe {
      optional int32 a = 1;
      optional string s = 2;
      optional Inner child = 3;
      repeated int32 packed = 4 [packed = true];
      repeated Inner kids = 5;
      optional sint64 z = 6;
      optional double d = 7;
    }
""")
# utf8.corrupt only fires inside the validator, which only runs on
# strings with proto3-style validation enabled.
_PROBE_SCHEMA["Probe"].field_by_name("s").validate_utf8 = True

_DESER_SITES = [s for s in FaultSite
                if s not in (FaultSite.SER_ABORT, FaultSite.SER_HANG)]
_SER_SITES = [FaultSite.SER_ABORT, FaultSite.SER_HANG]


def _probe_message():
    message = _PROBE_SCHEMA["Probe"].new_message()
    message["a"] = 150
    message["s"] = "héllo wörld"
    message["z"] = -7
    message["d"] = 2.5
    message["packed"] = [3, 270, 86942]
    message.mutable("child")["v"] = 99
    for tag in ("x", "y"):
        message["kids"].add()["tag"] = tag
    return message


def _fault_accel(site):
    plan = FaultPlan(seed=1, rate=1.0, sites=(site,), max_trigger=1)
    # The transport's own sites are only reachable over PCIe (the RoCC
    # path draws from the historical site set, bit-identically).
    transport = "pcie" if site in PCIE_SITES else "rocc"
    device = ProtoAccelerator(config=SoCConfig(transport=transport),
                              deser_arena_bytes=1 << 20,
                              ser_arena_bytes=1 << 20,
                              faults=plan, fast_path="codegen")
    device.register_schema(_PROBE_SCHEMA)
    return device


@pytest.mark.parametrize("site", _DESER_SITES,
                         ids=[s.value for s in _DESER_SITES])
def test_every_deser_fault_site_fires_despite_codegen(site):
    """Requesting the codegen tier must not shadow a single injection
    site: the driver bypasses the kernels whenever a plan is armed."""
    accel = _fault_accel(site)
    assert accel.deserializer.codegen is None
    assert accel.serializer.codegen is None
    message = _probe_message()
    wire = message.serialize()
    result = accel.deserialize(_PROBE_SCHEMA["Probe"], wire)
    assert result.stats.faults_injected == 1
    if site in TRANSIENT_SITES:
        assert result.stats.fault_retries == 1
    else:
        assert result.stats.cpu_fallbacks == 1
    observed = accel.read_message(_PROBE_SCHEMA["Probe"], result.dest_addr)
    assert observed == message


@pytest.mark.parametrize("site", _SER_SITES,
                         ids=[s.value for s in _SER_SITES])
def test_every_ser_fault_site_fires_despite_codegen(site):
    accel = _fault_accel(site)
    message = _probe_message()
    addr = accel.load_object(message)
    result = accel.serialize(_PROBE_SCHEMA["Probe"], addr)
    assert result.stats.faults_injected == 1
    assert result.data == message.serialize()


# -- benchmark-suite cycle identity ------------------------------------------

def test_bench_results_identical_across_tiers():
    """Figure-level regression: a sample of the Fig-11 microbenchmarks
    produces byte-identical BenchmarkResults on both tiers (gbps, cycles,
    wire bytes), with the batch caches disabled so both actually run."""
    from repro.bench.microbench import build_microbench
    from repro.bench.runner import run_deserialization, run_serialization

    driver_mod.set_batch_cache_enabled(False)
    try:
        for name in ("varint-3", "string_15", "double-R", "string-SUB"):
            workload = build_microbench(name, batch=4)
            for run in (run_deserialization, run_serialization):
                interp_result = run(workload, fast_path="interp")
                codegen_result = run(workload, fast_path="codegen")
                assert codegen_result == interp_result, (
                    f"{name}: {run.__name__} diverged across tiers")
    finally:
        driver_mod.set_batch_cache_enabled(True)
