"""Tests for the serializer unit: wire-identical output, cycle model."""

import pytest

from repro.accel.driver import ProtoAccelerator
from repro.proto import parse_schema


@pytest.fixture()
def schema():
    return parse_schema("""
        message Inner { optional int32 a = 1; optional string tag = 2; }
        message M {
          optional int64 x = 1;
          optional string s = 2;
          repeated int32 packed_nums = 3 [packed = true];
          repeated uint32 plain_nums = 4;
          optional Inner inner = 5;
          repeated Inner kids = 6;
          optional sint64 z = 7;
          optional bool b = 8;
          optional double d = 9;
          optional bytes raw = 10;
          repeated string labels = 11;
          optional int32 sparse = 50;
        }
        message Deep { optional Deep next = 1; optional int32 v = 2; }
    """)


def _serialize_on_accel(schema, message):
    accel = ProtoAccelerator()
    accel.register_schema(schema)
    addr = accel.load_object(message)
    return accel.serialize(message.descriptor, addr)


class TestWireIdentical:
    """The paper's byte-compatibility property (Section 4.5.1): reverse
    field order + high-to-low writes == software output byte-for-byte."""

    def test_scalars(self, schema):
        m = schema["M"].new_message()
        m["x"] = -5
        m["z"] = -1000
        m["b"] = True
        m["d"] = 2.5
        assert _serialize_on_accel(schema, m).data == m.serialize()

    def test_strings(self, schema):
        m = schema["M"].new_message()
        m["s"] = "hello world, longer than SSO buffers allow here"
        m["raw"] = bytes(range(50))
        assert _serialize_on_accel(schema, m).data == m.serialize()

    def test_packed(self, schema):
        m = schema["M"].new_message()
        m["packed_nums"] = [3, 270, 86942, -1]
        assert _serialize_on_accel(schema, m).data == m.serialize()

    def test_unpacked(self, schema):
        m = schema["M"].new_message()
        m["plain_nums"] = [1, 2, 3]
        assert _serialize_on_accel(schema, m).data == m.serialize()

    def test_repeated_strings_keep_order(self, schema):
        m = schema["M"].new_message()
        m["labels"] = ["first", "second", "third" * 10]
        assert _serialize_on_accel(schema, m).data == m.serialize()

    def test_submessage_lengths_injected(self, schema):
        m = schema["M"].new_message()
        inner = m.mutable("inner")
        inner["a"] = 7
        inner["tag"] = "deep"
        assert _serialize_on_accel(schema, m).data == m.serialize()

    def test_repeated_submessages(self, schema):
        m = schema["M"].new_message()
        for i in range(3):
            kid = m["kids"].add()
            kid["a"] = i
            kid["tag"] = f"kid{i}"
        assert _serialize_on_accel(schema, m).data == m.serialize()

    def test_sparse_field_numbers(self, schema):
        m = schema["M"].new_message()
        m["x"] = 1
        m["sparse"] = 2
        assert _serialize_on_accel(schema, m).data == m.serialize()

    def test_empty_message(self, schema):
        m = schema["M"].new_message()
        result = _serialize_on_accel(schema, m)
        assert result.data == b""

    def test_deep_nesting(self, schema):
        m = schema["Deep"].new_message()
        node = m
        for level in range(30):
            node["v"] = level
            node = node.mutable("next")
        node["v"] = -1
        result = _serialize_on_accel(schema, m)
        assert result.data == m.serialize()
        assert result.stats.stack_spills > 0

    def test_kitchen_sink(self, kitchen_schema, kitchen_message):
        result = _serialize_on_accel(kitchen_schema, kitchen_message)
        assert result.data == kitchen_message.serialize()


class TestStatsAndCycles:
    def test_output_bytes_reported(self, schema):
        m = schema["M"].new_message()
        m["s"] = "abcdef"
        result = _serialize_on_accel(schema, m)
        assert result.stats.output_bytes == len(result.data)

    def test_pipeline_stage_totals_tracked(self, schema):
        m = schema["M"].new_message()
        m["x"] = 1
        m["s"] = "y" * 100
        result = _serialize_on_accel(schema, m)
        stats = result.stats
        assert stats.frontend_cycles > 0
        assert stats.fsu_cycles > 0
        assert stats.memwriter_cycles > 0
        assert stats.cycles >= max(stats.frontend_cycles,
                                   stats.memwriter_cycles)

    def test_more_fsus_do_not_slow_down(self, schema):
        from repro.soc.config import SoCConfig

        m = schema["M"].new_message()
        m["plain_nums"] = list(range(64))
        baseline = ProtoAccelerator(config=SoCConfig(
            field_serializer_units=1))
        baseline.register_schema(schema)
        wide = ProtoAccelerator(config=SoCConfig(field_serializer_units=8))
        wide.register_schema(schema)
        slow = baseline.serialize(schema["M"],
                                  baseline.load_object(m)).stats
        fast = wide.serialize(schema["M"], wide.load_object(m)).stats
        assert fast.cycles <= slow.cycles

    def test_requires_arena(self, schema):
        from repro.accel.serializer import SerializerUnit
        from repro.memory.memspace import SimMemory

        unit = SerializerUnit(SimMemory())
        with pytest.raises(RuntimeError):
            unit.serialize(0x2000, 0x3000)

    def test_outputs_accumulate_in_pointer_table(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        first = schema["M"].new_message()
        first["x"] = 1
        second = schema["M"].new_message()
        second["s"] = "two"
        outputs, _ = accel.serialize_batch(
            schema["M"],
            [accel.load_object(first), accel.load_object(second)])
        assert outputs[0] == first.serialize()
        assert outputs[1] == second.serialize()
