"""Tests for the memloader's decoupled streaming window."""

import pytest

from repro.accel.memloader import WINDOW_BYTES, Memloader
from repro.memory.memspace import SimMemory
from repro.memory.timing import MemoryTimingModel


def _loader(payload: bytes):
    memory = SimMemory()
    addr = memory.allocate(max(len(payload), 1))
    memory.write(addr, payload) if payload else None
    return Memloader(memory, MemoryTimingModel(), addr, len(payload))


class TestWindow:
    def test_window_exposes_up_to_16_bytes(self):
        loader = _loader(bytes(range(32)))
        assert loader.peek() == bytes(range(WINDOW_BYTES))

    def test_window_shrinks_at_end_of_stream(self):
        loader = _loader(b"abc")
        assert loader.peek() == b"abc"
        loader.consume(2)
        assert loader.peek() == b"c"

    def test_consumer_dictated_consumption(self):
        loader = _loader(bytes(range(20)))
        loader.consume(3)
        assert loader.peek(4) == bytes([3, 4, 5, 6])
        assert loader.consumed == 3
        assert loader.remaining == 17

    def test_overconsume_is_decode_error(self):
        from repro.proto.errors import DecodeError

        loader = _loader(b"ab")
        with pytest.raises(DecodeError):
            loader.consume(3)

    def test_negative_consume_rejected(self):
        with pytest.raises(ValueError):
            _loader(b"ab").consume(-1)

    def test_empty_stream(self):
        loader = _loader(b"")
        assert loader.peek() == b""
        assert loader.remaining == 0
        assert loader.startup_cycles == 0


class TestBulkConsume:
    def test_bulk_returns_data_and_beat_cycles(self):
        loader = _loader(b"x" * 64)
        data, cycles = loader.consume_bulk(48)
        assert data == b"x" * 48
        assert cycles == 3.0  # 48 bytes / 16 B per beat

    def test_bulk_past_end_is_decode_error(self):
        from repro.proto.errors import DecodeError

        loader = _loader(b"x" * 8)
        with pytest.raises(DecodeError):
            loader.consume_bulk(9)

    def test_startup_latency_charged_once(self):
        loader = _loader(b"x" * 100)
        assert loader.startup_cycles == \
            MemoryTimingModel().average_latency
