"""Tests for the combinational varint unit."""

import pytest
from hypothesis import given, strategies as st

from repro.accel.varint_unit import CombinationalVarintUnit
from repro.proto.errors import DecodeError
from repro.proto.varint import encode_varint


class TestDecode:
    def test_decodes_from_window_head(self):
        unit = CombinationalVarintUnit()
        window = encode_varint(300) + b"\xff" * 8
        assert unit.decode(window) == (300, 2)

    def test_reports_encoded_length_for_discard(self):
        # Section 4.4.4: the parser emits the encoded length N so the
        # memloader can discard the N-byte key at the end of the cycle.
        unit = CombinationalVarintUnit()
        for value in (0, 127, 128, 2**35, 2**63):
            encoded = encode_varint(value)
            assert unit.decode(encoded + b"\x00" * 6)[1] == len(encoded)

    def test_empty_window_rejected(self):
        with pytest.raises(DecodeError):
            CombinationalVarintUnit().decode(b"")

    def test_counts_invocations(self):
        unit = CombinationalVarintUnit()
        unit.decode(b"\x01")
        unit.decode(b"\x02")
        unit.encode(5)
        assert unit.decodes == 2
        assert unit.encodes == 1


class TestEncode:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_matches_software_codec(self, value):
        unit = CombinationalVarintUnit()
        assert unit.encode(value) == encode_varint(value)


class TestZigZag:
    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_zigzag_stages_are_inverse(self, value):
        unit = CombinationalVarintUnit()
        assert unit.zigzag_decode(unit.zigzag_encode(value)) == value
        assert unit.zigzag_ops == 2
