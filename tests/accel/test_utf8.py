"""Tests for proto3 UTF-8 validation (Section 7)."""

import pytest

from repro.accel.driver import ProtoAccelerator
from repro.accel.utf8_unit import Utf8ValidationUnit
from repro.proto import parse_schema
from repro.proto.errors import DecodeError
from repro.proto.varint import encode_varint
from repro.proto.wire import encode_tag
from repro.proto.types import WireType

PROTO3 = parse_schema("""
    syntax = "proto3";
    message M {
      optional string s = 1;
      optional bytes raw = 2;
      repeated string labels = 3;
    }
""")

PROTO2 = parse_schema("""
    syntax = "proto2";
    message M { optional string s = 1; }
""")

_INVALID = b"\xff\xfe invalid"


def _string_field(number: int, payload: bytes) -> bytes:
    return (encode_tag(number, WireType.LENGTH_DELIMITED)
            + encode_varint(len(payload)) + payload)


class TestUnit:
    def test_valid_passes(self):
        unit = Utf8ValidationUnit()
        unit.validate("héllo ☃".encode("utf-8"))
        assert unit.strings_validated == 1
        assert unit.faults == 0

    def test_invalid_faults(self):
        unit = Utf8ValidationUnit()
        with pytest.raises(DecodeError):
            unit.validate(_INVALID)
        assert unit.faults == 1

    def test_truncated_multibyte_faults(self):
        unit = Utf8ValidationUnit()
        with pytest.raises(DecodeError):
            unit.validate("é".encode("utf-8")[:1])


class TestParserMarksProto3Strings:
    def test_string_fields_flagged(self):
        descriptor = PROTO3["M"]
        assert descriptor.field_by_name("s").validate_utf8
        assert descriptor.field_by_name("labels").validate_utf8

    def test_bytes_fields_not_flagged(self):
        assert not PROTO3["M"].field_by_name("raw").validate_utf8

    def test_proto2_strings_not_flagged(self):
        assert not PROTO2["M"].field_by_name("s").validate_utf8


class TestAcceleratorValidation:
    def test_valid_proto3_string_accepted(self):
        accel = ProtoAccelerator()
        accel.register_schema(PROTO3)
        data = _string_field(1, "héllo".encode("utf-8"))
        result = accel.deserialize(PROTO3["M"], data)
        back = accel.read_message(PROTO3["M"], result.dest_addr)
        assert back["s"] == "héllo"
        assert accel.deserializer.utf8_unit.strings_validated >= 1

    def test_invalid_proto3_string_rejected(self):
        accel = ProtoAccelerator()
        accel.register_schema(PROTO3)
        with pytest.raises(DecodeError):
            accel.deserialize(PROTO3["M"], _string_field(1, _INVALID))
        assert accel.deserializer.utf8_unit.faults == 1

    def test_invalid_repeated_string_rejected(self):
        accel = ProtoAccelerator()
        accel.register_schema(PROTO3)
        with pytest.raises(DecodeError):
            accel.deserialize(PROTO3["M"], _string_field(3, _INVALID))

    def test_bytes_payload_not_validated(self):
        accel = ProtoAccelerator()
        accel.register_schema(PROTO3)
        result = accel.deserialize(PROTO3["M"], _string_field(2, _INVALID))
        back = accel.read_message(PROTO3["M"], result.dest_addr)
        assert back["raw"] == _INVALID

    def test_proto2_string_tolerates_invalid(self):
        accel = ProtoAccelerator()
        accel.register_schema(PROTO2)
        result = accel.deserialize(PROTO2["M"], _string_field(1, _INVALID))
        back = accel.read_message(PROTO2["M"], result.dest_addr)
        assert back["s"] == _INVALID.decode("latin-1")


class TestSoftwareParserValidation:
    def test_proto3_software_parser_rejects(self):
        with pytest.raises(DecodeError):
            PROTO3["M"].parse(_string_field(1, _INVALID))

    def test_proto2_software_parser_tolerates(self):
        message = PROTO2["M"].parse(_string_field(1, _INVALID))
        assert message["s"] == _INVALID.decode("latin-1")

    def test_software_and_accel_agree_on_valid_proto3(self):
        accel = ProtoAccelerator()
        accel.register_schema(PROTO3)
        data = _string_field(1, "naïve ☕".encode("utf-8"))
        result = accel.deserialize(PROTO3["M"], data)
        assert accel.read_message(PROTO3["M"], result.dest_addr) == \
            PROTO3["M"].parse(data)
