"""Tests for the Section 7 clear/copy/merge extension unit."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.accel.driver import ProtoAccelerator
from repro.proto import parse_schema
from repro.proto.encoder import serialize_message

from tests.strategies import schema_and_message, schema_and_two_messages


@pytest.fixture()
def schema():
    return parse_schema("""
        message Inner { optional int32 a = 1; repeated int32 xs = 2; }
        message M {
          optional int64 x = 1;
          optional string s = 2;
          repeated uint32 nums = 3;
          optional Inner inner = 4;
          repeated Inner kids = 5;
          repeated string labels = 6;
          optional bytes raw = 7;
          optional double d = 8;
        }
    """)


def _accel(schema):
    accel = ProtoAccelerator()
    accel.register_schema(schema)
    return accel


def _rich_message(schema):
    m = schema["M"].new_message()
    m["x"] = -9
    m["s"] = "a string long enough to live on the heap, not in SSO"
    m["nums"] = [1, 2, 3]
    inner = m.mutable("inner")
    inner["a"] = 7
    inner["xs"] = [10, 20]
    kid = m["kids"].add()
    kid["a"] = 1
    m["labels"] = ["x", "y" * 30]
    m["raw"] = bytes(range(20))
    m["d"] = 1.25
    return m


class TestClear:
    def test_clear_drops_all_presence(self, schema):
        accel = _accel(schema)
        m = _rich_message(schema)
        addr = accel.load_object(m)
        stats = accel.clear_message(schema["M"], addr)
        back = accel.read_message(schema["M"], addr)
        assert back.present_field_numbers() == []
        assert stats.cycles > 0

    def test_cleared_object_reusable_for_deser(self, schema):
        accel = _accel(schema)
        m = _rich_message(schema)
        addr = accel.load_object(m)
        accel.clear_message(schema["M"], addr)
        # A cleared object can be re-serialized (to empty bytes).
        result = accel.serialize(schema["M"], addr)
        assert result.data == b""


class TestCopy:
    def test_deep_copy_equals_source(self, schema):
        accel = _accel(schema)
        m = _rich_message(schema)
        src = accel.load_object(m)
        dest, stats = accel.copy_message(schema["M"], src)
        assert accel.read_message(schema["M"], dest) == m
        assert stats.fields_processed > 0
        assert stats.arena_bytes > 0

    def test_copy_is_independent_of_source(self, schema):
        accel = _accel(schema)
        m = _rich_message(schema)
        src = accel.load_object(m)
        dest, _ = accel.copy_message(schema["M"], src)
        # Mutate the source image; the copy must not change.
        accel.clear_message(schema["M"], src)
        assert accel.read_message(schema["M"], dest) == m

    def test_copy_empty_message(self, schema):
        accel = _accel(schema)
        src = accel.load_object(schema["M"].new_message())
        dest, stats = accel.copy_message(schema["M"], src)
        assert accel.read_message(schema["M"],
                                  dest).present_field_numbers() == []
        assert stats.fields_processed == 0

    def test_copy_serializes_identically(self, schema):
        accel = _accel(schema)
        m = _rich_message(schema)
        dest, _ = accel.copy_message(schema["M"], accel.load_object(m))
        assert accel.serialize(schema["M"], dest).data == m.serialize()


class TestMerge:
    def test_merge_matches_software_semantics(self, schema):
        accel = _accel(schema)
        a = _rich_message(schema)
        b = schema["M"].new_message()
        b["x"] = 100
        b["nums"] = [9]
        b.mutable("inner")["a"] = 42
        kid = b["kids"].add()
        kid["a"] = 2
        expected = a.copy()
        expected.merge_from(b)
        dest = accel.load_object(a)
        src = accel.load_object(b)
        stats = accel.merge_messages(schema["M"], src, dest)
        assert accel.read_message(schema["M"], dest) == expected
        assert stats.fields_processed > 0

    def test_merge_into_empty_acts_as_copy(self, schema):
        accel = _accel(schema)
        m = _rich_message(schema)
        dest = accel.load_object(schema["M"].new_message())
        src = accel.load_object(m)
        accel.merge_messages(schema["M"], src, dest)
        assert accel.read_message(schema["M"], dest) == m

    def test_merge_appends_repeated(self, schema):
        accel = _accel(schema)
        a = schema["M"].new_message()
        a["nums"] = [1, 2]
        a["labels"] = ["one"]
        b = schema["M"].new_message()
        b["nums"] = [3]
        b["labels"] = ["two", "three"]
        dest = accel.load_object(a)
        src = accel.load_object(b)
        accel.merge_messages(schema["M"], src, dest)
        merged = accel.read_message(schema["M"], dest)
        assert list(merged["nums"]) == [1, 2, 3]
        assert list(merged["labels"]) == ["one", "two", "three"]

    def test_merge_overwrites_singular(self, schema):
        accel = _accel(schema)
        a = schema["M"].new_message()
        a["x"] = 1
        a["s"] = "old"
        b = schema["M"].new_message()
        b["s"] = "new value that is much longer than before"
        dest = accel.load_object(a)
        src = accel.load_object(b)
        accel.merge_messages(schema["M"], src, dest)
        merged = accel.read_message(schema["M"], dest)
        assert merged["x"] == 1
        assert merged["s"] == b["s"]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schema_and_message())
def test_copy_property(pair):
    """copy(image(m)) reads back equal to m for arbitrary messages."""
    schema, message = pair
    accel = ProtoAccelerator()
    accel.register_types([schema["Root"]])
    src = accel.load_object(message)
    dest, _ = accel.copy_message(message.descriptor, src)
    assert accel.read_message(message.descriptor, dest) == message


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schema_and_two_messages())
def test_merge_property(triple):
    """Accelerator merge == software merge_from for arbitrary same-schema
    message pairs."""
    schema, dest_msg, src_msg = triple
    accel = ProtoAccelerator()
    accel.register_types([schema["Root"]])
    dest = accel.load_object(dest_msg)
    src = accel.load_object(src_msg)
    expected = dest_msg.copy()
    expected.merge_from(src_msg)
    accel.merge_messages(dest_msg.descriptor, src, dest)
    assert accel.read_message(dest_msg.descriptor, dest) == expected


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schema_and_message())
def test_clear_property(pair):
    """clear(image(m)) serializes to empty bytes for arbitrary messages."""
    schema, message = pair
    accel = ProtoAccelerator()
    accel.register_types([schema["Root"]])
    addr = accel.load_object(message)
    accel.clear_message(message.descriptor, addr)
    assert accel.serialize(message.descriptor, addr).data == b""


class TestCpuOpBaselines:
    def test_software_costs_positive_and_ordered(self, schema):
        from repro.cpu.boom import BOOM_PARAMS
        from repro.cpu.ops import clear_cycles, copy_cycles, merge_cycles

        m = _rich_message(schema)
        clear = clear_cycles(BOOM_PARAMS, m)
        copy = copy_cycles(BOOM_PARAMS, m)
        merge = merge_cycles(BOOM_PARAMS, m)
        assert 0 < clear < copy
        assert merge > 0

    def test_arena_backed_clear_cheaper(self, schema):
        from repro.cpu.boom import BOOM_PARAMS
        from repro.cpu.ops import clear_cycles

        m = _rich_message(schema)
        assert clear_cycles(BOOM_PARAMS, m, arena_backed=True) < \
            clear_cycles(BOOM_PARAMS, m, arena_backed=False)

    def test_accelerator_beats_software(self, schema):
        from repro.cpu.boom import BOOM_PARAMS
        from repro.cpu.ops import copy_cycles

        accel = _accel(schema)
        m = _rich_message(schema)
        src = accel.load_object(m)
        _, stats = accel.copy_message(schema["M"], src)
        assert stats.cycles < copy_cycles(BOOM_PARAMS, m)
