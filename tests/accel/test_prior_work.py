"""Tests for the Section 3.7 prior-work comparison model."""

import pytest

from repro.accel.prior_work import (
    adt_wins,
    break_even_density,
    fleet_share_favouring_adts,
    message_cost_comparison,
    per_instance_table_cost,
    per_type_adt_cost,
)
from repro.proto import parse_schema


class TestCostFunctions:
    def test_per_instance_scales_with_present_fields(self):
        assert per_instance_table_cost(10).total_bits == \
            2 * per_instance_table_cost(5).total_bits

    def test_per_instance_burdens_setter_path(self):
        cost = per_instance_table_cost(8)
        assert cost.setter_path_bits_written == 8 * 64

    def test_adt_scheme_is_free_on_setter_path(self):
        cost = per_type_adt_cost(100)
        assert cost.setter_path_bits_written == 0
        assert cost.accel_bits_read == 100

    def test_break_even_is_1_over_64(self):
        assert break_even_density() == pytest.approx(1 / 64)


class TestWinner:
    def test_dense_messages_favour_adts(self):
        # 10 present fields in a span of 12: density ~0.83.
        assert adt_wins(present_fields=10, field_number_span=12)

    def test_pathologically_sparse_favours_per_instance(self):
        # 1 present field in a span of 10,000: density 1e-4 << 1/64.
        assert not adt_wins(present_fields=1, field_number_span=10_000)

    def test_exact_break_even_counts_double_sided(self):
        # At density exactly 1/128 (span = 128 x present), prior work's
        # write+read equals our read.
        assert not adt_wins(present_fields=1, field_number_span=128)
        assert adt_wins(present_fields=1, field_number_span=127)


class TestFleetConclusion:
    def test_at_least_92_percent_favour_adts(self):
        assert fleet_share_favouring_adts() >= 0.92

    def test_double_counted_is_even_more_favourable(self):
        assert fleet_share_favouring_adts(double_counted=True) >= \
            fleet_share_favouring_adts()


class TestConcreteMessages:
    def test_typical_rpc_message(self):
        schema = parse_schema("""
            message Req {
              optional int64 a = 1;
              optional string b = 2;
              optional int32 c = 3;
              optional bool d = 4;
            }
        """)
        message = schema["Req"].new_message()
        message["a"] = 1
        message["b"] = "q"
        comparison = message_cost_comparison(message)
        assert comparison["adt_bits"] == 4          # span of 4 bits read
        assert comparison["per_instance_bits"] == 2 * 2 * 64
        assert comparison["setter_path_bits_saved"] == 128

    def test_hyperprotobench_population(self):
        from repro.hyperprotobench import build_hyperprotobench

        workload = build_hyperprotobench("bench0", batch=16)
        wins = sum(
            1 for message in workload.messages
            if message_cost_comparison(message)["adt_bits"]
            <= message_cost_comparison(message)["per_instance_bits"])
        assert wins / len(workload.messages) > 0.9
