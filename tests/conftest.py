"""Shared fixtures and hypothesis profiles for the test suite."""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.proto import parse_schema

# Property-test budgets: "ci" is the tier-1 default (whatever each test
# declares locally); "nightly" multiplies the example counts for the
# scheduled deep-fuzz job.  Select with HYPOTHESIS_PROFILE=nightly.
settings.register_profile("ci", settings())
settings.register_profile(
    "nightly",
    settings(max_examples=1000, deadline=None,
             suppress_health_check=[HealthCheck.too_slow]))
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


KITCHEN_SINK_PROTO = """
syntax = "proto2";

message Inner {
  optional int32 a = 1;
  optional string tag = 2;
  repeated uint32 counts = 3;
}

message Outer {
  required int64 x = 1;
  optional string name = 2;
  repeated double vals = 3 [packed = true];
  optional Inner inner = 4;
  optional sint32 delta = 5;
  optional sint64 big_delta = 6;
  optional bool flag = 7;
  optional float ratio = 8;
  repeated Inner kids = 9;
  repeated uint32 nums = 10;
  optional fixed32 crc = 11;
  optional fixed64 stamp = 12;
  optional sfixed32 scrc = 13;
  optional sfixed64 sstamp = 14;
  optional bytes blob = 15;
  optional uint64 counter = 16;
  repeated string labels = 17;
  optional int32 small = 18 [default = 42];
}
"""


@pytest.fixture(scope="session")
def kitchen_schema():
    """A schema touching every field type and qualifier."""
    return parse_schema(KITCHEN_SINK_PROTO)


@pytest.fixture()
def kitchen_message(kitchen_schema):
    """A fully populated Outer message."""
    outer = kitchen_schema["Outer"].new_message()
    outer["x"] = -123456789
    outer["name"] = "a string that is longer than the SSO buffer size"
    outer["vals"] = [1.5, -2.25, 3.0, 0.0]
    inner = outer.mutable("inner")
    inner["a"] = -7
    inner["tag"] = "ok"
    inner["counts"] = [1, 2, 3]
    outer["delta"] = -1000
    outer["big_delta"] = -(2**40)
    outer["flag"] = True
    outer["ratio"] = 2.5
    kid = outer["kids"].add()
    kid["a"] = 1
    kid2 = outer["kids"].add()
    kid2["tag"] = "second child"
    outer["nums"] = [0, 300, 70000]
    outer["crc"] = 0xDEADBEEF
    outer["stamp"] = 2**61
    outer["scrc"] = -12345
    outer["sstamp"] = -(2**50)
    outer["blob"] = bytes(range(64))
    outer["counter"] = 2**63
    outer["labels"] = ["x", "y" * 20, ""]
    return outer


@pytest.fixture()
def accelerator():
    """A fresh accelerator device on its own simulated memory."""
    from repro.accel.driver import ProtoAccelerator

    return ProtoAccelerator()
