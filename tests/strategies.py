"""Hypothesis strategies for random schemas and messages.

The core property tests draw (schema, message) pairs here: arbitrary
field-type mixes, optional/repeated labels, packed encodings, nested and
recursive sub-messages -- then assert the library's invariants (round
trips, accelerator/software equivalence, byte-size correctness).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.proto.descriptor import FieldDescriptor, MessageDescriptor, Schema
from repro.proto.message import Message
from repro.proto.types import FieldType, Label, is_packable

SCALAR_TYPES = [
    FieldType.DOUBLE, FieldType.FLOAT, FieldType.INT32, FieldType.INT64,
    FieldType.UINT32, FieldType.UINT64, FieldType.SINT32, FieldType.SINT64,
    FieldType.FIXED32, FieldType.FIXED64, FieldType.SFIXED32,
    FieldType.SFIXED64, FieldType.BOOL, FieldType.STRING, FieldType.BYTES,
]

_INT_BOUNDS = {
    FieldType.INT32: (-(2**31), 2**31 - 1),
    FieldType.SINT32: (-(2**31), 2**31 - 1),
    FieldType.SFIXED32: (-(2**31), 2**31 - 1),
    FieldType.INT64: (-(2**63), 2**63 - 1),
    FieldType.SINT64: (-(2**63), 2**63 - 1),
    FieldType.SFIXED64: (-(2**63), 2**63 - 1),
    FieldType.UINT32: (0, 2**32 - 1),
    FieldType.FIXED32: (0, 2**32 - 1),
    FieldType.UINT64: (0, 2**64 - 1),
    FieldType.FIXED64: (0, 2**64 - 1),
}


def value_strategy(field_type: FieldType) -> st.SearchStrategy:
    """Values legal for one scalar field type."""
    if field_type is FieldType.BOOL:
        return st.booleans()
    if field_type is FieldType.DOUBLE:
        return st.floats(allow_nan=False, allow_infinity=False, width=64)
    if field_type is FieldType.FLOAT:
        return st.floats(allow_nan=False, allow_infinity=False, width=32)
    if field_type is FieldType.STRING:
        return st.text(max_size=64)
    if field_type is FieldType.BYTES:
        return st.binary(max_size=64)
    lo, hi = _INT_BOUNDS[field_type]
    return st.integers(min_value=lo, max_value=hi)


@st.composite
def field_descriptors(draw, number: int,
                      allow_message: bool = False,
                      sub_type_name: str | None = None,
                      allow_oneof: bool = False) -> FieldDescriptor:
    if allow_message and sub_type_name and draw(st.booleans()):
        label = draw(st.sampled_from([Label.OPTIONAL, Label.REPEATED]))
        return FieldDescriptor(
            name=f"f{number}", number=number,
            field_type=FieldType.MESSAGE, label=label,
            type_name=sub_type_name)
    field_type = draw(st.sampled_from(SCALAR_TYPES))
    label = draw(st.sampled_from(
        [Label.OPTIONAL, Label.OPTIONAL, Label.REPEATED]))
    packed = (label is Label.REPEATED and is_packable(field_type)
              and draw(st.booleans()))
    oneof = None
    if (allow_oneof and label is Label.OPTIONAL
            and draw(st.integers(0, 3)) == 0):
        # Roughly a quarter of optional scalars join the shared group,
        # exercising sibling clearing through every downstream property
        # (wire round trips, accel equivalence, JSON/text round trips).
        oneof = "g"
    return FieldDescriptor(name=f"f{number}", number=number,
                           field_type=field_type, label=label,
                           packed=packed, oneof_group=oneof)


@st.composite
def schemas(draw) -> Schema:
    """A random schema: a Leaf type plus a Root that may reference it,
    optionally carrying a map field (a synthesized entry type)."""
    schema = Schema()
    leaf_fields = [
        draw(field_descriptors(number))
        for number in sorted(draw(st.sets(
            st.integers(min_value=1, max_value=40),
            min_size=1, max_size=6)))
    ]
    schema.add_message(MessageDescriptor("Leaf", leaf_fields))
    root_fields = [
        draw(field_descriptors(number, allow_message=True,
                               sub_type_name="Leaf", allow_oneof=True))
        for number in sorted(draw(st.sets(
            st.integers(min_value=1, max_value=60),
            min_size=1, max_size=8)))
    ]
    if draw(st.booleans()):
        entry = MessageDescriptor(
            "Root.KvEntry",
            [FieldDescriptor(name="key", number=1,
                             field_type=FieldType.STRING),
             FieldDescriptor(name="value", number=2,
                             field_type=FieldType.INT64)],
            full_name="Root.KvEntry", is_map_entry=True)
        schema.add_message(entry)
        root_fields.append(FieldDescriptor(
            name="kv", number=61, field_type=FieldType.MESSAGE,
            label=Label.REPEATED, type_name="Root.KvEntry"))
    schema.add_message(MessageDescriptor("Root", root_fields))
    schema.resolve()
    return schema


@st.composite
def populated_messages(draw, descriptor: MessageDescriptor,
                       depth: int = 0) -> Message:
    """A random message of the given type with random field presence."""
    message = descriptor.new_message()
    for fd in descriptor.fields:
        if not draw(st.booleans()):
            continue
        if fd.is_map:
            entries = draw(st.dictionaries(st.text(max_size=8),
                                           st.integers(-(2**63), 2**63 - 1),
                                           min_size=1, max_size=3))
            for key, value in entries.items():
                message.map_set(fd.name, key, value)
            continue
        if fd.field_type is FieldType.MESSAGE:
            assert fd.message_type is not None
            if depth >= 2:
                continue
            children = draw(st.lists(
                populated_messages(fd.message_type, depth=depth + 1),
                min_size=1, max_size=3 if fd.is_repeated else 1))
            if fd.is_repeated:
                for child in children:
                    message[fd.name]._items.append(child)
                message._hasbits.add(fd.number)
            else:
                message[fd.name] = children[0]
            continue
        if fd.is_repeated:
            values = draw(st.lists(value_strategy(fd.field_type),
                                   min_size=1, max_size=5))
            message[fd.name] = values
        else:
            message[fd.name] = draw(value_strategy(fd.field_type))
    return message


@st.composite
def schema_and_message(draw):
    """A (schema, message-of-Root) pair."""
    schema = draw(schemas())
    message = draw(populated_messages(schema["Root"]))
    return schema, message


@st.composite
def schema_and_two_messages(draw):
    """A (schema, message, message) triple sharing one Root type."""
    schema = draw(schemas())
    first = draw(populated_messages(schema["Root"]))
    second = draw(populated_messages(schema["Root"]))
    return schema, first, second


# -- adversarial wire mutations ----------------------------------------------

#: Mutation kinds for :func:`mutated_wire`.  Each targets a different
#: parser weakness: ``bitflip`` (key/length/value corruption),
#: ``truncate`` (unexpected EOF), ``delete``/``duplicate`` (framing
#: desync), ``insert`` (garbage between fields), ``saturate`` (0xFF runs
#: read as maximal varints/lengths), ``bogus_tag`` (field number 0 and
#: the deprecated/invalid wire types 3, 4, 6, 7).
WIRE_MUTATIONS = ("bitflip", "truncate", "delete", "duplicate", "insert",
                  "saturate", "bogus_tag")

#: Single-byte keys that are never legal here: wire types 3/4 (groups),
#: 6/7 (undefined), and field number 0 with every otherwise-valid type.
_BOGUS_KEYS = (0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
               0x0b, 0x0c, 0x0e, 0x0f)


def _apply_mutation(draw, wire: bytes, kind: str) -> bytes:
    if not wire and kind not in ("insert", "bogus_tag"):
        kind = "insert"  # nothing to corrupt in an empty buffer
    if kind == "bitflip":
        index = draw(st.integers(0, len(wire) - 1))
        flipped = bytearray(wire)
        flipped[index] ^= 1 << draw(st.integers(0, 7))
        return bytes(flipped)
    if kind == "truncate":
        return wire[:draw(st.integers(0, len(wire) - 1))]
    if kind == "delete":
        index = draw(st.integers(0, len(wire) - 1))
        count = draw(st.integers(1, min(4, len(wire) - index)))
        return wire[:index] + wire[index + count:]
    if kind == "duplicate":
        index = draw(st.integers(0, len(wire) - 1))
        count = draw(st.integers(1, min(6, len(wire) - index)))
        span = wire[index:index + count]
        return wire[:index + count] + span + wire[index + count:]
    if kind == "insert":
        index = draw(st.integers(0, len(wire)))
        blob = draw(st.binary(min_size=1, max_size=6))
        return wire[:index] + blob + wire[index:]
    if kind == "saturate":
        index = draw(st.integers(0, len(wire) - 1))
        count = draw(st.integers(1, min(11, len(wire) - index)))
        return wire[:index] + b"\xff" * count + wire[index + count:]
    if kind == "bogus_tag":
        index = draw(st.integers(0, len(wire)))
        key = draw(st.sampled_from(_BOGUS_KEYS))
        return wire[:index] + bytes([key]) + wire[index:]
    raise ValueError(f"unknown mutation {kind!r}")


@st.composite
def mutated_wire(draw, wire: bytes) -> bytes:
    """``wire`` after 1-3 adversarial mutations (may still be valid --
    differential tests compare verdicts, not assume rejection)."""
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(WIRE_MUTATIONS))
        wire = _apply_mutation(draw, wire, kind)
    return wire


@st.composite
def schema_wire_and_mutant(draw):
    """A (schema, valid wire, mutated wire) triple of one Root message.

    The shared entry point for decoder-differential tests (interpretive
    FSM vs codegen kernels vs software parser): every decoder must reach
    the same verdict on both buffers -- equal messages on accept,
    matching structured errors on reject."""
    from repro.proto.encoder import serialize_message
    schema, message = draw(schema_and_message())
    wire = serialize_message(message, check_required=False)
    mutant = draw(mutated_wire(wire))
    return schema, wire, mutant
