"""Cycle-model regression guards.

The behavioral cycle model is calibrated against the paper (see
EXPERIMENTS.md); these tests pin canonical operations to bands so an
accidental change to a unit's cycle accounting shows up as a failure
rather than silently skewing every figure.
"""

import pytest

from repro.accel.driver import ProtoAccelerator
from repro.bench.microbench import build_microbench


def _deser_cycles_per_message(name: str, batch: int = 16) -> float:
    workload = build_microbench(name, batch=batch)
    accel = ProtoAccelerator()
    accel.register_types([workload.descriptor])
    buffers = [m.serialize() for m in workload.messages]
    _, stats = accel.deserialize_batch(workload.descriptor, buffers)
    return stats.cycles / batch


def _ser_cycles_per_message(name: str, batch: int = 16) -> float:
    workload = build_microbench(name, batch=batch)
    accel = ProtoAccelerator()
    accel.register_types([workload.descriptor])
    addresses = [accel.load_object(m) for m in workload.messages]
    _, stats = accel.serialize_batch(workload.descriptor, addresses)
    return stats.cycles / batch


class TestDeserializerBands:
    def test_varint5_message(self):
        # 5 fields x (parseKey + typeInfo + write) + dispatch + stream
        # startup: ~55-60 cycles in the committed calibration.
        assert 45 <= _deser_cycles_per_message("varint-5") <= 80

    def test_small_string_message(self):
        assert 45 <= _deser_cycles_per_message("string") <= 90

    def test_very_long_string_is_copy_bound(self):
        cycles = _deser_cycles_per_message("string_very_long")
        # ~32 KiB at 16 B/cycle = 2048 copy cycles + overheads.
        assert 2050 <= cycles <= 3500

    def test_submessage_overhead(self):
        flat = _deser_cycles_per_message("varint-1")
        nested = _deser_cycles_per_message("bool-SUB")
        # One sub-message costs setup + ADT header + finish, i.e. more
        # than a scalar field but far less than a second dispatch.
        assert nested > flat - 10
        assert nested < flat + 40


class TestSerializerBands:
    def test_varint5_message(self):
        assert 10 <= _ser_cycles_per_message("varint-5") <= 30

    def test_very_long_string_is_copy_bound(self):
        cycles = _ser_cycles_per_message("string_very_long")
        assert 2050 <= cycles <= 3000

    def test_ser_faster_than_deser_on_small_messages(self):
        # The paper's structural asymmetry: serialization parallelises,
        # deserialization is serial (Section 2.2).
        assert _ser_cycles_per_message("varint-5") < \
            _deser_cycles_per_message("varint-5")


class TestThroughputAnchors:
    """Absolute Gbit/s anchors used in DESIGN.md's calibration notes."""

    @pytest.mark.parametrize("name,lo,hi", [
        ("varint-5", 6.0, 12.0),      # deser anchor ~8-9 Gbit/s
        ("varint-10", 11.0, 20.0),
    ])
    def test_deser_anchors(self, name, lo, hi):
        workload = build_microbench(name, batch=16)
        accel = ProtoAccelerator()
        accel.register_types([workload.descriptor])
        buffers = [m.serialize() for m in workload.messages]
        _, stats = accel.deserialize_batch(workload.descriptor, buffers)
        gbps = accel.throughput_gbps(stats.wire_bytes, stats.cycles)
        assert lo <= gbps <= hi
