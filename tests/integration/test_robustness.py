"""Robustness: malformed wire input must fail cleanly, never crash.

Both the software parser and the accelerator deserializer must raise
:class:`~repro.proto.errors.ProtoError` (or succeed) on arbitrary and
mutated inputs -- no other exception type may escape, and accepted
inputs must round-trip consistently between the two implementations.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.accel.driver import ProtoAccelerator
from repro.memory.arena import ArenaExhausted
from repro.proto import parse_schema
from repro.proto.decoder import parse_message
from repro.proto.errors import ProtoError

SCHEMA = parse_schema("""
    message Inner { optional int32 a = 1; optional string s = 2; }
    message Fuzz {
      optional int64 x = 1;
      optional string s = 2;
      repeated int32 packed = 3 [packed = true];
      repeated uint32 plain = 4;
      optional Inner inner = 5;
      repeated Inner kids = 6;
      optional sint64 z = 7;
      optional double d = 8;
      optional bytes raw = 9;
    }
""")

_SETTINGS = settings(max_examples=150, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@_SETTINGS
@given(st.binary(max_size=256))
def test_software_parser_never_crashes(data):
    try:
        parse_message(SCHEMA["Fuzz"], data)
    except ProtoError:
        pass  # clean rejection


@_SETTINGS
@given(st.binary(max_size=192))
def test_accelerator_never_crashes(data):
    accel = ProtoAccelerator(deser_arena_bytes=1 << 20)
    accel.register_schema(SCHEMA)
    try:
        accel.deserialize(SCHEMA["Fuzz"], data)
    except (ProtoError, ArenaExhausted):
        pass  # clean rejection (or a bounded-arena fault)


@_SETTINGS
@given(st.binary(max_size=192))
def test_accelerator_agrees_with_software_on_acceptance(data):
    """If software accepts the bytes, the accelerator must accept them
    and produce the same message (and vice versa for rejections)."""
    accel = ProtoAccelerator()
    accel.register_schema(SCHEMA)
    software_error = None
    try:
        expected = parse_message(SCHEMA["Fuzz"], data)
    except ProtoError as error:
        software_error = error
    try:
        result = accel.deserialize(SCHEMA["Fuzz"], data)
    except ProtoError:
        assert software_error is not None, \
            "accelerator rejected input software accepts"
        return
    assert software_error is None, \
        "accelerator accepted input software rejects"
    assert accel.read_message(SCHEMA["Fuzz"], result.dest_addr) == expected


@_SETTINGS
@given(st.data())
def test_mutated_valid_messages_fail_cleanly(data):
    """Bit-flip a valid serialization; both parsers either reject with
    ProtoError or accept -- never crash."""
    message = SCHEMA["Fuzz"].new_message()
    message["x"] = data.draw(st.integers(-(2**40), 2**40))
    message["s"] = data.draw(st.text(max_size=20))
    message["packed"] = data.draw(st.lists(
        st.integers(-100, 100), max_size=5))
    wire = bytearray(message.serialize())
    if wire:
        position = data.draw(st.integers(0, len(wire) - 1))
        wire[position] ^= 1 << data.draw(st.integers(0, 7))
    mutated = bytes(wire)
    try:
        parse_message(SCHEMA["Fuzz"], mutated)
    except ProtoError:
        pass


class TestResourceBounds:
    def test_huge_declared_length_rejected(self):
        # A length-delimited field claiming 2**40 bytes must fail fast,
        # not allocate.
        from repro.proto.varint import encode_varint

        data = b"\x12" + encode_varint(2**40) + b"x"
        with pytest.raises(ProtoError):
            parse_message(SCHEMA["Fuzz"], data)
        accel = ProtoAccelerator()
        accel.register_schema(SCHEMA)
        with pytest.raises(ProtoError):
            accel.deserialize(SCHEMA["Fuzz"], data)

    def test_deep_recursion_bounded_by_input_length(self):
        # Deeply nested sub-messages: depth is bounded by input bytes
        # (each level needs a key+length), so a few hundred bytes cannot
        # blow the Python stack via the explicit-stack accelerator.
        schema = parse_schema(
            "message R { optional R next = 1; optional int32 v = 2; }")
        payload = b""
        for _ in range(120):
            payload = b"\x0a" + bytes([len(payload)]) + payload \
                if len(payload) < 126 else payload
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        result = accel.deserialize(schema["R"], payload)
        assert result.stats.max_stack_depth > 30
