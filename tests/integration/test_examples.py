"""Smoke tests: every example script runs end-to-end without error."""

import importlib.util
import pathlib

import pytest

_EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

_EXAMPLES = sorted(path.stem for path in _EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", _EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def test_all_examples_discovered():
    assert len(_EXAMPLES) >= 7
    assert "quickstart" in _EXAMPLES


@pytest.mark.parametrize("name", _EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"
