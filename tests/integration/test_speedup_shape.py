"""Integration tests pinning the paper's headline result *shape*.

We do not assert absolute Gbit/s (our substrate is a simulator, not the
authors' testbed); we assert who wins, roughly by how much, and where the
orderings hold -- the reproduction contract from DESIGN.md.
"""

import pytest

from repro.bench.microbench import build_microbench
from repro.bench.report import geomean, speedup_summary
from repro.bench.runner import run_deserialization, run_serialization

_SMALL_BATCH = 8


def _speedups(names, runner):
    results = [runner(build_microbench(name, batch=_SMALL_BATCH))
               for name in names]
    return results, speedup_summary(results)


class TestOrdering:
    """On every microbenchmark: accel > Xeon-or-BOOM, Xeon > BOOM except
    where the paper itself shows otherwise (none in these subsets)."""

    @pytest.mark.parametrize("name", ["varint-1", "varint-5", "varint-10",
                                      "double", "float"])
    def test_deser_ordering(self, name):
        result = run_deserialization(build_microbench(name,
                                                      batch=_SMALL_BATCH))
        assert result.gbps("riscv-boom-accel") > result.gbps("Xeon") > \
            result.gbps("riscv-boom")

    @pytest.mark.parametrize("name", ["varint-1", "varint-5", "string",
                                      "bool-SUB"])
    def test_ser_ordering(self, name):
        result = run_serialization(build_microbench(name,
                                                    batch=_SMALL_BATCH))
        assert result.gbps("riscv-boom-accel") > result.gbps("Xeon") > \
            result.gbps("riscv-boom")


class TestVarintScaling:
    """All systems deserialize larger varints at higher Gbit/s
    (Section 5.1.1's observation)."""

    def test_monotone_for_accelerator(self):
        values = []
        for n in (1, 4, 7, 10):
            result = run_deserialization(
                build_microbench(f"varint-{n}", batch=_SMALL_BATCH))
            values.append(result.gbps("riscv-boom-accel"))
        assert values == sorted(values)

    def test_monotone_for_boom(self):
        values = []
        for n in (1, 4, 7, 10):
            result = run_deserialization(
                build_microbench(f"varint-{n}", batch=_SMALL_BATCH))
            values.append(result.gbps("riscv-boom"))
        assert values == sorted(values)


class TestHeadlineBands:
    """Geomean speedups fall in bands around the paper's numbers."""

    def test_deser_nonalloc_band(self):
        # Paper: 7.0x vs BOOM, 2.6x vs Xeon.
        _, speedups = _speedups(
            [f"varint-{n}" for n in range(0, 11, 2)] + ["double", "float"],
            run_deserialization)
        assert 4.0 < speedups["vs riscv-boom"] < 11.0
        assert 1.5 < speedups["vs Xeon"] < 4.5

    def test_ser_inline_band(self):
        # Paper: 15.5x vs BOOM, 4.5x vs Xeon.
        _, speedups = _speedups(
            [f"varint-{n}" for n in range(0, 11, 2)] + ["double", "float"],
            run_serialization)
        assert 9.0 < speedups["vs riscv-boom"] < 24.0
        assert 2.5 < speedups["vs Xeon"] < 7.5

    def test_deser_alloc_band(self):
        # Paper: 14.2x vs BOOM, 6.9x vs Xeon.
        _, speedups = _speedups(
            ["varint-2-R", "varint-8-R", "string", "string_long",
             "double-R", "bool-SUB", "string-SUB"],
            run_deserialization)
        assert 6.0 < speedups["vs riscv-boom"] < 25.0
        assert 2.5 < speedups["vs Xeon"] < 12.0

    def test_ser_noninline_band(self):
        # Paper: 10.1x vs BOOM, 2.8x vs Xeon.
        _, speedups = _speedups(
            ["varint-2-R", "varint-8-R", "string", "string_long",
             "double-R", "bool-SUB", "string-SUB"],
            run_serialization)
        assert 5.0 < speedups["vs riscv-boom"] < 20.0
        assert 1.5 < speedups["vs Xeon"] < 6.0


class TestLongStrings:
    """Long strings become memcpy: CPUs get competitive (Section 5.1)."""

    def test_advantage_shrinks_with_string_size(self):
        small = run_deserialization(build_microbench("string",
                                                     batch=_SMALL_BATCH))
        large = run_deserialization(
            build_microbench("string_very_long", batch=_SMALL_BATCH))
        assert large.speedup("riscv-boom-accel") < \
            small.speedup("riscv-boom-accel")

    def test_xeon_excels_at_very_long_string_serialization(self):
        # Section 5.1.2: "the Xeon also performs extremely well on the
        # very-long-string benchmark, notably better than deserialization".
        ser = run_serialization(build_microbench("string_very_long",
                                                 batch=_SMALL_BATCH))
        deser = run_deserialization(build_microbench("string_very_long",
                                                     batch=_SMALL_BATCH))
        assert ser.gbps("Xeon") > deser.gbps("Xeon")


class TestHyperProtoBench:
    def test_combined_speedup_band(self):
        # Paper: 6.2x vs BOOM, 3.8x vs Xeon on average.
        from repro.hyperprotobench import bench_names, build_hyperprotobench

        deser, ser = [], []
        for name in bench_names():
            workload = build_hyperprotobench(name, batch=6)
            deser.append(run_deserialization(workload))
            ser.append(run_serialization(workload))
        vs_boom = geomean([speedup_summary(deser)["vs riscv-boom"],
                           speedup_summary(ser)["vs riscv-boom"]])
        vs_xeon = geomean([speedup_summary(deser)["vs Xeon"],
                           speedup_summary(ser)["vs Xeon"]])
        assert 4.0 < vs_boom < 14.0
        assert 2.0 < vs_xeon < 6.5
