"""The omnibus torture test: every feature, one schema, all paths.

A single schema combining nested/recursive messages, enums with
defaults, packed and unpacked repeated fields, strings across the SSO
boundary, bytes, oneofs (including a sub-message member), maps,
high-numbered sparse fields, and every scalar width -- pushed through
every implemented surface: software ser/deser, the accelerator
(ser/deser/copy/merge/clear), text format, JSON, schema reflection,
.proto emission, code generation, delimited streams, and the RPC
runtime.
"""

import pytest

from repro.accel.driver import ProtoAccelerator
from repro.proto import parse_schema
from repro.proto.compiler import compile_schema
from repro.proto.descriptor_pb import (
    DESCRIPTOR_SCHEMA,
    schema_from_file_descriptor,
    schema_to_file_descriptor,
)
from repro.proto.json_format import message_from_json, message_to_json
from repro.proto.stream import read_delimited_stream, write_delimited_stream
from repro.proto.text_format import message_from_text, message_to_text
from repro.proto.writer import schema_to_proto

SOURCE = """
syntax = "proto2";
package omnibus;

enum Priority { LOW = 0; MEDIUM = 5; HIGH = 9; }

message Attachment {
  required bytes blob = 1;
  optional string mime = 2 [default = "application/octet-stream"];
}

message Node {
  optional Node next = 1;
  optional int32 depth = 2;
}

message Everything {
  required int64 id = 1;
  optional string title = 2;
  optional Priority priority = 3 [default = MEDIUM];
  repeated double samples = 4 [packed = true];
  repeated uint32 codes = 5;
  repeated string tags = 6;
  optional Attachment attachment = 7;
  repeated Attachment extras = 8;
  oneof payload {
    string text = 10;
    sint64 delta = 11;
    Node chain = 12;
  }
  map<string, int64> counters = 20;
  optional fixed64 checksum = 40;
  optional bool sealed = 41;
  optional float ratio = 62;
}
"""

SCHEMA = parse_schema(SOURCE)


def build_everything():
    m = SCHEMA["Everything"].new_message()
    m["id"] = -(2**40)
    m["title"] = "omnibus message exercising the whole surface"
    m["priority"] = "HIGH"
    m["samples"] = [0.5, -1.25, 3.75]
    m["codes"] = [0, 127, 2**31]
    m["tags"] = ["short", "y" * 40, ""]
    att = m.mutable("attachment")
    att["blob"] = bytes(range(48))
    extra = m["extras"].add()
    extra["blob"] = b"\x00\xff"
    extra["mime"] = "image/webp"
    chain = m.mutable("chain")
    node = chain
    for depth in range(6):
        node["depth"] = depth
        node = node.mutable("next")
    node["depth"] = 99
    m.map_set("counters", "hits", 2**33)
    m.map_set("counters", "misses", -1)
    m["checksum"] = 2**63 + 1
    m["sealed"] = True
    m["ratio"] = 0.25
    return m


@pytest.fixture(scope="module")
def message():
    return build_everything()


@pytest.fixture(scope="module")
def accel():
    device = ProtoAccelerator()
    device.register_schema(SCHEMA)
    return device


class TestAllPaths:
    def test_software_round_trip(self, message):
        assert SCHEMA["Everything"].parse(message.serialize()) == message

    def test_oneof_state(self, message):
        assert message.which_oneof("payload") == "chain"
        assert not message.has("text")

    def test_accelerator_deserialize(self, accel, message):
        result = accel.deserialize(SCHEMA["Everything"],
                                   message.serialize())
        assert accel.read_message(SCHEMA["Everything"],
                                  result.dest_addr) == message
        assert result.stats.max_stack_depth >= 7

    def test_accelerator_serialize_wire_identical(self, accel, message):
        addr = accel.load_object(message)
        assert accel.serialize(SCHEMA["Everything"], addr).data == \
            message.serialize()

    def test_accelerator_copy_and_clear(self, accel, message):
        src = accel.load_object(message)
        dest, _ = accel.copy_message(SCHEMA["Everything"], src)
        assert accel.read_message(SCHEMA["Everything"], dest) == message
        accel.clear_message(SCHEMA["Everything"], dest)
        assert accel.serialize(SCHEMA["Everything"], dest).data == b""

    def test_accelerator_merge(self, accel, message):
        other = SCHEMA["Everything"].new_message()
        other["id"] = 7
        other["text"] = "switches the oneof"
        other["codes"] = [9]
        expected = message.copy()
        expected.merge_from(other)
        dest = accel.load_object(message)
        src = accel.load_object(other)
        accel.merge_messages(SCHEMA["Everything"], src, dest)
        merged = accel.read_message(SCHEMA["Everything"], dest)
        assert merged == expected
        assert merged.which_oneof("payload") == "text"

    def test_text_format_round_trip(self, message):
        text = message_to_text(message)
        assert message_from_text(SCHEMA["Everything"], text) == message

    def test_json_round_trip(self, message):
        text = message_to_json(message)
        assert message_from_json(SCHEMA["Everything"], text) == message

    def test_proto_emission_reparses(self, message):
        reparsed = parse_schema(schema_to_proto(SCHEMA))
        again = reparsed["Everything"].parse(message.serialize())
        assert again.serialize() == message.serialize()

    def test_reflection_round_trip(self, message):
        blob = schema_to_file_descriptor(SCHEMA).serialize()
        rebuilt = schema_from_file_descriptor(
            DESCRIPTOR_SCHEMA["FileDescriptorProto"].parse(blob))
        again = rebuilt["Everything"].parse(message.serialize())
        assert again.serialize() == message.serialize()
        assert again.which_oneof("payload") == "chain"

    def test_codegen_wraps_it(self, message):
        module = compile_schema(SCHEMA, module_name="omnibus_pb2")
        wrapped = module.Everything.parse(message.serialize())
        assert wrapped.id == message["id"]
        assert wrapped.which_oneof("payload") == "chain"
        assert wrapped.get_counters("hits") == 2**33
        assert wrapped.serialize() == message.serialize()

    def test_delimited_stream(self, message):
        stream = write_delimited_stream([message, message])
        assert read_delimited_stream(SCHEMA["Everything"], stream) == \
            [message, message]

    def test_three_system_comparison(self, message):
        from repro.bench.runner import Workload, run_deserialization

        workload = Workload("omnibus", SCHEMA["Everything"],
                            [build_everything() for _ in range(4)])
        result = run_deserialization(workload)
        assert result.gbps("riscv-boom-accel") > result.gbps("Xeon") > \
            result.gbps("riscv-boom")
