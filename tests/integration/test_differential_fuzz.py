"""Differential fuzzing: accelerator vs software on adversarial inputs.

Random schemas and messages (from :mod:`tests.strategies`) are
serialized, run through adversarial byte mutations, and decoded by both
implementations.  The oracle is agreement: identical accept/reject
verdicts, and identical values on accept.  A second set of properties
turns fault injection on and demands that recovery never changes either
the verdict or the value -- the hardened path must be invisible apart
from cycle counts.
"""

import os

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.accel.driver import ProtoAccelerator
from repro.faults import FaultPlan
from repro.memory.arena import ArenaExhausted
from repro.proto.decoder import parse_message
from repro.proto.errors import ProtoError
from tests.strategies import mutated_wire, schema_and_message

# The nightly CI profile buys a 10x deeper fuzz; explicit @settings
# would shadow the registered profile, so scale the budget here.
_NIGHTLY = os.environ.get("HYPOTHESIS_PROFILE") == "nightly"
_SETTINGS = settings(max_examples=1000 if _NIGHTLY else 100,
                     deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _software_verdict(descriptor, data):
    try:
        return parse_message(descriptor, data), None
    except ProtoError as error:
        return None, error


def _fresh_accel(schema, faults=None):
    accel = ProtoAccelerator(deser_arena_bytes=1 << 20,
                             ser_arena_bytes=1 << 20, faults=faults)
    accel.register_schema(schema)
    return accel


@_SETTINGS
@given(st.data())
def test_mutated_wire_verdicts_agree(data):
    """Accel and software agree on accept/reject and on the decoded
    value for adversarially mutated wire bytes."""
    schema, message = data.draw(schema_and_message())
    mutated = data.draw(mutated_wire(message.serialize()))
    expected, software_error = _software_verdict(schema["Root"], mutated)
    accel = _fresh_accel(schema)
    try:
        result = accel.deserialize(schema["Root"], mutated)
    except ArenaExhausted:
        return  # bounded test arena, not a wire-format verdict
    except ProtoError:
        assert software_error is not None, \
            "accelerator rejected input software accepts"
        return
    assert software_error is None, \
        "accelerator accepted input software rejects"
    assert accel.read_message(schema["Root"], result.dest_addr) == expected


@_SETTINGS
@given(st.data())
def test_fault_injection_preserves_valid_results(data):
    """With every operation faulted, recovery still yields the software
    decode/encode bit-for-bit."""
    schema, message = data.draw(schema_and_message())
    wire = message.serialize()
    plan = FaultPlan(seed=data.draw(st.integers(0, 2**16)), rate=1.0,
                     max_trigger=3)
    accel = _fresh_accel(schema, faults=plan)
    result = accel.deserialize(schema["Root"], wire)
    assert accel.read_message(schema["Root"], result.dest_addr) == \
        parse_message(schema["Root"], wire)
    addr = accel.load_object(message)
    assert accel.serialize(schema["Root"], addr).data == wire


@_SETTINGS
@given(st.data())
def test_fault_injection_preserves_rejections(data):
    """Fault recovery must never turn a malformed input into an accept
    (or vice versa): verdicts match the fault-free software parser."""
    schema, message = data.draw(schema_and_message())
    mutated = data.draw(mutated_wire(message.serialize()))
    expected, software_error = _software_verdict(schema["Root"], mutated)
    plan = FaultPlan(seed=data.draw(st.integers(0, 2**16)), rate=1.0,
                     max_trigger=3)
    accel = _fresh_accel(schema, faults=plan)
    try:
        result = accel.deserialize(schema["Root"], mutated)
    except ArenaExhausted:
        return
    except ProtoError:
        assert software_error is not None, \
            "fault recovery rejected input software accepts"
        return
    assert software_error is None, \
        "fault recovery accepted input software rejects"
    assert accel.read_message(schema["Root"], result.dest_addr) == expected
