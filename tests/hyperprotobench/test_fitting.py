"""Tests for profile fitting from shape samples."""

import pytest

from repro.fleet.sampler import FleetSampler, ShapeSample, FieldShape
from repro.hyperprotobench.fitting import fit_profile
from repro.hyperprotobench.generator import BenchGenerator
from repro.proto.types import FieldType


@pytest.fixture(scope="module")
def fleet_samples():
    return FleetSampler(seed=41).sample_many(3000)


class TestFitting:
    def test_fits_fleet_samples(self, fleet_samples):
        profile = fit_profile("fitted", fleet_samples)
        assert profile.name == "fitted"
        assert profile.fields_per_message > 1
        assert FieldType.STRING in profile.type_weights
        assert 0.05 <= profile.presence_probability <= 0.95
        assert profile.max_depth >= 1

    def test_type_mix_tracks_samples(self, fleet_samples):
        profile = fit_profile("fitted", fleet_samples)
        weights = profile.type_weights
        # Fleet samples are drawn with int32 the most common type
        # (FIELD_COUNT_SHARES); the fit must recover that ordering.
        assert weights[FieldType.INT32] >= weights[FieldType.FLOAT]

    def test_overrides_win(self, fleet_samples):
        profile = fit_profile("fitted", fleet_samples,
                              repeated_probability=0.5, max_depth=2)
        assert profile.repeated_probability == 0.5
        assert profile.max_depth == 2

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_profile("x", [])

    def test_unknown_types_only_rejected(self):
        sample = ShapeSample(encoded_size=8,
                             fields=[FieldShape("mystery", 4)])
        with pytest.raises(ValueError):
            fit_profile("x", [sample])


class TestFittedGeneration:
    def test_generated_workload_resembles_samples(self, fleet_samples):
        string_heavy = [s for s in fleet_samples
                        if any(f.type_name == "string"
                               for f in s.fields)]
        profile = fit_profile("fitted", string_heavy, batch=16,
                              submessage_probability=0.1)
        bench = BenchGenerator(profile, seed=3).generate()
        assert len(bench.messages) == 16
        sizes = [len(m.serialize()) for m in bench.messages]
        assert all(size > 0 for size in sizes)
        # The fitted generator must produce string content.
        has_string = any(
            fd.field_type is FieldType.STRING
            for m in bench.messages for fd in m.descriptor.fields)
        assert has_string

    def test_fitted_bench_runs_on_three_systems(self, fleet_samples):
        from repro.bench.runner import Workload, run_deserialization

        profile = fit_profile("fitted", fleet_samples[:500], batch=6,
                              submessage_probability=0.15, max_depth=3)
        bench = BenchGenerator(profile, seed=5).generate()
        workload = Workload(bench.name, bench.root, bench.messages)
        result = run_deserialization(workload)
        assert result.gbps("riscv-boom-accel") > result.gbps("riscv-boom")
