"""Tests for the HyperProtoBench generator."""

import pytest

from repro.hyperprotobench.generator import BenchGenerator
from repro.hyperprotobench.shapes import SERVICE_PROFILES
from repro.hyperprotobench.workload import (
    bench_names,
    build_hyperprotobench,
    generate_bench,
)
from repro.proto import parse_schema
from repro.proto.types import FieldType


class TestProfiles:
    def test_six_benchmarks(self):
        assert bench_names() == [f"bench{i}" for i in range(6)]

    def test_profiles_distinct(self):
        descriptions = {p.description for p in SERVICE_PROFILES}
        assert len(descriptions) == 6


class TestGeneration:
    def test_deterministic(self):
        a = generate_bench("bench0", seed=9, batch=4)
        b = generate_bench("bench0", seed=9, batch=4)
        assert a.proto_source == b.proto_source
        assert [m.serialize() for m in a.messages] == \
            [m.serialize() for m in b.messages]

    def test_different_seeds_differ(self):
        a = generate_bench("bench0", seed=1, batch=4)
        b = generate_bench("bench0", seed=2, batch=4)
        assert [m.serialize() for m in a.messages] != \
            [m.serialize() for m in b.messages]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            generate_bench("bench99")

    def test_proto_source_parses(self):
        for name in bench_names():
            bench = generate_bench(name, batch=1)
            reparsed = parse_schema(bench.proto_source)
            assert bench.root.name in reparsed

    def test_messages_nonempty_and_serializable(self):
        for name in bench_names():
            bench = generate_bench(name, batch=6)
            assert len(bench.messages) == 6
            for message in bench.messages:
                assert len(message.serialize()) > 0

    def test_depth_respects_profile(self):
        profile = SERVICE_PROFILES[3]  # bench3: max_depth 8
        bench = BenchGenerator(profile, seed=1).generate(batch=8)
        assert max(m.total_depth() for m in bench.messages) <= \
            profile.max_depth

    def test_storage_profile_is_bytes_heavy(self):
        bench = generate_bench("bench1", batch=8)
        total = 0
        bytes_like = 0
        for message in bench.messages:
            for fd in message.descriptor.fields:
                if not message.has(fd.name):
                    continue
                values = (message[fd.name] if fd.is_repeated
                          else [message[fd.name]])
                for value in values:
                    if fd.field_type in (FieldType.BYTES,
                                         FieldType.STRING):
                        bytes_like += len(value)
                    total += 1
        assert bytes_like > 0


class TestWorkloadBridge:
    def test_build_workload(self):
        workload = build_hyperprotobench("bench0", batch=4)
        assert workload.name == "bench0"
        assert len(workload.messages) == 4
        assert workload.total_wire_bytes() > 0
