"""Tests for the software deserializer."""

import pytest

from repro.proto import parse_schema
from repro.proto.decoder import merge_from_wire, parse_message
from repro.proto.encoder import serialize_message
from repro.proto.errors import DecodeError
from repro.proto.trace import Op, Trace
from repro.proto.varint import encode_varint
from repro.proto.wire import encode_tag
from repro.proto.types import WireType


@pytest.fixture()
def schema():
    return parse_schema("""
        message Inner { optional int32 a = 1; repeated int32 xs = 2; }
        message M {
          optional int32 i = 1;
          optional string s = 2;
          repeated int32 packed_nums = 3 [packed = true];
          repeated int32 plain_nums = 4;
          optional Inner inner = 5;
          optional sint64 z = 6;
          optional uint32 u = 7;
          optional bytes raw = 8;
        }
    """)


class TestBasicDecoding:
    def test_varint_field(self, schema):
        m = parse_message(schema["M"], b"\x08\x96\x01")
        assert m["i"] == 150

    def test_negative_int32(self, schema):
        m = parse_message(schema["M"], b"\x08" + b"\xff" * 9 + b"\x01")
        assert m["i"] == -1

    def test_string(self, schema):
        m = parse_message(schema["M"], b"\x12\x05hello")
        assert m["s"] == "hello"

    def test_bytes(self, schema):
        m = parse_message(schema["M"], b"\x42\x03\x00\x01\x02")
        assert m["raw"] == b"\x00\x01\x02"

    def test_sint64(self, schema):
        m = parse_message(schema["M"], b"\x30\x03")
        assert m["z"] == -2

    def test_uint32_wraps_to_32_bits(self, schema):
        data = b"\x38" + encode_varint(2**32 + 5)
        m = parse_message(schema["M"], data)
        assert m["u"] == 5

    def test_empty_input(self, schema):
        m = parse_message(schema["M"], b"")
        assert m.present_field_numbers() == []

    def test_last_value_wins_for_singular(self, schema):
        m = parse_message(schema["M"], b"\x08\x01\x08\x02")
        assert m["i"] == 2


class TestRepeated:
    def test_packed(self, schema):
        m = parse_message(schema["M"],
                          b"\x1a\x06\x03\x8e\x02\x9e\xa7\x05")
        assert list(m["packed_nums"]) == [3, 270, 86942]

    def test_unpacked(self, schema):
        m = parse_message(schema["M"], b"\x20\x01\x20\x02")
        assert list(m["plain_nums"]) == [1, 2]

    def test_packed_encoding_accepted_for_unpacked_field(self, schema):
        # proto2 parsers must accept both encodings regardless of the
        # declared packed option.
        data = encode_tag(4, WireType.LENGTH_DELIMITED) + b"\x02\x01\x02"
        m = parse_message(schema["M"], data)
        assert list(m["plain_nums"]) == [1, 2]

    def test_unpacked_encoding_accepted_for_packed_field(self, schema):
        data = (encode_tag(3, WireType.VARINT) + b"\x07"
                + encode_tag(3, WireType.VARINT) + b"\x08")
        m = parse_message(schema["M"], data)
        assert list(m["packed_nums"]) == [7, 8]

    def test_interleaved_repeated_fields(self, schema):
        data = b"\x20\x01\x12\x01x\x20\x02"
        m = parse_message(schema["M"], data)
        assert list(m["plain_nums"]) == [1, 2]
        assert m["s"] == "x"


class TestSubMessages:
    def test_nested(self, schema):
        m = parse_message(schema["M"], b"\x2a\x02\x08\x07")
        assert m["inner"]["a"] == 7

    def test_empty_submessage(self, schema):
        m = parse_message(schema["M"], b"\x2a\x00")
        assert m.has("inner")
        assert m["inner"].present_field_numbers() == []

    def test_split_submessage_merges(self, schema):
        # Two occurrences of a singular sub-message field merge.
        data = b"\x2a\x02\x08\x07" + b"\x2a\x03\x12\x01\x05"
        m = parse_message(schema["M"], data)
        assert m["inner"]["a"] == 7
        assert list(m["inner"]["xs"]) == [5]


class TestUnknownFields:
    def test_unknown_varint_skipped(self, schema):
        data = encode_tag(30, WireType.VARINT) + b"\x05" + b"\x08\x01"
        m = parse_message(schema["M"], data)
        assert m["i"] == 1

    def test_unknown_length_delimited_skipped(self, schema):
        data = (encode_tag(31, WireType.LENGTH_DELIMITED) + b"\x03abc"
                + b"\x08\x02")
        m = parse_message(schema["M"], data)
        assert m["i"] == 2

    def test_unknown_fixed_skipped(self, schema):
        data = (encode_tag(32, WireType.FIXED64) + b"\x00" * 8
                + encode_tag(33, WireType.FIXED32) + b"\x00" * 4)
        m = parse_message(schema["M"], data)
        assert m.present_field_numbers() == []


class TestErrors:
    def test_truncated_varint(self, schema):
        with pytest.raises(DecodeError):
            parse_message(schema["M"], b"\x08\x80")

    def test_truncated_string(self, schema):
        with pytest.raises(DecodeError):
            parse_message(schema["M"], b"\x12\x05hi")

    def test_truncated_submessage(self, schema):
        with pytest.raises(DecodeError):
            parse_message(schema["M"], b"\x2a\x05\x08\x01")

    def test_wrong_wire_type_for_field(self, schema):
        data = encode_tag(1, WireType.FIXED32) + b"\x00" * 4
        with pytest.raises(DecodeError):
            parse_message(schema["M"], data)

    def test_group_wire_type_rejected(self, schema):
        data = encode_tag(30, WireType.START_GROUP)
        with pytest.raises(DecodeError):
            parse_message(schema["M"], data)


class TestMergeFromWire:
    def test_merge_into_existing(self, schema):
        m = schema["M"].new_message()
        m["i"] = 1
        merge_from_wire(m, b"\x12\x02ab")
        assert m["i"] == 1
        assert m["s"] == "ab"


class TestTraceEvents:
    def test_dispatch_per_field(self, schema):
        trace = Trace()
        parse_message(schema["M"], b"\x08\x01\x12\x01x", trace=trace)
        assert trace.count(Op.FIELD_DISPATCH) == 2
        assert trace.count(Op.TAG_DECODE) == 2

    def test_string_alloc_and_memcpy(self, schema):
        trace = Trace()
        parse_message(schema["M"], b"\x12\x05hello", trace=trace)
        assert trace.count(Op.ALLOC) == 1
        assert trace.total(Op.MEMCPY) == 5

    def test_submessage_construct(self, schema):
        trace = Trace()
        parse_message(schema["M"], b"\x2a\x02\x08\x07", trace=trace)
        assert trace.count(Op.OBJ_CONSTRUCT) == 1
        assert trace.count(Op.MSG_ENTER) == 1

    def test_first_repeated_element_allocates(self, schema):
        trace = Trace()
        parse_message(schema["M"], b"\x20\x01\x20\x02", trace=trace)
        assert trace.count(Op.ALLOC) == 1


class TestRequiredOnParse:
    def test_opt_in_required_check(self):
        from repro.proto import parse_schema

        schema = parse_schema("""
            message R { required int32 a = 1; optional int32 b = 2; }
        """)
        # Default: lenient, like MergePartialFromString.
        lenient = parse_message(schema["R"], b"\x10\x05")
        assert lenient["b"] == 5
        # Opt-in: missing required field rejects the parse.
        with pytest.raises(DecodeError):
            parse_message(schema["R"], b"\x10\x05", check_required=True)
        strict = parse_message(schema["R"], b"\x08\x01",
                               check_required=True)
        assert strict["a"] == 1
