"""Tests for descriptor.proto-style schema reflection."""

import pytest

from repro.proto import parse_schema
from repro.proto.descriptor_pb import (
    DESCRIPTOR_SCHEMA,
    schema_from_file_descriptor,
    schema_to_file_descriptor,
)

SOURCE = """
syntax = "proto2";
package demo;

enum Mode { OFF = 0; ON = 1; }

message Inner {
  optional int32 a = 1;
  enum Kind { PLAIN = 0; FANCY = 3; }
  optional Kind kind = 2;
}

message Outer {
  required int64 x = 1;
  optional string name = 2 [default = "anon"];
  repeated double vals = 3 [packed = true];
  optional Inner inner = 4;
  repeated Inner kids = 5;
  optional Mode mode = 6 [default = ON];
  oneof payload { string text = 10; int64 num = 11; }
  map<string, int32> counts = 20;
}
"""


def _equivalent(a, b) -> bool:
    if {m.name for m in a.messages()} != {m.name for m in b.messages()}:
        return False
    for message in a.messages():
        other = b[message.name]
        if message.is_map_entry != other.is_map_entry:
            return False
        if message.oneof_groups != other.oneof_groups:
            return False
        for fd in message.fields:
            od = other.field_by_number(fd.number)
            if od is None:
                return False
            if (od.name, od.field_type, od.label, od.packed, od.default,
                    od.type_name, od.oneof_group) != \
                    (fd.name, fd.field_type, fd.label, fd.packed,
                     fd.default, fd.type_name, fd.oneof_group):
                return False
    return True


@pytest.fixture(scope="module")
def schema():
    return parse_schema(SOURCE)


class TestEncoding:
    def test_file_level_metadata(self, schema):
        proto = schema_to_file_descriptor(schema, name="demo.proto")
        assert proto["name"] == "demo.proto"
        assert proto["package"] == "demo"
        assert proto["syntax"] == "proto2"

    def test_upstream_type_numbers(self, schema):
        proto = schema_to_file_descriptor(schema)
        outer = next(m for m in proto["message_type"]
                     if m["name"] == "Outer")
        by_name = {f["name"]: f for f in outer["field"]}
        assert by_name["x"]["type"] == 3        # TYPE_INT64
        assert by_name["name"]["type"] == 9     # TYPE_STRING
        assert by_name["vals"]["type"] == 1     # TYPE_DOUBLE
        assert by_name["inner"]["type"] == 11   # TYPE_MESSAGE
        assert by_name["mode"]["type"] == 14    # TYPE_ENUM
        assert by_name["x"]["label"] == 2       # LABEL_REQUIRED
        assert by_name["vals"]["label"] == 3    # LABEL_REPEATED

    def test_type_names_are_fully_qualified(self, schema):
        proto = schema_to_file_descriptor(schema)
        outer = next(m for m in proto["message_type"]
                     if m["name"] == "Outer")
        by_name = {f["name"]: f for f in outer["field"]}
        assert by_name["inner"]["type_name"] == ".Inner"
        assert by_name["mode"]["type_name"] == ".Mode"

    def test_nested_types_nest(self, schema):
        proto = schema_to_file_descriptor(schema)
        outer = next(m for m in proto["message_type"]
                     if m["name"] == "Outer")
        nested = [n["name"] for n in outer["nested_type"]]
        assert "CountsEntry" in nested
        entry = next(n for n in outer["nested_type"]
                     if n["name"] == "CountsEntry")
        assert entry["options"]["map_entry"] is True

    def test_oneof_decls_and_indices(self, schema):
        proto = schema_to_file_descriptor(schema)
        outer = next(m for m in proto["message_type"]
                     if m["name"] == "Outer")
        assert [d["name"] for d in outer["oneof_decl"]] == ["payload"]
        by_name = {f["name"]: f for f in outer["field"]}
        assert by_name["text"]["oneof_index"] == 0
        assert by_name["num"]["oneof_index"] == 0
        assert not by_name["x"].has("oneof_index")

    def test_defaults_and_packed(self, schema):
        proto = schema_to_file_descriptor(schema)
        outer = next(m for m in proto["message_type"]
                     if m["name"] == "Outer")
        by_name = {f["name"]: f for f in outer["field"]}
        assert by_name["name"]["default_value"] == "anon"
        assert by_name["mode"]["default_value"] == "ON"
        assert by_name["vals"]["options"]["packed"] is True


class TestRoundTrip:
    def test_in_memory_round_trip(self, schema):
        proto = schema_to_file_descriptor(schema)
        again = schema_from_file_descriptor(proto)
        assert _equivalent(schema, again)

    def test_wire_round_trip(self, schema):
        blob = schema_to_file_descriptor(schema).serialize()
        parsed = DESCRIPTOR_SCHEMA["FileDescriptorProto"].parse(blob)
        again = schema_from_file_descriptor(parsed)
        assert _equivalent(schema, again)
        assert again.syntax == "proto2"
        assert again.package == "demo"

    def test_rebuilt_schema_is_functional(self, schema):
        blob = schema_to_file_descriptor(schema).serialize()
        again = schema_from_file_descriptor(
            DESCRIPTOR_SCHEMA["FileDescriptorProto"].parse(blob))
        m = again["Outer"].new_message()
        m["x"] = 1
        m["num"] = 7
        m.map_set("counts", "k", 2)
        back = again["Outer"].parse(m.serialize())
        assert back == m
        assert back.which_oneof("payload") == "num"

    def test_wrong_message_type_rejected(self, schema):
        with pytest.raises(TypeError):
            schema_from_file_descriptor(
                DESCRIPTOR_SCHEMA["DescriptorProto"].new_message())


class TestSelfHosting:
    def test_meta_schema_describes_itself(self):
        """descriptor.proto can describe descriptor.proto."""
        proto = schema_to_file_descriptor(DESCRIPTOR_SCHEMA,
                                          name="descriptor.proto")
        blob = proto.serialize()
        parsed = DESCRIPTOR_SCHEMA["FileDescriptorProto"].parse(blob)
        again = schema_from_file_descriptor(parsed)
        assert _equivalent(DESCRIPTOR_SCHEMA, again)

    def test_hyperprotobench_schemas_reflect(self):
        from repro.hyperprotobench.workload import generate_bench

        bench = generate_bench("bench2", batch=1)
        blob = schema_to_file_descriptor(bench.schema).serialize()
        again = schema_from_file_descriptor(
            DESCRIPTOR_SCHEMA["FileDescriptorProto"].parse(blob))
        assert _equivalent(bench.schema, again)
