"""Unit and property tests for the varint and zig-zag codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.proto.errors import DecodeError
from repro.proto.varint import (
    MAX_VARINT_LENGTH,
    decode_signed,
    decode_varint,
    decode_zigzag,
    encode_signed,
    encode_varint,
    encode_zigzag,
    varint_length,
)


class TestEncodeVarint:
    def test_zero_is_one_byte(self):
        assert encode_varint(0) == b"\x00"

    def test_single_byte_values(self):
        assert encode_varint(1) == b"\x01"
        assert encode_varint(127) == b"\x7f"

    def test_two_byte_boundary(self):
        assert encode_varint(128) == b"\x80\x01"

    def test_known_vector_300(self):
        # The canonical example from the protobuf encoding docs.
        assert encode_varint(300) == b"\xac\x02"

    def test_max_uint64_is_ten_bytes(self):
        encoded = encode_varint(2**64 - 1)
        assert len(encoded) == MAX_VARINT_LENGTH
        assert encoded == b"\xff" * 9 + b"\x01"

    def test_continuation_bits(self):
        encoded = encode_varint(2**35)
        assert all(b & 0x80 for b in encoded[:-1])
        assert not encoded[-1] & 0x80

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(2**64)


class TestDecodeVarint:
    def test_decode_known(self):
        assert decode_varint(b"\xac\x02") == (300, 2)

    def test_decode_with_offset(self):
        assert decode_varint(b"\xff\xac\x02", offset=1) == (300, 2)

    def test_truncated_raises(self):
        with pytest.raises(DecodeError):
            decode_varint(b"\x80")

    def test_empty_raises(self):
        with pytest.raises(DecodeError):
            decode_varint(b"")

    def test_overlong_raises(self):
        with pytest.raises(DecodeError):
            decode_varint(b"\x80" * 11)

    def test_ten_byte_truncates_to_64_bits(self):
        # A 10-byte varint with all payload bits set decodes to u64 max,
        # matching C++ parser behaviour.
        value, length = decode_varint(b"\xff" * 9 + b"\x7f")
        assert length == 10
        assert value == 2**64 - 1


class TestDecodeErrorMetadata:
    """Varint decode errors carry the failing byte offset and a fault
    site, so a rejection deep in a message is diagnosable."""

    def test_empty_reports_offset_zero(self):
        with pytest.raises(DecodeError) as excinfo:
            decode_varint(b"")
        assert excinfo.value.offset == 0
        assert excinfo.value.site == "varint"
        assert "byte 0" in str(excinfo.value)

    def test_truncated_reports_nonzero_offset(self):
        with pytest.raises(DecodeError) as excinfo:
            decode_varint(b"\x01\x02\x80\x80", offset=2)
        assert excinfo.value.offset == 2
        assert excinfo.value.site == "varint"
        assert "byte 2" in str(excinfo.value)

    def test_overlong_reports_offset_and_site(self):
        with pytest.raises(DecodeError) as excinfo:
            decode_varint(b"\xff" + b"\x80" * 11, offset=1)
        assert excinfo.value.offset == 1
        assert excinfo.value.site == "varint"
        assert "longer than" in str(excinfo.value)

    def test_accel_wrap_preserves_metadata(self):
        # AccelFault.wrap must not clobber the error's own offset/site.
        from repro.proto.errors import AccelDecodeFault
        with pytest.raises(DecodeError) as excinfo:
            decode_varint(b"\x80\x80", offset=0)
        wrapped = AccelDecodeFault.wrap(excinfo.value, site="deserializer",
                                        cycle=42.0)
        assert wrapped.offset == excinfo.value.offset
        assert wrapped.site == "varint"  # the error's own site wins
        assert wrapped.cycle == 42.0
        assert isinstance(wrapped, DecodeError)


class TestDecodeVarintFastPath:
    """Boundary coverage for the table-driven zero-copy decoder."""

    @pytest.mark.parametrize("convert", [bytes, bytearray, memoryview],
                             ids=["bytes", "bytearray", "memoryview"])
    def test_accepts_buffer_types(self, convert):
        data = convert(b"\xac\x02")
        assert decode_varint(data) == (300, 2)

    @pytest.mark.parametrize("convert", [bytes, bytearray, memoryview],
                             ids=["bytes", "bytearray", "memoryview"])
    def test_buffer_types_with_offset(self, convert):
        data = convert(b"\x00\xff" + encode_varint(2**64 - 1))
        assert decode_varint(data, offset=2) == (2**64 - 1, 10)

    @pytest.mark.parametrize("nbytes", [1, 2, 5, 9, 10])
    def test_length_boundaries(self, nbytes):
        # Smallest value occupying exactly ``nbytes`` wire bytes.
        value = 0 if nbytes == 1 else 1 << 7 * (nbytes - 1)
        encoded = encode_varint(value)
        assert len(encoded) == nbytes
        assert decode_varint(encoded) == (value, nbytes)
        # Largest value of that length too.
        top = min(2**64, 1 << 7 * nbytes) - 1
        encoded = encode_varint(top)
        assert len(encoded) == nbytes
        assert decode_varint(encoded) == (top, nbytes)

    @pytest.mark.parametrize("nbytes", range(1, 10))
    def test_truncation_at_every_length(self, nbytes):
        # N continuation bytes and nothing after them, for N in 1..9.
        with pytest.raises(DecodeError):
            decode_varint(b"\x80" * nbytes)

    def test_ten_continuation_bytes_overlong(self):
        # Ten continuation bytes means an 11th byte would be needed --
        # past the hardware's 10-byte limit regardless of what follows.
        with pytest.raises(DecodeError):
            decode_varint(b"\x80" * 10)
        with pytest.raises(DecodeError):
            decode_varint(b"\x80" * 10 + b"\x01")

    def test_eleven_byte_varint_rejected(self):
        with pytest.raises(DecodeError):
            decode_varint(b"\xff" * 10 + b"\x01")

    def test_nine_continuations_then_terminator(self):
        assert decode_varint(b"\xff" * 9 + b"\x01") == (2**64 - 1, 10)

    def test_truncation_with_offset_at_end(self):
        data = b"\x01\x02\x03"
        with pytest.raises(DecodeError):
            decode_varint(data, offset=3)

    def test_negative_offset_rejected(self):
        with pytest.raises(DecodeError):
            decode_varint(b"\x01", offset=-1)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_memoryview_matches_bytes(self, value):
        encoded = encode_varint(value)
        assert decode_varint(memoryview(encoded)) == \
            decode_varint(encoded)


class TestVarintLength:
    @pytest.mark.parametrize("value,expected", [
        (0, 1), (1, 1), (127, 1), (128, 2), (16383, 2), (16384, 3),
        (2**28 - 1, 4), (2**28, 5), (2**63, 10), (2**64 - 1, 10),
    ])
    def test_boundaries(self, value, expected):
        assert varint_length(value) == expected

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_matches_encoding(self, value):
        assert varint_length(value) == len(encode_varint(value))


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_encode_decode_inverse(self, value):
        encoded = encode_varint(value)
        assert decode_varint(encoded) == (value, len(encoded))

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.binary(min_size=0, max_size=4))
    def test_decode_ignores_trailing_bytes(self, value, suffix):
        encoded = encode_varint(value)
        decoded, consumed = decode_varint(encoded + suffix)
        assert (decoded, consumed) == (value, len(encoded))


class TestSigned:
    def test_negative_int_encodes_to_ten_bytes(self):
        # The paper's varint-10 pathology: negative int32/int64 values
        # occupy the full 10 wire bytes.
        payload = encode_signed(-1)
        assert varint_length(payload) == 10

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_signed_round_trip(self, value):
        assert decode_signed(encode_signed(value)) == value


class TestZigZag:
    @pytest.mark.parametrize("value,expected", [
        (0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4), (2147483647, 4294967294),
        (-2147483648, 4294967295),
    ])
    def test_known_vectors(self, value, expected):
        # Vectors from the protobuf encoding documentation.
        assert encode_zigzag(value) == expected

    def test_small_negative_stays_small(self):
        # The whole point of zig-zag: -1 is one wire byte, not ten.
        assert varint_length(encode_zigzag(-1)) == 1

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_round_trip(self, value):
        assert decode_zigzag(encode_zigzag(value)) == value

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_32_bit_round_trip(self, value):
        assert decode_zigzag(encode_zigzag(value, bits=32)) == value

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_zigzag(2**63)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            decode_zigzag(-1)
