"""Tests for .proto emission and parse/write round trips."""

from repro.proto import parse_schema
from repro.proto.writer import schema_to_proto


SOURCE = """
syntax = "proto2";

enum Mode { OFF = 0; ON = 1; }

message Inner {
  optional int32 a = 1;
}

message Outer {
  required int64 x = 1;
  optional string name = 2 [default = "anon"];
  repeated double vals = 3 [packed = true];
  optional Inner inner = 4;
  repeated Inner kids = 7;
  optional Mode mode = 9 [default = ON];
}
"""


def _schemas_equivalent(a, b) -> bool:
    if {m.name for m in a.messages()} != {m.name for m in b.messages()}:
        return False
    for message in a.messages():
        other = b[message.name]
        if len(message.fields) != len(other.fields):
            return False
        for fd in message.fields:
            od = other.field_by_number(fd.number)
            if od is None or od.name != fd.name:
                return False
            if (od.field_type, od.label, od.packed, od.default) != \
                    (fd.field_type, fd.label, fd.packed, fd.default):
                return False
            if fd.type_name != od.type_name:
                return False
    return True


def test_round_trip_through_text():
    schema = parse_schema(SOURCE)
    emitted = schema_to_proto(schema)
    reparsed = parse_schema(emitted)
    assert _schemas_equivalent(schema, reparsed)


def test_emits_nested_messages_nested():
    schema = parse_schema("""
        message Outer {
          message Inner { optional int32 a = 1; }
          optional Inner inner = 1;
        }
    """)
    emitted = schema_to_proto(schema)
    assert "message Outer {" in emitted
    assert emitted.index("message Inner") > emitted.index("message Outer")
    reparsed = parse_schema(emitted)
    assert "Outer.Inner" in reparsed


def test_emits_options():
    schema = parse_schema(SOURCE)
    emitted = schema_to_proto(schema)
    assert "packed = true" in emitted
    assert 'default = "anon"' in emitted
    assert "default = ON" in emitted


def test_hyperprotobench_schemas_round_trip():
    from repro.hyperprotobench.workload import generate_bench

    bench = generate_bench("bench0", batch=1)
    reparsed = parse_schema(bench.proto_source)
    assert _schemas_equivalent(bench.schema, reparsed)
