"""Tests for the type tables, including the paper's Table 1 classes."""

import pytest

from repro.proto.types import (
    FieldType,
    Label,
    PerformanceClass,
    WireType,
    CPP_SCALAR_BYTES,
    FIXED_WIDTH_BYTES,
    int_range,
    is_integer_type,
    is_packable,
    performance_class,
    wire_type_for,
)


class TestWireTypes:
    @pytest.mark.parametrize("field_type,expected", [
        (FieldType.INT32, WireType.VARINT),
        (FieldType.INT64, WireType.VARINT),
        (FieldType.UINT32, WireType.VARINT),
        (FieldType.UINT64, WireType.VARINT),
        (FieldType.SINT32, WireType.VARINT),
        (FieldType.SINT64, WireType.VARINT),
        (FieldType.BOOL, WireType.VARINT),
        (FieldType.ENUM, WireType.VARINT),
        (FieldType.DOUBLE, WireType.FIXED64),
        (FieldType.FIXED64, WireType.FIXED64),
        (FieldType.SFIXED64, WireType.FIXED64),
        (FieldType.FLOAT, WireType.FIXED32),
        (FieldType.FIXED32, WireType.FIXED32),
        (FieldType.SFIXED32, WireType.FIXED32),
        (FieldType.STRING, WireType.LENGTH_DELIMITED),
        (FieldType.BYTES, WireType.LENGTH_DELIMITED),
        (FieldType.MESSAGE, WireType.LENGTH_DELIMITED),
    ])
    def test_section_212_mapping(self, field_type, expected):
        assert wire_type_for(field_type) is expected

    def test_group_has_no_wire_type(self):
        with pytest.raises(ValueError):
            wire_type_for(FieldType.GROUP)

    def test_wire_type_values_match_spec(self):
        assert WireType.VARINT == 0
        assert WireType.FIXED64 == 1
        assert WireType.LENGTH_DELIMITED == 2
        assert WireType.FIXED32 == 5


class TestTable1Classes:
    """Table 1: performance-similar type groups."""

    def test_bytes_like(self):
        for ft in (FieldType.BYTES, FieldType.STRING):
            assert performance_class(ft) is PerformanceClass.BYTES_LIKE

    def test_varint_like(self):
        for ft in (FieldType.SINT64, FieldType.SINT32, FieldType.UINT64,
                   FieldType.UINT32, FieldType.INT64, FieldType.INT32,
                   FieldType.ENUM, FieldType.BOOL):
            assert performance_class(ft) is PerformanceClass.VARINT_LIKE

    def test_float_like(self):
        assert performance_class(FieldType.FLOAT) is \
            PerformanceClass.FLOAT_LIKE

    def test_double_like(self):
        assert performance_class(FieldType.DOUBLE) is \
            PerformanceClass.DOUBLE_LIKE

    def test_fixed_classes(self):
        assert performance_class(FieldType.FIXED32) is \
            PerformanceClass.FIXED32_LIKE
        assert performance_class(FieldType.SFIXED32) is \
            PerformanceClass.FIXED32_LIKE
        assert performance_class(FieldType.FIXED64) is \
            PerformanceClass.FIXED64_LIKE
        assert performance_class(FieldType.SFIXED64) is \
            PerformanceClass.FIXED64_LIKE

    def test_every_wire_type_has_a_class(self):
        for ft in FieldType:
            if ft is FieldType.GROUP:
                continue
            assert performance_class(ft) is not None


class TestPackability:
    def test_numeric_types_packable(self):
        for ft in (FieldType.INT32, FieldType.DOUBLE, FieldType.BOOL,
                   FieldType.FIXED32, FieldType.ENUM, FieldType.SINT64):
            assert is_packable(ft)

    def test_length_delimited_not_packable(self):
        for ft in (FieldType.STRING, FieldType.BYTES, FieldType.MESSAGE):
            assert not is_packable(ft)


class TestWidths:
    def test_fixed_width_wire_sizes(self):
        assert FIXED_WIDTH_BYTES[FieldType.DOUBLE] == 8
        assert FIXED_WIDTH_BYTES[FieldType.FLOAT] == 4
        assert FIXED_WIDTH_BYTES[FieldType.FIXED64] == 8
        assert FIXED_WIDTH_BYTES[FieldType.SFIXED32] == 4

    def test_cpp_scalar_widths(self):
        assert CPP_SCALAR_BYTES[FieldType.BOOL] == 1
        assert CPP_SCALAR_BYTES[FieldType.INT32] == 4
        assert CPP_SCALAR_BYTES[FieldType.INT64] == 8
        assert CPP_SCALAR_BYTES[FieldType.ENUM] == 4


class TestRanges:
    def test_int32_range(self):
        assert int_range(FieldType.INT32) == (-(2**31), 2**31 - 1)

    def test_uint64_range(self):
        assert int_range(FieldType.UINT64) == (0, 2**64 - 1)

    def test_is_integer_type(self):
        assert is_integer_type(FieldType.INT32)
        assert is_integer_type(FieldType.BOOL)
        assert not is_integer_type(FieldType.STRING)
        assert not is_integer_type(FieldType.DOUBLE)


class TestLabels:
    def test_labels_parse_from_keywords(self):
        assert Label("optional") is Label.OPTIONAL
        assert Label("required") is Label.REQUIRED
        assert Label("repeated") is Label.REPEATED
