"""Tests for protoc-style code generation."""

import pytest

from repro.proto import parse_schema
from repro.proto.compiler import compile_schema, generate_source


@pytest.fixture(scope="module")
def schema():
    return parse_schema("""
        enum Mode { OFF = 0; ON = 1; }
        message Inner { optional int32 a = 1; }
        message Outer {
          required int64 x = 1;
          optional string name = 2;
          repeated int32 nums = 3;
          optional Inner inner = 4;
          repeated Inner kids = 5;
          optional Mode mode = 6;
          optional bool class = 7;
        }
    """)


@pytest.fixture(scope="module")
def generated(schema):
    return compile_schema(schema, module_name="outer_pb2")


class TestGeneratedClasses:
    def test_classes_exist(self, generated):
        assert hasattr(generated, "Outer")
        assert hasattr(generated, "Inner")
        assert hasattr(generated, "Mode")

    def test_scalar_accessors(self, generated):
        outer = generated.Outer()
        outer.x = 42
        assert outer.x == 42
        assert outer.has_x()
        outer.clear_x()
        assert not outer.has_x()

    def test_default_read_through(self, generated):
        outer = generated.Outer()
        assert outer.name == ""
        assert not outer.has_name()

    def test_validation_enforced(self, generated):
        outer = generated.Outer()
        with pytest.raises(TypeError):
            outer.x = "nope"

    def test_repeated_scalar(self, generated):
        outer = generated.Outer()
        outer.nums = [1, 2]
        outer.add_nums(3)
        assert list(outer.nums) == [1, 2, 3]

    def test_submessage_wrapping(self, generated):
        outer = generated.Outer()
        inner = outer.mutable_inner()
        assert isinstance(inner, generated.Inner)
        inner.a = 7
        assert outer.inner.a == 7
        assert outer.has_inner()

    def test_repeated_submessage(self, generated):
        outer = generated.Outer()
        kid = outer.add_kids()
        kid.a = 5
        assert [k.a for k in outer.kids] == [5]

    def test_enum_constants(self, generated):
        assert generated.Mode.OFF == 0
        assert generated.Mode.ON == 1
        outer = generated.Outer()
        outer.mode = generated.Mode.ON
        assert outer.mode == 1

    def test_keyword_field_renamed(self, generated):
        outer = generated.Outer()
        outer.class_ = True
        assert outer.class_ is True

    def test_serialize_parse_round_trip(self, generated):
        outer = generated.Outer()
        outer.x = -1
        outer.name = "hello"
        outer.mutable_inner().a = 9
        data = outer.serialize()
        again = generated.Outer.parse(data)
        assert again == outer
        assert again.inner.a == 9

    def test_wire_identical_to_dynamic_api(self, schema, generated):
        outer = generated.Outer()
        outer.x = 5
        outer.name = "abc"
        dynamic = schema["Outer"].new_message()
        dynamic["x"] = 5
        dynamic["name"] = "abc"
        assert outer.serialize() == dynamic.serialize()

    def test_copy_and_merge(self, generated):
        a = generated.Outer()
        a.x = 1
        b = a.copy()
        b.x = 2
        assert a.x == 1
        a.merge_from(b)
        assert a.x == 2

    def test_byte_size(self, generated):
        outer = generated.Outer()
        outer.x = 300
        assert outer.byte_size() == len(outer.serialize())

    def test_unwrap_for_runtime_interop(self, schema, generated):
        from repro.accel.driver import ProtoAccelerator

        outer = generated.Outer()
        outer.x = 77
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        addr = accel.load_object(outer.unwrap())
        assert accel.serialize(schema["Outer"], addr).data == \
            outer.serialize()


class TestOneofAndMapGeneration:
    @pytest.fixture(scope="class")
    def module(self):
        schema = parse_schema("""
            message M {
              oneof payload { string text = 1; int64 num = 2; }
              map<string, int32> counters = 5;
            }
        """)
        return compile_schema(schema, module_name="m_pb2")

    def test_which_oneof(self, module):
        m = module.M()
        m.text = "hi"
        assert m.which_oneof("payload") == "text"
        m.num = 3
        assert m.which_oneof("payload") == "num"
        assert not m.has_text()

    def test_map_accessors(self, module):
        m = module.M()
        m.set_counters("hits", 2)
        m.set_counters("hits", 3)
        assert m.get_counters("hits") == 3
        assert m.counters == {"hits": 3}
        assert m.remove_counters("hits")
        assert m.counters == {}

    def test_entry_class_hidden(self, module):
        assert not hasattr(module, "M_CountersEntry")


class TestServiceStubs:
    @pytest.fixture(scope="class")
    def svc_module(self):
        schema = parse_schema("""
            message Ping { optional int32 n = 1; }
            message Pong { optional int32 n = 1; }
            service Game { rpc Play (Ping) returns (Pong); }
        """)
        return schema, compile_schema(schema, module_name="game_pb2")

    def test_stub_generated(self, svc_module):
        _, module = svc_module
        assert hasattr(module, "GameStub")

    def test_stub_end_to_end(self, svc_module):
        from repro.proto.rpc import ServiceHandler

        schema, module = svc_module
        handler = ServiceHandler(schema.service("Game"))

        def play(request):
            response = schema["Pong"].new_message()
            response["n"] = request["n"] + 1
            return response

        handler.register("Play", play)
        stub = module.GameStub(transport=handler)
        ping = module.Ping()
        ping.n = 41
        pong = stub.Play(ping)
        assert isinstance(pong, module.Pong)
        assert pong.n == 42


class TestGeneratedSource:
    def test_source_is_readable(self, schema):
        source = generate_source(schema)
        assert "DO NOT EDIT" in source
        assert "class Outer:" in source
        assert "def mutable_inner" in source
        assert '"""repeated int32 = 3"""' in source

    def test_source_attached_to_module(self, generated):
        assert "class Outer:" in generated.__source__

    def test_source_compiles_standalone(self, schema):
        source = generate_source(schema)
        namespace = {"_SCHEMA": schema}
        exec(compile(source, "<test>", "exec"), namespace)
        assert "Outer" in namespace
