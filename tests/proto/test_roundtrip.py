"""Property tests: serialize/parse round trips over random schemas."""

from hypothesis import HealthCheck, given, settings

from repro.proto.decoder import parse_message
from repro.proto.encoder import byte_size, serialize_message

from tests.strategies import schema_and_message


@settings(max_examples=60,
          suppress_health_check=[HealthCheck.too_slow])
@given(schema_and_message())
def test_round_trip_equality(pair):
    """decode(encode(m)) == m for arbitrary schemas and messages."""
    _, message = pair
    data = serialize_message(message, check_required=False)
    decoded = parse_message(message.descriptor, data)
    assert decoded == message


@settings(max_examples=60,
          suppress_health_check=[HealthCheck.too_slow])
@given(schema_and_message())
def test_byte_size_matches_encoding(pair):
    """ByteSizeLong always equals the encoded length."""
    _, message = pair
    data = serialize_message(message, check_required=False)
    assert byte_size(message) == len(data)


@settings(max_examples=40,
          suppress_health_check=[HealthCheck.too_slow])
@given(schema_and_message())
def test_double_round_trip_is_stable(pair):
    """Encoding a decoded message reproduces identical bytes (our encoder
    is deterministic and field-ordered)."""
    _, message = pair
    data = serialize_message(message, check_required=False)
    again = serialize_message(parse_message(message.descriptor, data),
                              check_required=False)
    assert again == data
