"""Tests for descriptors: field numbering, spans, density, validation."""

import pytest

from repro.proto.descriptor import (
    EnumDescriptor,
    FieldDescriptor,
    MessageDescriptor,
    Schema,
)
from repro.proto.errors import SchemaError
from repro.proto.types import FieldType, Label


def _field(number, name=None, **kwargs):
    return FieldDescriptor(name=name or f"f{number}", number=number,
                           field_type=kwargs.pop("field_type",
                                                 FieldType.INT32),
                           **kwargs)


class TestFieldDescriptor:
    def test_reserved_range_rejected(self):
        with pytest.raises(SchemaError):
            _field(19000)
        _field(18999)
        _field(20000)

    def test_max_field_number(self):
        _field(2**29 - 1)
        with pytest.raises(SchemaError):
            _field(2**29)

    def test_group_rejected(self):
        with pytest.raises(SchemaError):
            _field(1, field_type=FieldType.GROUP)

    def test_message_needs_type_name(self):
        with pytest.raises(SchemaError):
            _field(1, field_type=FieldType.MESSAGE)

    def test_defaults_by_type(self):
        assert _field(1, field_type=FieldType.STRING).default_scalar() == ""
        assert _field(1, field_type=FieldType.BYTES).default_scalar() == b""
        assert _field(1, field_type=FieldType.BOOL).default_scalar() is False
        assert _field(1, field_type=FieldType.DOUBLE).default_scalar() == 0.0
        assert _field(1).default_scalar() == 0


class TestMessageDescriptor:
    def test_span(self):
        descriptor = MessageDescriptor("M", [_field(3), _field(10)])
        assert descriptor.min_field_number == 3
        assert descriptor.max_field_number == 10
        assert descriptor.field_number_span == 8

    def test_empty_span_zero(self):
        descriptor = MessageDescriptor("M", [])
        assert descriptor.field_number_span == 0

    def test_hasbit_indices_follow_declaration_order(self):
        descriptor = MessageDescriptor("M", [_field(5), _field(2)])
        assert descriptor.field_by_number(5).hasbit_index == 0
        assert descriptor.field_by_number(2).hasbit_index == 1

    def test_usage_density(self):
        descriptor = MessageDescriptor("M", [_field(1), _field(64)])
        assert descriptor.usage_density(2) == pytest.approx(2 / 64)
        # The Section 3.7 comparison point: density above 1/64 favours
        # the paper's per-type ADT design.
        assert descriptor.usage_density(2) > 1 / 64

    def test_lookup_miss_returns_none(self):
        descriptor = MessageDescriptor("M", [_field(1)])
        assert descriptor.field_by_number(2) is None
        assert descriptor.field_by_name("zzz") is None


class TestEnumDescriptor:
    def test_default_is_first_value(self):
        enum = EnumDescriptor("E", {"B": 5, "A": 1})
        assert enum.default_value() == 5

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            EnumDescriptor("E", {})


class TestSchema:
    def test_resolve_links_message_types(self):
        schema = Schema()
        schema.add_message(MessageDescriptor("Leaf", [_field(1)]))
        schema.add_message(MessageDescriptor("Root", [
            _field(1, field_type=FieldType.MESSAGE, type_name="Leaf")]))
        schema.resolve()
        assert schema["Root"].field_by_number(1).message_type is \
            schema["Leaf"]

    def test_resolve_dangling_reference_raises(self):
        schema = Schema()
        schema.add_message(MessageDescriptor("Root", [
            _field(1, field_type=FieldType.MESSAGE, type_name="Nope")]))
        with pytest.raises(SchemaError):
            schema.resolve()

    def test_unknown_lookup_raises(self):
        with pytest.raises(SchemaError):
            Schema()["Missing"]

    def test_contains(self):
        schema = Schema()
        schema.add_message(MessageDescriptor("M", []))
        assert "M" in schema
        assert "N" not in schema
