"""Tests for text-format emission."""

from repro.proto import parse_schema
from repro.proto.text_format import message_to_text


def test_scalar_rendering():
    schema = parse_schema("""
        enum Color { RED = 0; GREEN = 1; }
        message M {
          optional int32 i = 1;
          optional string s = 2;
          optional bool b = 3;
          optional double d = 4;
          optional Color c = 5;
          optional bytes raw = 6;
        }
    """)
    m = schema["M"].new_message()
    m["i"] = -5
    m["s"] = 'say "hi"'
    m["b"] = True
    m["d"] = 1.5
    m["c"] = "GREEN"
    m["raw"] = b"a\x00b"
    text = message_to_text(m)
    assert "i: -5" in text
    assert 's: "say \\"hi\\""' in text
    assert "b: true" in text
    assert "d: 1.5" in text
    assert "c: GREEN" in text
    assert 'raw: "a\\000b"' in text


def test_nested_and_repeated():
    schema = parse_schema("""
        message Inner { optional int32 a = 1; }
        message M {
          repeated int32 xs = 1;
          optional Inner inner = 2;
        }
    """)
    m = schema["M"].new_message()
    m["xs"] = [1, 2]
    m.mutable("inner")["a"] = 3
    text = message_to_text(m)
    assert text.count("xs:") == 2
    assert "inner {" in text
    assert "  a: 3" in text


def test_empty_message_renders_empty():
    schema = parse_schema("message M { optional int32 a = 1; }")
    assert message_to_text(schema["M"].new_message()) == ""
