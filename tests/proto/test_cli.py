"""Tests for the protoc-style CLI (python -m repro.proto)."""

import pytest

from repro.proto.__main__ import main


@pytest.fixture()
def proto_file(tmp_path):
    path = tmp_path / "demo.proto"
    path.write_text("""
        message Point {
          optional int64 x = 1;
          optional string label = 2;
        }
    """)
    return str(path)


class TestCompile:
    def test_emits_generated_source(self, proto_file, capsys):
        assert main(["compile", proto_file]) == 0
        out = capsys.readouterr().out
        assert "class Point:" in out
        assert "DO NOT EDIT" in out

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.proto"]) == 2
        assert "error:" in capsys.readouterr().err


class TestEncodeDecode:
    def test_encode_then_decode(self, proto_file, capsys):
        assert main(["encode", proto_file, "Point"],
                    stdin_data=b'x: 150 label: "hi"') == 0
        wire_hex = capsys.readouterr().out.strip()
        assert wire_hex == "08960112026869"
        assert main(["decode", proto_file, "Point"],
                    stdin_data=bytes.fromhex(wire_hex)) == 0
        text = capsys.readouterr().out
        assert "x: 150" in text
        assert 'label: "hi"' in text

    def test_decode_accepts_hex_stdin(self, proto_file, capsys,
                                      monkeypatch):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO("08 96 01"))
        assert main(["decode", proto_file, "Point"]) == 0
        assert "x: 150" in capsys.readouterr().out

    def test_decode_bad_bytes(self, proto_file, capsys):
        assert main(["decode", proto_file, "Point"],
                    stdin_data=b"\x08") == 2

    def test_unknown_type(self, proto_file):
        assert main(["decode", proto_file, "Nope"],
                    stdin_data=b"") == 2


class TestDecodeRaw:
    def test_schema_free(self, capsys):
        # "hi!" cannot itself parse as wire format, so it stays a string;
        # ambiguous payloads may legitimately render as nested messages,
        # exactly like protoc --decode_raw.
        assert main(["decode-raw"],
                    stdin_data=b"\x08\x96\x01\x12\x03hi!") == 0
        out = capsys.readouterr().out
        assert "1: 150" in out
        assert '2: "hi!"' in out


class TestReflect:
    def test_descriptor_hex_round_trips(self, proto_file, capsys):
        assert main(["reflect", proto_file]) == 0
        blob = bytes.fromhex(capsys.readouterr().out.strip())
        from repro.proto.descriptor_pb import (
            DESCRIPTOR_SCHEMA,
            schema_from_file_descriptor,
        )

        parsed = DESCRIPTOR_SCHEMA["FileDescriptorProto"].parse(blob)
        schema = schema_from_file_descriptor(parsed)
        assert "Point" in schema


class TestUsage:
    def test_no_args(self, capsys):
        assert main([]) == 1
        assert "decode-raw" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 1
