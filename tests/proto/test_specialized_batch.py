"""CPU-twin batch tests: specialized.parse_batch / encode_batch.

The software baseline mirrors the accelerator's batch tier: an anchor
message establishes a template wire plan, conforming peers decode or
encode through numpy column operations, and everything irregular falls
back to the per-message specialized/interpreted paths.  The contract
is the same as every other specialization: results bit-identical to
``parse_message`` / ``serialize_message``.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.proto import parse_schema, specialized
from repro.proto.decoder import parse_message
from repro.proto.encoder import serialize_message
from repro.proto.specialized import encode_batch, parse_batch

_SCHEMA = parse_schema("""
    message Flat {
      optional uint64 v = 1;
      optional sint64 z = 2;
      optional fixed64 fx = 3;
      optional float f = 4;
      optional bool b = 5;
      repeated uint32 r = 6 [packed = true];
    }
""")

_IRREGULAR_SCHEMA = parse_schema("""
    message Mixed {
      optional int32 a = 1;
      optional string s = 2;
      repeated int32 r = 3;
    }
""")


@pytest.fixture(autouse=True)
def _clean_state():
    specialized.set_specialization_enabled(True)
    yield
    specialized.set_specialization_enabled(True)


def _flat(i, elements=(4, 5, 6)):
    message = _SCHEMA["Flat"].new_message()
    message["v"] = 100 + i
    message["z"] = -3 - i % 100
    message["fx"] = 2 ** 40 + i
    message["f"] = 1.5 * (i % 100)
    message["b"] = bool(i % 2)
    message["r"] = [e + i % 100 for e in elements]
    return message


def test_parse_batch_matches_scalar_parser():
    wires = [_flat(i).serialize() for i in range(12)]
    expected = [parse_message(_SCHEMA["Flat"], wire) for wire in wires]
    assert parse_batch(_SCHEMA["Flat"], wires) == expected


def test_parse_batch_mixed_shapes_fall_back():
    wires = []
    for i in range(12):
        if i % 4 == 1:
            # Different varint widths and element count: non-conforming.
            wires.append(_flat(2 ** 35 + i, elements=(1,) * 9).serialize())
        else:
            wires.append(_flat(i).serialize())
    expected = [parse_message(_SCHEMA["Flat"], wire) for wire in wires]
    assert parse_batch(_SCHEMA["Flat"], wires) == expected


def test_parse_batch_handles_small_and_empty_batches():
    assert parse_batch(_SCHEMA["Flat"], []) == []
    wire = _flat(3).serialize()
    assert parse_batch(_SCHEMA["Flat"], [wire]) == \
        [parse_message(_SCHEMA["Flat"], wire)]


def test_parse_batch_ineligible_schema_falls_back():
    messages = []
    for i in range(6):
        m = _IRREGULAR_SCHEMA["Mixed"].new_message()
        m["a"] = i
        m["s"] = f"tag-{i}"
        m["r"] = [i, i + 1]
        messages.append(m)
    wires = [serialize_message(m) for m in messages]
    expected = [parse_message(_IRREGULAR_SCHEMA["Mixed"], w) for w in wires]
    assert parse_batch(_IRREGULAR_SCHEMA["Mixed"], wires) == expected


def test_parse_batch_respects_specialization_toggle():
    wires = [_flat(i).serialize() for i in range(8)]
    expected = [parse_message(_SCHEMA["Flat"], wire) for wire in wires]
    specialized.set_specialization_enabled(False)
    assert parse_batch(_SCHEMA["Flat"], wires) == expected


def test_encode_batch_matches_scalar_encoder():
    messages = [_flat(i) for i in range(12)]
    expected = [serialize_message(m) for m in messages]
    assert encode_batch(_SCHEMA["Flat"], messages) == expected


def test_encode_batch_mixed_shapes_fall_back():
    messages = []
    for i in range(12):
        if i % 3 == 2:
            messages.append(_flat(2 ** 35 + i, elements=(1,) * 5))
        else:
            messages.append(_flat(i))
    expected = [serialize_message(m) for m in messages]
    assert encode_batch(_SCHEMA["Flat"], messages) == expected


def test_encode_batch_round_trips_through_parse_batch():
    messages = [_flat(i) for i in range(10)]
    wires = encode_batch(_SCHEMA["Flat"], messages)
    assert parse_batch(_SCHEMA["Flat"], wires) == messages
