"""Tests for map<K, V> fields."""

import pytest

from repro.proto import parse_schema
from repro.proto.errors import SchemaError
from repro.proto.types import FieldType
from repro.proto.writer import schema_to_proto


@pytest.fixture()
def schema():
    return parse_schema("""
        message Inner { optional int32 a = 1; }
        message M {
          map<string, int64> counters = 1;
          map<int32, string> names = 2;
          map<string, Inner> children = 3;
          optional int32 other = 4;
        }
    """)


class TestSchemaDesugaring:
    def test_map_field_is_repeated_entry_message(self, schema):
        fd = schema["M"].field_by_name("counters")
        assert fd.is_repeated
        assert fd.is_map
        assert fd.message_type is not None
        assert fd.message_type.is_map_entry
        assert fd.message_type.name == "M.CountersEntry"

    def test_entry_type_shape(self, schema):
        entry = schema["M.CountersEntry"]
        key = entry.field_by_name("key")
        value = entry.field_by_name("value")
        assert key.number == 1 and key.field_type is FieldType.STRING
        assert value.number == 2 and value.field_type is FieldType.INT64

    def test_message_valued_map(self, schema):
        entry = schema["M.ChildrenEntry"]
        assert entry.field_by_name("value").message_type is schema["Inner"]

    def test_invalid_key_type_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema("message M { map<double, int32> x = 1; }")
        with pytest.raises(SchemaError):
            parse_schema("message M { map<bytes, int32> x = 1; }")

    def test_label_on_map_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema("message M { repeated map<int32, int32> x = 1; }")

    def test_nested_map_value_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema("message M { map<int32, map> x = 1; }")

    def test_non_map_fields_unaffected(self, schema):
        assert not schema["M"].field_by_name("other").is_map


class TestMapAccess:
    def test_set_get(self, schema):
        m = schema["M"].new_message()
        m.map_set("counters", "hits", 3)
        m.map_set("counters", "misses", 1)
        assert m.map_get("counters", "hits") == 3
        assert m.map_get("counters", "absent") is None
        assert m.map_get("counters", "absent", 0) == 0

    def test_set_overwrites(self, schema):
        m = schema["M"].new_message()
        m.map_set("counters", "hits", 1)
        m.map_set("counters", "hits", 2)
        assert m.map_as_dict("counters") == {"hits": 2}
        assert len(m["counters"]) == 1

    def test_remove(self, schema):
        m = schema["M"].new_message()
        m.map_set("counters", "hits", 1)
        assert m.map_remove("counters", "hits")
        assert not m.map_remove("counters", "hits")
        assert not m.has("counters")

    def test_message_values(self, schema):
        m = schema["M"].new_message()
        child = schema["Inner"].new_message()
        child["a"] = 9
        m.map_set("children", "first", child)
        assert m.map_get("children", "first")["a"] == 9

    def test_map_helpers_reject_non_map(self, schema):
        m = schema["M"].new_message()
        with pytest.raises(TypeError):
            m.map_set("other", "k", 1)


class TestMapEquality:
    def test_entry_order_does_not_matter(self, schema):
        a = schema["M"].new_message()
        a.map_set("counters", "x", 1)
        a.map_set("counters", "y", 2)
        b = schema["M"].new_message()
        b.map_set("counters", "y", 2)
        b.map_set("counters", "x", 1)
        assert a == b

    def test_later_duplicate_key_wins_in_comparison(self, schema):
        # Simulate duplicate wire entries by appending raw entries.
        a = schema["M"].new_message()
        first = a["counters"].add()
        first["key"] = "k"
        first["value"] = 1
        second = a["counters"].add()
        second["key"] = "k"
        second["value"] = 2
        b = schema["M"].new_message()
        b.map_set("counters", "k", 2)
        assert a == b

    def test_different_values_unequal(self, schema):
        a = schema["M"].new_message()
        a.map_set("counters", "x", 1)
        b = schema["M"].new_message()
        b.map_set("counters", "x", 9)
        assert a != b


class TestWireFormat:
    def test_round_trip(self, schema):
        m = schema["M"].new_message()
        m.map_set("counters", "a", 1)
        m.map_set("counters", "b", -5)
        m.map_set("names", 7, "seven")
        data = m.serialize()
        back = schema["M"].parse(data)
        assert back.map_as_dict("counters") == {"a": 1, "b": -5}
        assert back.map_as_dict("names") == {7: "seven"}

    def test_wire_is_repeated_entry_messages(self, schema):
        # map<string,int64> f=1 with {"a": 1} must serialize exactly as a
        # repeated embedded message {key="a", value=1}.
        m = schema["M"].new_message()
        m.map_set("counters", "a", 1)
        assert m.serialize() == b"\x0a\x05\x0a\x01a\x10\x01"

    def test_accelerator_handles_maps_unchanged(self, schema):
        # Maps are pure sugar, so the accelerator needs no new states.
        from repro.accel.driver import ProtoAccelerator

        m = schema["M"].new_message()
        m.map_set("counters", "x", 42)
        child = schema["Inner"].new_message()
        child["a"] = 3
        m.map_set("children", "c", child)
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        wire = m.serialize()
        result = accel.deserialize(schema["M"], wire)
        assert accel.read_message(schema["M"], result.dest_addr) == m
        obj = accel.load_object(m)
        assert accel.serialize(schema["M"], obj).data == wire


class TestWriterEmission:
    def test_map_emitted_as_map_syntax(self, schema):
        emitted = schema_to_proto(schema)
        assert "map<string, int64> counters = 1;" in emitted
        assert "map<string, Inner> children = 3;" in emitted
        assert "CountersEntry" not in emitted

    def test_emitted_schema_reparses(self, schema):
        reparsed = parse_schema(schema_to_proto(schema))
        assert reparsed["M"].field_by_name("counters").is_map
        m = reparsed["M"].new_message()
        m.map_set("counters", "k", 1)
        assert schema["M"].parse(m.serialize()).map_as_dict(
            "counters") == {"k": 1}
