"""Tests for the .proto language parser."""

import pytest

from repro.proto import parse_schema
from repro.proto.errors import SchemaError
from repro.proto.types import FieldType, Label


class TestBasicParsing:
    def test_single_message(self):
        schema = parse_schema("message M { optional int32 a = 1; }")
        descriptor = schema["M"]
        fd = descriptor.field_by_name("a")
        assert fd is not None
        assert fd.field_type is FieldType.INT32
        assert fd.number == 1
        assert fd.label is Label.OPTIONAL

    def test_syntax_declaration(self):
        schema = parse_schema('syntax = "proto2"; message M { }')
        assert schema.syntax == "proto2"

    def test_proto3_syntax_accepted(self):
        schema = parse_schema('syntax = "proto3"; message M { }')
        assert schema.syntax == "proto3"

    def test_unknown_syntax_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema('syntax = "proto9"; message M { }')

    def test_package(self):
        schema = parse_schema("package foo.bar; message M { }")
        assert schema.package == "foo.bar"

    def test_all_scalar_types(self):
        fields = "\n".join(
            f"optional {t} f{i} = {i + 1};"
            for i, t in enumerate([
                "double", "float", "int32", "int64", "uint32", "uint64",
                "sint32", "sint64", "fixed32", "fixed64", "sfixed32",
                "sfixed64", "bool", "string", "bytes"]))
        schema = parse_schema(f"message M {{ {fields} }}")
        assert len(schema["M"].fields) == 15

    def test_comments_ignored(self):
        schema = parse_schema("""
            // a line comment
            message M {
              /* a block
                 comment */
              optional int32 a = 1;  // trailing
            }
        """)
        assert schema["M"].field_by_name("a") is not None

    def test_empty_message(self):
        schema = parse_schema("message Empty { }")
        assert schema["Empty"].fields == ()
        assert schema["Empty"].field_number_span == 0


class TestLabelsAndOptions:
    def test_required(self):
        schema = parse_schema("message M { required int64 a = 1; }")
        assert schema["M"].field_by_name("a").is_required

    def test_repeated_packed(self):
        schema = parse_schema(
            "message M { repeated int32 a = 1 [packed = true]; }")
        fd = schema["M"].field_by_name("a")
        assert fd.is_repeated and fd.packed

    def test_packed_on_string_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema(
                "message M { repeated string a = 1 [packed = true]; }")

    def test_packed_on_singular_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema(
                "message M { optional int32 a = 1 [packed = true]; }")

    def test_default_int(self):
        schema = parse_schema(
            "message M { optional int32 a = 1 [default = -5]; }")
        assert schema["M"].new_message()["a"] == -5

    def test_default_string(self):
        schema = parse_schema(
            'message M { optional string a = 1 [default = "hi"]; }')
        assert schema["M"].new_message()["a"] == "hi"

    def test_default_bool(self):
        schema = parse_schema(
            "message M { optional bool a = 1 [default = true]; }")
        assert schema["M"].new_message()["a"] is True

    def test_default_float(self):
        schema = parse_schema(
            "message M { optional double a = 1 [default = 2.5]; }")
        assert schema["M"].new_message()["a"] == 2.5


class TestMessagesAndEnums:
    def test_sub_message_reference(self):
        schema = parse_schema("""
            message Inner { optional int32 a = 1; }
            message Outer { optional Inner inner = 1; }
        """)
        fd = schema["Outer"].field_by_name("inner")
        assert fd.field_type is FieldType.MESSAGE
        assert fd.message_type is schema["Inner"]

    def test_forward_reference(self):
        schema = parse_schema("""
            message Outer { optional Inner inner = 1; }
            message Inner { optional int32 a = 1; }
        """)
        assert schema["Outer"].field_by_name("inner").message_type is \
            schema["Inner"]

    def test_recursive_message(self):
        schema = parse_schema(
            "message Node { optional Node next = 1; optional int32 v = 2; }")
        fd = schema["Node"].field_by_name("next")
        assert fd.message_type is schema["Node"]

    def test_nested_message(self):
        schema = parse_schema("""
            message Outer {
              message Inner { optional int32 a = 1; }
              optional Inner inner = 1;
            }
        """)
        assert "Outer.Inner" in schema
        assert schema["Outer"].field_by_name("inner").message_type is \
            schema["Outer.Inner"]

    def test_enum(self):
        schema = parse_schema("""
            enum Color { RED = 0; GREEN = 1; BLUE = 2; }
            message M { optional Color c = 1; }
        """)
        fd = schema["M"].field_by_name("c")
        assert fd.field_type is FieldType.ENUM
        assert fd.enum_type.values == {"RED": 0, "GREEN": 1, "BLUE": 2}

    def test_enum_default_by_name(self):
        schema = parse_schema("""
            enum Color { RED = 0; GREEN = 1; }
            message M { optional Color c = 1 [default = GREEN]; }
        """)
        assert schema["M"].new_message()["c"] == 1

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema("message M { optional Missing x = 1; }")

    def test_reserved_statement_skipped(self):
        schema = parse_schema("""
            message M {
              reserved 2, 3;
              reserved "old_name";
              optional int32 a = 1;
            }
        """)
        assert len(schema["M"].fields) == 1

    def test_option_statements_skipped(self):
        schema = parse_schema("""
            option java_package = "com.example";
            message M {
              option deprecated = true;
              optional int32 a = 1;
            }
        """)
        assert schema["M"].field_by_name("a") is not None


class TestErrors:
    def test_duplicate_field_number(self):
        with pytest.raises(SchemaError):
            parse_schema(
                "message M { optional int32 a = 1; optional int32 b = 1; }")

    def test_duplicate_field_name(self):
        with pytest.raises(SchemaError):
            parse_schema(
                "message M { optional int32 a = 1; optional int64 a = 2; }")

    def test_reserved_field_number_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema("message M { optional int32 a = 19500; }")

    def test_field_number_zero_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema("message M { optional int32 a = 0; }")

    def test_garbage_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema("message M { optional int32 a = ; }")

    def test_unclosed_brace_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema("message M { optional int32 a = 1;")

    def test_duplicate_message_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema("message M { } message M { }")
