"""Wire-format conformance corpus: golden encodings and rejections.

A table of (schema, values, expected wire bytes) vectors covering every
encoding rule, checked in all four directions: software encode, software
decode, accelerator serialize, accelerator deserialize.  Several vectors
come from the protobuf encoding documentation; the rest pin boundary
behaviour (varint widths, zig-zag, key widths, packed framing, nested
lengths).

A second corpus, loaded from ``tests/proto/vectors/*.hex``, holds
known-*bad* wire inputs (truncations, overlong varints, illegal wire
types, resource bombs, invalid UTF-8).  Every vector must be rejected
with :class:`DecodeError` by both the software parser and the
accelerator, and the accelerator's rejection must carry the structured
fault metadata (``site``, ``cycle``) introduced in repro.proto.errors.
"""

from pathlib import Path

import pytest

from repro.accel.driver import ProtoAccelerator
from repro.proto import parse_schema
from repro.proto.decoder import parse_message
from repro.proto.errors import DecodeError

_SCHEMA = parse_schema("""
    message Scalars {
      optional int32 i32 = 1;
      optional int64 i64 = 2;
      optional uint32 u32 = 3;
      optional uint64 u64 = 4;
      optional sint32 s32 = 5;
      optional sint64 s64 = 6;
      optional bool b = 7;
      optional fixed32 f32 = 8;
      optional fixed64 f64 = 9;
      optional sfixed32 sf32 = 10;
      optional sfixed64 sf64 = 11;
      optional float fl = 12;
      optional double db = 13;
      optional string st = 14;
      optional bytes by = 15;
      optional int32 wide = 16;
      optional int32 very_wide = 2047;
    }

    message Packed {
      repeated int32 vi = 1 [packed = true];
      repeated fixed32 fx = 2 [packed = true];
      repeated sint32 zz = 3 [packed = true];
    }

    message Nested {
      optional Scalars child = 1;
      repeated Scalars children = 2;
    }
""")

# (message type, {field: value}, expected wire hex)
_VECTORS = [
    # -- varint scalars --------------------------------------------------------
    ("Scalars", {"i32": 0}, "0800"),
    ("Scalars", {"i32": 1}, "0801"),
    ("Scalars", {"i32": 127}, "087f"),
    ("Scalars", {"i32": 128}, "088001"),
    ("Scalars", {"i32": 150}, "089601"),          # encoding-docs vector
    ("Scalars", {"i32": 2**31 - 1}, "08ffffffff07"),
    ("Scalars", {"i32": -1}, "08ffffffffffffffffff01"),
    ("Scalars", {"i32": -(2**31)}, "0880808080f8ffffffff01"),
    ("Scalars", {"i64": 2**63 - 1}, "10ffffffffffffffff7f"),
    ("Scalars", {"i64": -(2**63)}, "1080808080808080808001"),
    ("Scalars", {"u32": 2**32 - 1}, "18ffffffff0f"),
    ("Scalars", {"u64": 2**64 - 1}, "20ffffffffffffffffff01"),
    # -- zig-zag ----------------------------------------------------------------
    ("Scalars", {"s32": 0}, "2800"),
    ("Scalars", {"s32": -1}, "2801"),
    ("Scalars", {"s32": 1}, "2802"),
    ("Scalars", {"s32": -2147483648}, "28ffffffff0f"),
    ("Scalars", {"s64": -(2**63)}, "30ffffffffffffffffff01"),
    # -- bool ------------------------------------------------------------------
    ("Scalars", {"b": True}, "3801"),
    ("Scalars", {"b": False}, "3800"),
    # -- fixed-width -----------------------------------------------------------
    ("Scalars", {"f32": 0x01020304}, "4504030201"),
    ("Scalars", {"f64": 0x0102030405060708}, "490807060504030201"),
    ("Scalars", {"sf32": -2}, "55feffffff"),
    ("Scalars", {"sf64": -2}, "59feffffffffffffff"),
    ("Scalars", {"fl": 1.0}, "650000803f"),
    ("Scalars", {"db": 1.0}, "69000000000000f03f"),
    ("Scalars", {"db": -0.0}, "690000000000000080"),
    # -- length-delimited ---------------------------------------------------------
    ("Scalars", {"st": ""}, "7200"),
    ("Scalars", {"st": "testing"}, "720774657374696e67"),
    ("Scalars", {"by": b"\x00\xff"}, "7a0200ff"),
    ("Scalars", {"st": "é"}, "7202c3a9"),     # UTF-8 multibyte
    # -- key widths --------------------------------------------------------------
    ("Scalars", {"wide": 1}, "800101"),            # field 16: 2-byte key
    ("Scalars", {"very_wide": 1}, "f87f01"),       # field 2047: 2-byte key
    # -- packed ------------------------------------------------------------------
    ("Packed", {"vi": [3, 270, 86942]}, "0a06038e029ea705"),
    ("Packed", {"vi": [0]}, "0a0100"),
    ("Packed", {"fx": [1, 2]}, "12080100000002000000"),
    ("Packed", {"zz": [-1, 1]}, "1a020102"),
    # -- nested ------------------------------------------------------------------
    ("Nested", {}, ""),
    ("Nested", {"child": {"i32": 150}}, "0a03089601"),
    ("Nested", {"children": [{"b": True}, {}]}, "120238011200"),
]


def _build(type_name, values):
    message = _SCHEMA[type_name].new_message()
    for name, value in values.items():
        fd = _SCHEMA[type_name].field_by_name(name)
        if fd.field_type.value == "message":
            if fd.is_repeated:
                for child_values in value:
                    child = message[name].add()
                    for k, v in child_values.items():
                        child[k] = v
            else:
                child = message.mutable(name)
                for k, v in value.items():
                    child[k] = v
        else:
            message[name] = value
    return message


@pytest.fixture(scope="module")
def accel():
    device = ProtoAccelerator(deser_arena_bytes=1 << 20,
                              ser_arena_bytes=1 << 20)
    device.register_schema(_SCHEMA)
    return device


@pytest.mark.parametrize("type_name,values,expected_hex", _VECTORS)
def test_software_encode(type_name, values, expected_hex):
    assert _build(type_name, values).serialize().hex() == expected_hex


@pytest.mark.parametrize("type_name,values,expected_hex", _VECTORS)
def test_software_decode(type_name, values, expected_hex):
    decoded = _SCHEMA[type_name].parse(bytes.fromhex(expected_hex))
    assert decoded == _build(type_name, values)


@pytest.mark.parametrize("type_name,values,expected_hex", _VECTORS)
def test_accelerator_serialize(accel, type_name, values, expected_hex):
    message = _build(type_name, values)
    addr = accel.load_object(message)
    assert accel.serialize(_SCHEMA[type_name], addr).data.hex() == \
        expected_hex


@pytest.mark.parametrize("type_name,values,expected_hex", _VECTORS)
def test_accelerator_deserialize(accel, type_name, values, expected_hex):
    result = accel.deserialize(_SCHEMA[type_name],
                               bytes.fromhex(expected_hex))
    observed = accel.read_message(_SCHEMA[type_name], result.dest_addr)
    assert observed == _build(type_name, values)


# -- known-bad wire corpus ----------------------------------------------------

_VICTIM_SCHEMA = parse_schema("""
    message Inner {
      optional int32 a = 1;
      optional Inner child = 3;
    }
    message Victim {
      optional int32 a = 1;
      optional string s = 2;
      optional Inner child = 3;
      repeated int32 packed = 4 [packed = true];
      optional fixed32 fx = 5;
    }
""")
# The corpus includes invalid-UTF-8 vectors; opt the string field into
# proto3-style validation so both decoders check it.
_VICTIM_SCHEMA["Victim"].field_by_name("s").validate_utf8 = True

_VECTORS_DIR = Path(__file__).parent / "vectors"


def _load_bad_vectors():
    vectors = []
    for path in sorted(_VECTORS_DIR.glob("*.hex")):
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, _, hexbytes = line.partition(":")
            vectors.append(pytest.param(
                bytes.fromhex(hexbytes.strip()),
                id=f"{path.stem}/{name.strip()}"))
    assert vectors, f"no vectors found under {_VECTORS_DIR}"
    return vectors


_BAD_VECTORS = _load_bad_vectors()


@pytest.fixture(scope="module")
def victim_accel():
    device = ProtoAccelerator(deser_arena_bytes=1 << 20)
    device.register_schema(_VICTIM_SCHEMA)
    return device


@pytest.mark.parametrize("data", _BAD_VECTORS)
def test_software_rejects_bad_vector(data):
    with pytest.raises(DecodeError):
        parse_message(_VICTIM_SCHEMA["Victim"], data)


@pytest.mark.parametrize("data", _BAD_VECTORS)
def test_accelerator_rejects_bad_vector(victim_accel, data):
    with pytest.raises(DecodeError):
        victim_accel.deserialize(_VICTIM_SCHEMA["Victim"], data)


@pytest.mark.parametrize("data", _BAD_VECTORS)
def test_accelerator_rejection_is_structured(victim_accel, data):
    """Accelerator rejections expose the AccelFault face: a fault site
    and the cycle count at which the decode died."""
    with pytest.raises(DecodeError) as excinfo:
        victim_accel.deserialize(_VICTIM_SCHEMA["Victim"], data)
    fault = excinfo.value
    assert fault.site, "accelerator rejection carries no fault site"
    assert fault.cycle >= 0.0
    assert not fault.injected  # a real decode error, not an injected one
