"""Tests for the canonical JSON mapping."""

import json
import math

import pytest
from hypothesis import HealthCheck, given, settings

from repro.proto import parse_schema
from repro.proto.errors import DecodeError
from repro.proto.json_format import (
    message_from_json,
    message_to_json,
    to_camel,
)

from tests.strategies import schema_and_message


@pytest.fixture()
def schema():
    return parse_schema("""
        enum Color { RED = 0; GREEN = 1; }
        message Inner { optional int32 a = 1; }
        message M {
          optional int64 big_number = 1;
          optional uint64 bigger_number = 2;
          optional string display_name = 3;
          optional bytes raw_data = 4;
          optional Color color = 5;
          optional double ratio = 6;
          optional bool is_ready = 7;
          repeated int32 small_nums = 8;
          optional Inner inner_msg = 9;
          repeated Inner kids = 10;
          map<string, int32> counts = 11;
          map<int32, string> names = 12;
        }
    """)


class TestNaming:
    def test_camel_case(self):
        assert to_camel("display_name") == "displayName"
        assert to_camel("a") == "a"
        assert to_camel("a_b_c") == "aBC"

    def test_emission_uses_camel(self, schema):
        m = schema["M"].new_message()
        m["display_name"] = "x"
        assert '"displayName"' in message_to_json(m)

    def test_parse_accepts_both_names(self, schema):
        for key in ("displayName", "display_name"):
            m = message_from_json(schema["M"], f'{{"{key}": "v"}}')
            assert m["display_name"] == "v"


class TestCanonicalRules:
    def test_int64_as_string(self, schema):
        m = schema["M"].new_message()
        m["big_number"] = 2**62
        obj = json.loads(message_to_json(m))
        assert obj["bigNumber"] == str(2**62)

    def test_bytes_as_base64(self, schema):
        m = schema["M"].new_message()
        m["raw_data"] = b"\x00\x01\xff"
        obj = json.loads(message_to_json(m))
        assert obj["rawData"] == "AAH/"

    def test_enum_by_name(self, schema):
        m = schema["M"].new_message()
        m["color"] = 1
        assert json.loads(message_to_json(m))["color"] == "GREEN"

    def test_nonfinite_floats(self, schema):
        m = schema["M"].new_message()
        m["ratio"] = math.inf
        assert json.loads(message_to_json(m))["ratio"] == "Infinity"

    def test_map_as_object(self, schema):
        m = schema["M"].new_message()
        m.map_set("counts", "hits", 3)
        m.map_set("names", 7, "seven")
        obj = json.loads(message_to_json(m))
        assert obj["counts"] == {"hits": 3}
        assert obj["names"] == {"7": "seven"}

    def test_nested_objects_and_arrays(self, schema):
        m = schema["M"].new_message()
        m.mutable("inner_msg")["a"] = 1
        kid = m["kids"].add()
        kid["a"] = 2
        obj = json.loads(message_to_json(m))
        assert obj["innerMsg"] == {"a": 1}
        assert obj["kids"] == [{"a": 2}]


class TestParsing:
    def test_full_round_trip(self, schema):
        m = schema["M"].new_message()
        m["big_number"] = -(2**55)
        m["bigger_number"] = 2**63
        m["display_name"] = "naïve ☃"
        m["raw_data"] = bytes(range(20))
        m["color"] = "GREEN"
        m["ratio"] = -2.5
        m["is_ready"] = True
        m["small_nums"] = [1, -2, 3]
        m.mutable("inner_msg")["a"] = 9
        m.map_set("counts", "k", 1)
        text = message_to_json(m)
        assert message_from_json(schema["M"], text) == m

    def test_null_means_absent(self, schema):
        m = message_from_json(schema["M"], '{"displayName": null}')
        assert not m.has("display_name")

    def test_enum_number_accepted(self, schema):
        assert message_from_json(schema["M"], '{"color": 1}')["color"] == 1

    def test_unknown_field_rejected(self, schema):
        with pytest.raises(DecodeError):
            message_from_json(schema["M"], '{"nope": 1}')

    def test_type_errors_rejected(self, schema):
        for bad in ('{"isReady": "yes"}', '{"smallNums": 5}',
                    '{"rawData": "@@@"}', '{"innerMsg": [1]}',
                    '{"counts": [1]}'):
            with pytest.raises(DecodeError):
                message_from_json(schema["M"], bad)

    def test_invalid_json_rejected(self, schema):
        with pytest.raises(DecodeError):
            message_from_json(schema["M"], "{nope")


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schema_and_message())
def test_json_property_round_trip(pair):
    """JSON emit/parse round-trips arbitrary messages (NaN excluded by
    the strategy, which draws finite floats only)."""
    _, message = pair
    text = message_to_json(message)
    assert message_from_json(message.descriptor, text) == message
