"""Tests for software arena allocation (Section 2.3)."""

import pytest

from repro.proto import parse_schema
from repro.proto.arena import Arena


@pytest.fixture()
def schema():
    return parse_schema("message M { optional int32 a = 1; }")


class TestArena:
    def test_messages_register(self, schema):
        arena = Arena()
        schema["M"].new_message(arena=arena)
        schema["M"].new_message(arena=arena)
        assert arena.owned_messages == 2

    def test_allocate_bumps(self):
        arena = Arena()
        first = arena.allocate(24)
        second = arena.allocate(8)
        assert second == first + 24
        assert arena.bytes_allocated == 32

    def test_alignment(self):
        arena = Arena()
        arena.allocate(3)
        offset = arena.allocate(8)
        assert offset % 8 == 0

    def test_chunk_refills(self):
        arena = Arena(chunk_bytes=64)
        assert arena.chunk_refills == 0
        arena.allocate(100)
        assert arena.chunk_refills >= 1

    def test_reset_clears_messages(self, schema):
        arena = Arena()
        m = schema["M"].new_message(arena=arena)
        m["a"] = 1
        arena.reset()
        assert arena.owned_messages == 0
        assert not m.has("a")
        assert arena.bytes_allocated == 0

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            Arena().allocate(-1)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            Arena(chunk_bytes=0)

    def test_decoder_threads_arena_to_children(self):
        schema = parse_schema("""
            message Inner { optional int32 a = 1; }
            message Outer { optional Inner inner = 1; }
        """)
        arena = Arena()
        outer = schema["Outer"].new_message(arena=arena)
        outer.mutable("inner")["a"] = 1
        data = outer.serialize()
        parsed = schema["Outer"].parse(data, arena=arena)
        assert parsed["inner"]["a"] == 1
        # top-level + inner for both the built and the parsed trees
        assert arena.owned_messages == 4
