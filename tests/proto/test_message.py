"""Tests for dynamic messages: presence, accessors, merge/copy/clear."""

import pytest

from repro.proto import parse_schema
from repro.proto.errors import EncodeError


@pytest.fixture()
def schema():
    return parse_schema("""
        message Inner { optional int32 a = 1; repeated int32 xs = 2; }
        message M {
          required int64 req = 1;
          optional string name = 2;
          repeated int32 nums = 3;
          optional Inner inner = 4;
          repeated Inner kids = 5;
          optional bool flag = 6;
          optional int32 with_default = 10 [default = 7];
        }
    """)


class TestPresence:
    def test_unset_fields_absent(self, schema):
        m = schema["M"].new_message()
        assert not m.has("req")
        assert not m.has("name")

    def test_set_then_present(self, schema):
        m = schema["M"].new_message()
        m["req"] = 5
        assert m.has("req")

    def test_absent_scalar_returns_default(self, schema):
        m = schema["M"].new_message()
        assert m["name"] == ""
        assert m["flag"] is False
        assert m["with_default"] == 7

    def test_clear_field(self, schema):
        m = schema["M"].new_message()
        m["name"] = "x"
        m.clear_field("name")
        assert not m.has("name")
        assert m["name"] == ""

    def test_empty_repeated_not_present(self, schema):
        m = schema["M"].new_message()
        assert not m.has("nums")
        m["nums"].append(1)
        assert m.has("nums")

    def test_present_field_numbers_sorted(self, schema):
        m = schema["M"].new_message()
        m["flag"] = True
        m["req"] = 1
        assert m.present_field_numbers() == [1, 6]

    def test_usage_density(self, schema):
        m = schema["M"].new_message()
        m["req"] = 1
        m["flag"] = True
        # span is 1..10 -> 10; 2 of 10 present.
        assert m.usage_density() == pytest.approx(0.2)


class TestValidation:
    def test_type_errors(self, schema):
        m = schema["M"].new_message()
        with pytest.raises(TypeError):
            m["req"] = "not an int"
        with pytest.raises(TypeError):
            m["name"] = 42
        with pytest.raises(TypeError):
            m["flag"] = "yes"

    def test_range_errors(self, schema):
        m = schema["M"].new_message()
        with pytest.raises(ValueError):
            m["nums"] = [2**31]  # int32 overflow
        with pytest.raises(ValueError):
            m["req"] = 2**63

    def test_unknown_field_raises_keyerror(self, schema):
        m = schema["M"].new_message()
        with pytest.raises(KeyError):
            m["nope"]

    def test_wrong_message_type_rejected(self, schema):
        m = schema["M"].new_message()
        other = schema["M"].new_message()
        with pytest.raises(TypeError):
            m["inner"] = other

    def test_bool_not_accepted_as_int(self, schema):
        m = schema["M"].new_message()
        with pytest.raises(TypeError):
            m["req"] = True

    def test_float_field_rounds_to_single_precision(self):
        schema = parse_schema("message F { optional float x = 1; }")
        m = schema["F"].new_message()
        m["x"] = 1.1
        import struct
        assert m["x"] == struct.unpack("<f", struct.pack("<f", 1.1))[0]


class TestSubMessages:
    def test_mutable_creates_child(self, schema):
        m = schema["M"].new_message()
        child = m.mutable("inner")
        child["a"] = 3
        assert m.has("inner")
        assert m["inner"]["a"] == 3

    def test_mutable_idempotent(self, schema):
        m = schema["M"].new_message()
        assert m.mutable("inner") is m.mutable("inner")

    def test_repeated_add(self, schema):
        m = schema["M"].new_message()
        kid = m["kids"].add()
        kid["a"] = 1
        assert len(m["kids"]) == 1

    def test_mutable_on_scalar_rejected(self, schema):
        m = schema["M"].new_message()
        with pytest.raises(TypeError):
            m.mutable("name")


class TestWholeMessageOps:
    def test_equality(self, schema):
        a = schema["M"].new_message()
        b = schema["M"].new_message()
        assert a == b
        a["req"] = 1
        assert a != b
        b["req"] = 1
        assert a == b

    def test_copy_is_deep(self, schema):
        a = schema["M"].new_message()
        a.mutable("inner")["a"] = 5
        b = a.copy()
        b["inner"]["a"] = 9
        assert a["inner"]["a"] == 5

    def test_merge_overwrites_scalars(self, schema):
        a = schema["M"].new_message()
        b = schema["M"].new_message()
        a["name"] = "old"
        b["name"] = "new"
        a.merge_from(b)
        assert a["name"] == "new"

    def test_merge_appends_repeated(self, schema):
        a = schema["M"].new_message()
        b = schema["M"].new_message()
        a["nums"] = [1]
        b["nums"] = [2, 3]
        a.merge_from(b)
        assert list(a["nums"]) == [1, 2, 3]

    def test_merge_recurses_submessages(self, schema):
        a = schema["M"].new_message()
        b = schema["M"].new_message()
        a.mutable("inner")["a"] = 1
        b.mutable("inner")["xs"] = [9]
        a.merge_from(b)
        assert a["inner"]["a"] == 1
        assert list(a["inner"]["xs"]) == [9]

    def test_clear(self, schema):
        m = schema["M"].new_message()
        m["req"] = 1
        m["nums"] = [1, 2]
        m.clear()
        assert m.present_field_numbers() == []

    def test_check_initialized_missing_required(self, schema):
        m = schema["M"].new_message()
        with pytest.raises(EncodeError):
            m.check_initialized()
        m["req"] = 0
        m.check_initialized()

    def test_total_depth(self, schema):
        m = schema["M"].new_message()
        assert m.total_depth() == 1
        m.mutable("inner")["a"] = 1
        assert m.total_depth() == 2

    def test_repr_shows_present_fields(self, schema):
        m = schema["M"].new_message()
        m["req"] = 3
        assert "req=3" in repr(m)
