"""Tests for schema-free wire inspection."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.proto import parse_schema
from repro.proto.errors import DecodeError
from repro.proto.inspect import decode_raw, format_raw
from repro.proto.types import WireType

from tests.strategies import schema_and_message


@pytest.fixture()
def schema():
    return parse_schema("""
        message Inner { optional int32 a = 1; }
        message M {
          optional int64 x = 1;
          optional string s = 2;
          optional Inner inner = 3;
          optional fixed32 f = 4;
          optional double d = 5;
        }
    """)


class TestDecodeRaw:
    def test_varint_field(self):
        fields = decode_raw(b"\x08\x96\x01")
        assert fields == (fields[0],)
        assert fields[0].number == 1
        assert fields[0].wire_type is WireType.VARINT
        assert fields[0].value == 150

    def test_fixed_fields(self, schema):
        m = schema["M"].new_message()
        m["f"] = 0x01020304
        m["d"] = 1.0
        fields = decode_raw(m.serialize())
        by_number = {raw.number: raw for raw in fields}
        assert by_number[4].value == 0x01020304
        assert by_number[5].wire_type is WireType.FIXED64

    def test_string_stays_bytes(self, schema):
        m = schema["M"].new_message()
        m["s"] = "hello"
        fields = decode_raw(m.serialize())
        assert fields[0].value == b"hello"

    def test_nested_message_speculatively_parsed(self, schema):
        m = schema["M"].new_message()
        m.mutable("inner")["a"] = 7
        fields = decode_raw(m.serialize())
        assert fields[0].is_group
        assert fields[0].value[0].value == 7

    def test_depth_limit(self, schema):
        m = schema["M"].new_message()
        m.mutable("inner")["a"] = 1
        fields = decode_raw(m.serialize(), max_depth=0)
        assert isinstance(fields[0].value, bytes)

    def test_truncated_rejected(self):
        with pytest.raises(DecodeError):
            decode_raw(b"\x08")
        with pytest.raises(DecodeError):
            decode_raw(b"\x12\x05hi")

    def test_empty_input(self):
        assert decode_raw(b"") == ()


class TestFormatRaw:
    def test_protoc_style_rendering(self, schema):
        m = schema["M"].new_message()
        m["x"] = 150
        m["s"] = "hello"
        m.mutable("inner")["a"] = 1
        text = format_raw(decode_raw(m.serialize()))
        assert "1: 150" in text
        assert '2: "hello"' in text
        assert "3 {" in text

    def test_binary_bytes_render_as_hex(self, schema):
        m = schema["M"].new_message()
        m["s"] = "\x00\x01"  # non-printable
        text = format_raw(decode_raw(m.serialize()))
        assert "0001" in text


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schema_and_message())
def test_decode_raw_accepts_all_valid_wire(pair):
    """Any valid serialization decodes without a schema, and the field
    numbers observed are a subset of the schema's."""
    _, message = pair
    from repro.proto.encoder import serialize_message

    data = serialize_message(message, check_required=False)
    fields = decode_raw(data)
    defined = {fd.number for fd in message.descriptor.fields}
    assert {raw.number for raw in fields} <= defined
