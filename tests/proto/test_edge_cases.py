"""Edge-case coverage across the proto stack."""

import pytest

from repro.proto import parse_schema
from repro.proto.errors import DecodeError, EncodeError
from repro.proto.text_format import message_to_text
from repro.proto.varint import encode_varint
from repro.proto.writer import schema_to_proto


class TestEnumRoundTrips:
    @pytest.fixture()
    def schema(self):
        return parse_schema("""
            enum Level { ZERO = 0; LOW = 1; HIGH = 5; NEGATIVE = -2; }
            message M {
              optional Level level = 1;
              repeated Level history = 2;
              repeated Level packed_history = 3 [packed = true];
            }
        """)

    def test_negative_enum_is_ten_wire_bytes(self, schema):
        m = schema["M"].new_message()
        m["level"] = -2
        data = m.serialize()
        assert len(data) == 11
        assert schema["M"].parse(data)["level"] == -2

    def test_enum_by_name_and_value(self, schema):
        m = schema["M"].new_message()
        m["level"] = "HIGH"
        assert m["level"] == 5
        m["history"] = ["LOW", 5, "ZERO"]
        assert list(m["history"]) == [1, 5, 0]

    def test_packed_enum_round_trip(self, schema):
        m = schema["M"].new_message()
        m["packed_history"] = [0, 1, 5]
        assert schema["M"].parse(m.serialize()) == m

    def test_unknown_enum_name_rejected(self, schema):
        m = schema["M"].new_message()
        with pytest.raises(ValueError):
            m["level"] = "MEDIUM"

    def test_accelerator_enum_round_trip(self, schema):
        from repro.accel.driver import ProtoAccelerator

        m = schema["M"].new_message()
        m["level"] = -2
        m["history"] = [1, 5]
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        result = accel.deserialize(schema["M"], m.serialize())
        assert accel.read_message(schema["M"], result.dest_addr) == m
        obj = accel.load_object(m)
        assert accel.serialize(schema["M"], obj).data == m.serialize()


class TestExtremeValues:
    @pytest.fixture()
    def schema(self):
        return parse_schema("""
            message M {
              optional double d = 1;
              optional float f = 2;
              optional uint64 u = 3;
              optional sint64 s = 4;
              optional fixed64 x = 5;
            }
        """)

    @pytest.mark.parametrize("name,value", [
        ("d", 1.7976931348623157e308),
        ("d", -0.0),
        ("d", 5e-324),
        ("f", 3.4028234663852886e38),
        ("u", 2**64 - 1),
        ("s", -(2**63)),
        ("s", 2**63 - 1),
        ("x", 2**64 - 1),
    ])
    def test_boundary_round_trip(self, schema, name, value):
        m = schema["M"].new_message()
        m[name] = value
        assert schema["M"].parse(m.serialize())[name] == value

    def test_accelerator_boundary_values(self, schema):
        from repro.accel.driver import ProtoAccelerator

        m = schema["M"].new_message()
        m["d"] = -0.0
        m["u"] = 2**64 - 1
        m["s"] = -(2**63)
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        result = accel.deserialize(schema["M"], m.serialize())
        assert accel.read_message(schema["M"], result.dest_addr) == m


class TestDeeplyNestedSchemas:
    def test_five_levels_of_nesting(self):
        schema = parse_schema("""
            message A {
              message B {
                message C {
                  message D {
                    message E { optional int32 x = 1; }
                    optional E e = 1;
                  }
                  optional D d = 1;
                }
                optional C c = 1;
              }
              optional B b = 1;
            }
        """)
        assert "A.B.C.D.E" in schema
        m = schema["A"].new_message()
        m.mutable("b").mutable("c").mutable("d").mutable("e")["x"] = 7
        back = schema["A"].parse(m.serialize())
        assert back["b"]["c"]["d"]["e"]["x"] == 7

    def test_sibling_scope_resolution(self):
        schema = parse_schema("""
            message Outer {
              message Inner { optional int32 a = 1; }
              message Other { optional Inner peer = 1; }
            }
        """)
        fd = schema["Outer.Other"].field_by_name("peer")
        assert fd.message_type is schema["Outer.Inner"]


class TestTextFormatCoverage:
    def test_oneof_and_map_render(self):
        schema = parse_schema("""
            message M {
              oneof payload { string text = 1; int64 num = 2; }
              map<string, int32> counts = 3;
            }
        """)
        m = schema["M"].new_message()
        m["num"] = 5
        m.map_set("counts", "k", 1)
        text = message_to_text(m)
        assert "num: 5" in text
        assert "counts {" in text
        assert 'key: "k"' in text


class TestWriterCoverage:
    def test_proto3_syntax_preserved(self):
        schema = parse_schema(
            'syntax = "proto3"; message M { optional string s = 1; }')
        emitted = schema_to_proto(schema)
        assert 'syntax = "proto3";' in emitted
        reparsed = parse_schema(emitted)
        assert reparsed["M"].field_by_name("s").validate_utf8

    def test_package_preserved(self):
        schema = parse_schema("package a.b; message M { }")
        assert "package a.b;" in schema_to_proto(schema)


class TestRequiredFieldsInSubMessages:
    def test_nested_required_enforced(self):
        schema = parse_schema("""
            message Inner { required int32 a = 1; }
            message Outer { optional Inner inner = 1; }
        """)
        m = schema["Outer"].new_message()
        m.mutable("inner")
        with pytest.raises(EncodeError):
            m.serialize()
        m["inner"]["a"] = 1
        assert m.serialize()


class TestDecoderLimits:
    def test_zero_length_packed_field(self):
        schema = parse_schema(
            "message M { repeated int32 xs = 1 [packed = true]; }")
        m = schema["M"].parse(b"\x0a\x00")
        # An empty packed payload marks presence but adds no elements.
        assert len(m["xs"]) == 0

    def test_truncated_packed_payload(self):
        schema = parse_schema(
            "message M { repeated int32 xs = 1 [packed = true]; }")
        with pytest.raises(DecodeError):
            schema["M"].parse(b"\x0a" + encode_varint(100) + b"\x01")

    def test_string_spanning_exact_buffer(self):
        schema = parse_schema("message M { optional string s = 1; }")
        payload = b"\x0a\x03abc"
        assert schema["M"].parse(payload)["s"] == "abc"
