"""Tests for text-format parsing and emit/parse round trips."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.proto import parse_schema
from repro.proto.errors import DecodeError
from repro.proto.text_format import message_from_text, message_to_text

from tests.strategies import schema_and_message


@pytest.fixture()
def schema():
    return parse_schema("""
        enum Color { RED = 0; GREEN = 1; }
        message Inner { optional int32 a = 1; }
        message M {
          optional int64 x = 1;
          optional string s = 2;
          optional bool b = 3;
          optional double d = 4;
          optional Color c = 5;
          optional bytes raw = 6;
          repeated int32 nums = 7;
          optional Inner inner = 8;
          repeated Inner kids = 9;
        }
    """)


class TestParsing:
    def test_scalars(self, schema):
        m = message_from_text(schema["M"], """
            x: -42
            s: "hello"
            b: true
            d: 2.5
            c: GREEN
        """)
        assert m["x"] == -42
        assert m["s"] == "hello"
        assert m["b"] is True
        assert m["d"] == 2.5
        assert m["c"] == 1

    def test_string_escapes(self, schema):
        m = message_from_text(schema["M"], r's: "a\nb\"c\\d"')
        assert m["s"] == 'a\nb"c\\d'

    def test_bytes_octal_and_hex_escapes(self, schema):
        m = message_from_text(schema["M"], r'raw: "\000\xff!"')
        assert m["raw"] == b"\x00\xff!"

    def test_repeated_by_repetition(self, schema):
        m = message_from_text(schema["M"], "nums: 1 nums: 2 nums: 3")
        assert list(m["nums"]) == [1, 2, 3]

    def test_nested_braces_and_angles(self, schema):
        m = message_from_text(schema["M"],
                              "inner { a: 5 } kids < a: 1 > kids { a: 2 }")
        assert m["inner"]["a"] == 5
        assert [k["a"] for k in m["kids"]] == [1, 2]

    def test_comments_ignored(self, schema):
        m = message_from_text(schema["M"], "x: 1  # trailing comment\n")
        assert m["x"] == 1

    def test_enum_by_number(self, schema):
        assert message_from_text(schema["M"], "c: 1")["c"] == 1

    def test_hex_integers(self, schema):
        assert message_from_text(schema["M"], "x: 0x10")["x"] == 16


class TestErrors:
    def test_unknown_field(self, schema):
        with pytest.raises(DecodeError):
            message_from_text(schema["M"], "zzz: 1")

    def test_missing_colon(self, schema):
        with pytest.raises(DecodeError):
            message_from_text(schema["M"], "x 1")

    def test_unclosed_brace(self, schema):
        with pytest.raises(DecodeError):
            message_from_text(schema["M"], "inner { a: 1")

    def test_wrong_scalar_kind(self, schema):
        with pytest.raises(DecodeError):
            message_from_text(schema["M"], "s: 5")
        with pytest.raises(DecodeError):
            message_from_text(schema["M"], 'x: "nope"')

    def test_braces_on_scalar_field(self, schema):
        with pytest.raises(DecodeError):
            message_from_text(schema["M"], "x { }")


class TestRoundTrip:
    def test_emit_parse_round_trip(self, schema, kitchen_schema,
                                   kitchen_message):
        text = message_to_text(kitchen_message)
        back = message_from_text(kitchen_schema["Outer"], text)
        assert back == kitchen_message

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schema_and_message())
    def test_property_round_trip(self, pair):
        _, message = pair
        text = message_to_text(message)
        assert message_from_text(message.descriptor, text) == message
