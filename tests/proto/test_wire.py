"""Tests for wire-format tag handling and unknown-field skipping."""

import pytest
from hypothesis import given, strategies as st

from repro.proto.errors import DecodeError
from repro.proto.types import WireType
from repro.proto.varint import encode_varint
from repro.proto.wire import (
    decode_tag,
    encode_tag,
    make_tag,
    skip_field,
    split_tag,
    tag_length,
)


class TestTags:
    def test_make_tag(self):
        assert make_tag(1, WireType.VARINT) == 0x08
        assert make_tag(2, WireType.LENGTH_DELIMITED) == 0x12

    def test_split_tag(self):
        assert split_tag(0x08) == (1, WireType.VARINT)
        assert split_tag(0x12) == (2, WireType.LENGTH_DELIMITED)

    def test_invalid_wire_type_rejected(self):
        with pytest.raises(DecodeError):
            split_tag(make_tag(1, WireType.VARINT) | 0x07)

    def test_field_number_zero_rejected(self):
        with pytest.raises(DecodeError):
            split_tag(0x00)

    def test_encode_decode(self):
        data = encode_tag(150, WireType.FIXED64)
        number, wire_type, consumed = decode_tag(data, 0)
        assert (number, wire_type, consumed) == (150, WireType.FIXED64,
                                                 len(data))

    def test_tag_length_one_byte_until_field_16(self):
        assert tag_length(15, WireType.VARINT) == 1
        assert tag_length(16, WireType.VARINT) == 2

    @given(st.integers(min_value=1, max_value=2**29 - 1),
           st.sampled_from([WireType.VARINT, WireType.FIXED64,
                            WireType.LENGTH_DELIMITED, WireType.FIXED32]))
    def test_round_trip(self, number, wire_type):
        data = encode_tag(number, wire_type)
        assert decode_tag(data, 0) == (number, wire_type, len(data))


class TestSkipField:
    def test_skip_varint(self):
        data = encode_varint(2**40) + b"rest"
        assert skip_field(data, 0, WireType.VARINT) == len(data) - 4

    def test_skip_fixed(self):
        assert skip_field(b"\x00" * 12, 0, WireType.FIXED64) == 8
        assert skip_field(b"\x00" * 12, 0, WireType.FIXED32) == 4

    def test_skip_length_delimited(self):
        data = encode_varint(5) + b"hello" + b"rest"
        assert skip_field(data, 0, WireType.LENGTH_DELIMITED) == \
            len(data) - 4

    def test_skip_truncated_fixed_raises(self):
        with pytest.raises(DecodeError):
            skip_field(b"\x00" * 3, 0, WireType.FIXED64)

    def test_skip_truncated_length_delimited_raises(self):
        with pytest.raises(DecodeError):
            skip_field(encode_varint(100) + b"short", 0,
                       WireType.LENGTH_DELIMITED)

    def test_skip_group_rejected(self):
        with pytest.raises(DecodeError):
            skip_field(b"\x00", 0, WireType.START_GROUP)
