"""Schema evolution: the compatibility rules proto2 exists to provide.

Section 2.1.1: fields are numbered for stability across renames, may be
optionally present, and unknown fields are skipped -- so services can
upgrade independently and persisted data stays readable.  These tests
pin the compatibility matrix between schema versions, for the software
paths and through the accelerator.
"""

import pytest

from repro.accel.driver import ProtoAccelerator
from repro.proto import parse_schema

V1 = parse_schema("""
    message Event {
      required int64 id = 1;
      optional string name = 2;
      optional int32 code = 3;
    }
""")

V2 = parse_schema("""
    message Event {
      required int64 id = 1;
      optional string title = 2;          // renamed: number is identity
      optional int64 code = 3;            // widened int32 -> int64
      optional double weight = 4;         // added field
      repeated string tags = 5;           // added repeated field
    }
""")

V3_REMOVED = parse_schema("""
    message Event {
      required int64 id = 1;
      reserved 2, 3;
      optional double weight = 4;
    }
""")


def _v1_event():
    event = V1["Event"].new_message()
    event["id"] = 42
    event["name"] = "launch"
    event["code"] = 7
    return event


def _v2_event():
    event = V2["Event"].new_message()
    event["id"] = 99
    event["title"] = "upgraded"
    event["code"] = 2**40          # value only a v2 writer can produce
    event["weight"] = 0.5
    event["tags"] = ["a", "b"]
    return event


class TestForwardCompatibility:
    """Old data read by new readers."""

    def test_rename_is_transparent(self):
        new = V2["Event"].parse(_v1_event().serialize())
        assert new["title"] == "launch"  # same number, new name

    def test_widened_int_reads_old_values(self):
        new = V2["Event"].parse(_v1_event().serialize())
        assert new["code"] == 7

    def test_added_fields_read_defaults(self):
        new = V2["Event"].parse(_v1_event().serialize())
        assert not new.has("weight")
        assert new["weight"] == 0.0
        assert len(new["tags"]) == 0


class TestBackwardCompatibility:
    """New data read by old readers."""

    def test_unknown_fields_skipped(self):
        old = V1["Event"].parse(_v2_event().serialize())
        assert old["id"] == 99
        assert old["name"] == "upgraded"

    def test_widened_value_truncates_like_cpp(self):
        # An int64 value beyond int32 range, read through an int32 field,
        # truncates to the low 32 bits -- C++ semantics, data preserved
        # modulo width.
        old = V1["Event"].parse(_v2_event().serialize())
        assert old["code"] == (2**40) % 2**32

    def test_removed_fields_skipped_by_v3(self):
        v3 = V3_REMOVED["Event"].parse(_v2_event().serialize())
        assert v3["id"] == 99
        assert v3["weight"] == 0.5
        assert v3.present_field_numbers() == [1, 4]


class TestRoundTripThroughVersions:
    def test_v1_to_v2_to_v1_preserves_shared_fields(self):
        original = _v1_event()
        through_v2 = V2["Event"].parse(original.serialize())
        back = V1["Event"].parse(through_v2.serialize())
        assert back["id"] == original["id"]
        assert back["name"] == original["name"]


class TestAcceleratorEvolution:
    """The accelerator is programmed per-type by ADTs, so each service
    version gets its own tables -- and compatibility must still hold."""

    def test_accel_new_reader_old_data(self):
        accel = ProtoAccelerator()
        accel.register_schema(V2)
        result = accel.deserialize(V2["Event"], _v1_event().serialize())
        observed = accel.read_message(V2["Event"], result.dest_addr)
        assert observed["title"] == "launch"
        assert observed["code"] == 7

    def test_accel_old_reader_new_data_skips_unknowns(self):
        accel = ProtoAccelerator()
        accel.register_schema(V1)
        wire = _v2_event().serialize()
        result = accel.deserialize(V1["Event"], wire)
        observed = accel.read_message(V1["Event"], result.dest_addr)
        assert observed["id"] == 99
        assert result.stats.unknown_fields_skipped >= 3

    def test_accel_v3_reader_handles_reserved_holes(self):
        # V3's ADT has undefined entries for the reserved numbers; the
        # deserializer must skip fields 2 and 3 via the hole entries.
        accel = ProtoAccelerator()
        accel.register_schema(V3_REMOVED)
        result = accel.deserialize(V3_REMOVED["Event"],
                                   _v2_event().serialize())
        observed = accel.read_message(V3_REMOVED["Event"],
                                      result.dest_addr)
        assert observed["weight"] == 0.5
        assert result.stats.unknown_fields_skipped >= 2

    def test_accel_and_software_agree_across_versions(self):
        wire = _v2_event().serialize()
        for schema in (V1, V2, V3_REMOVED):
            accel = ProtoAccelerator()
            accel.register_schema(schema)
            result = accel.deserialize(schema["Event"], wire)
            assert accel.read_message(schema["Event"],
                                      result.dest_addr) == \
                schema["Event"].parse(wire)
