"""Tests for opt-in unknown-field preservation."""

import pytest

from repro.proto import parse_schema
from repro.proto.decoder import parse_message

NEW = parse_schema("""
    message Event {
      optional int64 id = 1;
      optional string note = 2;
      optional double extra = 9;
      optional Inner child = 10;
    }
    message Inner { optional int32 a = 1; optional string b = 7; }
""")

OLD = parse_schema("""
    message Event {
      optional int64 id = 1;
      optional Inner child = 10;
    }
    message Inner { optional int32 a = 1; }
""")


def _new_event():
    event = NEW["Event"].new_message()
    event["id"] = 5
    event["note"] = "from the future"
    event["extra"] = 1.25
    child = event.mutable("child")
    child["a"] = 1
    child["b"] = "nested future"
    return event


class TestPreservation:
    def test_default_drops_unknowns(self):
        old = OLD["Event"].parse(_new_event().serialize())
        assert old.unknown_fields == ()

    def test_opt_in_preserves(self):
        old = parse_message(OLD["Event"], _new_event().serialize(),
                            keep_unknown=True)
        numbers = [number for number, _, _ in old.unknown_fields]
        assert numbers == [2, 9]

    def test_round_trip_preserves_all_data(self):
        # Unknown fields re-emit after known fields (upstream's
        # UnknownFieldSet placement), so the bytes may reorder -- but a
        # new reader recovers every field exactly.
        wire = _new_event().serialize()
        old = parse_message(OLD["Event"], wire, keep_unknown=True)
        assert NEW["Event"].parse(old.serialize()) == _new_event()
        assert len(old.serialize()) == len(wire)

    def test_nested_unknowns_preserved(self):
        wire = _new_event().serialize()
        old = parse_message(OLD["Event"], wire, keep_unknown=True)
        assert old["child"].unknown_fields != ()
        # And the new reader sees the intermediary's output intact.
        recovered = NEW["Event"].parse(old.serialize())
        assert recovered == _new_event()

    def test_byte_size_includes_unknowns(self):
        wire = _new_event().serialize()
        old = parse_message(OLD["Event"], wire, keep_unknown=True)
        assert old.byte_size() == len(wire)

    def test_clear_drops_unknowns(self):
        old = parse_message(OLD["Event"], _new_event().serialize(),
                            keep_unknown=True)
        old.clear()
        assert old.unknown_fields == ()

    def test_copy_and_merge_carry_unknowns(self):
        old = parse_message(OLD["Event"], _new_event().serialize(),
                            keep_unknown=True)
        clone = old.copy()
        assert clone.unknown_fields == old.unknown_fields
        fresh = OLD["Event"].new_message()
        fresh.merge_from(old)
        assert fresh.unknown_fields == old.unknown_fields

    def test_equality_considers_unknowns(self):
        wire = _new_event().serialize()
        with_unknowns = parse_message(OLD["Event"], wire,
                                      keep_unknown=True)
        without = parse_message(OLD["Event"], wire, keep_unknown=False)
        assert with_unknowns != without

    def test_modified_then_reserialized_keeps_unknowns_after_fields(self):
        old = parse_message(OLD["Event"], _new_event().serialize(),
                            keep_unknown=True)
        old["id"] = 6  # intermediary edits a known field
        recovered = NEW["Event"].parse(old.serialize())
        assert recovered["id"] == 6
        assert recovered["note"] == "from the future"
        assert recovered["extra"] == 1.25
