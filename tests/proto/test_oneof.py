"""Tests for oneof groups: schema, semantics, wire, and accelerator."""

import pytest

from repro.accel.driver import ProtoAccelerator
from repro.proto import parse_schema
from repro.proto.errors import SchemaError


@pytest.fixture()
def schema():
    return parse_schema("""
        message Inner { optional int32 a = 1; }
        message M {
          optional int32 before = 1;
          oneof payload {
            string text = 2;
            int64 num = 3;
            Inner sub = 4;
          }
          oneof status {
            bool ok = 10;
            string error = 11;
          }
          optional int32 after = 20;
        }
    """)


class TestSchema:
    def test_groups_recorded(self, schema):
        assert schema["M"].oneof_groups == {
            "payload": (2, 3, 4), "status": (10, 11)}

    def test_members_tagged(self, schema):
        assert schema["M"].field_by_name("text").oneof_group == "payload"
        assert schema["M"].field_by_name("before").oneof_group is None

    def test_siblings(self, schema):
        assert schema["M"].oneof_siblings(2) == (3, 4)
        assert schema["M"].oneof_siblings(1) == ()

    def test_label_in_oneof_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema("""
                message M { oneof g { optional int32 a = 1; } }
            """)

    def test_empty_oneof_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema("message M { oneof g { } }")


class TestSemantics:
    def test_setting_member_clears_siblings(self, schema):
        m = schema["M"].new_message()
        m["text"] = "hello"
        m["num"] = 5
        assert not m.has("text")
        assert m.has("num")
        assert m.which_oneof("payload") == "num"

    def test_groups_independent(self, schema):
        m = schema["M"].new_message()
        m["text"] = "hi"
        m["ok"] = True
        assert m.has("text") and m.has("ok")

    def test_mutable_submessage_clears_siblings(self, schema):
        m = schema["M"].new_message()
        m["num"] = 1
        m.mutable("sub")["a"] = 2
        assert m.which_oneof("payload") == "sub"
        assert not m.has("num")

    def test_non_members_unaffected(self, schema):
        m = schema["M"].new_message()
        m["before"] = 1
        m["text"] = "x"
        m["num"] = 2
        assert m.has("before")

    def test_which_oneof_unset(self, schema):
        m = schema["M"].new_message()
        assert m.which_oneof("payload") is None
        with pytest.raises(KeyError):
            m.which_oneof("nonexistent")


class TestWire:
    def test_round_trip(self, schema):
        m = schema["M"].new_message()
        m["num"] = -3
        m["error"] = "boom"
        back = schema["M"].parse(m.serialize())
        assert back == m
        assert back.which_oneof("payload") == "num"
        assert back.which_oneof("status") == "error"

    def test_wire_last_member_wins(self, schema):
        # Two members of the same oneof on the wire: parsers keep only
        # the last one, per the protobuf spec.
        data = b"\x12\x02hi" + b"\x18\x07"  # text then num
        back = schema["M"].parse(data)
        assert back.which_oneof("payload") == "num"
        assert back["num"] == 7
        assert not back.has("text")


class TestAccelerator:
    def test_accel_deser_matches_software(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        data = b"\x12\x02hi" + b"\x18\x07"  # both members on the wire
        result = accel.deserialize(schema["M"], data)
        observed = accel.read_message(schema["M"], result.dest_addr)
        assert observed == schema["M"].parse(data)
        assert observed.which_oneof("payload") == "num"

    def test_accel_serialize_oneof(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        m = schema["M"].new_message()
        m.mutable("sub")["a"] = 9
        m["ok"] = True
        addr = accel.load_object(m)
        assert accel.serialize(schema["M"], addr).data == m.serialize()

    def test_accel_merge_respects_oneof(self, schema):
        accel = ProtoAccelerator()
        accel.register_schema(schema)
        dest_msg = schema["M"].new_message()
        dest_msg["text"] = "old"
        src_msg = schema["M"].new_message()
        src_msg["num"] = 42
        expected = dest_msg.copy()
        expected.merge_from(src_msg)
        dest = accel.load_object(dest_msg)
        src = accel.load_object(src_msg)
        accel.merge_messages(schema["M"], src, dest)
        merged = accel.read_message(schema["M"], dest)
        assert merged == expected
        assert merged.which_oneof("payload") == "num"

    def test_adt_group_limit_enforced(self):
        wide = parse_schema("""
            message W {
              oneof a { int32 a1 = 1; int32 a2 = 2; }
              oneof b { int32 b1 = 3; int32 b2 = 4; }
              oneof c { int32 c1 = 5; int32 c2 = 6; }
            }
        """)
        accel = ProtoAccelerator()
        with pytest.raises(SchemaError):
            accel.register_schema(wide)

    def test_adt_word_span_limit_enforced(self):
        spread = parse_schema("""
            message S {
              oneof g { int32 low = 1; int32 high = 100; }
            }
        """)
        accel = ProtoAccelerator()
        with pytest.raises(SchemaError):
            accel.register_schema(spread)
