"""Tests for length-delimited message streams."""

import pytest

from repro.proto import parse_schema
from repro.proto.errors import DecodeError
from repro.proto.stream import (
    DelimitedWriter,
    iter_delimited_payloads,
    read_delimited_stream,
    write_delimited,
    write_delimited_stream,
)


@pytest.fixture()
def schema():
    return parse_schema(
        "message Rec { optional int64 id = 1; optional string body = 2; }")


def _records(schema, count):
    records = []
    for index in range(count):
        record = schema["Rec"].new_message()
        record["id"] = index
        record["body"] = f"record body {index}" * (index + 1)
        records.append(record)
    return records


class TestFraming:
    def test_single_message_frame(self, schema):
        record = _records(schema, 1)[0]
        framed = write_delimited(record)
        payload = record.serialize()
        assert framed.endswith(payload)
        assert framed[0] == len(payload)

    def test_stream_round_trip(self, schema):
        records = _records(schema, 5)
        stream = write_delimited_stream(records)
        assert read_delimited_stream(schema["Rec"], stream) == records

    def test_empty_stream(self, schema):
        assert read_delimited_stream(schema["Rec"], b"") == []

    def test_empty_message_framed_as_zero_length(self, schema):
        record = schema["Rec"].new_message()
        assert write_delimited(record) == b"\x00"
        assert read_delimited_stream(schema["Rec"], b"\x00") == [record]

    def test_truncated_stream_rejected(self, schema):
        stream = write_delimited_stream(_records(schema, 2))
        with pytest.raises(DecodeError):
            list(iter_delimited_payloads(stream[:-3]))

    def test_payload_iteration_is_lazy(self, schema):
        stream = write_delimited_stream(_records(schema, 3))
        iterator = iter_delimited_payloads(stream)
        first = next(iterator)
        assert schema["Rec"].parse(first)["id"] == 0


class TestDelimitedWriter:
    def test_incremental_append(self, schema):
        writer = DelimitedWriter()
        records = _records(schema, 4)
        for record in records:
            writer.append(record)
        assert writer.message_count == 4
        assert read_delimited_stream(schema["Rec"],
                                     writer.getvalue()) == records

    def test_append_wire_accepts_accelerator_output(self, schema):
        from repro.accel.driver import ProtoAccelerator

        accel = ProtoAccelerator()
        accel.register_schema(schema)
        record = _records(schema, 1)[0]
        output = accel.serialize(schema["Rec"],
                                 accel.load_object(record))
        writer = DelimitedWriter()
        writer.append_wire(output.data)
        assert read_delimited_stream(schema["Rec"],
                                     writer.getvalue()) == [record]

    def test_size_accounting(self, schema):
        writer = DelimitedWriter()
        total = sum(writer.append(record)
                    for record in _records(schema, 3))
        assert writer.size_bytes == total == len(writer.getvalue())
