"""Tests for the software serializer and ByteSize pass."""

import pytest

from repro.proto import parse_schema
from repro.proto.encoder import byte_size, serialize_message
from repro.proto.errors import EncodeError
from repro.proto.trace import Op, Trace


@pytest.fixture()
def schema():
    return parse_schema("""
        message Inner { optional int32 a = 1; }
        message M {
          optional int32 i = 1;
          optional string s = 2;
          repeated int32 packed_nums = 3 [packed = true];
          repeated int32 plain_nums = 4;
          optional Inner inner = 5;
          optional double d = 6;
          optional float f = 7;
          optional sint32 z = 8;
          optional bool b = 9;
          optional fixed32 f32 = 10;
        }
    """)


class TestKnownEncodings:
    def test_varint_field(self, schema):
        m = schema["M"].new_message()
        m["i"] = 150
        assert m.serialize() == b"\x08\x96\x01"

    def test_string_field(self, schema):
        m = schema["M"].new_message()
        m["s"] = "testing"
        assert m.serialize() == b"\x12\x07testing"

    def test_negative_int32_is_ten_bytes(self, schema):
        m = schema["M"].new_message()
        m["i"] = -1
        data = m.serialize()
        assert len(data) == 11  # 1 key + 10 varint bytes
        assert data[1:] == b"\xff" * 9 + b"\x01"

    def test_sint32_zigzag(self, schema):
        m = schema["M"].new_message()
        m["z"] = -1
        assert m.serialize() == b"\x40\x01"

    def test_bool_true(self, schema):
        m = schema["M"].new_message()
        m["b"] = True
        assert m.serialize() == b"\x48\x01"

    def test_fixed32_little_endian(self, schema):
        m = schema["M"].new_message()
        m["f32"] = 0x01020304
        assert m.serialize() == b"\x55\x04\x03\x02\x01"

    def test_packed_repeated(self, schema):
        m = schema["M"].new_message()
        m["packed_nums"] = [3, 270, 86942]
        # Canonical packed example from the encoding docs (field 4 there,
        # field 3 here).
        assert m.serialize() == b"\x1a\x06\x03\x8e\x02\x9e\xa7\x05"

    def test_unpacked_repeated_repeats_key(self, schema):
        m = schema["M"].new_message()
        m["plain_nums"] = [1, 2]
        assert m.serialize() == b"\x20\x01\x20\x02"

    def test_sub_message_framing(self, schema):
        m = schema["M"].new_message()
        m.mutable("inner")["a"] = 1
        assert m.serialize() == b"\x2a\x02\x08\x01"

    def test_empty_sub_message_zero_bytes(self, schema):
        # Figure 1's note: empty messages take no bytes in encoded form.
        m = schema["M"].new_message()
        m.mutable("inner")
        assert m.serialize() == b"\x2a\x00"

    def test_empty_message(self, schema):
        assert schema["M"].new_message().serialize() == b""

    def test_fields_in_increasing_number_order(self, schema):
        m = schema["M"].new_message()
        m["b"] = True
        m["i"] = 1
        data = m.serialize()
        assert data == b"\x08\x01\x48\x01"


class TestByteSize:
    def test_matches_serialized_length(self, schema, kitchen_message):
        m = schema["M"].new_message()
        m["i"] = 300
        m["s"] = "hello"
        m["packed_nums"] = [1, 2, 3]
        assert byte_size(m) == len(serialize_message(m))
        assert kitchen_message.byte_size() == \
            len(kitchen_message.serialize())

    def test_empty_is_zero(self, schema):
        assert byte_size(schema["M"].new_message()) == 0


class TestRequiredEnforcement:
    def test_missing_required_raises(self):
        schema = parse_schema("message R { required int32 a = 1; }")
        m = schema["R"].new_message()
        with pytest.raises(EncodeError):
            serialize_message(m)

    def test_check_can_be_disabled(self):
        schema = parse_schema("message R { required int32 a = 1; }")
        m = schema["R"].new_message()
        assert serialize_message(m, check_required=False) == b""


class TestTraceEvents:
    def test_trace_counts_fields(self, schema):
        m = schema["M"].new_message()
        m["i"] = 1
        m["s"] = "hello"
        trace = Trace()
        serialize_message(m, trace=trace)
        # Two passes (ByteSize + encode) over 10 defined fields each.
        assert trace.count(Op.FIELD_CHECK) == 20
        assert trace.count(Op.BYTESIZE_FIELD) == 2
        assert trace.count(Op.TAG_ENCODE) == 2
        assert trace.total(Op.MEMCPY) == 5

    def test_trace_varint_bytes(self, schema):
        m = schema["M"].new_message()
        m["i"] = 2**28  # 5-byte varint
        trace = Trace()
        serialize_message(m, trace=trace)
        assert trace.total(Op.VARINT_ENCODE) == 5

    def test_submessage_enter_exit(self, schema):
        m = schema["M"].new_message()
        m.mutable("inner")["a"] = 1
        trace = Trace()
        serialize_message(m, trace=trace)
        assert trace.count(Op.MSG_ENTER) == 1
        assert trace.count(Op.MSG_EXIT) == 1
