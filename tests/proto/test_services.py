"""Tests for service definitions and the RPC runtime."""

import pytest

from repro.accel.driver import ProtoAccelerator
from repro.proto import parse_schema
from repro.proto.errors import SchemaError
from repro.proto.rpc import RpcError, ServiceHandler, Stub
from repro.proto.writer import schema_to_proto

SOURCE = """
    syntax = "proto2";

    message EchoRequest { optional string text = 1; optional int32 n = 2; }
    message EchoResponse { repeated string texts = 1; }

    service Echo {
      rpc Repeat (EchoRequest) returns (EchoResponse);
      rpc Stream (EchoRequest) returns (stream EchoResponse);
    }
"""


@pytest.fixture()
def schema():
    return parse_schema(SOURCE)


class TestParsing:
    def test_service_descriptor(self, schema):
        service = schema.service("Echo")
        assert {m.name for m in service.methods} == {"Repeat", "Stream"}
        repeat = service.method("Repeat")
        assert repeat.input_descriptor is schema["EchoRequest"]
        assert repeat.output_descriptor is schema["EchoResponse"]
        assert not repeat.server_streaming

    def test_streaming_flag(self, schema):
        assert schema.service("Echo").method("Stream").server_streaming

    def test_full_method_name(self, schema):
        assert schema.service("Echo").full_method_name("Repeat") == \
            "/Echo/Repeat"

    def test_unknown_message_type_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema(
                "service S { rpc M (Missing) returns (Missing); }")

    def test_duplicate_method_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema("""
                message M { }
                service S {
                  rpc A (M) returns (M);
                  rpc A (M) returns (M);
                }
            """)

    def test_method_options_block_skipped(self):
        schema = parse_schema("""
            message M { }
            service S {
              rpc A (M) returns (M) { option deadline = 1; }
            }
        """)
        assert schema.service("S").method("A")

    def test_writer_emits_services(self, schema):
        emitted = schema_to_proto(schema)
        assert "service Echo {" in emitted
        assert "rpc Repeat (EchoRequest) returns (EchoResponse);" in emitted
        assert "returns (stream EchoResponse);" in emitted
        reparsed = parse_schema(emitted)
        assert reparsed.service("Echo").method("Stream").server_streaming


def _echo_handler(schema):
    def repeat(request):
        response = schema["EchoResponse"].new_message()
        for _ in range(request["n"]):
            response["texts"].append(request["text"])
        return response
    return repeat


class TestRpcRuntime:
    def test_software_round_trip(self, schema):
        handler = ServiceHandler(schema.service("Echo"))
        handler.register("Repeat", _echo_handler(schema))
        stub = Stub(schema.service("Echo"), transport=handler)
        request = schema["EchoRequest"].new_message()
        request["text"] = "hi"
        request["n"] = 3
        response = stub.call("Repeat", request)
        assert list(response["texts"]) == ["hi", "hi", "hi"]
        assert handler.calls_served == 1
        assert stub.calls_made == 1

    def test_accelerated_both_ends(self, schema):
        server_accel = ProtoAccelerator()
        server_accel.register_schema(schema)
        client_accel = ProtoAccelerator()
        client_accel.register_schema(schema)
        handler = ServiceHandler(schema.service("Echo"),
                                 accelerator=server_accel)
        handler.register("Repeat", _echo_handler(schema))
        stub = Stub(schema.service("Echo"), transport=handler,
                    accelerator=client_accel)
        request = schema["EchoRequest"].new_message()
        request["text"] = "offloaded"
        request["n"] = 2
        response = stub.call("Repeat", request)
        assert list(response["texts"]) == ["offloaded"] * 2
        # Both devices actually did work.
        assert client_accel.rocc.instructions_issued > 2
        assert server_accel.rocc.instructions_issued > 2

    def test_unimplemented_method_rejected(self, schema):
        handler = ServiceHandler(schema.service("Echo"))
        stub = Stub(schema.service("Echo"), transport=handler)
        request = schema["EchoRequest"].new_message()
        with pytest.raises(RpcError):
            stub.call("Repeat", request)

    def test_wrong_request_type_rejected(self, schema):
        handler = ServiceHandler(schema.service("Echo"))
        stub = Stub(schema.service("Echo"), transport=handler)
        wrong = schema["EchoResponse"].new_message()
        with pytest.raises(RpcError):
            stub.call("Repeat", wrong)

    def test_handler_must_return_declared_type(self, schema):
        handler = ServiceHandler(schema.service("Echo"))
        handler.register("Repeat",
                         lambda request: request)  # wrong type back
        stub = Stub(schema.service("Echo"), transport=handler)
        request = schema["EchoRequest"].new_message()
        request["n"] = 0
        with pytest.raises(RpcError):
            stub.call("Repeat", request)

    def test_unknown_route_rejected(self, schema):
        handler = ServiceHandler(schema.service("Echo"))
        with pytest.raises(RpcError):
            handler("/Other/Method", b"")
