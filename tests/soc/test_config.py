"""Tests for SoC configuration and the throughput metric."""

import pytest

from repro.soc.config import SoCConfig


def test_defaults_follow_paper():
    config = SoCConfig()
    assert config.clock_hz == 2.0e9          # Section 5: 2 GHz
    assert config.context_stack_depth == 25  # Section 3.8
    assert config.memory.bytes_per_beat == 16  # 128-bit TileLink


def test_gbits_per_second():
    config = SoCConfig()
    # 250 bytes in 1000 cycles at 2 GHz = 250*8 bits / 500 ns = 4 Gbit/s
    assert config.gbits_per_second(250, 1000) == pytest.approx(4.0)


def test_cycles_to_seconds():
    config = SoCConfig()
    assert config.cycles_to_seconds(2.0e9) == pytest.approx(1.0)


def test_zero_cycles_rejected():
    with pytest.raises(ValueError):
        SoCConfig().gbits_per_second(100, 0)
