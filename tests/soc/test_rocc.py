"""Tests for the RoCC command interface."""

import pytest

from repro.soc.rocc import RoccFunct, RoccInstruction, RoccInterface


class TestInstruction:
    def test_operands_must_fit_64_bits(self):
        RoccInstruction(RoccFunct.DESER_INFO, 2**64 - 1, 0)
        with pytest.raises(ValueError):
            RoccInstruction(RoccFunct.DESER_INFO, 2**64, 0)
        with pytest.raises(ValueError):
            RoccInstruction(RoccFunct.DESER_INFO, 0, -1)


class TestInterface:
    def test_dispatch_accounting(self):
        rocc = RoccInterface(dispatch_cycles_each=4)
        rocc.issue(RoccInstruction(RoccFunct.DESER_INFO))
        rocc.issue(RoccInstruction(RoccFunct.DO_PROTO_DESER))
        assert rocc.instructions_issued == 2
        assert rocc.dispatch_cycles_total == 8
        assert len(rocc.log) == 2

    def test_inflight_tracking(self):
        rocc = RoccInterface()
        rocc.issue(RoccInstruction(RoccFunct.DO_PROTO_DESER))
        rocc.issue(RoccInstruction(RoccFunct.DO_PROTO_DESER))
        assert rocc.inflight_deserializations == 2
        rocc.retire_deser()
        assert rocc.inflight_deserializations == 1
        assert not rocc.block_for_deser_completion()
        rocc.retire_deser()
        assert rocc.block_for_deser_completion()

    def test_ser_inflight_tracking(self):
        rocc = RoccInterface()
        rocc.issue(RoccInstruction(RoccFunct.DO_PROTO_SER))
        assert rocc.inflight_serializations == 1
        rocc.retire_ser()
        assert rocc.block_for_ser_completion()

    def test_over_retire_rejected(self):
        rocc = RoccInterface()
        with pytest.raises(RuntimeError):
            rocc.retire_deser()
        with pytest.raises(RuntimeError):
            rocc.retire_ser()
