"""PCIe attach-point unit and property tests (docs/MODEL.md).

The ISSUE 9 ring invariants, proved by Hypothesis over arbitrary
submit/consume and charge schedules: no descriptor is ever lost or
duplicated, completions never outrun submissions, and interrupt
coalescing never starves a closed window's completions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.config import SoCConfig, SoCConfigError
from repro.soc.pcie import (
    DescriptorRing,
    InterruptCoalescer,
    PcieParams,
    PcieTransport,
    RingFull,
)
from repro.soc.rocc import RoccFunct, RoccInstruction


# ---------------------------------------------------------------------------
# DescriptorRing: nothing lost, nothing duplicated, bounded.
# ---------------------------------------------------------------------------

@settings(max_examples=120)
@given(depth=st.integers(min_value=1, max_value=16),
       ops=st.lists(st.integers(min_value=0, max_value=16), max_size=60))
def test_ring_never_loses_or_duplicates(depth, ops):
    """Random interleavings of submits (op > 0 means submit `op`, 0
    means drain): every consumed sequence comes back exactly once, in
    submission order, with its own payload."""
    ring = DescriptorRing(depth)
    next_payload = 0
    consumed = []
    for op in ops:
        if op == 0:
            consumed.extend(ring.consume(ring.occupancy))
        else:
            for _ in range(op):
                if ring.full:
                    consumed.extend(ring.consume(ring.occupancy))
                ring.submit(next_payload)
                next_payload += 1
        assert 0 <= ring.occupancy <= depth
        assert ring.consumed <= ring.submitted
    consumed.extend(ring.consume(ring.occupancy))
    # Sequence numbers are dense and ordered; payloads match 1:1.
    assert [seq for seq, _ in consumed] == list(range(len(consumed)))
    assert [payload for _, payload in consumed] == list(range(next_payload))
    assert ring.empty


def test_ring_rejects_overflow_and_underflow():
    ring = DescriptorRing(2)
    ring.submit("a")
    ring.submit("b")
    with pytest.raises(RingFull):
        ring.submit("c")
    with pytest.raises(RingFull):
        ring.consume(3)
    assert ring.consume(2) == [(0, "a"), (1, "b")]


def test_ring_depth_validated():
    with pytest.raises(ValueError):
        DescriptorRing(0)


# ---------------------------------------------------------------------------
# InterruptCoalescer: threshold, timeout, and the no-starvation rule.
# ---------------------------------------------------------------------------

@settings(max_examples=120)
@given(threshold=st.integers(min_value=1, max_value=32),
       timeout=st.floats(min_value=1.0, max_value=10_000.0),
       events=st.lists(
           st.one_of(st.integers(min_value=1, max_value=8),
                     st.floats(min_value=0.0, max_value=2_000.0)),
           max_size=80))
def test_coalescer_accounts_every_completion(threshold, timeout, events):
    """Arbitrary add/advance schedules: completions are conserved (every
    one added is either still pending or was reaped by exactly one
    interrupt), and the window-close flush leaves nothing pending --
    a full batch is never starved behind the moderation timer."""
    co = InterruptCoalescer(threshold, timeout)
    added = reaped = 0
    for event in events:
        if isinstance(event, int):
            due = co.add(event)
            added += event
            assert due == (co.pending >= threshold)
        else:
            due = co.advance(event)
            assert due == (co.pending > 0 and co.elapsed >= timeout)
        if due:
            reaped += co.fire()
            assert co.pending == 0 and co.elapsed == 0.0
        assert co.pending == added - reaped
        assert co.pending >= 0
    if co.flush_due():
        reaped += co.fire()
    assert reaped == added
    assert not co.flush_due()


def test_coalescer_threshold_fires_immediately():
    co = InterruptCoalescer(threshold=4, timeout_cycles=1e9)
    assert not co.add(3)
    assert co.add(1)
    assert co.fire() == 4


def test_coalescer_timeout_requires_pending_work():
    co = InterruptCoalescer(threshold=64, timeout_cycles=10.0)
    assert not co.advance(100.0)  # nothing pending: no spurious IRQ
    co.add(1)
    assert co.advance(10.0)
    assert co.fire() == 1


# ---------------------------------------------------------------------------
# PcieTransport: window accounting over the queue pair.
# ---------------------------------------------------------------------------

def _deser_pair(length):
    return (RoccInstruction(RoccFunct.DESER_INFO, 0x1000, 0x2000),
            RoccInstruction(RoccFunct.DO_PROTO_DESER, 0x3000, length))


@settings(max_examples=60, deadline=None)
@given(lengths=st.lists(st.integers(min_value=0, max_value=4096),
                        min_size=1, max_size=40),
       params=st.builds(
           PcieParams,
           ring_depth=st.integers(min_value=1, max_value=64),
           doorbell_batch=st.integers(min_value=1, max_value=64),
           coalesce_threshold=st.integers(min_value=1, max_value=64),
           coalesce_timeout_cycles=st.floats(min_value=1.0,
                                             max_value=20_000.0)))
def test_window_drains_completely(lengths, params):
    """After any window closes: submissions == completions == reaped
    (completions never exceed submissions at any point, and the close
    never leaves pending work), and the charged cycles are positive."""
    if (params.doorbell_batch > params.ring_depth
            or params.coalesce_threshold > params.ring_depth):
        with pytest.raises(SoCConfigError):
            SoCConfig(transport="pcie", pcie=params)
        return
    transport = PcieTransport(params=params)
    transport.begin_batch()
    for length in lengths:
        for instruction in _deser_pair(length):
            transport.issue(instruction)
        assert transport.cq.submitted <= transport.sq.submitted
    transport.end_batch()
    assert transport.sq.submitted == len(lengths)
    assert transport.cq.submitted == transport.sq.submitted
    assert transport.cq.consumed == transport.cq.submitted
    assert transport.coalescer.pending == 0
    assert transport.sq.empty and transport.cq.empty
    assert transport.interrupts_raised >= 1
    assert transport.take_cycles() > 0
    assert transport.take_cycles() == 0.0  # drained exactly once


def test_invalid_window_geometry_names_the_knob():
    with pytest.raises(SoCConfigError) as excinfo:
        SoCConfig(transport="pcie",
                  pcie=PcieParams(ring_depth=8, doorbell_batch=9,
                                  coalesce_threshold=8))
    assert excinfo.value.knob == "pcie.doorbell_batch"
    with pytest.raises(SoCConfigError) as excinfo:
        SoCConfig(transport="pcie",
                  pcie=PcieParams(ring_depth=8, doorbell_batch=8,
                                  coalesce_threshold=9))
    assert excinfo.value.knob == "pcie.coalesce_threshold"


def test_single_op_window_charges_fixed_costs_once():
    """One operation in its own implicit window: descriptor write +
    payload DMA + doorbell + DMA prime + completion + interrupt."""
    params = PcieParams()
    transport = PcieTransport(params=params)
    length = 256
    for instruction in _deser_pair(length):
        transport.issue(instruction)
    expected = (params.desc_write_cycles
                + length / params.link_bytes_per_cycle
                + params.mmio_doorbell_cycles
                + params.dma_latency_cycles
                + params.completion_write_cycles
                + params.interrupt_cycles)
    assert transport.take_cycles() == expected
    assert transport.doorbells_rung == 1
    assert transport.interrupts_raised == 1
    assert transport.windows_opened == 1
    assert transport.dma_payload_bytes == length


def test_batched_window_amortises_fixed_costs():
    """Two ops in one explicit window share the doorbell, the DMA
    prime, and the interrupt; per-op cost falls accordingly."""
    params = PcieParams()
    solo = PcieTransport(params=params)
    for instruction in _deser_pair(64):
        solo.issue(instruction)
    solo_cycles = solo.take_cycles()

    batched = PcieTransport(params=params)
    batched.begin_batch()
    for _ in range(2):
        for instruction in _deser_pair(64):
            batched.issue(instruction)
    batched.end_batch()
    batched_cycles = batched.take_cycles()
    assert batched.doorbells_rung == 1
    assert batched.interrupts_raised == 1
    assert batched_cycles / 2 < solo_cycles


def test_note_payload_charges_without_advancing_moderation():
    transport = PcieTransport(params=PcieParams())
    transport.begin_batch()
    transport.note_payload(640)
    assert transport.coalescer.elapsed == 0.0
    assert transport.dma_payload_bytes == 640
    assert transport.take_cycles() == 640 / 64.0
    transport.end_batch()


def test_nested_windows_close_at_outermost():
    """An inner batch window inside an outer one must not ring the
    doorbell early: the doorbell/interrupt fire once, at the outermost
    close (the driver nests per-op windows inside batch windows)."""
    transport = PcieTransport(params=PcieParams())
    transport.begin_batch()
    for _ in range(3):
        transport.begin_batch()
        for instruction in _deser_pair(32):
            transport.issue(instruction)
        transport.end_batch()
    assert transport.doorbells_rung == 0
    transport.end_batch()
    assert transport.doorbells_rung == 1
    assert transport.interrupts_raised == 1
    assert transport.windows_opened == 1


def test_counters_snapshot_includes_queue_state():
    transport = PcieTransport(params=PcieParams())
    for instruction in _deser_pair(128):
        transport.issue(instruction)
    counters = transport.counters()
    assert counters["doorbells_rung"] == 1
    assert counters["sq_submitted"] == 1
    assert counters["cq_completed"] == 1
    assert counters["cq_reaped"] == 1
    assert counters["dma_payload_bytes"] == 128


# ---------------------------------------------------------------------------
# SoCConfig validation: structured errors that name the knob.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("knob,kwargs", [
    ("transport", {"transport": "usb"}),
    ("clock_hz", {"clock_hz": 0.0}),
    ("rocc_dispatch_cycles", {"rocc_dispatch_cycles": -1}),
    ("fence_cycles", {"fence_cycles": -4}),
    ("pcie.ring_depth", {"pcie": PcieParams(ring_depth=0)}),
    ("pcie.dma_latency_cycles",
     {"pcie": PcieParams(dma_latency_cycles=-1.0)}),
    ("pcie.link_bytes_per_cycle",
     {"pcie": PcieParams(link_bytes_per_cycle=0.0)}),
    ("pcie.interrupt_cycles", {"pcie": PcieParams(interrupt_cycles=-0.5)}),
])
def test_config_errors_name_the_knob(knob, kwargs):
    with pytest.raises(SoCConfigError) as excinfo:
        SoCConfig(**kwargs)
    assert excinfo.value.knob == knob
    assert knob in str(excinfo.value)
