"""Tests for the system-bus occupancy ledger."""

from repro.soc.bus import SystemBus


def test_beat_rounding():
    bus = SystemBus()
    assert bus.record_read(1) == 1
    assert bus.record_read(16) == 1
    assert bus.record_write(17) == 2
    assert bus.total_beats == 4


def test_zero_bytes_free():
    bus = SystemBus()
    assert bus.record_read(0) == 0
    assert bus.total_beats == 0


def test_utilization():
    bus = SystemBus()
    bus.record_read(160)  # 10 beats
    assert bus.utilization(100) == 0.1
    assert bus.utilization(5) == 1.0  # clamped
    assert bus.utilization(0) == 0.0
