"""The AccelTransport seam: protocol conformance, probe, fallback."""

import dataclasses

import pytest

from repro.soc.config import SoCConfig, SoCConfigError
from repro.soc.pcie import PcieParams, PcieTransport
from repro.soc.rocc import RoccInterface
from repro.soc.transport import (
    TRANSPORTS,
    AccelTransport,
    TransportResolution,
    build_transport,
    probe_transport,
    resolve_transport,
)


def test_both_attach_points_satisfy_the_protocol():
    assert isinstance(RoccInterface(), AccelTransport)
    assert isinstance(PcieTransport(), AccelTransport)


def test_registered_transport_names():
    assert TRANSPORTS == ("rocc", "pcie")


def test_rocc_probe_always_succeeds():
    assert probe_transport("rocc", SoCConfig()) is None


def test_pcie_probe_checks_capability():
    assert probe_transport("pcie", SoCConfig()) is None
    absent = SoCConfig(pcie=PcieParams(present=False))
    reason = probe_transport("pcie", absent)
    assert reason is not None and "pcie.present" in reason


def test_resolve_default_is_rocc_without_fallback():
    resolution = resolve_transport(SoCConfig())
    assert resolution == TransportResolution("rocc", "rocc")
    assert not resolution.fell_back


def test_unknown_transport_is_a_config_error_not_a_fallback():
    """An unknown name is a typo, not a missing device: surface it as a
    structured SoCConfigError naming the knob.  SoCConfig itself
    rejects it too; resolve_transport guards callers that bypass
    __post_init__ (here via dataclasses.replace-style mutation)."""
    config = SoCConfig()
    config.transport = "infiniband"
    with pytest.raises(SoCConfigError) as excinfo:
        resolve_transport(config)
    assert excinfo.value.knob == "transport"
    assert excinfo.value.value == "infiniband"


def test_probe_failure_falls_back_to_rocc_with_reason():
    config = SoCConfig(transport="pcie",
                       pcie=PcieParams(present=False))
    resolution = resolve_transport(config)
    assert resolution.requested == "pcie"
    assert resolution.effective == "rocc"
    assert resolution.fell_back
    assert "probe" in resolution.fallback_reason


def test_build_transport_returns_matching_implementation():
    rocc, resolution = build_transport(SoCConfig())
    assert isinstance(rocc, RoccInterface)
    assert not isinstance(rocc, PcieTransport)
    assert rocc.name == "rocc" and not resolution.fell_back

    pcie, resolution = build_transport(SoCConfig(transport="pcie"))
    assert isinstance(pcie, PcieTransport)
    assert pcie.name == "pcie" and not resolution.fell_back
    assert pcie.params == SoCConfig().pcie


def test_build_transport_honors_fallback():
    config = SoCConfig(transport="pcie", pcie=PcieParams(present=False))
    transport, resolution = build_transport(config)
    assert isinstance(transport, RoccInterface)
    assert not isinstance(transport, PcieTransport)
    assert resolution.fell_back


def test_driver_surfaces_the_resolution():
    from repro.accel.driver import ProtoAccelerator
    accel = ProtoAccelerator(
        config=SoCConfig(transport="pcie",
                         pcie=PcieParams(present=False)))
    assert accel.transport.name == "rocc"
    assert accel.transport_resolution.fell_back
    assert accel.transport_resolution.requested == "pcie"
    # The compatibility alias tracks the effective transport.
    assert accel.rocc is accel.transport


def test_rocc_transport_surface_is_flat():
    """RoCC's window/payload hooks are no-ops and its drained cycles
    are exactly dispatch_cycles_each per issued instruction."""
    from repro.soc.rocc import RoccFunct, RoccInstruction
    rocc = RoccInterface(dispatch_cycles_each=4)
    rocc.begin_batch()
    rocc.issue(RoccInstruction(RoccFunct.DESER_INFO))
    rocc.note_payload(1 << 20)  # no link to charge
    rocc.end_batch()
    assert rocc.take_cycles() == 4.0
    assert rocc.take_cycles() == 0.0


def test_resolution_is_frozen():
    resolution = TransportResolution("rocc", "rocc")
    with pytest.raises(dataclasses.FrozenInstanceError):
        resolution.effective = "pcie"
