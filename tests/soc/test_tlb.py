"""Tests for the TLB/PTW model."""

import pytest

from repro.soc.tlb import PAGE_BYTES, Tlb


class TestTlb:
    def test_first_access_misses(self):
        tlb = Tlb(entries=4, ptw_cycles=80)
        _, penalty = tlb.translate(0x10000)
        assert penalty == 80
        assert tlb.stats.misses == 1

    def test_second_access_hits(self):
        tlb = Tlb(entries=4, ptw_cycles=80)
        tlb.translate(0x10000)
        _, penalty = tlb.translate(0x10008)
        assert penalty == 0
        assert tlb.stats.hits == 1

    def test_identity_mapping(self):
        tlb = Tlb()
        paddr, _ = tlb.translate(0x12345)
        assert paddr == 0x12345

    def test_lru_eviction(self):
        tlb = Tlb(entries=2, ptw_cycles=80)
        tlb.translate(0 * PAGE_BYTES)
        tlb.translate(1 * PAGE_BYTES)
        tlb.translate(0 * PAGE_BYTES)  # refresh page 0
        tlb.translate(2 * PAGE_BYTES)  # evicts page 1 (LRU)
        _, penalty = tlb.translate(1 * PAGE_BYTES)
        assert penalty == 80  # page 1 was the LRU victim
        _, penalty = tlb.translate(2 * PAGE_BYTES)
        assert penalty == 0  # page 2 is still resident

    def test_translate_range_touches_every_page(self):
        tlb = Tlb(entries=16, ptw_cycles=80)
        penalty = tlb.translate_range(0, 3 * PAGE_BYTES)
        assert penalty == 3 * 80  # bytes [0, 3*4096) span pages 0, 1, 2

    def test_translate_range_within_page(self):
        tlb = Tlb(entries=16, ptw_cycles=80)
        assert tlb.translate_range(100, 10) == 80
        assert tlb.translate_range(100, 10) == 0

    def test_zero_length_range(self):
        assert Tlb().translate_range(0, 0) == 0

    def test_flush(self):
        tlb = Tlb()
        tlb.translate(0)
        tlb.flush()
        _, penalty = tlb.translate(0)
        assert penalty == tlb.ptw_cycles

    def test_hit_rate(self):
        tlb = Tlb()
        assert tlb.stats.hit_rate == 1.0
        tlb.translate(0)
        tlb.translate(0)
        assert tlb.stats.hit_rate == 0.5

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Tlb(entries=0)
