"""Tests for the multi-tile scaling model."""

import pytest

from repro.soc.multitile import MultiTileModel, TileWorkProfile


@pytest.fixture()
def light_profile():
    # 10% bus utilisation per tile -> saturates at 10 tiles.
    return TileWorkProfile(payload_bytes=1000, cycles=1000.0,
                           bus_beats=100.0)


class TestProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            TileWorkProfile(100, 0.0, 10.0)
        with pytest.raises(ValueError):
            TileWorkProfile(-1, 10.0, 10.0)

    def test_beats_per_cycle(self, light_profile):
        assert light_profile.beats_per_cycle == pytest.approx(0.1)


class TestScaling:
    def test_linear_below_saturation(self, light_profile):
        model = MultiTileModel(light_profile)
        assert model.speedup(1) == 1.0
        assert model.speedup(4) == 4.0
        assert model.speedup(10) == pytest.approx(10.0)

    def test_capped_above_saturation(self, light_profile):
        model = MultiTileModel(light_profile)
        assert model.saturation_tiles() == pytest.approx(10.0)
        assert model.speedup(20) == pytest.approx(10.0)
        assert model.per_tile_efficiency(20) == pytest.approx(0.5)

    def test_wider_bus_raises_cap(self, light_profile):
        narrow = MultiTileModel(light_profile, bus_beats_per_cycle=1.0)
        wide = MultiTileModel(light_profile, bus_beats_per_cycle=2.0)
        assert wide.speedup(20) == pytest.approx(2 * narrow.speedup(20))

    def test_aggregate_gbps(self, light_profile):
        model = MultiTileModel(light_profile)
        # One tile: 1000 B in 500 ns = 16 Gbit/s.
        assert model.aggregate_gbps(1) == pytest.approx(16.0)
        assert model.aggregate_gbps(2) == pytest.approx(32.0)

    def test_zero_traffic_never_saturates(self):
        model = MultiTileModel(TileWorkProfile(100, 100.0, 0.0))
        assert model.saturation_tiles() == float("inf")
        assert model.speedup(64) == 64.0

    def test_invalid_tile_count(self, light_profile):
        with pytest.raises(ValueError):
            MultiTileModel(light_profile).speedup(0)

    def test_latency_unstretched_below_saturation(self, light_profile):
        model = MultiTileModel(light_profile)
        assert model.latency_stretch(1) == 1.0
        assert model.latency_stretch(10) == pytest.approx(1.0)

    def test_latency_stretches_by_utilisation_above(self, light_profile):
        model = MultiTileModel(light_profile)
        # 20 tiles demand 2 beats/cycle on a 1 beat/cycle bus.
        assert model.latency_stretch(20) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            model.latency_stretch(0)


class TestFromMeasurement:
    def test_integrates_with_accelerator_stats(self):
        from repro.accel.driver import ProtoAccelerator
        from repro.bench.microbench import build_microbench

        def measured_profile(name):
            workload = build_microbench(name, batch=8)
            accel = ProtoAccelerator()
            accel.register_types([workload.descriptor])
            buffers = [m.serialize() for m in workload.messages]
            before = accel.memory.stats.snapshot()
            _, stats = accel.deserialize_batch(workload.descriptor,
                                               buffers)
            moved = (accel.memory.stats.read_bytes - before.read_bytes
                     + accel.memory.stats.written_bytes
                     - before.written_bytes)
            return TileWorkProfile(payload_bytes=stats.wire_bytes,
                                   cycles=stats.cycles,
                                   bus_beats=moved / 16)

        # Small varints are compute-bound: several tiles fit on one bus.
        light = MultiTileModel(measured_profile("varint-5"))
        assert light.saturation_tiles() > 1.5
        assert light.speedup(2) == pytest.approx(2.0)
        # Long strings run at memcpy rate: one tile already consumes the
        # bus, so a second tile cannot double throughput.
        heavy = MultiTileModel(measured_profile("string_long"))
        assert heavy.saturation_tiles() < 2.0
        assert heavy.speedup(2) < 2.0
