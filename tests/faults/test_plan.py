"""FaultPlan / FaultInjector mechanics: validation, determinism,
arming, trigger counting, and transient healing."""

import pytest

from repro.faults import (
    DESER_SITES,
    FaultInjector,
    FaultPlan,
    FaultSite,
    IMMEDIATE_SITES,
    PERSISTENT_SITES,
    RecoveryPolicy,
    SER_SITES,
    TRANSIENT_SITES,
)
from repro.faults.plan import PCIE_SITES
from repro.proto.errors import AccelFault


class _Stats:
    cycles = 17.0


class TestPlanValidation:
    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(rate=-0.1)

    def test_transient_duration_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_duration=0)

    def test_max_trigger_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPlan(max_trigger=0)

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(sites=())

    def test_string_sites_coerced(self):
        plan = FaultPlan(sites=("tlb.fault", "deser.abort"))
        assert plan.sites == (FaultSite.TLB_FAULT, FaultSite.DESER_ABORT)

    def test_unknown_site_name_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(sites=("alu.sadness",))

    def test_zero_rate_plan_is_disabled(self):
        assert not FaultPlan(rate=0.0).enabled()
        assert FaultPlan(rate=0.001).enabled()


class TestSiteTaxonomy:
    def test_transient_and_persistent_partition_all_sites(self):
        assert TRANSIENT_SITES | PERSISTENT_SITES == frozenset(FaultSite)
        assert not TRANSIENT_SITES & PERSISTENT_SITES

    def test_sites_for_restricts_by_operation_kind(self):
        plan = FaultPlan(rate=0.5)
        assert plan.sites_for("deser") == DESER_SITES
        assert plan.sites_for("ser") == SER_SITES
        assert FaultSite.SER_ABORT not in plan.sites_for("deser")
        assert FaultSite.DESER_ABORT not in plan.sites_for("ser")
        # PCIe kinds additionally reach the transport's submission
        # sites; the RoCC kinds never do (bit-identical site draws).
        assert plan.sites_for("pcie.deser") == DESER_SITES + PCIE_SITES
        assert plan.sites_for("pcie.ser") == SER_SITES + PCIE_SITES
        assert FaultSite.PCIE_DMA not in plan.sites_for("deser")
        assert FaultSite.PCIE_DOORBELL not in plan.sites_for("ser")

    def test_single_site_plan_only_arms_that_site(self):
        plan = FaultPlan(rate=1.0, sites=(FaultSite.TLB_FAULT,),
                         max_trigger=1)
        injector = FaultInjector(plan)
        injector.begin_operation("deser")
        injector.begin_attempt(_Stats())
        injector.poll(FaultSite.DESER_ABORT)  # different site: no fire
        with pytest.raises(AccelFault):
            injector.poll(FaultSite.TLB_FAULT)


class TestFingerprint:
    def test_fingerprint_covers_every_knob(self):
        base = FaultPlan(seed=1, rate=0.25)
        assert base.fingerprint() == FaultPlan(seed=1,
                                               rate=0.25).fingerprint()
        for other in (FaultPlan(seed=2, rate=0.25),
                      FaultPlan(seed=1, rate=0.5),
                      FaultPlan(seed=1, rate=0.25, transient_duration=2),
                      FaultPlan(seed=1, rate=0.25, max_trigger=3),
                      FaultPlan(seed=1, rate=0.25,
                                sites=(FaultSite.TLB_FAULT,))):
            assert other.fingerprint() != base.fingerprint()

    def test_derive_is_deterministic_and_label_sensitive(self):
        plan = FaultPlan(seed=7, rate=0.1)
        assert plan.derive("w", "deser") == plan.derive("w", "deser")
        assert plan.derive("w", "deser") != plan.derive("w", "ser")
        assert plan.derive("w", "deser").seed != plan.seed
        assert plan.derive("w", "deser").rate == plan.rate


class TestInjectorMechanics:
    def test_deterministic_replay(self):
        plan = FaultPlan(seed=11, rate=0.4)
        logs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            fired = []
            for index in range(200):
                injector.begin_operation("deser")
                injector.begin_attempt(_Stats())
                for site in DESER_SITES:
                    try:
                        injector.poll(site)
                    except AccelFault as fault:
                        fired.append((index, fault.site, fault.transient))
                injector.end_operation()
            logs.append(fired)
        assert logs[0] == logs[1]
        assert logs[0], "a 40% rate over 200 ops must inject something"

    def test_immediate_sites_fire_on_first_poll(self):
        for site in IMMEDIATE_SITES:
            plan = FaultPlan(rate=1.0, sites=(site,), max_trigger=8)
            injector = FaultInjector(plan)
            # Transport sites are only reachable from PCIe-kind ops.
            kind = "pcie.deser" if site in PCIE_SITES else "deser"
            injector.begin_operation(kind)
            injector.begin_attempt(_Stats())
            with pytest.raises(AccelFault):
                injector.poll(site)

    def test_trigger_delays_firing_to_nth_poll(self):
        plan = FaultPlan(rate=1.0, sites=(FaultSite.VARINT_OVERLONG,),
                         max_trigger=1)
        injector = FaultInjector(plan)
        injector.begin_operation("deser")
        injector.begin_attempt(_Stats())
        trigger = injector._armed.trigger
        for _ in range(trigger - 1):
            injector.poll(FaultSite.VARINT_OVERLONG)
        with pytest.raises(AccelFault) as excinfo:
            injector.poll(FaultSite.VARINT_OVERLONG)
        assert excinfo.value.injected
        assert excinfo.value.cycle == 17.0

    def test_transient_fault_heals_after_duration(self):
        plan = FaultPlan(rate=1.0, sites=(FaultSite.BUS_STALL,),
                         transient_duration=2)
        injector = FaultInjector(plan)
        injector.begin_operation("deser")
        for _ in range(2):  # fires on the first two attempts...
            injector.begin_attempt(_Stats())
            with pytest.raises(AccelFault) as excinfo:
                injector.poll(FaultSite.BUS_STALL)
            assert excinfo.value.transient
        injector.begin_attempt(_Stats())
        injector.poll(FaultSite.BUS_STALL)  # ...then clears
        assert injector.injected == 2

    def test_persistent_fault_fires_every_attempt(self):
        plan = FaultPlan(rate=1.0, sites=(FaultSite.MEMLOADER_TRUNCATE,))
        injector = FaultInjector(plan)
        injector.begin_operation("deser")
        for _ in range(5):
            injector.begin_attempt(_Stats())
            with pytest.raises(AccelFault) as excinfo:
                injector.poll(FaultSite.MEMLOADER_TRUNCATE)
            assert not excinfo.value.transient

    def test_stream_alignment_is_site_independent(self):
        # Restricting the site list must not change *which* operations
        # arm a fault (one RNG draw per operation either way).
        def armed_ops(sites):
            injector = FaultInjector(FaultPlan(seed=5, rate=0.3,
                                               sites=sites))
            armed = []
            for index in range(100):
                injector.begin_operation("deser")
                armed.append(injector._armed is not None)
                injector.end_operation()
            return armed
        assert armed_ops(tuple(FaultSite)) == \
            armed_ops((FaultSite.TLB_FAULT,))


class TestRecoveryPolicy:
    def test_backoff_grows_geometrically(self):
        policy = RecoveryPolicy(max_retries=3, backoff_cycles=64.0,
                                backoff_multiplier=2.0)
        assert [policy.backoff(i) for i in range(3)] == [64.0, 128.0, 256.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_cycles=-1.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_multiplier=0.0)
