"""Driver-level fault recovery: every site, both recovery paths.

For each injection site the accelerator must survive a forced fault and
still produce the exact software-parser result: transient sites via a
retry (no CPU involvement), persistent sites via the per-message CPU
fallback.  Cycle accounting must charge the wasted attempt, the backoff
pauses, and any fallback decode on top of the productive work.
"""

import pytest

from repro.accel import perf
from repro.accel.driver import ProtoAccelerator
from repro.faults import (
    FaultPlan,
    FaultSite,
    PERSISTENT_SITES,
    RecoveryPolicy,
    TRANSIENT_SITES,
)
from repro.faults.plan import PCIE_SITES
from repro.proto import parse_schema
from repro.proto.decoder import parse_message
from repro.soc.config import SoCConfig

_SCHEMA = parse_schema("""
    message Inner { optional int32 v = 1; optional string tag = 2; }
    message Probe {
      optional int32 a = 1;
      optional string s = 2;
      optional Inner child = 3;
      repeated int32 packed = 4 [packed = true];
      repeated Inner kids = 5;
      optional sint64 z = 6;
      optional double d = 7;
    }
""")
# Reach the utf8.corrupt site: the validator only runs on strings with
# proto3-style validation enabled.
_SCHEMA["Probe"].field_by_name("s").validate_utf8 = True


def _probe_message():
    message = _SCHEMA["Probe"].new_message()
    message["a"] = 150
    message["s"] = "héllo wörld"
    message["z"] = -7
    message["d"] = 2.5
    message["packed"] = [3, 270, 86942]
    child = message.mutable("child")
    child["v"] = 99
    for tag in ("x", "y"):
        kid = message["kids"].add()
        kid["tag"] = tag
    return message


def _accel(plan=None, recovery=None, transport="rocc"):
    device = ProtoAccelerator(config=SoCConfig(transport=transport),
                              deser_arena_bytes=1 << 20,
                              ser_arena_bytes=1 << 20,
                              faults=plan, recovery=recovery)
    device.register_schema(_SCHEMA)
    return device


def _transport_for(site):
    """Transport sites only exist over PCIe; everything else is tested
    on the default RoCC attach point."""
    return "pcie" if site in PCIE_SITES else "rocc"


def _single_site_plan(site, **kwargs):
    kwargs.setdefault("rate", 1.0)
    kwargs.setdefault("max_trigger", 1)
    return FaultPlan(seed=1, sites=(site,), **kwargs)


_DESER_SITES = [s for s in FaultSite
                if s not in (FaultSite.SER_ABORT, FaultSite.SER_HANG)]
_SER_SITES = (FaultSite.ADT_ENTRY, FaultSite.BUS_STALL,
              FaultSite.TLB_FAULT, FaultSite.SER_ABORT,
              FaultSite.SER_HANG) + PCIE_SITES


@pytest.mark.parametrize("site", _DESER_SITES,
                         ids=[s.value for s in _DESER_SITES])
def test_deserialize_recovers_per_site(site):
    """One forced fault at each site: transient sites recover by retry,
    persistent sites by CPU fallback -- and the decoded message is
    bit-identical to the software parse either way."""
    message = _probe_message()
    wire = message.serialize()
    accel = _accel(_single_site_plan(site), transport=_transport_for(site))
    result = accel.deserialize(_SCHEMA["Probe"], wire)
    stats = result.stats
    assert stats.faults_injected == 1
    if site in TRANSIENT_SITES:
        assert stats.fault_retries == 1
        assert stats.cpu_fallbacks == 0
        assert stats.recovery_backoff_cycles > 0
    else:
        assert stats.fault_retries == 0
        assert stats.cpu_fallbacks == 1
        assert stats.fallback_cpu_cycles > 0
    observed = accel.read_message(_SCHEMA["Probe"], result.dest_addr)
    assert observed == parse_message(_SCHEMA["Probe"], wire)
    assert observed == message


@pytest.mark.parametrize("site", _SER_SITES,
                         ids=[s.value for s in _SER_SITES])
def test_serialize_recovers_per_site(site):
    """Serialization faults roll back the partial arena output and the
    recovered wire bytes equal the software encoding exactly."""
    message = _probe_message()
    wire = message.serialize()
    accel = _accel(_single_site_plan(site), transport=_transport_for(site))
    addr = accel.load_object(message)
    result = accel.serialize(_SCHEMA["Probe"], addr)
    assert result.stats.faults_injected == 1
    if site in TRANSIENT_SITES:
        assert result.stats.fault_retries == 1
        assert result.stats.cpu_fallbacks == 0
    else:
        assert result.stats.cpu_fallbacks == 1
    assert result.data == wire


def test_retry_exhaustion_falls_back_to_cpu():
    """A transient fault that outlives the retry budget still completes
    -- through the CPU -- with the retries and the fallback all charged."""
    plan = _single_site_plan(FaultSite.BUS_STALL, transient_duration=10)
    policy = RecoveryPolicy(max_retries=2)
    message = _probe_message()
    wire = message.serialize()
    accel = _accel(plan, recovery=policy)
    result = accel.deserialize(_SCHEMA["Probe"], wire)
    stats = result.stats
    assert stats.fault_retries == 2
    assert stats.cpu_fallbacks == 1
    assert stats.faults_injected == 3  # initial attempt + two retries
    assert accel.read_message(_SCHEMA["Probe"], result.dest_addr) == message


def test_transient_heals_within_default_budget():
    """transient_duration=2 needs two retries but no fallback under the
    default policy (max_retries=3)."""
    plan = _single_site_plan(FaultSite.TLB_FAULT, transient_duration=2)
    accel = _accel(plan)
    wire = _probe_message().serialize()
    result = accel.deserialize(_SCHEMA["Probe"], wire)
    assert result.stats.fault_retries == 2
    assert result.stats.cpu_fallbacks == 0


def test_faulted_cycles_exceed_clean_cycles():
    """Recovery is never free: the faulted run charges wasted attempt
    cycles plus backoff on top of the productive decode.  Both devices
    are warmed by one operation first so TLB state matches (a retry
    runs against the TLB its own faulted attempt warmed)."""
    wire = _probe_message().serialize()
    clean_accel = _accel()
    faulted_accel = _accel(_single_site_plan(FaultSite.BUS_STALL))
    clean_accel.deserialize(_SCHEMA["Probe"], wire)
    faulted_accel.deserialize(_SCHEMA["Probe"], wire)
    clean = clean_accel.deserialize(_SCHEMA["Probe"], wire)
    faulted = faulted_accel.deserialize(_SCHEMA["Probe"], wire)
    assert faulted.stats.cycles > clean.stats.cycles
    overhead = (faulted.stats.wasted_accel_cycles
                + faulted.stats.recovery_backoff_cycles)
    assert overhead > 0
    assert faulted.stats.cycles == pytest.approx(clean.stats.cycles
                                                 + overhead)


def test_recovery_is_deterministic():
    """Same plan, same inputs: identical cycles and counters."""
    plan = FaultPlan(seed=42, rate=0.5)
    wire = _probe_message().serialize()
    runs = []
    for _ in range(2):
        accel = _accel(plan)
        totals = []
        for _ in range(20):
            result = accel.deserialize(_SCHEMA["Probe"], wire)
            totals.append((result.stats.cycles,
                           result.stats.faults_injected,
                           result.stats.fault_retries,
                           result.stats.cpu_fallbacks))
        runs.append(totals)
    assert runs[0] == runs[1]
    assert any(t[1] for t in runs[0]), "rate 0.5 over 20 ops injected nothing"


def test_fault_free_device_has_zero_fault_counters():
    accel = _accel()
    wire = _probe_message().serialize()
    result = accel.deserialize(_SCHEMA["Probe"], wire)
    assert result.stats.faults_injected == 0
    assert result.stats.cpu_fallbacks == 0
    assert accel.faults is None
    report = perf.collect(accel)
    assert report.faults_injected == 0
    assert report.cpu_fallbacks == 0
    assert report.bus_stalls == 0


def test_perf_report_surfaces_recovery_counters():
    plan = FaultPlan(seed=3, rate=1.0, max_trigger=1)
    accel = _accel(plan)
    wire = _probe_message().serialize()
    for _ in range(5):
        accel.deserialize(_SCHEMA["Probe"], wire)
    report = perf.collect(accel)
    assert report.faults_injected >= 1
    assert report.fault_interrupts == report.faults_injected
    assert report.faults_injected == (report.transient_retries
                                      + report.cpu_fallbacks)
    rendered = report.render()
    assert "faults injected" in rendered
    assert "CPU fallbacks" in rendered


def test_rocc_records_fault_sites():
    plan = _single_site_plan(FaultSite.TLB_FAULT)
    accel = _accel(plan)
    accel.deserialize(_SCHEMA["Probe"], _probe_message().serialize())
    assert accel.rocc.faults_raised == 1
    assert accel.rocc.fault_sites == {"tlb.fault": 1}


def test_bus_stall_recorded_on_bus_ledger():
    plan = _single_site_plan(FaultSite.BUS_STALL)
    accel = _accel(plan)
    accel.deserialize(_SCHEMA["Probe"], _probe_message().serialize())
    assert accel.bus.stalls == 1
