"""Bench-harness fault integration: end-to-end runs under fault load.

The acceptance bar for the subsystem: benchmark workloads complete with
verification ON while every message is subject to injection -- recovery
must be value-preserving at workload scale -- and the fault-free path
stays bit-identical to a harness that has never heard of faults.
"""

import dataclasses

import pytest

from repro.bench.harness import (
    WorkloadSpec,
    cache_key,
    run_many,
    run_spec,
)
from repro.bench.report import fault_degradation_table
from repro.bench.runner import SystemResult
from repro.faults import FaultPlan

_SPECS = [WorkloadSpec("micro", "varint-3", "deserialize", 6),
          WorkloadSpec("micro", "string", "serialize", 6),
          WorkloadSpec("hyper", "bench0", "deserialize", 3),
          WorkloadSpec("hyper", "bench0", "serialize", 3)]


def test_zero_rate_plan_matches_no_plan():
    """A rate-0 plan must be indistinguishable from no plan at all:
    same cycles, same throughput, same cache keys."""
    plan = FaultPlan(seed=9, rate=0.0)
    spec = _SPECS[0]
    without = run_spec(spec, disk_cache=False, faults=None)
    with_plan = run_spec(spec, disk_cache=False, faults=plan)
    assert dataclasses.asdict(without.results["riscv-boom-accel"]) == \
        dataclasses.asdict(with_plan.results["riscv-boom-accel"])
    workload = spec.build()
    assert cache_key(spec, workload, faults=plan) == \
        cache_key(spec, workload, faults=None)


def test_enabled_plan_changes_cache_key_only_when_active():
    plan = FaultPlan(seed=9, rate=0.25)
    spec = _SPECS[0]
    workload = spec.build()
    base = cache_key(spec, workload)
    assert cache_key(spec, workload, faults=plan) != base
    assert FaultPlan(seed=10, rate=0.25).fingerprint() != plan.fingerprint()


def test_workloads_complete_under_heavy_fault_load():
    """Every message faulted (rate 1.0): all four specs run to
    completion with verify=True, so each faulted message was retried or
    CPU-fallback-decoded bit-identically."""
    plan = FaultPlan(seed=2, rate=1.0, max_trigger=2)
    results = run_many(_SPECS, disk_cache=False, faults=plan)
    assert len(results) == len(_SPECS)
    total_injected = sum(r.results["riscv-boom-accel"].faults_injected
                        for r in results)
    assert total_injected > 0
    for result in results:
        accel = result.results["riscv-boom-accel"]
        # Every injected fault resolves to exactly one retry or fallback.
        assert accel.faults_injected == (accel.transient_retries
                                         + accel.cpu_fallbacks)
        assert accel.gbits_per_second > 0


def test_faulted_throughput_never_exceeds_clean():
    plan = FaultPlan(seed=2, rate=1.0, max_trigger=2)
    clean = run_many(_SPECS, disk_cache=False, faults=None)
    faulted = run_many(_SPECS, disk_cache=False, faults=plan)
    for c, f in zip(clean, faulted):
        fa = f.results["riscv-boom-accel"]
        if fa.faults_injected:
            assert fa.cycles > c.results["riscv-boom-accel"].cycles


def test_fault_runs_are_reproducible():
    plan = FaultPlan(seed=5, rate=0.5)
    first = run_many(_SPECS, disk_cache=False, faults=plan)
    second = run_many(_SPECS, disk_cache=False, faults=plan)
    for a, b in zip(first, second):
        assert dataclasses.asdict(a.results["riscv-boom-accel"]) == \
            dataclasses.asdict(b.results["riscv-boom-accel"])


def test_disk_cache_round_trips_fault_counters(tmp_path):
    plan = FaultPlan(seed=2, rate=1.0, max_trigger=2)
    spec = _SPECS[0]
    computed = run_spec(spec, disk_cache=True, cache_dir=tmp_path,
                        faults=plan)
    replayed = run_spec(spec, disk_cache=True, cache_dir=tmp_path,
                        faults=plan)
    assert dataclasses.asdict(computed.results["riscv-boom-accel"]) == \
        dataclasses.asdict(replayed.results["riscv-boom-accel"])


def test_old_cached_json_without_fault_fields_still_loads():
    # Pre-fault-subsystem cache entries lack the new counters; the
    # dataclass defaults must absorb that.
    legacy = {"system": "riscv-boom-accel", "gbits_per_second": 1.0,
              "cycles": 10.0, "wire_bytes": 100}
    result = SystemResult(**legacy)
    assert result.faults_injected == 0
    assert result.cpu_fallbacks == 0


def test_degradation_table_renders():
    plan = FaultPlan(seed=2, rate=1.0, max_trigger=2)
    clean = run_many(_SPECS, disk_cache=False, faults=None)
    faulted = run_many(_SPECS, disk_cache=False, faults=plan)
    table = fault_degradation_table([(0.0, clean), (1.0, faulted)])
    assert "degradation curve" in table
    assert "100.0%" in table
    lines = table.splitlines()
    assert any(line.lstrip().startswith("100.00%") for line in lines)


def test_degradation_table_rejects_empty_curve():
    with pytest.raises(ValueError):
        fault_degradation_table([])
