"""Tests for the event-trace CPU cost model."""

import pytest

from repro.cpu.boom import BOOM_PARAMS, boom_cpu
from repro.cpu.xeon import XEON_PARAMS, xeon_cpu
from repro.proto import parse_schema
from repro.proto.trace import Op, Trace


@pytest.fixture()
def schema():
    return parse_schema("""
        message Inner { optional int32 a = 1; }
        message M {
          optional int64 x = 1;
          optional string s = 2;
          optional Inner inner = 3;
        }
    """)


class TestEventCosts:
    def test_varint_cost_scales_with_bytes(self):
        params = BOOM_PARAMS
        one = params.event_cycles(Op.VARINT_DECODE, 1)
        ten = params.event_cycles(Op.VARINT_DECODE, 10)
        assert ten > one
        assert ten - one == pytest.approx(9 * params.varint_decode_per_byte)

    def test_memcpy_cold_slower_than_warm(self):
        params = XEON_PARAMS
        warm = params.event_cycles(Op.MEMCPY, 4096, cold_memcpy=False)
        cold = params.event_cycles(Op.MEMCPY, 4096, cold_memcpy=True)
        assert cold > warm

    def test_trace_cycles_sums_events(self):
        trace = Trace()
        trace.emit(Op.ZIGZAG)
        trace.emit(Op.ZIGZAG)
        assert BOOM_PARAMS.trace_cycles(trace) == \
            pytest.approx(2 * BOOM_PARAMS.zigzag)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            BOOM_PARAMS.event_cycles("not-an-op", 1)  # type: ignore


class TestSoftwareCpu:
    def test_deserialize_functional_and_costed(self, schema):
        cpu = boom_cpu()
        m = schema["M"].new_message()
        m["x"] = 5
        m["s"] = "hello"
        data = m.serialize()
        decoded, result = cpu.deserialize(schema["M"], data)
        assert decoded == m
        assert result.cycles > cpu.params.call_overhead_deser
        assert result.wire_bytes == len(data)

    def test_serialize_functional_and_costed(self, schema):
        cpu = xeon_cpu()
        m = schema["M"].new_message()
        m["x"] = 5
        data, result = cpu.serialize(m)
        assert data == m.serialize()
        assert result.cycles > cpu.params.call_overhead_ser

    def test_batch_cycles_additive(self, schema):
        cpu = boom_cpu()
        m = schema["M"].new_message()
        m["x"] = 1
        single = cpu.deserialize(schema["M"], m.serialize())[1].cycles
        batch = cpu.deserialize_batch_cycles(schema["M"],
                                             [m.serialize()] * 3)
        assert batch == pytest.approx(3 * single)

    def test_gbits_per_second(self, schema):
        cpu = boom_cpu()
        # 250 bytes in 1000 cycles at 2 GHz = 4 Gbit/s.
        assert cpu.gbits_per_second(250, 1000) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            cpu.gbits_per_second(100, 0)


class TestMicroarchitecturalOrdering:
    """The relationships the paper's host comparison relies on."""

    def test_xeon_clock_higher(self):
        assert XEON_PARAMS.clock_hz > BOOM_PARAMS.clock_hz

    def test_xeon_cheaper_per_event(self):
        for op, arg in ((Op.FIELD_DISPATCH, 1), (Op.VARINT_DECODE, 5),
                        (Op.ALLOC, 1), (Op.TAG_DECODE, 1)):
            assert XEON_PARAMS.event_cycles(op, arg) < \
                BOOM_PARAMS.event_cycles(op, arg)

    def test_xeon_memcpy_bandwidth_higher(self):
        assert XEON_PARAMS.memcpy_bytes_per_cycle > \
            BOOM_PARAMS.memcpy_bytes_per_cycle
        assert XEON_PARAMS.memcpy_cold_bytes_per_cycle > \
            BOOM_PARAMS.memcpy_cold_bytes_per_cycle

    def test_xeon_faster_end_to_end(self, schema):
        m = schema["M"].new_message()
        m["x"] = 123
        m["s"] = "payload data here"
        m.mutable("inner")["a"] = 1
        data = m.serialize()
        boom = boom_cpu()
        xeon = xeon_cpu()
        boom_cycles = boom.deserialize(schema["M"], data)[1].cycles
        xeon_cycles = xeon.deserialize(schema["M"], data)[1].cycles
        boom_gbps = boom.gbits_per_second(len(data), boom_cycles)
        xeon_gbps = xeon.gbits_per_second(len(data), xeon_cycles)
        assert xeon_gbps > boom_gbps
