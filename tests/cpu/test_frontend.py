"""Tests for the Section 7 frontend-pressure model."""

import pytest

from repro.cpu.boom import BOOM_PARAMS
from repro.cpu.frontend import (
    analyze,
    cold_call_penalty_cycles,
    generated_code_lines,
)
from repro.cpu.xeon import XEON_PARAMS
from repro.proto import parse_schema


@pytest.fixture()
def wide_schema():
    fields = "\n".join(f"optional int32 f{i} = {i};"
                       for i in range(1, 41))
    return parse_schema(f"message Wide {{ {fields} }}"
                        "message Narrow { optional int32 a = 1; }")


class TestCodeFootprint:
    def test_grows_with_field_count(self, wide_schema):
        assert generated_code_lines(wide_schema["Wide"]) > \
            generated_code_lines(wide_schema["Narrow"])

    def test_counts_reachable_subtypes_once(self):
        schema = parse_schema("""
            message Leaf { optional int32 a = 1; }
            message Root {
              optional Leaf x = 1;
              optional Leaf y = 2;
            }
        """)
        root_lines = generated_code_lines(schema["Root"])
        leaf_lines = generated_code_lines(schema["Leaf"])
        # Leaf's code is shared, not duplicated per reference.
        assert root_lines < 2 * leaf_lines + 10

    def test_recursive_types_terminate(self):
        schema = parse_schema(
            "message Node { optional Node next = 1; }")
        assert generated_code_lines(schema["Node"]) > 0


class TestPenalty:
    def test_zero_when_warm(self, wide_schema):
        assert cold_call_penalty_cycles(BOOM_PARAMS, wide_schema["Wide"],
                                        miss_fraction=0.0) == 0.0

    def test_scales_with_miss_fraction(self, wide_schema):
        full = cold_call_penalty_cycles(BOOM_PARAMS, wide_schema["Wide"],
                                        1.0)
        half = cold_call_penalty_cycles(BOOM_PARAMS, wide_schema["Wide"],
                                        0.5)
        assert half == pytest.approx(full / 2)

    def test_invalid_fraction_rejected(self, wide_schema):
        with pytest.raises(ValueError):
            cold_call_penalty_cycles(BOOM_PARAMS, wide_schema["Wide"], 1.5)

    def test_boom_pays_more_than_xeon(self, wide_schema):
        assert cold_call_penalty_cycles(
            BOOM_PARAMS, wide_schema["Wide"]) > cold_call_penalty_cycles(
            XEON_PARAMS, wide_schema["Wide"])


class TestReport:
    def test_penalty_can_rival_warm_work(self, wide_schema):
        # The paper's claim: frontend pressure can cost as many cycles
        # as the protobuf work itself.  A wide, cheap message shows it.
        report = analyze(BOOM_PARAMS, wide_schema["Wide"],
                         warm_cycles=800.0)
        assert report.penalty_ratio > 1.0

    def test_cold_cycles_sum(self, wide_schema):
        report = analyze(BOOM_PARAMS, wide_schema["Narrow"],
                         warm_cycles=100.0, miss_fraction=0.5)
        assert report.cold_cycles == pytest.approx(
            100.0 + report.cold_penalty)
