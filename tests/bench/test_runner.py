"""Tests for the three-system runner."""

import pytest

from repro.bench.microbench import build_microbench
from repro.bench.runner import (
    SYSTEMS,
    run_deserialization,
    run_serialization,
)


@pytest.fixture(scope="module")
def deser_result():
    return run_deserialization(build_microbench("varint-4", batch=4))


@pytest.fixture(scope="module")
def ser_result():
    return run_serialization(build_microbench("varint-4", batch=4))


class TestRunner:
    def test_all_three_systems_present(self, deser_result):
        assert set(deser_result.results) == set(SYSTEMS)

    def test_wire_bytes_consistent_across_systems(self, deser_result):
        wire_bytes = {r.wire_bytes for r in deser_result.results.values()}
        assert len(wire_bytes) == 1

    def test_throughputs_positive(self, deser_result, ser_result):
        for result in (deser_result, ser_result):
            for system in SYSTEMS:
                assert result.gbps(system) > 0

    def test_speedup_helper(self, deser_result):
        assert deser_result.speedup("riscv-boom-accel") == pytest.approx(
            deser_result.gbps("riscv-boom-accel")
            / deser_result.gbps("riscv-boom"))

    def test_verification_catches_nothing_on_good_run(self):
        # verify=True round-trips every message through the accelerator.
        run_deserialization(build_microbench("string", batch=2),
                            verify=True)
        run_serialization(build_microbench("string", batch=2), verify=True)

    def test_operation_labels(self, deser_result, ser_result):
        assert deser_result.operation == "deserialize"
        assert ser_result.operation == "serialize"
