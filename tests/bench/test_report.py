"""Tests for result formatting and geomean summaries."""

import pytest

from repro.bench.report import format_results_table, geomean, speedup_summary
from repro.bench.runner import BenchmarkResult, SystemResult


def _result(name, boom, xeon, accel):
    result = BenchmarkResult(name, "deserialize")
    for system, gbps in (("riscv-boom", boom), ("Xeon", xeon),
                         ("riscv-boom-accel", accel)):
        result.results[system] = SystemResult(system, gbps, 1000.0, 100)
    return result


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestSpeedupSummary:
    def test_geomean_of_ratios(self):
        results = [_result("a", 1.0, 2.0, 8.0), _result("b", 2.0, 4.0, 4.0)]
        summary = speedup_summary(results)
        assert summary["vs riscv-boom"] == pytest.approx(4.0)
        assert summary["vs Xeon"] == pytest.approx(2.0)


class TestTable:
    def test_format_contains_rows_and_geomean(self):
        table = format_results_table(
            [_result("bench-a", 1.0, 2.0, 4.0)], title="Title")
        assert "Title" in table
        assert "bench-a" in table
        assert "geomean" in table
        assert "riscv-boom-accel" in table
