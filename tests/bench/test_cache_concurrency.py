"""Disk-cache behaviour under concurrent fleet runs (ISSUE 10).

Two properties:

* **Parallelism-independence** -- ``jobs`` is not cache-key material
  (results must not depend on how many workers computed them), so a
  jobs=2 run and a serial run publish byte-identical cache files under
  identical names.
* **Atomic publish without races** -- many writers hammering the same
  key (threads of one process, where a pid-suffixed scratch file would
  collide) never corrupt the published entry, never crash, and leave no
  scratch files behind; readers racing the writers only ever observe a
  complete entry or a miss.
"""

import json
import threading

from repro.bench.harness import (
    WorkloadSpec,
    cache_key,
    load_cached,
    run_many,
    run_spec,
    store_cached,
)

_SPECS = [
    WorkloadSpec("micro", "varint-0", "deserialize", 2),
    WorkloadSpec("micro", "varint-0", "serialize", 2),
    WorkloadSpec("micro", "string", "deserialize", 2),
]


def _cache_files(directory):
    return sorted((p.name, p.read_bytes())
                  for p in directory.iterdir() if p.suffix == ".json")


def test_jobs_not_in_cache_key():
    # The key function has no jobs input at all -- by construction the
    # fingerprint cannot depend on parallelism.
    spec = _SPECS[0]
    workload = spec.build()
    assert "jobs" not in cache_key.__code__.co_varnames
    assert (cache_key(spec, workload) == cache_key(spec, workload))


def test_serial_and_parallel_runs_publish_identical_cache(tmp_path):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    serial = run_many(_SPECS, jobs=1, cache_dir=serial_dir)
    parallel = run_many(_SPECS, jobs=2, cache_dir=parallel_dir)
    assert serial == parallel
    serial_files = _cache_files(serial_dir)
    assert serial_files  # the run actually published entries
    assert _cache_files(parallel_dir) == serial_files


def test_two_writer_publish_race_is_atomic(tmp_path):
    spec = _SPECS[0]
    result = run_spec(spec, disk_cache=False)
    key = cache_key(spec, spec.build())
    rounds = 50
    errors = []
    barrier = threading.Barrier(3)

    def writer():
        try:
            barrier.wait()
            for _ in range(rounds):
                store_cached(key, result, cache_dir=tmp_path)
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    def reader():
        try:
            barrier.wait()
            for _ in range(rounds * 2):
                cached = load_cached(key, cache_dir=tmp_path)
                # A racing reader sees a miss (before first publish) or
                # a complete entry -- never a torn file.
                if cached is not None:
                    assert cached == result
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=writer),
               threading.Thread(target=writer),
               threading.Thread(target=reader)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    # The published entry parses and round-trips; no scratch remains.
    assert load_cached(key, cache_dir=tmp_path) == result
    json.loads((tmp_path / f"{key}.json").read_text(encoding="utf-8"))
    leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".json"]
    assert leftovers == []
