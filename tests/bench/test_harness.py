"""Differential tests: every fast path reproduces the serial figures.

The zero-copy wire layer, the cycle/batch memoisation caches, the
persistent disk cache, and the process-pool fan-out must all be
invisible in the numbers: cycles and Gbit/s identical to the last ULP
against a serial run with every cache disabled.
"""

import math

import pytest

from repro.accel.adt import set_adt_caches_enabled
from repro.accel.driver import (
    DESER_BATCH_CACHE,
    SER_BATCH_CACHE,
    set_batch_cache_enabled,
)
from repro.bench.harness import (
    WorkloadSpec,
    cache_key,
    load_cached,
    run_many,
    run_spec,
    store_cached,
)
from repro.bench.runner import SYSTEMS
from repro.cpu.model import (
    DESER_CYCLE_CACHE,
    SER_CYCLE_CACHE,
    set_cycle_cache_enabled,
)


@pytest.fixture
def fresh_caches():
    """Clear every in-process memo cache; restore enablement after."""
    for cache in (DESER_CYCLE_CACHE, SER_CYCLE_CACHE,
                  DESER_BATCH_CACHE, SER_BATCH_CACHE):
        cache.clear()
    yield
    set_cycle_cache_enabled(True)
    set_batch_cache_enabled(True)
    for cache in (DESER_CYCLE_CACHE, SER_CYCLE_CACHE,
                  DESER_BATCH_CACHE, SER_BATCH_CACHE):
        cache.clear()


def _run_uncached(spec):
    set_cycle_cache_enabled(False)
    set_batch_cache_enabled(False)
    set_adt_caches_enabled(False)
    try:
        return run_spec(spec, disk_cache=False)
    finally:
        set_cycle_cache_enabled(True)
        set_batch_cache_enabled(True)
        set_adt_caches_enabled(True)


def assert_identical(reference, observed):
    assert observed.workload == reference.workload
    assert observed.operation == reference.operation
    for system in SYSTEMS:
        want, got = reference.results[system], observed.results[system]
        assert got.cycles == want.cycles, system
        assert got.gbits_per_second == want.gbits_per_second, system
        assert got.wire_bytes == want.wire_bytes, system
        assert math.ulp(got.gbits_per_second) > 0  # sanity: finite


@pytest.mark.parametrize("spec", [
    WorkloadSpec("micro", "varint-5", "deserialize", 8),
    WorkloadSpec("micro", "string_15", "serialize", 8),
    WorkloadSpec("hyper", "bench0", "deserialize", 2),
])
def test_memo_caches_reproduce_uncached_run(fresh_caches, spec):
    reference = _run_uncached(spec)
    cold = run_spec(spec, disk_cache=False)   # populates memo caches
    warm = run_spec(spec, disk_cache=False)   # served from memo caches
    assert_identical(reference, cold)
    assert_identical(reference, warm)
    # The warm run must actually have hit a cache, or this test proves
    # nothing about the replay path.
    hits = (DESER_CYCLE_CACHE.hits + SER_CYCLE_CACHE.hits
            + DESER_BATCH_CACHE.hits + SER_BATCH_CACHE.hits)
    assert hits > 0


def test_disk_cache_roundtrip_is_exact(fresh_caches, tmp_path):
    spec = WorkloadSpec("micro", "varint-10", "deserialize", 8)
    reference = _run_uncached(spec)
    key = cache_key(spec, spec.build())
    store_cached(key, reference, cache_dir=tmp_path)
    replayed = load_cached(key, cache_dir=tmp_path)
    assert replayed is not None
    assert_identical(reference, replayed)


def test_disk_cached_run_matches_serial_uncached(fresh_caches, tmp_path):
    spec = WorkloadSpec("micro", "double", "serialize", 8)
    reference = _run_uncached(spec)
    cold = run_spec(spec, disk_cache=True, cache_dir=tmp_path)
    from_disk = run_spec(spec, disk_cache=True, cache_dir=tmp_path)
    assert_identical(reference, cold)
    assert_identical(reference, from_disk)
    assert load_cached(cache_key(spec, spec.build()),
                       cache_dir=tmp_path) is not None


def test_parallel_cached_matches_serial_uncached(fresh_caches, tmp_path):
    """The acceptance-criteria differential: one Fig-11 workload run
    serial-uncached vs parallel-with-caches, bit-for-bit equal."""
    specs = [WorkloadSpec("micro", "varint-5", "deserialize", 8),
             WorkloadSpec("micro", "varint-5", "serialize", 8)]
    references = [_run_uncached(spec) for spec in specs]
    observed = run_many(specs, jobs=2, disk_cache=True,
                        cache_dir=tmp_path)
    for reference, result in zip(references, observed):
        assert_identical(reference, result)
    # And again, now served from the persistent cache.
    replayed = run_many(specs, jobs=2, disk_cache=True,
                        cache_dir=tmp_path)
    for reference, result in zip(references, replayed):
        assert_identical(reference, result)


def test_cache_key_sensitivity(fresh_caches):
    base = WorkloadSpec("micro", "varint-5", "deserialize", 8)
    key = cache_key(base, base.build())
    for other in (
        WorkloadSpec("micro", "varint-5", "serialize", 8),
        WorkloadSpec("micro", "varint-5", "deserialize", 9),
        WorkloadSpec("micro", "varint-10", "deserialize", 8),
    ):
        assert cache_key(other, other.build()) != key
