"""Smoke tests for the figure-regeneration entry points and CLI."""

import pytest

from repro.bench.figures import ALL_FIGURES, figure2, figure7, section53
from repro.bench.report import ascii_bar_chart
from repro.bench.runner import BenchmarkResult, SystemResult


class TestFastFigures:
    def test_figure2_text(self):
        table = figure2()
        assert "3.45%" in table
        assert "deserialize" in table

    def test_figure7_text(self):
        table = figure7(samples=500)
        assert "1/64" in table

    def test_section53_text(self):
        table = section53()
        assert "1.95" in table
        assert "mm^2" in table

    def test_registry_complete(self):
        expected = {"fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                    "fig11a", "fig11b", "fig11c", "fig11d", "sec5.1.3",
                    "fig12", "fig13", "sec5.3", "faults", "serving",
                    "fleet"}
        assert set(ALL_FIGURES) == expected


class TestCli:
    def test_no_args_lists_figures(self, capsys):
        from repro.bench.__main__ import main

        assert main([]) == 1
        out = capsys.readouterr().out
        assert "fig11a" in out

    def test_unknown_figure_rejected(self, capsys):
        from repro.bench.__main__ import main

        assert main(["nope"]) == 1

    def test_single_fast_figure(self, capsys):
        from repro.bench.__main__ import main

        assert main(["sec5.3"]) == 0
        out = capsys.readouterr().out
        assert "deserializer" in out


class TestAsciiChart:
    def _result(self, name, boom, xeon, accel):
        result = BenchmarkResult(name, "deserialize")
        for system, gbps in (("riscv-boom", boom), ("Xeon", xeon),
                             ("riscv-boom-accel", accel)):
            result.results[system] = SystemResult(system, gbps, 1.0, 1)
        return result

    def test_chart_shape(self):
        chart = ascii_bar_chart([self._result("w", 1.0, 2.0, 4.0)],
                                width=8)
        lines = chart.splitlines()
        assert lines[0].startswith("legend:")
        assert "w" in lines[1]
        assert lines[2].strip().startswith("##")
        assert lines[4].strip().startswith("*" * 8)

    def test_minimum_one_glyph(self):
        chart = ascii_bar_chart(
            [self._result("w", 0.001, 50.0, 100.0)], width=10)
        assert "# 0.00" in chart

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart([self._result("w", 0.0, 0.0, 0.0)])
