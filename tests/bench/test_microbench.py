"""Tests for the Section 5.1 microbenchmark definitions."""

import pytest

from repro.bench.microbench import (
    alloc_bench_names,
    build_microbench,
    nonalloc_bench_names,
    varint_value,
)
from repro.proto.varint import varint_length


class TestVarintValue:
    @pytest.mark.parametrize("n", range(11))
    def test_encodes_to_requested_size(self, n):
        assert varint_length(varint_value(n)) == max(1, n)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            varint_value(11)


class TestBenchNames:
    def test_nonalloc_set_matches_figure_11a(self):
        names = nonalloc_bench_names()
        assert names[0] == "varint-0" and names[10] == "varint-10"
        assert names[-2:] == ["double", "float"]
        assert len(names) == 13

    def test_alloc_set_matches_figure_11c(self):
        names = alloc_bench_names()
        assert "varint-5-R" in names
        assert "string_very_long" in names
        assert "bool-SUB" in names
        assert len(names) == 20


class TestWorkloads:
    def test_varint_benches_have_five_fields(self):
        workload = build_microbench("varint-5", batch=2)
        assert len(workload.descriptor.fields) == 5
        for message in workload.messages:
            assert len(message.present_field_numbers()) == 5

    def test_varint_wire_size(self):
        workload = build_microbench("varint-5", batch=1)
        # 5 fields x (1-byte key + 5-byte varint) = 30 bytes.
        assert len(workload.messages[0].serialize()) == 30

    def test_string_sizes(self):
        for name, size in (("string", 8), ("string_15", 15),
                           ("string_long", 2048),
                           ("string_very_long", 32768)):
            workload = build_microbench(name, batch=1)
            assert len(workload.messages[0]["f1"]) == size

    def test_repeated_benches(self):
        workload = build_microbench("varint-3-R", batch=1)
        for fd in workload.descriptor.fields:
            assert fd.is_repeated
        assert len(workload.messages[0]["f1"]) == 8

    def test_sub_benches_have_nested_message(self):
        workload = build_microbench("double-SUB", batch=1)
        message = workload.messages[0]
        assert message.has("sub")
        assert message["sub"]["v"] != 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_microbench("varint-99")
        with pytest.raises(ValueError):
            build_microbench("nonsense")

    def test_batch_size_respected(self):
        assert len(build_microbench("float", batch=7).messages) == 7

    def test_middle_varint_sits_at_fleet_median(self):
        # Section 5.1: five fields per message were chosen so the
        # middle-sized non-repeated varint benchmark falls roughly at the
        # median of the Figure 3 message-size distribution (~56% of
        # messages are <= 32 B).
        from repro.fleet.distributions import (
            cumulative_message_size_share,
        )

        workload = build_microbench("varint-5", batch=1)
        size = len(workload.messages[0].serialize())
        assert 24 <= size <= 40
        # The message lands in the 17-32 B bucket, which straddles the
        # 50th percentile (CDF is 38% entering it, 56% leaving it).
        assert cumulative_message_size_share(size - 14) < 0.5
        assert cumulative_message_size_share(size + 2) > 0.5
