"""Tests for C++ object images: layout, SSO strings, round trips."""

import pytest

from repro.memory.layout import (
    LayoutCache,
    SSO_CAPACITY,
    STRING_OBJECT_BYTES,
    read_message_image,
    read_string_object,
    write_message_image,
)
from repro.memory.memspace import SimMemory
from repro.proto import parse_schema


@pytest.fixture()
def schema():
    return parse_schema("""
        message Inner { optional int32 a = 1; }
        message M {
          optional int64 x = 1;
          optional bool b = 2;
          optional int32 y = 3;
          optional string s = 4;
          optional Inner inner = 5;
          repeated double ds = 6;
          optional int32 sparse = 40;
        }
    """)


class TestLayoutComputation:
    def test_vptr_at_offset_zero_and_hasbits_after(self, schema):
        cache = LayoutCache()
        layout = cache.layout(schema["M"])
        assert layout.hasbits_offset == 8
        assert layout.vptr != 0

    def test_hasbits_sized_by_span(self, schema):
        cache = LayoutCache()
        layout = cache.layout(schema["M"])
        # span 1..40 = 40 bits -> one 64-bit word
        assert layout.hasbits_words == 1

    def test_wide_span_multiple_words(self):
        schema = parse_schema("""
            message W { optional int32 a = 1; optional int32 b = 200; }
        """)
        layout = LayoutCache().layout(schema["W"])
        assert layout.hasbits_words == 4  # span 200 -> ceil(200/64)

    def test_field_slots_aligned(self, schema):
        layout = LayoutCache().layout(schema["M"])
        assert layout.field_offsets[1] % 8 == 0   # int64
        assert layout.field_offsets[4] % 8 == 0   # string pointer
        assert layout.field_offsets[3] % 4 == 0   # int32

    def test_object_size_covers_all_slots(self, schema):
        layout = LayoutCache().layout(schema["M"])
        assert layout.object_size >= max(layout.field_offsets.values()) + 4
        assert layout.object_size % 8 == 0

    def test_hasbit_position_relative_to_min(self):
        schema = parse_schema("""
            message S { optional int32 a = 100; optional int32 b = 103; }
        """)
        layout = LayoutCache().layout(schema["S"])
        assert layout.hasbit_position(100) == (0, 0)
        assert layout.hasbit_position(103) == (0, 3)

    def test_layouts_memoised(self, schema):
        cache = LayoutCache()
        assert cache.layout(schema["M"]) is cache.layout(schema["M"])

    def test_distinct_vptrs_per_type(self, schema):
        cache = LayoutCache()
        assert cache.vptr_for(schema["M"]) != cache.vptr_for(schema["Inner"])
        assert cache.type_for_vptr(cache.vptr_for(schema["M"])) is \
            schema["M"]


class TestStringObjects:
    def test_sso_string(self, schema):
        memory = SimMemory()
        cache = LayoutCache()
        m = schema["M"].new_message()
        m["s"] = "short"
        addr = write_message_image(memory, memory.allocate, m, cache)
        layout = cache.layout(schema["M"])
        string_addr = memory.read_u64(addr + layout.field_offsets[4])
        view = read_string_object(memory, string_addr)
        assert view.is_sso
        assert view.payload == b"short"
        assert view.data_ptr == string_addr + 16

    def test_heap_string(self, schema):
        memory = SimMemory()
        cache = LayoutCache()
        m = schema["M"].new_message()
        m["s"] = "x" * (SSO_CAPACITY + 1)
        addr = write_message_image(memory, memory.allocate, m, cache)
        layout = cache.layout(schema["M"])
        view = read_string_object(
            memory, memory.read_u64(addr + layout.field_offsets[4]))
        assert not view.is_sso
        assert view.size == SSO_CAPACITY + 1

    def test_sso_boundary(self, schema):
        memory = SimMemory()
        cache = LayoutCache()
        m = schema["M"].new_message()
        m["s"] = "y" * SSO_CAPACITY
        addr = write_message_image(memory, memory.allocate, m, cache)
        layout = cache.layout(schema["M"])
        view = read_string_object(
            memory, memory.read_u64(addr + layout.field_offsets[4]))
        assert view.is_sso

    def test_string_object_is_32_bytes(self):
        assert STRING_OBJECT_BYTES == 32


class TestImageRoundTrip:
    def test_full_round_trip(self, kitchen_schema, kitchen_message):
        memory = SimMemory()
        cache = LayoutCache()
        addr = write_message_image(memory, memory.allocate,
                                   kitchen_message, cache)
        back = read_message_image(memory, kitchen_schema["Outer"], addr,
                                  cache)
        assert back == kitchen_message

    def test_hasbits_reflect_presence(self, schema):
        memory = SimMemory()
        cache = LayoutCache()
        m = schema["M"].new_message()
        m["b"] = True
        m["sparse"] = 9
        addr = write_message_image(memory, memory.allocate, m, cache)
        layout = cache.layout(schema["M"])
        word = memory.read_u64(addr + layout.hasbits_offset)
        assert word >> (2 - 1) & 1   # field 2, min=1
        assert word >> (40 - 1) & 1
        assert not word >> (1 - 1) & 1

    def test_empty_message_round_trip(self, schema):
        memory = SimMemory()
        cache = LayoutCache()
        m = schema["M"].new_message()
        addr = write_message_image(memory, memory.allocate, m, cache)
        assert read_message_image(memory, schema["M"], addr, cache) == m

    def test_repeated_submessages(self, schema):
        memory = SimMemory()
        cache = LayoutCache()
        m = schema["M"].new_message()
        m["ds"] = [1.0, 2.5, -3.25]
        inner = m.mutable("inner")
        inner["a"] = -1
        addr = write_message_image(memory, memory.allocate, m, cache)
        back = read_message_image(memory, schema["M"], addr, cache)
        assert list(back["ds"]) == [1.0, 2.5, -3.25]
        assert back["inner"]["a"] == -1
