"""Tests for the memory timing model."""

import pytest

from repro.memory.timing import MemoryTimingModel


class TestBeats:
    def test_beat_counting(self):
        timing = MemoryTimingModel()
        assert timing.beats(0) == 0
        assert timing.beats(1) == 1
        assert timing.beats(16) == 1
        assert timing.beats(17) == 2
        assert timing.beats(256) == 16


class TestLatencies:
    def test_average_latency_mixes_levels(self):
        timing = MemoryTimingModel(l2_fraction=1.0, llc_fraction=0.0)
        assert timing.average_latency == timing.l2_hit_cycles
        dram_only = MemoryTimingModel(l2_fraction=0.0, llc_fraction=0.0)
        assert dram_only.average_latency == dram_only.dram_cycles

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            MemoryTimingModel(l2_fraction=0.9, llc_fraction=0.2)

    def test_stream_amortises_latency(self):
        timing = MemoryTimingModel()
        small = timing.stream_cycles(16)
        large = timing.stream_cycles(16 * 1000)
        # Streaming pays one startup latency regardless of length.
        assert large - small == pytest.approx(999)

    def test_dependent_access_pays_full_latency(self):
        timing = MemoryTimingModel()
        assert timing.dependent_access_cycles(8) == \
            pytest.approx(timing.average_latency + 1)

    def test_independent_accesses_overlap(self):
        timing = MemoryTimingModel(max_outstanding=8)
        serial = 8 * timing.dependent_access_cycles(8)
        overlapped = timing.independent_access_cycles(8, count=8)
        assert overlapped < serial

    def test_zero_bytes_free(self):
        timing = MemoryTimingModel()
        assert timing.stream_cycles(0) == 0
        assert timing.dependent_access_cycles(0) == 0
        assert timing.independent_access_cycles(0, 5) == 0
