"""Tests for the flat simulated memory."""

import pytest

from repro.memory.memspace import BASE_ADDRESS, SimMemory


class TestAllocation:
    def test_first_allocation_at_base(self):
        memory = SimMemory()
        assert memory.allocate(16) == BASE_ADDRESS

    def test_alignment(self):
        memory = SimMemory()
        memory.allocate(3)
        addr = memory.allocate(8, alignment=64)
        assert addr % 64 == 0

    def test_exhaustion(self):
        memory = SimMemory(size=4096)
        with pytest.raises(MemoryError):
            memory.allocate(1 << 20)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimMemory().allocate(-1)


class TestAccess:
    def test_write_read(self):
        memory = SimMemory()
        addr = memory.allocate(16)
        memory.write(addr, b"hello")
        assert memory.read(addr, 5) == b"hello"

    def test_typed_helpers(self):
        memory = SimMemory()
        addr = memory.allocate(32)
        memory.write_u64(addr, 2**63 + 5)
        assert memory.read_u64(addr) == 2**63 + 5
        memory.write_u32(addr + 8, 0xDEADBEEF)
        assert memory.read_u32(addr + 8) == 0xDEADBEEF
        memory.write_u8(addr + 12, 0x7F)
        assert memory.read_u8(addr + 12) == 0x7F

    def test_signed_read(self):
        memory = SimMemory()
        addr = memory.allocate(8)
        memory.write_u64(addr, (1 << 64) - 1)
        assert memory.read_i64(addr) == -1

    def test_fill(self):
        memory = SimMemory()
        addr = memory.allocate(8)
        memory.fill(addr, 8, 0xAB)
        assert memory.read(addr, 8) == b"\xab" * 8

    def test_out_of_bounds_rejected(self):
        memory = SimMemory(size=4096)
        with pytest.raises(IndexError):
            memory.read(0, 1)  # below BASE_ADDRESS (null page)
        with pytest.raises(IndexError):
            memory.read(BASE_ADDRESS + 4096, 1)

    def test_stats(self):
        memory = SimMemory()
        addr = memory.allocate(16)
        memory.write(addr, b"abcd")
        memory.read(addr, 4)
        assert memory.stats.writes == 1
        assert memory.stats.written_bytes == 4
        assert memory.stats.reads == 1
        assert memory.stats.read_bytes == 4
