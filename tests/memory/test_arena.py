"""Tests for accelerator arenas (Section 4.3)."""

import pytest

from repro.memory.arena import (
    AcceleratorArena,
    ArenaExhausted,
    SerializerArena,
)
from repro.memory.memspace import SimMemory


class TestAcceleratorArena:
    def test_bump_allocation(self):
        arena = AcceleratorArena(SimMemory(), size=1024)
        a = arena.allocate(16)
        b = arena.allocate(16)
        assert b == a + 16
        assert arena.allocations == 2
        assert arena.bytes_used == 32

    def test_alignment(self):
        arena = AcceleratorArena(SimMemory(), size=1024)
        arena.allocate(3)
        addr = arena.allocate(8, alignment=16)
        assert addr % 16 == 0

    def test_exhaustion_raises(self):
        arena = AcceleratorArena(SimMemory(), size=64)
        with pytest.raises(ArenaExhausted):
            arena.allocate(128)

    def test_reset(self):
        memory = SimMemory()
        arena = AcceleratorArena(memory, size=1024)
        first = arena.allocate(64)
        arena.reset()
        assert arena.bytes_used == 0
        assert arena.allocate(64) == first

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorArena(SimMemory(), size=64).allocate(-1)


class TestSerializerArena:
    def test_pushes_grow_downward(self):
        arena = SerializerArena(SimMemory(), data_size=4096)
        first = arena.push_bytes(b"abc")
        second = arena.push_bytes(b"de")
        assert second == first - 2
        assert arena.memory.read(second, 5) == b"deabc"

    def test_finish_message_records_pointer(self):
        arena = SerializerArena(SimMemory(), data_size=4096)
        arena.push_bytes(b"hello")
        addr, length = arena.finish_message()
        assert length == 5
        assert arena.output(0) == b"hello"
        # The pointer table in memory holds (addr, length).
        assert arena.memory.read_u64(arena.table_base) == addr
        assert arena.memory.read_u64(arena.table_base + 8) == 5

    def test_multiple_outputs(self):
        arena = SerializerArena(SimMemory(), data_size=4096)
        arena.push_bytes(b"first")
        arena.finish_message()
        arena.push_bytes(b"second!")
        arena.finish_message()
        assert arena.output(0) == b"first"
        assert arena.output(1) == b"second!"
        assert arena.output_count == 2

    def test_exhaustion(self):
        arena = SerializerArena(SimMemory(), data_size=64)
        with pytest.raises(ArenaExhausted):
            arena.push_bytes(b"x" * 128)

    def test_reset(self):
        arena = SerializerArena(SimMemory(), data_size=4096)
        arena.push_bytes(b"data")
        arena.finish_message()
        arena.reset()
        assert arena.output_count == 0
        assert arena.cursor == arena.data_base + arena.data_size
