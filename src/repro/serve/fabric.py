"""The sharded multi-tenant serving fabric, with online resharding.

One :class:`ServingFabric` is the fleet-shaped front end the paper's
Section 3 numbers imply: N independent shards -- each a full
:class:`~repro.serve.server.ResilientServer` with its own admission
queue, circuit breakers, watchdogs, and tile pool -- behind a
deterministic router.  Per call:

1. **Tenant budget** (:mod:`repro.serve.tenants`) -- the tenant's
   fabric-wide in-flight budget is checked first; an over-budget
   arrival is shed with :class:`~repro.serve.errors.TenantOverloaded`
   for zero cycles and zero shard-queue occupancy, so one tenant's
   overload sheds that tenant, not the fleet.
2. **Routing** (:mod:`repro.serve.router`) -- consistent hash of the
   tenant id picks the primary shard; if that shard is unroutable
   (quarantined with no probe-ready breaker) the ranked fallback walks
   the remaining shards by effective health tier first, load second.
3. **Shard serve** -- the shard's own PR 3 machinery (admission,
   deadline gating, breakers, failover, watchdog, fit-gated host
   fallback) runs unchanged, so the per-call latency bound
   ``deadline + watchdog_budget`` survives the extra routing layer
   (``tests/serve/test_fabric_watchdog.py``).

Shard count must never change semantics or cycle charging: a fixed
replay through 1, 2, and 4 shards is bit-identical -- per-message
responses and accelerator cycles -- to a single
:class:`~repro.serve.server.ResilientServer`
(``tests/serve/test_fleet_replay.py``).

**Online resharding** (ISSUE 8) makes the router's property-tested
removal stability a *runtime* property.  Every shard carries a
lifecycle state::

    JOINING --(warmup_cycles)--> ACTIVE --drain()--> DRAINING
                                                        |
                              (window elapsed & pending == 0)
                                                        v
                                                     REMOVED

The :class:`ReshardController` drives the transitions on the simulated
clock, entirely from :meth:`ReshardController.tick` at each arrival:

* **Evict** -- :meth:`ReshardController.drain` swaps the ring via
  :meth:`~repro.serve.router.ConsistentHashRouter.without` (bumping
  :attr:`ServingFabric.ring_epoch`) and arms the shard's drain barrier
  (refuse-new, accept-pending).  In-flight work completes on the
  draining shard; new arrivals whose *old-ring* home was the draining
  shard are served by their new owner and flagged ``migrated``, so the
  per-tenant identity ``shed + failed + succeeded + migrated ==
  offered`` closes with nothing silently dropped.  A shard that stays
  fully quarantined for ``ReshardPolicy.auto_evict_after_cycles`` is
  evicted automatically.
* **Grow** -- :meth:`ReshardController.add_shard` wires every tenant's
  schema and handlers onto a fresh shard, adds it to the ring via
  :meth:`~repro.serve.router.ConsistentHashRouter.with_shard`
  (epoch bump), and admits it as JOINING under a ramped in-flight
  budget: overflow beyond the warm-up budget deflects to the ranked
  fallback, so only remapped tenants' tails move while the joiner
  warms (``tests/fleet/test_reshard_lifecycle.py``).

Every transition is logged as a :class:`ReshardEvent` with its
simulated-clock timestamp, so tests and the bench can assert the
degradation envelope of a resize exactly (docs/SERVING.md, resharding
section).
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field

from repro.proto.descriptor import ServiceDescriptor
from repro.serve.breaker import BreakerState
from repro.serve.errors import FabricConfigError, TenantOverloaded
from repro.serve.router import (
    ConsistentHashRouter,
    RouterPolicy,
    ShardView,
    ranked_fallbacks,
)
from repro.serve.server import (
    CallOutcome,
    ResilientServer,
    ServePolicy,
    ServeStats,
)
from repro.serve.tenants import TenantPolicy, TenantRegistry


class ShardState(enum.Enum):
    """One shard's lifecycle position (see the module docstring)."""

    JOINING = "joining"
    ACTIVE = "active"
    DRAINING = "draining"
    REMOVED = "removed"


#: States in which a shard owns ring points and may serve new calls.
ROUTABLE_STATES = (ShardState.ACTIVE, ShardState.JOINING)


@dataclass(frozen=True)
class ReshardPolicy:
    """Every knob of the online-resharding controller."""

    #: Minimum cycles a shard spends DRAINING before removal; the
    #: barrier also waits for the shard's pending work to hit zero.
    drain_cycles: float = 50_000.0
    #: Cycles a JOINING shard ramps before it is promoted to ACTIVE.
    warmup_cycles: float = 20_000.0
    #: In-flight calls admitted on the joiner at the moment it joins.
    warmup_initial_inflight: int = 1
    #: In-flight budget the ramp reaches at the end of the warm-up.
    warmup_target_inflight: int = 32
    #: Auto-evict a shard that has been fully quarantined (every tile
    #: breaker OPEN, none probe-ready) this long.  ``None`` disables
    #: auto-eviction (the PR 6-compatible default).
    auto_evict_after_cycles: float | None = None

    def __post_init__(self) -> None:
        if self.drain_cycles < 0:
            raise FabricConfigError("drain_cycles", self.drain_cycles,
                                    "must be >= 0")
        if self.warmup_cycles < 0:
            raise FabricConfigError("warmup_cycles", self.warmup_cycles,
                                    "must be >= 0")
        if self.warmup_initial_inflight < 1:
            raise FabricConfigError("warmup_initial_inflight",
                                    self.warmup_initial_inflight,
                                    "must be >= 1")
        if self.warmup_target_inflight < self.warmup_initial_inflight:
            raise FabricConfigError("warmup_target_inflight",
                                    self.warmup_target_inflight,
                                    "must be >= warmup_initial_inflight")
        if (self.auto_evict_after_cycles is not None
                and self.auto_evict_after_cycles < 0):
            raise FabricConfigError("auto_evict_after_cycles",
                                    self.auto_evict_after_cycles,
                                    "must be >= 0 or None")


@dataclass(frozen=True)
class FabricPolicy:
    """Every knob of the fabric, in one bundle."""

    #: Independent shards; each gets ``serve.tiles`` tiles of its own.
    shards: int = 2
    #: Per-shard serving policy (admission, breakers, watchdog, tiles).
    serve: ServePolicy = field(default_factory=ServePolicy)
    router: RouterPolicy = field(default_factory=RouterPolicy)
    #: Budget applied to tenants registered without an explicit one.
    default_budget: TenantPolicy = field(default_factory=TenantPolicy)
    #: Online-resharding knobs (drain window, warm-up ramp, auto-evict).
    reshard: ReshardPolicy = field(default_factory=ReshardPolicy)
    #: Convenience override for the ring's virtual-node count; ``None``
    #: keeps ``router.vnodes``.  Validated here so a misconfigured
    #: fabric fails at construction with a structured error naming the
    #: knob, not deep inside ring construction.
    vnodes: int | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise FabricConfigError("shards", self.shards,
                                    "need at least one shard")
        if self.vnodes is not None:
            if self.vnodes < 1:
                raise FabricConfigError("vnodes", self.vnodes,
                                        "must be >= 1 (each shard needs "
                                        "at least one ring point)")
            object.__setattr__(
                self, "router",
                dataclasses.replace(self.router, vnodes=self.vnodes))


@dataclass(frozen=True)
class ReshardEvent:
    """One structured lifecycle transition, on the simulated clock."""

    at: float
    #: "drain_start" | "shard_removed" | "shard_joined" |
    #: "warmup_complete" | "auto_evict"
    kind: str
    shard: int | None
    #: Ring epoch *after* the transition (epoch bumps on ring swaps).
    epoch: int
    detail: str = ""


class FabricShard:
    """One shard: index + lifecycle state + its resilient server."""

    def __init__(self, index: int, policy: FabricPolicy):
        self.index = index
        self.state = ShardState.ACTIVE
        self.joined_at = 0.0
        serve = policy.serve
        plan = serve.fault_plan
        if plan is not None and plan.enabled():
            # Decorrelate the shards' fault campaigns exactly like the
            # per-tile derivation inside each server.
            serve = dataclasses.replace(
                serve, fault_plan=plan.derive("fabric.shard", str(index)))
        self.server = ResilientServer(policy=serve)
        #: Termination cycles of calls this shard served; an entry
        #: > now means that call is still in flight here (the JOINING
        #: warm-up budget is enforced against this window).
        self._completions: list[float] = []

    def inflight(self, now: float) -> int:
        self._completions = [c for c in self._completions if c > now]
        return len(self._completions)

    def note_completion(self, completed_at: float) -> None:
        self._completions.append(completed_at)

    def view(self, now: float) -> ShardView:
        tiles = self.server.tiles
        return ShardView(
            index=self.index,
            breaker_states=tuple(t.breaker.state for t in tiles),
            load=self.server.load(now),
            probe_ready=tuple(
                t.breaker.state is BreakerState.OPEN
                and now - t.breaker.opened_at
                >= t.breaker.policy.recovery_cycles
                for t in tiles))


@dataclass
class _DrainState:
    """Book-keeping for one in-progress drain."""

    shard: int
    started: float
    #: Earliest removal cycle (the barrier window floor).
    window_ends: float
    #: The pre-swap ring: calls whose old home was the draining shard
    #: are flagged ``migrated`` while the drain is in progress.
    old_router: ConsistentHashRouter


class ReshardController:
    """Drives the shard lifecycle on the simulated clock.

    Entirely arrival-driven: :meth:`tick` runs at the top of every
    ``fabric.call`` and (a) finalizes drains whose window elapsed and
    whose pending work hit zero, (b) promotes JOINING shards whose
    warm-up elapsed, and (c) auto-evicts persistently quarantined
    shards when the policy arms it.  With the default policy and no
    explicit drain/add, every tick is a no-op, so the PR 6 replay
    bit-identity is untouched.
    """

    def __init__(self, fabric: "ServingFabric"):
        self.fabric = fabric
        self.policy = fabric.policy.reshard
        self._drains: dict[int, _DrainState] = {}
        self._quarantined_since: dict[int, float] = {}

    # -- queries -----------------------------------------------------------------

    @property
    def draining_shards(self) -> tuple[int, ...]:
        return tuple(self._drains)

    def old_home(self, tenant: str) -> int | None:
        """The draining shard ``tenant`` is being migrated away from,
        or ``None`` when no in-progress drain owned the tenant."""
        for drain in self._drains.values():
            if drain.old_router.route(tenant) == drain.shard:
                return drain.shard
        return None

    def warm_budget(self, shard: FabricShard, now: float) -> int:
        """The JOINING shard's ramped in-flight admission budget:
        linear from ``warmup_initial_inflight`` to
        ``warmup_target_inflight`` over ``warmup_cycles``."""
        policy = self.policy
        if shard.state is not ShardState.JOINING:
            return policy.warmup_target_inflight
        if policy.warmup_cycles <= 0:
            return policy.warmup_target_inflight
        frac = min(1.0, max(0.0, (now - shard.joined_at)
                            / policy.warmup_cycles))
        span = (policy.warmup_target_inflight
                - policy.warmup_initial_inflight)
        return policy.warmup_initial_inflight + int(frac * span)

    def _routable(self) -> list[FabricShard]:
        return [s for s in self.fabric.shards
                if s.state in ROUTABLE_STATES]

    # -- the clock ---------------------------------------------------------------

    def tick(self, now: float) -> None:
        """Advance the lifecycle to cycle ``now``; see the class doc."""
        fabric = self.fabric
        for sid, drain in list(self._drains.items()):
            shard = fabric.shards[sid]
            if (now >= drain.window_ends
                    and shard.server.pending(now) == 0):
                shard.state = ShardState.REMOVED
                del self._drains[sid]
                fabric._log(now, "shard_removed", sid,
                            f"drained in {now - drain.started:.0f} cycles")
        for shard in fabric.shards:
            if (shard.state is ShardState.JOINING
                    and now - shard.joined_at >= self.policy.warmup_cycles):
                shard.state = ShardState.ACTIVE
                fabric._log(now, "warmup_complete", shard.index)
        if self.policy.auto_evict_after_cycles is None:
            return
        for shard in fabric.shards:
            if shard.state not in ROUTABLE_STATES:
                self._quarantined_since.pop(shard.index, None)
                continue
            view = shard.view(now)
            if view.effective_tier() < 2:
                self._quarantined_since.pop(shard.index, None)
                continue
            since = self._quarantined_since.setdefault(shard.index, now)
            if (now - since >= self.policy.auto_evict_after_cycles
                    and len(self._routable()) >= 2):
                fabric._log(now, "auto_evict", shard.index,
                            f"quarantined since cycle {since:.0f}")
                self.drain(shard.index, now)

    # -- transitions -------------------------------------------------------------

    def drain(self, shard_id: int, now: float) -> None:
        """Evict one shard: swap the ring (``without``), arm the drain
        barrier, and let pending work complete.  Never drops a call:
        new arrivals route (and are accounted) via the new ring, the
        draining shard finishes what it already admitted."""
        fabric = self.fabric
        try:
            shard = fabric.shards[shard_id]
        except IndexError:
            raise ValueError(f"no shard {shard_id}") from None
        if shard.state not in ROUTABLE_STATES:
            raise ValueError(f"cannot drain shard {shard_id} in state "
                             f"{shard.state.value}")
        if len(self._routable()) < 2:
            raise ValueError("cannot drain the last routable shard")
        old_router = fabric.router
        fabric.router = old_router.without(shard_id)
        fabric.ring_epoch += 1
        shard.state = ShardState.DRAINING
        shard.server.begin_drain(now)
        self._drains[shard_id] = _DrainState(
            shard=shard_id, started=now,
            window_ends=now + self.policy.drain_cycles,
            old_router=old_router)
        self._quarantined_since.pop(shard_id, None)
        fabric._log(now, "drain_start", shard_id,
                    f"pending {shard.server.pending(now)}")

    def add_shard(self, now: float) -> int:
        """Grow the fabric by one JOINING shard under load: wire every
        registered tenant (schema + handlers) onto it, add its ring
        points (``with_shard``), and ramp its admission budget over the
        warm-up window.  Returns the new shard's index."""
        fabric = self.fabric
        index = len(fabric.shards)
        shard = FabricShard(index, fabric.policy)
        shard.joined_at = now
        fabric._wire_shard(shard)
        fabric.shards.append(shard)
        fabric.router = fabric.router.with_shard(index)
        fabric.ring_epoch += 1
        if self.policy.warmup_cycles > 0:
            shard.state = ShardState.JOINING
            fabric._log(now, "shard_joined", index,
                        f"warming for {self.policy.warmup_cycles:.0f} "
                        "cycles")
        else:
            fabric._log(now, "shard_joined", index, "no warm-up")
        return index


class ServingFabric:
    """Consistent-hash-routed, budget-isolated serving over N shards,
    resharded online by :class:`ReshardController`."""

    def __init__(self, policy: FabricPolicy | None = None):
        self.policy = policy or FabricPolicy()
        self.shards = [FabricShard(i, self.policy)
                       for i in range(self.policy.shards)]
        self.router = ConsistentHashRouter(
            [s.index for s in self.shards], self.policy.router)
        self.registry = TenantRegistry()
        #: Bumped on every ring swap (shard join or evict); stamped
        #: onto each outcome as ``ring_epoch``.
        self.ring_epoch = 0
        self.controller = ReshardController(self)
        #: Structured lifecycle transitions, in simulated-clock order.
        self.reshard_events: list[ReshardEvent] = []
        #: Calls the fabric shed at the tenant budget, per tenant (also
        #: folded into each tenant's ServeStats as ``shed``).
        self.tenant_sheds: dict[str, int] = {}
        #: (tenant, primary_shard, fallback_shard) for every re-route.
        self.fallback_routes: list[tuple[str, int, int]] = []
        #: Migrated calls per tenant (drain-window re-homes).
        self.migrations: dict[str, int] = {}
        #: Calls deflected off a JOINING shard that was at its ramped
        #: warm-up budget.
        self.warmup_deflections = 0
        self._handlers: dict[str, dict[str, object]] = {}

    def _log(self, at: float, kind: str, shard: int | None,
             detail: str = "") -> None:
        self.reshard_events.append(ReshardEvent(
            at=at, kind=kind, shard=shard, epoch=self.ring_epoch,
            detail=detail))

    # -- wiring -----------------------------------------------------------------

    def add_tenant(self, tenant: str, service: ServiceDescriptor,
                   budget: TenantPolicy | None = None) -> None:
        """Register one tenant fleet-wide: its schema is pushed to every
        shard (any shard may serve it after a fallback re-route)."""
        self.registry.add(tenant, service,
                          budget or self.policy.default_budget)
        self.tenant_sheds[tenant] = 0
        self._handlers[tenant] = {}
        for shard in self.shards:
            shard.server.attach_tenant(tenant, service)

    def register(self, tenant: str, method_name: str, handler) -> None:
        """Attach one method handler for ``tenant`` on every shard."""
        self.registry.account(tenant)  # validates registration
        self._handlers[tenant][method_name] = handler
        for shard in self.shards:
            shard.server.register(method_name, handler, tenant=tenant)

    def _wire_shard(self, shard: FabricShard) -> None:
        """Replay every tenant registration onto a freshly-joined
        shard, in original registration order (deterministic)."""
        for account in self.registry:
            shard.server.attach_tenant(account.tenant, account.service)
            for method_name, handler in \
                    self._handlers[account.tenant].items():
                shard.server.register(method_name, handler,
                                      tenant=account.tenant)

    def tenant_stats(self, tenant: str) -> ServeStats:
        """The tenant's fabric-level ledger (includes budget sheds,
        which never reach a shard)."""
        return self.registry.account(tenant).stats

    @property
    def stats(self) -> ServeStats:
        """Fleet aggregate, folded from the per-tenant ledgers."""
        total = ServeStats()
        for account in self.registry:
            stats = account.stats
            total.offered += stats.offered
            total.shed += stats.shed
            total.expired += stats.expired
            total.faulted += stats.faulted
            total.succeeded += stats.succeeded
            total.migrated += stats.migrated
            total.accel_cycles += stats.accel_cycles
            total.cpu_cycles += stats.cpu_cycles
            total.latencies.extend(stats.latencies)
        return total

    @property
    def watchdog_aborts(self) -> int:
        return sum(s.server.watchdog_aborts for s in self.shards)

    @property
    def healths(self) -> list[str]:
        """Per-shard health-state names, in shard order (the report
        shape shared with :class:`~repro.serve.parallel.
        ParallelReplayResult`)."""
        return [s.server.health.state.value for s in self.shards]

    # -- routing ----------------------------------------------------------------

    def route(self, tenant: str) -> int:
        """The tenant's primary shard (pure consistent hash over the
        current ring epoch)."""
        return self.router.route(tenant)

    def routing_table(self) -> dict[str, int]:
        return self.router.table(self.registry.tenants)

    def _fallback_for(self, primary: FabricShard,
                      now: float) -> FabricShard | None:
        """The best non-primary shard, walking the ranked candidates by
        effective health tier: a probe-ready quarantined shard (tier 1)
        is retried instead of giving up, and only when *every*
        candidate is fully quarantined with no probe ready does the
        walk return ``None`` (the double-quarantine fix)."""
        views = [s.view(now) for s in self.shards
                 if s.state in ROUTABLE_STATES
                 and s.index != primary.index]
        for index in ranked_fallbacks(views):
            view = next(v for v in views if v.index == index)
            if view.routable:
                return self.shards[index]
            break  # ranked by tier: the rest are unroutable too
        return None

    def _pick_shard(self, tenant: str, now: float) -> FabricShard:
        primary = self.shards[self.router.route(tenant)]
        # Warm-up admission: a JOINING shard takes at most its ramped
        # in-flight budget; overflow deflects to the ranked fallback so
        # the joiner's ramp bounds its tail without dropping calls.
        if primary.state is ShardState.JOINING:
            budget = self.controller.warm_budget(primary, now)
            if primary.inflight(now) >= budget:
                deflected = self._fallback_for(primary, now)
                if deflected is not None:
                    self.warmup_deflections += 1
                    self.fallback_routes.append(
                        (tenant, primary.index, deflected.index))
                    return deflected
        if primary.view(now).routable:
            return primary
        fallback = self._fallback_for(primary, now)
        if fallback is None:
            # Nowhere healthier to go: let the primary shard's own
            # machinery (host fallback, structured failure) decide.
            return primary
        self.fallback_routes.append(
            (tenant, primary.index, fallback.index))
        return fallback

    # -- the call path ----------------------------------------------------------

    def call(self, tenant: str, method_name: str, request_bytes: bytes,
             at: float = 0.0) -> CallOutcome:
        """Serve one tenant call arriving at cycle ``at``; never raises
        on overload/faults -- every terminal condition is a structured
        :class:`~repro.serve.server.CallOutcome`."""
        self.controller.tick(at)
        account = self.registry.account(tenant)
        full = account.service.full_method_name(method_name)
        if not account.admit(at):
            outcome = CallOutcome(
                status="shed", arrival=at, completed_at=at,
                error=TenantOverloaded(
                    f"tenant {tenant!r} at its in-flight budget "
                    f"({account.policy.max_inflight})",
                    method=full, tenant=tenant),
                tenant=tenant, ring_epoch=self.ring_epoch)
            self.tenant_sheds[tenant] += 1
            account.fold(outcome)
            return outcome
        migrated = self.controller.old_home(tenant) is not None
        shard = self._pick_shard(tenant, at)
        outcome = shard.server.call(method_name, request_bytes, at=at,
                                    tenant=tenant)
        outcome.shard = shard.index
        outcome.tenant = tenant
        outcome.migrated = migrated
        outcome.ring_epoch = self.ring_epoch
        if migrated:
            self.migrations[tenant] = self.migrations.get(tenant, 0) + 1
        shard.note_completion(outcome.completed_at)
        account.note_completion(outcome.completed_at)
        account.fold(outcome)
        return outcome
