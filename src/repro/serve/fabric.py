"""The sharded multi-tenant serving fabric.

One :class:`ServingFabric` is the fleet-shaped front end the paper's
Section 3 numbers imply: N independent shards -- each a full
:class:`~repro.serve.server.ResilientServer` with its own admission
queue, circuit breakers, watchdogs, and tile pool -- behind a
deterministic router.  Per call:

1. **Tenant budget** (:mod:`repro.serve.tenants`) -- the tenant's
   fabric-wide in-flight budget is checked first; an over-budget
   arrival is shed with :class:`~repro.serve.errors.TenantOverloaded`
   for zero cycles and zero shard-queue occupancy, so one tenant's
   overload sheds that tenant, not the fleet.
2. **Routing** (:mod:`repro.serve.router`) -- consistent hash of the
   tenant id picks the primary shard; if that shard is fully
   quarantined (every tile breaker OPEN) the least-loaded fallback
   re-routes by health tier first, load second.
3. **Shard serve** -- the shard's own PR 3 machinery (admission,
   deadline gating, breakers, failover, watchdog, fit-gated host
   fallback) runs unchanged, so the per-call latency bound
   ``deadline + watchdog_budget`` survives the extra routing layer
   (``tests/serve/test_fabric_watchdog.py``).

Shard count must never change semantics or cycle charging: a fixed
replay through 1, 2, and 4 shards is bit-identical -- per-message
responses and accelerator cycles -- to a single
:class:`~repro.serve.server.ResilientServer`
(``tests/serve/test_fleet_replay.py``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.proto.descriptor import ServiceDescriptor
from repro.serve.errors import TenantOverloaded
from repro.serve.router import (
    ConsistentHashRouter,
    RouterPolicy,
    ShardView,
    least_loaded_fallback,
)
from repro.serve.server import (
    CallOutcome,
    ResilientServer,
    ServePolicy,
    ServeStats,
)
from repro.serve.tenants import TenantPolicy, TenantRegistry


@dataclass(frozen=True)
class FabricPolicy:
    """Every knob of the fabric, in one bundle."""

    #: Independent shards; each gets ``serve.tiles`` tiles of its own.
    shards: int = 2
    #: Per-shard serving policy (admission, breakers, watchdog, tiles).
    serve: ServePolicy = field(default_factory=ServePolicy)
    router: RouterPolicy = field(default_factory=RouterPolicy)
    #: Budget applied to tenants registered without an explicit one.
    default_budget: TenantPolicy = field(default_factory=TenantPolicy)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")


class FabricShard:
    """One shard: index + its resilient server."""

    def __init__(self, index: int, policy: FabricPolicy):
        self.index = index
        serve = policy.serve
        plan = serve.fault_plan
        if plan is not None and plan.enabled():
            # Decorrelate the shards' fault campaigns exactly like the
            # per-tile derivation inside each server.
            serve = dataclasses.replace(
                serve, fault_plan=plan.derive("fabric.shard", str(index)))
        self.server = ResilientServer(policy=serve)

    def view(self, now: float) -> ShardView:
        return ShardView(
            index=self.index,
            breaker_states=tuple(t.breaker.state
                                 for t in self.server.tiles),
            load=self.server.load(now))


class ServingFabric:
    """Consistent-hash-routed, budget-isolated serving over N shards."""

    def __init__(self, policy: FabricPolicy | None = None):
        self.policy = policy or FabricPolicy()
        self.shards = [FabricShard(i, self.policy)
                       for i in range(self.policy.shards)]
        self.router = ConsistentHashRouter(
            [s.index for s in self.shards], self.policy.router)
        self.registry = TenantRegistry()
        #: Calls the fabric shed at the tenant budget, per tenant (also
        #: folded into each tenant's ServeStats as ``shed``).
        self.tenant_sheds: dict[str, int] = {}
        #: (tenant, primary_shard, fallback_shard) for every re-route.
        self.fallback_routes: list[tuple[str, int, int]] = []

    # -- wiring -----------------------------------------------------------------

    def add_tenant(self, tenant: str, service: ServiceDescriptor,
                   budget: TenantPolicy | None = None) -> None:
        """Register one tenant fleet-wide: its schema is pushed to every
        shard (any shard may serve it after a fallback re-route)."""
        self.registry.add(tenant, service,
                          budget or self.policy.default_budget)
        self.tenant_sheds[tenant] = 0
        for shard in self.shards:
            shard.server.attach_tenant(tenant, service)

    def register(self, tenant: str, method_name: str, handler) -> None:
        """Attach one method handler for ``tenant`` on every shard."""
        self.registry.account(tenant)  # validates registration
        for shard in self.shards:
            shard.server.register(method_name, handler, tenant=tenant)

    def tenant_stats(self, tenant: str) -> ServeStats:
        """The tenant's fabric-level ledger (includes budget sheds,
        which never reach a shard)."""
        return self.registry.account(tenant).stats

    @property
    def stats(self) -> ServeStats:
        """Fleet aggregate, folded from the per-tenant ledgers."""
        total = ServeStats()
        for account in self.registry:
            stats = account.stats
            total.offered += stats.offered
            total.shed += stats.shed
            total.expired += stats.expired
            total.faulted += stats.faulted
            total.succeeded += stats.succeeded
            total.accel_cycles += stats.accel_cycles
            total.cpu_cycles += stats.cpu_cycles
            total.latencies.extend(stats.latencies)
        return total

    @property
    def watchdog_aborts(self) -> int:
        return sum(s.server.watchdog_aborts for s in self.shards)

    # -- routing ----------------------------------------------------------------

    def route(self, tenant: str) -> int:
        """The tenant's primary shard (pure consistent hash)."""
        return self.router.route(tenant)

    def routing_table(self) -> dict[str, int]:
        return self.router.table(self.registry.tenants)

    def _pick_shard(self, tenant: str, now: float) -> FabricShard:
        primary = self.shards[self.router.route(tenant)]
        views = [s.view(now) for s in self.shards]
        if not views[primary.index].quarantined:
            return primary
        fallback = least_loaded_fallback(views,
                                         exclude=(primary.index,))
        if fallback is None or self.shards[fallback].view(now).quarantined:
            # Nowhere healthier to go: let the primary shard's own
            # machinery (host fallback, structured failure) decide.
            return primary
        self.fallback_routes.append((tenant, primary.index, fallback))
        return self.shards[fallback]

    # -- the call path ----------------------------------------------------------

    def call(self, tenant: str, method_name: str, request_bytes: bytes,
             at: float = 0.0) -> CallOutcome:
        """Serve one tenant call arriving at cycle ``at``; never raises
        on overload/faults -- every terminal condition is a structured
        :class:`~repro.serve.server.CallOutcome`."""
        account = self.registry.account(tenant)
        full = account.service.full_method_name(method_name)
        if not account.admit(at):
            outcome = CallOutcome(
                status="shed", arrival=at, completed_at=at,
                error=TenantOverloaded(
                    f"tenant {tenant!r} at its in-flight budget "
                    f"({account.policy.max_inflight})",
                    method=full, tenant=tenant),
                tenant=tenant)
            self.tenant_sheds[tenant] += 1
            account.fold(outcome)
            return outcome
        shard = self._pick_shard(tenant, at)
        outcome = shard.server.call(method_name, request_bytes, at=at,
                                    tenant=tenant)
        outcome.shard = shard.index
        outcome.tenant = tenant
        account.note_completion(outcome.completed_at)
        account.fold(outcome)
        return outcome
