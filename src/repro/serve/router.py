"""Tenant-to-shard routing for the serving fabric.

Two deterministic, side-effect-free policies compose here:

* **Consistent hashing** (:class:`ConsistentHashRouter`) -- every shard
  contributes ``vnodes`` points to a hash ring (blake2b over
  ``seed:shard:replica``, so nothing depends on ``PYTHONHASHSEED``);
  a tenant routes to the owner of the first ring point at or after its
  own hash.  The classic stability property holds by construction:
  removing one shard deletes only that shard's points, so every tenant
  that routed *elsewhere* keeps its assignment -- only the removed
  shard's tenants remap (property-checked in
  ``tests/serve/test_router.py``).
* **Least-loaded fallback** (:func:`least_loaded_fallback`) -- when the
  primary shard is quarantined (every tile breaker OPEN), the fabric
  re-routes by health tier first, load second: a shard with a CLOSED
  breaker always outranks one with only HALF_OPEN probes, which
  outranks a fully-OPEN shard.  The fallback therefore *never* selects
  an all-OPEN shard while any shard still has a CLOSED breaker.

Both pieces are pure functions of their inputs so Hypothesis can drive
them directly; the fabric merely feeds them live shard state.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass

from repro.serve.breaker import BreakerState
from repro.serve.errors import FabricConfigError


def _hash64(material: str) -> int:
    """Stable 64-bit hash (independent of interpreter hash seeds)."""
    digest = hashlib.blake2b(material.encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class RouterPolicy:
    """Ring construction knobs."""

    #: Virtual nodes per shard; more vnodes = smoother tenant spread.
    vnodes: int = 64
    #: Mixed into every ring/tenant hash; same seed + same shard set
    #: => identical ring, hence identical routing table.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vnodes < 1:
            raise FabricConfigError("vnodes", self.vnodes,
                                    "must be >= 1 (each shard needs at "
                                    "least one ring point)")


class ConsistentHashRouter:
    """Immutable consistent-hash ring over a set of shard ids."""

    def __init__(self, shard_ids, policy: RouterPolicy | None = None):
        self.policy = policy or RouterPolicy()
        self.shard_ids = tuple(sorted(set(shard_ids)))
        if not self.shard_ids:
            raise ValueError("need at least one shard")
        points: list[tuple[int, int]] = []
        for shard in self.shard_ids:
            for replica in range(self.policy.vnodes):
                point = _hash64(
                    f"{self.policy.seed}:shard:{shard}:{replica}")
                points.append((point, shard))
        # Sort by (point, shard): shard id breaks the (vanishingly
        # rare) point collision deterministically.
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def route(self, tenant: str) -> int:
        """The shard owning ``tenant``: first ring point at or after the
        tenant's hash, wrapping past the top of the ring."""
        h = _hash64(f"{self.policy.seed}:tenant:{tenant}")
        i = bisect.bisect_left(self._points, h)
        if i == len(self._points):
            i = 0
        return self._owners[i]

    def without(self, shard_id: int) -> "ConsistentHashRouter":
        """A new router with ``shard_id``'s ring points removed."""
        remaining = [s for s in self.shard_ids if s != shard_id]
        return ConsistentHashRouter(remaining, self.policy)

    def with_shard(self, shard_id: int) -> "ConsistentHashRouter":
        """A new router with ``shard_id``'s ring points added -- the
        exact inverse of :meth:`without`.  The ring is a pure function
        of (seed, shard set), so ``without(s).with_shard(s)`` restores
        the identical routing table, and adding a shard moves tenants
        only *onto* the new shard, never between surviving shards
        (``tests/fleet/test_reshard_router.py``)."""
        return ConsistentHashRouter((*self.shard_ids, shard_id),
                                    self.policy)

    def table(self, tenants) -> dict[str, int]:
        """The full tenant -> shard routing table."""
        return {tenant: self.route(tenant) for tenant in tenants}


@dataclass(frozen=True)
class ShardView:
    """A snapshot of one shard's routability, as the router sees it."""

    index: int
    breaker_states: tuple[BreakerState, ...]
    #: Instantaneous load signal (queued calls + tile backlog); see
    #: :meth:`repro.serve.server.ResilientServer.load`.
    load: float = 0.0
    #: Per-breaker flag: an OPEN breaker whose recovery cool-down has
    #: elapsed at snapshot time will admit a half-open probe on the
    #: next offload.  Empty (the default) means "not computed" -- the
    #: effective tier then degrades to the static health tier.
    probe_ready: tuple[bool, ...] = ()

    def health_tier(self) -> int:
        """0 = has a CLOSED breaker, 1 = probing (HALF_OPEN only),
        2 = fully quarantined (every breaker OPEN)."""
        if any(s is BreakerState.CLOSED for s in self.breaker_states):
            return 0
        if any(s is BreakerState.HALF_OPEN for s in self.breaker_states):
            return 1
        return 2

    def effective_tier(self) -> int:
        """The health tier the shard would exhibit if offloaded to now:
        a fully-quarantined shard with a probe-ready breaker (cool-down
        elapsed) counts as tier 1, since its next offload *is* the
        half-open probe.  This is what closes the double-quarantine
        fallback hole: a statically all-OPEN shard that is ready to
        probe is still a better target than failing the call outright.
        """
        tier = self.health_tier()
        if tier == 2 and any(self.probe_ready):
            return 1
        return tier

    @property
    def quarantined(self) -> bool:
        return self.health_tier() == 2

    @property
    def routable(self) -> bool:
        """Quarantined-with-no-probe-ready is the only unroutable state."""
        return self.effective_tier() < 2


def ranked_fallbacks(views, exclude=()) -> list[int]:
    """Every candidate shard in fallback preference order: effective
    health tier first (probe-ready OPEN counts as HALF_OPEN), then
    load, then index (fully deterministic).  The fabric walks this
    ranking and takes the first routable candidate, so a quarantined
    best-ranked shard no longer fails the call outright -- the next
    health tier is retried (ISSUE 8 satellite fix)."""
    excluded = set(exclude)
    candidates = [v for v in views if v.index not in excluded]
    return [v.index for v in
            sorted(candidates,
                   key=lambda v: (v.effective_tier(), v.load, v.index))]


def least_loaded_fallback(views, exclude=()) -> int | None:
    """Pick the fallback shard: best effective health tier, then least
    loaded, then lowest index (fully deterministic).

    Because ranking is by health tier *first*, an all-OPEN shard can
    only win when every candidate is all-OPEN -- the ISSUE property
    "never routes to an OPEN-breaker shard while a CLOSED one exists"
    holds by construction.  Returns ``None`` when no candidates remain.
    """
    ranked = ranked_fallbacks(views, exclude)
    return ranked[0] if ranked else None
