"""Serving-facing alias for the hardware FSM watchdog.

The implementation lives in :mod:`repro.accel.watchdog` -- the budget
comparator is a property of the device, not of the serving layer -- but
serving code configures it (``ServePolicy.watchdog_budget_cycles``) and
reasons about its guarantee: every admitted call terminates within
``deadline + watchdog_budget`` simulated cycles (docs/SERVING.md).
"""

from repro.accel.watchdog import DEFAULT_BUDGET_CYCLES, FsmWatchdog

__all__ = ["DEFAULT_BUDGET_CYCLES", "FsmWatchdog"]
