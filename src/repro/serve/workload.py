"""Open-loop serving workloads and the offered-load sweep.

The serving benchmark drives a :class:`~repro.serve.server.
ResilientServer` with a seeded open-loop arrival process (exponential
interarrivals on the simulated cycle clock) against an Echo-style
service, and sweeps the offered load to show graceful degradation: as
load climbs past tile capacity the shed rate rises while the p99
latency of *admitted* calls stays bounded by the deadline
(docs/SERVING.md; ``scripts/bench_speed.py --serve``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.proto import parse_schema
from repro.serve.server import ResilientServer, ServePolicy, ServeStats

#: The serving benchmark's service: a small request fanned out into a
#: repeated-string response -- both directions exercise varints, length
#: delimiting, and UTF-8 validation on the accelerator.
SERVING_SCHEMA = """
    syntax = "proto2";

    message EchoRequest {
      optional string text = 1;
      optional int32 repeats = 2;
      optional uint64 cookie = 3;
    }

    message EchoResponse {
      repeated string texts = 1;
      optional uint64 cookie = 2;
    }

    service Echo {
      rpc Repeat (EchoRequest) returns (EchoResponse);
    }
"""


@dataclass(frozen=True)
class ServingWorkloadSpec:
    """One seeded open-loop serving run."""

    calls: int = 200
    #: Mean cycles between arrivals (exponential); lower = hotter.
    interarrival_cycles: float = 5_000.0
    seed: int = 1234
    text_bytes: int = 64
    repeats: int = 4

    def __post_init__(self) -> None:
        if self.calls < 1:
            raise ValueError("calls must be >= 1")
        if self.interarrival_cycles <= 0:
            raise ValueError("interarrival_cycles must be positive")


def echo_schema():
    return parse_schema(SERVING_SCHEMA)


def build_echo_server(policy: ServePolicy | None = None,
                      schema=None) -> ResilientServer:
    """A ready-to-serve Echo server over ``policy``'s tile pool."""
    schema = schema or echo_schema()
    server = ResilientServer(schema.service("Echo"), policy)

    def repeat(request):
        response = schema["EchoResponse"].new_message()
        for _ in range(request["repeats"]):
            response["texts"].append(request["text"])
        response["cookie"] = request["cookie"]
        return response

    server.register("Repeat", repeat)
    return server


def make_request_bytes(schema, rng: random.Random,
                       spec: ServingWorkloadSpec) -> bytes:
    request = schema["EchoRequest"].new_message()
    request["text"] = "".join(
        rng.choice("abcdefghijklmnopqrstuvwxyz ")
        for _ in range(spec.text_bytes))
    request["repeats"] = spec.repeats
    request["cookie"] = rng.getrandbits(32)
    return request.serialize()


def run_serving(spec: ServingWorkloadSpec,
                policy: ServePolicy | None = None,
                server: ResilientServer | None = None) -> ServeStats:
    """Drive one open-loop run; returns the server's aggregate stats."""
    schema = echo_schema()
    if server is None:
        server = build_echo_server(policy, schema)
    rng = random.Random(spec.seed)
    now = 0.0
    for _ in range(spec.calls):
        now += rng.expovariate(1.0 / spec.interarrival_cycles)
        payload = make_request_bytes(schema, rng, spec)
        server.call("Repeat", payload, at=now)
    return server.stats


def sweep_offered_load(interarrivals, spec: ServingWorkloadSpec,
                       policy: ServePolicy | None = None) -> list[dict]:
    """One fresh server per offered-load point; returns report rows."""
    rows = []
    for interarrival in interarrivals:
        point = replace(spec, interarrival_cycles=float(interarrival))
        server = build_echo_server(policy)
        stats = run_serving(point, server=server)
        rows.append({
            "interarrival_cycles": float(interarrival),
            "offered": stats.offered,
            "succeeded": stats.succeeded,
            "shed": stats.shed,
            "failed": stats.failed,
            "shed_rate": stats.shed_rate,
            "p50_cycles": stats.p50_cycles,
            "p99_cycles": stats.p99_cycles,
            "host_fallbacks": stats.host_fallbacks,
            "hedges": stats.hedges,
            "watchdog_aborts": server.watchdog_aborts,
            "health": server.health.state.value,
        })
    return rows
