"""Deadline-aware resilient serving layer over the accelerator.

See docs/SERVING.md.  The layer composes, per call:

* admission control -- a bounded queue with load shedding and per-call
  deadline budgets threaded through the simulated cycle clock
  (:mod:`repro.serve.queue`);
* per-tile circuit breakers and a serving-level health state machine
  (:mod:`repro.serve.breaker`);
* an FSM watchdog bounding worst-case per-operation accelerator cycles
  (:mod:`repro.serve.watchdog`);
* hedged retries across tiles under the shared-uncore contention model
  (:mod:`repro.serve.hedging`);
* the :class:`~repro.serve.server.ResilientServer` tying them together
  over :mod:`repro.proto.rpc` services (:mod:`repro.serve.server`).
"""

from repro.serve.breaker import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    HealthMonitor,
    HealthState,
)
from repro.serve.errors import (
    DeadlineExceeded,
    FabricConfigError,
    Overloaded,
    ShardDraining,
    TenantOverloaded,
)
from repro.serve.fabric import (
    FabricPolicy,
    FabricShard,
    ReshardController,
    ReshardEvent,
    ReshardPolicy,
    ServingFabric,
    ShardState,
)
from repro.serve.hedging import HedgePolicy
from repro.serve.parallel import (
    ParallelReplayResult,
    ShardResult,
    ShardSpec,
    run_parallel_replay,
)
from repro.serve.queue import AdmissionPolicy, AdmissionQueue
from repro.serve.replay import (
    REPLAY_SERVE_POLICY,
    FleetReplaySpec,
    ReplayCall,
    ResizeEvent,
    ResizeReport,
    accounting_identity_ok,
    build_fleet_fabric,
    build_fleet_server,
    generate_calls,
    replay_through_fabric,
    replay_through_server,
    resize_row,
    run_resize_replay,
    sweep_fleet,
    tenant_signature,
)
from repro.serve.router import (
    ConsistentHashRouter,
    RouterPolicy,
    ShardView,
    least_loaded_fallback,
    ranked_fallbacks,
)
from repro.serve.server import (
    DEFAULT_TENANT,
    CallOutcome,
    ResilientServer,
    ServePolicy,
    ServeStats,
)
from repro.serve.tenants import (
    TenantAccount,
    TenantPolicy,
    TenantRegistry,
)
from repro.serve.watchdog import FsmWatchdog
from repro.serve.workload import (
    ServingWorkloadSpec,
    build_echo_server,
    run_serving,
    sweep_offered_load,
)

__all__ = [
    "AdmissionPolicy",
    "AdmissionQueue",
    "BreakerPolicy",
    "BreakerState",
    "CallOutcome",
    "CircuitBreaker",
    "ConsistentHashRouter",
    "DEFAULT_TENANT",
    "DeadlineExceeded",
    "FabricConfigError",
    "FabricPolicy",
    "FabricShard",
    "FleetReplaySpec",
    "FsmWatchdog",
    "HealthMonitor",
    "HealthState",
    "HedgePolicy",
    "Overloaded",
    "ParallelReplayResult",
    "REPLAY_SERVE_POLICY",
    "ReplayCall",
    "ReshardController",
    "ReshardEvent",
    "ReshardPolicy",
    "ResilientServer",
    "ResizeEvent",
    "ResizeReport",
    "RouterPolicy",
    "ServePolicy",
    "ServeStats",
    "ServingFabric",
    "ServingWorkloadSpec",
    "ShardDraining",
    "ShardResult",
    "ShardSpec",
    "ShardState",
    "ShardView",
    "TenantAccount",
    "TenantOverloaded",
    "TenantPolicy",
    "TenantRegistry",
    "accounting_identity_ok",
    "build_echo_server",
    "build_fleet_fabric",
    "build_fleet_server",
    "generate_calls",
    "least_loaded_fallback",
    "ranked_fallbacks",
    "replay_through_fabric",
    "replay_through_server",
    "resize_row",
    "run_parallel_replay",
    "run_resize_replay",
    "run_serving",
    "sweep_fleet",
    "tenant_signature",
]
