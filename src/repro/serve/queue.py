"""Bounded admission queue with load shedding and deadline budgets.

The serving layer models an open-loop arrival process against a pool of
accelerator tiles.  :class:`AdmissionQueue` decides, at each arrival,
whether the call may wait for a tile at all:

* if the number of admitted-but-not-yet-started calls has reached
  ``max_depth``, the call is *shed* immediately
  (:class:`~repro.serve.errors.Overloaded`, zero accelerator cycles);
* otherwise it is admitted with a deadline of ``arrival +
  deadline_cycles`` on the simulated clock.

Shedding at arrival rather than queueing everything is what keeps the
p99 of *admitted* calls bounded as offered load climbs past saturation:
excess work is converted to cheap structured rejections instead of
unbounded queueing delay (the graceful-degradation property the serving
figure plots; docs/SERVING.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AdmissionPolicy:
    """Queue bound and per-call budget."""

    #: Admitted-but-not-started calls beyond which arrivals are shed.
    max_depth: int = 64
    #: Per-call cycle budget from arrival to completion; ``None`` means
    #: calls never expire (the PR 2-compatible configuration).
    deadline_cycles: float | None = 200_000.0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if (self.deadline_cycles is not None
                and self.deadline_cycles <= 0):
            raise ValueError("deadline_cycles must be positive")


class AdmissionQueue:
    """Tracks queue depth over simulated time and admits or sheds."""

    def __init__(self, policy: AdmissionPolicy | None = None):
        self.policy = policy or AdmissionPolicy()
        # Service-start cycles of admitted calls; an entry > now means
        # that call is still waiting for its tile at cycle ``now``.
        self._starts: list[float] = []
        self.offered = 0
        self.admitted = 0
        self.shed = 0

    def depth(self, now: float) -> int:
        """Admitted calls that have not started service by ``now``."""
        self._starts = [s for s in self._starts if s > now]
        return len(self._starts)

    def offer(self, now: float) -> bool:
        """One arrival at cycle ``now``; True if admitted, False if shed."""
        self.offered += 1
        if self.depth(now) >= self.policy.max_depth:
            self.shed += 1
            return False
        self.admitted += 1
        return True

    def note_start(self, start: float) -> None:
        """Record when the admitted call will begin service (its queue
        occupancy ends at ``start``)."""
        self._starts.append(start)

    def deadline(self, arrival: float) -> float:
        """The admitted call's completion deadline on the cycle clock."""
        if self.policy.deadline_cycles is None:
            return float("inf")
        return arrival + self.policy.deadline_cycles
