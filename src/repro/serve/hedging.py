"""Hedged retries across accelerator tiles.

Classic tail-tolerance: if the primary tile has not produced a result
within ``after_cycles`` of service start, launch the same operation on
a second tile and take whichever finishes first.  In this simulated
world both attempts' cycle counts are known, so the race is resolved
exactly; both tiles' clocks advance (the loser's work is genuinely
wasted and is charged as such), and while the two attempts overlap the
shared uncore stretches each one by
:meth:`repro.soc.multitile.MultiTileModel.latency_stretch` -- hedging
is only free while the bus has headroom (docs/SERVING.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HedgePolicy:
    """When (and whether) to race a second tile."""

    enabled: bool = False
    #: Primary service cycles after which the hedge launches.
    after_cycles: float = 20_000.0
    #: Hedge attempts per call (1 = one extra tile at most).
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if self.after_cycles < 0:
            raise ValueError("after_cycles must be >= 0")
        if self.max_hedges < 1:
            raise ValueError("max_hedges must be >= 1")

    def should_hedge(self, primary_service_cycles: float) -> bool:
        """Would the primary still be running when the hedge timer fires?"""
        return self.enabled and primary_service_cycles > self.after_cycles
