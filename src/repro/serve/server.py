"""The resilient serving layer: deadline-aware RPC over accelerator tiles.

:class:`ResilientServer` serves one :class:`~repro.proto.descriptor.
ServiceDescriptor` over a pool of accelerator tiles, composing the
mechanisms in this package around the PR 1/PR 2 driver:

1. **Admission** -- every arrival passes the bounded
   :class:`~repro.serve.queue.AdmissionQueue`; shed calls return
   :class:`~repro.serve.errors.Overloaded` having consumed *zero*
   accelerator cycles, and admitted calls carry a deadline on the
   simulated cycle clock.
2. **Offload with staged deadline gating** -- a call is request-deser,
   application handler, response-ser; each stage *starts* only while
   ``now < deadline``.  Tiles run ``RecoveryPolicy(max_retries=0,
   cpu_fallback=False)``: any injected fault surfaces here, with the
   burned cycles attached, instead of being silently retried or decoded
   on the host inside the driver.
3. **Circuit breaking** -- each tile's
   :class:`~repro.serve.breaker.CircuitBreaker` counts fault outcomes;
   tripped tiles stop receiving offloads until their half-open probe
   succeeds.  The derived :class:`~repro.serve.breaker.HealthMonitor`
   (HEALTHY/DEGRADED/BYPASSED) is surfaced per call and in reports.
4. **Failover and hedging** -- a faulted attempt fails over to another
   allowed tile while budget remains; optionally a slow primary is raced
   by a hedge attempt on a second tile, with the shared-uncore stretch
   from :meth:`~repro.soc.multitile.MultiTileModel.latency_stretch`
   applied to the concurrent attempts.
5. **Host fallback, budget-gated** -- the BOOM software library serves
   the call only when its *precomputed* cost fits the remaining
   deadline (the simulator can price work before charging it), so the
   fallback can never blow the latency bound.

**The bound** (docs/SERVING.md): with hedging disabled, every admitted
call terminates -- response, structured error, or expiry -- within
``deadline + watchdog_budget`` cycles of arrival.  Every stage starts
only while ``now < deadline``; accelerator stages are hard-capped at
the watchdog budget; ``handler_cycles <= watchdog_budget`` is enforced
at policy construction; the host fallback is fit-gated.  Hence the last
stage to start overshoots the deadline by at most one watchdog budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.accel.driver import ProtoAccelerator
from repro.accel.watchdog import DEFAULT_BUDGET_CYCLES, FsmWatchdog
from repro.faults import FaultPlan, RecoveryPolicy
from repro.proto.descriptor import ServiceDescriptor
from repro.proto.errors import AccelFault, ProtoError
from repro.proto.message import Message
from repro.proto.rpc import RpcError
from repro.serve.breaker import (
    BreakerPolicy,
    CircuitBreaker,
    HealthMonitor,
    HealthState,
)
from repro.serve.errors import DeadlineExceeded, Overloaded, ShardDraining
from repro.serve.hedging import HedgePolicy
from repro.serve.queue import AdmissionPolicy, AdmissionQueue
from repro.soc.config import SoCConfig
from repro.soc.multitile import MultiTileModel


@dataclass(frozen=True)
class ServePolicy:
    """Every knob of the serving layer, in one picklable bundle."""

    #: Accelerator tiles in the pool.
    tiles: int = 2
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    hedge: HedgePolicy = field(default_factory=HedgePolicy)
    #: Per-FSM-operation cycle cap (see repro.accel.watchdog).
    watchdog_budget_cycles: float = DEFAULT_BUDGET_CYCLES
    #: Application handler cost per call, charged between deser and ser.
    handler_cycles: float = 500.0
    #: Fault campaign; each tile runs an independently derived plan.
    fault_plan: FaultPlan | None = None
    #: Accelerator attempts per call (primary + failovers), >= 1.
    max_attempts: int = 2
    #: Allow the budget-gated BOOM software fallback.
    host_fallback: bool = True
    #: Shared-uncore contention model for concurrent hedged attempts.
    contention: MultiTileModel | None = None
    #: Pure cycle charging: wrap every accelerator attempt in a
    #: device-state window (TLB flush + heap rollback; see
    #: ProtoAccelerator.begin_pure_call) so each call's cycles are a
    #: pure function of its request bytes.  This is what lets the
    #: serving fabric promise that shard count and call order never
    #: change charging (tests/serve/test_fleet_replay.py).  Off by
    #: default: the PR 3/4 baselines keep warm-TLB semantics.
    stateless_tiles: bool = False
    #: Host execution tier for each tile's accelerator ("codegen",
    #: "batch", or "interp").  Modeled cycles are identical on all
    #: tiers; codegen/batch only speed up the simulation host ("batch"
    #: additionally vectorizes whole same-schema batches through the
    #: driver's *_batch entry points; see docs/PERF.md).  Tiles with a
    #: fault plan armed bypass both fast tiers regardless (the driver
    #: enforces this, so every fault site keeps firing).
    fast_path: str = "codegen"
    #: Accelerator attach point for every tile ("rocc" or "pcie").
    #: Unit cycles are transport-independent; successful stages are
    #: additionally charged the attach-point cost
    #: (``stats.transport_cycles``), which is zero-extra work on the
    #: historical RoCC ledger and real ring/doorbell/DMA/interrupt
    #: mechanics over PCIe (docs/MODEL.md).
    transport: str = "rocc"

    def __post_init__(self) -> None:
        if self.tiles < 1:
            raise ValueError("need at least one tile")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.handler_cycles < 0:
            raise ValueError("handler_cycles must be >= 0")
        if self.watchdog_budget_cycles <= 0:
            raise ValueError("watchdog budget must be positive")
        if self.handler_cycles > self.watchdog_budget_cycles:
            # The deadline+budget bound assumes no stage outlasts one
            # watchdog budget; the handler is the only uncapped stage.
            raise ValueError("handler_cycles must not exceed the "
                             "watchdog budget (latency-bound invariant)")
        if self.transport not in ("rocc", "pcie"):
            raise ValueError(f"unknown transport {self.transport!r}; "
                             "expected 'rocc' or 'pcie'")

    def hedge_stretch(self) -> float:
        """Latency multiplier while two hedged attempts overlap."""
        if self.contention is None:
            return 1.0
        return self.contention.latency_stretch(2)


class Tile:
    """One accelerator device plus its serving-side guards."""

    def __init__(self, index: int, policy: ServePolicy):
        self.index = index
        plan = policy.fault_plan
        if plan is not None and plan.enabled():
            plan = plan.derive("serve.tile", str(index))
        else:
            plan = None
        self.accel = ProtoAccelerator(
            config=SoCConfig(transport=policy.transport),
            faults=plan,
            recovery=RecoveryPolicy(max_retries=0, cpu_fallback=False),
            watchdog=FsmWatchdog(policy.watchdog_budget_cycles),
            fast_path=policy.fast_path)
        self.breaker = CircuitBreaker(policy.breaker)
        #: Cycle at which this tile finishes its current work.
        self.free_at = 0.0


@dataclass
class CallOutcome:
    """Everything the serving layer knows about one finished call."""

    status: str                    # "ok" | "shed" | "expired" | "failed"
    arrival: float
    completed_at: float
    accel_cycles: float = 0.0
    cpu_cycles: float = 0.0
    tile: int | None = None
    attempts: int = 0
    hedged: bool = False
    host_fallback: bool = False
    error: RpcError | None = None
    response: bytes | None = None
    health: HealthState = HealthState.HEALTHY
    #: Filled by the fabric layer: which shard served the call and on
    #: behalf of which tenant (None outside the fabric).
    shard: int | None = None
    tenant: str | None = None
    #: Filled by the fabric layer during a reshard: the call's old-ring
    #: home was a DRAINING shard and the call was served elsewhere.  A
    #: migrated success is accounted under ``ServeStats.migrated``, not
    #: ``succeeded``, so the resharding identity ``shed + failed +
    #: succeeded + migrated == offered`` closes per tenant.
    migrated: bool = False
    #: Ring epoch the fabric routed this call under (None outside the
    #: fabric); bumps on every shard join/evict ring swap.
    ring_epoch: int | None = None

    @property
    def latency_cycles(self) -> float:
        return self.completed_at - self.arrival

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class ServeStats:
    """Aggregate serving counters (``shed + failed + succeeded +
    migrated == offered``; ``failed`` folds in deadline expiries, and
    ``migrated`` is only non-zero at the fabric level during a
    reshard -- a single server never migrates)."""

    offered: int = 0
    shed: int = 0
    expired: int = 0
    faulted: int = 0
    succeeded: int = 0
    #: Calls that completed OK on a shard other than their (draining)
    #: old-ring home; disjoint from ``succeeded`` by construction.
    migrated: int = 0
    failovers: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    host_fallbacks: int = 0
    accel_cycles: float = 0.0
    cpu_cycles: float = 0.0
    wasted_hedge_cycles: float = 0.0
    #: Arrival-to-termination latency of every admitted call.
    latencies: list = field(default_factory=list)

    @property
    def failed(self) -> int:
        return self.expired + self.faulted

    @property
    def delivered(self) -> int:
        """Calls that completed OK, wherever they ran (succeeded on
        their home shard or migrated during a drain)."""
        return self.succeeded + self.migrated

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def latency_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of admitted-call latency, in cycles."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(0, math.ceil(pct / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    @property
    def p50_cycles(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_cycles(self) -> float:
        return self.latency_percentile(99.0)


@dataclass
class _Attempt:
    """One accelerator attempt's outcome, on one tile."""

    end: float                     # cycle at which the attempt finished
    cycles: float                  # accelerator cycles charged
    ok: bool = False
    expired: bool = False          # a stage gate fired mid-call
    permanent: bool = False        # genuine error; retry cannot help
    data: bytes | None = None
    fault: BaseException | None = None


#: Tenant id used by the single-service constructor/call signatures, so
#: pre-fabric callers never have to name a tenant.
DEFAULT_TENANT = "default"


@dataclass
class _TenantBinding:
    """One tenant's schema registry slice on this server: its service,
    its handlers, and its private accounting."""

    tenant: str
    service: ServiceDescriptor
    handlers: dict = field(default_factory=dict)
    stats: ServeStats = field(default_factory=ServeStats)


class ResilientServer:
    """Deadline-aware, breaker-guarded RPC serving over tiles.

    One server is one *shard* of the fabric (:mod:`repro.serve.fabric`):
    it owns its admission queue, breakers, watchdogs, and tile pool, and
    serves any number of tenants, each with its own attached service
    (per-tenant schema registry) and per-tenant stats.  The single-
    service constructor keeps the pre-fabric API: ``ResilientServer(
    service, policy)`` binds ``service`` under :data:`DEFAULT_TENANT`.
    """

    def __init__(self, service: ServiceDescriptor | None = None,
                 policy: ServePolicy | None = None):
        self.policy = policy or ServePolicy()
        self.queue = AdmissionQueue(self.policy.admission)
        self.tiles = [Tile(i, self.policy)
                      for i in range(self.policy.tiles)]
        self.health = HealthMonitor([t.breaker for t in self.tiles])
        self.stats = ServeStats()
        self._tenants: dict[str, _TenantBinding] = {}
        self._host_cpu = None
        self._draining_since: float | None = None
        if service is not None:
            self.attach_tenant(DEFAULT_TENANT, service)

    # -- wiring -----------------------------------------------------------------

    @property
    def service(self) -> ServiceDescriptor:
        """The default tenant's service (pre-fabric single-service API)."""
        return self._binding(DEFAULT_TENANT).service

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(self._tenants)

    def _binding(self, tenant: str) -> _TenantBinding:
        try:
            return self._tenants[tenant]
        except KeyError:
            raise RpcError(f"tenant {tenant!r} is not attached",
                           site="serve.tenant") from None

    def attach_tenant(self, tenant: str,
                      service: ServiceDescriptor) -> None:
        """Bind one tenant's service: register its message types on
        every tile and open its private stats ledger."""
        if tenant in self._tenants:
            raise ValueError(f"tenant {tenant!r} already attached")
        self._tenants[tenant] = _TenantBinding(tenant, service)
        descriptors = []
        for method in service.methods:
            for descriptor in (method.input_descriptor,
                               method.output_descriptor):
                if descriptor is not None:
                    descriptors.append(descriptor)
        for tile in self.tiles:
            tile.accel.register_types(descriptors)

    def tenant_stats(self, tenant: str) -> ServeStats:
        return self._binding(tenant).stats

    def register(self, method_name: str, handler,
                 tenant: str = DEFAULT_TENANT) -> None:
        """Attach the application function implementing one method."""
        binding = self._binding(tenant)
        binding.service.method(method_name)  # validates existence
        binding.handlers[method_name] = handler

    def _host(self):
        if self._host_cpu is None:
            from repro.cpu.boom import boom_cpu
            self._host_cpu = boom_cpu()
        return self._host_cpu

    @property
    def watchdog_aborts(self) -> int:
        return sum(t.accel.watchdog.aborts for t in self.tiles)

    def load(self, now: float) -> float:
        """Instantaneous load signal for least-loaded routing: queued
        calls plus the tiles' remaining busy cycles, normalised by the
        watchdog budget so both terms are roughly "calls outstanding"."""
        backlog = sum(max(0.0, t.free_at - now) for t in self.tiles)
        return (self.queue.depth(now)
                + backlog / self.policy.watchdog_budget_cycles)

    # -- drain barrier (refuse-new, accept-pending) ------------------------------

    @property
    def draining(self) -> bool:
        return self._draining_since is not None

    def begin_drain(self, now: float) -> None:
        """Arm the drain barrier: from cycle ``now`` on, new arrivals
        are refused with a zero-cycle :class:`~repro.serve.errors.
        ShardDraining`, while work already admitted (queued calls,
        busy tiles) runs to completion untouched.  The fabric's
        ReshardController swaps the ring *before* arming the barrier,
        so in normal operation no new call ever reaches it -- the
        barrier is the defense-in-depth guarantee that a drained shard
        can never silently absorb (and drop) traffic."""
        if self._draining_since is None:
            self._draining_since = now

    def pending(self, now: float) -> int:
        """Admitted work not yet finished at cycle ``now``: calls still
        waiting in the queue plus tiles still busy.  This is the drain
        barrier's accept-pending set; a drain completes once it hits
        zero (and the drain window has elapsed)."""
        busy = sum(1 for t in self.tiles if t.free_at > now)
        return self.queue.depth(now) + busy

    # -- the call path ----------------------------------------------------------

    def call(self, method_name: str, request_bytes: bytes,
             at: float = 0.0,
             tenant: str = DEFAULT_TENANT) -> CallOutcome:
        """Serve one call arriving at cycle ``at``; never raises -- every
        terminal condition is a structured :class:`CallOutcome`."""
        binding = self._binding(tenant)
        method = binding.service.method(method_name)
        full = binding.service.full_method_name(method_name)
        handler = binding.handlers.get(method_name)
        if handler is None:
            raise RpcError(f"method {method_name!r} is not implemented",
                           method=full, site="rpc.route")

        if self._draining_since is not None:
            return self._finish(CallOutcome(
                status="shed", arrival=at, completed_at=at,
                error=ShardDraining(
                    f"shard draining since cycle "
                    f"{self._draining_since:.0f}: refusing new work "
                    f"(accept-pending only)", method=full),
                health=self.health.state), binding)
        if not self.queue.offer(at):
            return self._finish(CallOutcome(
                status="shed", arrival=at, completed_at=at,
                error=Overloaded(
                    f"admission queue full "
                    f"(depth {self.queue.policy.max_depth})", method=full),
                health=self.health.state), binding)
        deadline = self.queue.deadline(at)
        outcome = self._serve_admitted(method, full, handler,
                                       request_bytes, at, deadline)
        return self._finish(outcome, binding)

    def _finish(self, outcome: CallOutcome,
                binding: _TenantBinding) -> CallOutcome:
        for stats in (self.stats, binding.stats):
            stats.offered += 1
            stats.accel_cycles += outcome.accel_cycles
            stats.cpu_cycles += outcome.cpu_cycles
            if outcome.status == "shed":
                stats.shed += 1
                continue
            stats.latencies.append(outcome.latency_cycles)
            if outcome.status == "ok":
                stats.succeeded += 1
            elif outcome.status == "expired":
                stats.expired += 1
            else:
                stats.faulted += 1
        return outcome

    def _serve_admitted(self, method, full: str, handler,
                        request_bytes: bytes, arrival: float,
                        deadline: float) -> CallOutcome:
        now = arrival
        attempts = 0
        tried: set[int] = set()
        last_fault: BaseException | None = None
        outcome = CallOutcome(status="failed", arrival=arrival,
                              completed_at=arrival)

        while attempts < self.policy.max_attempts and now < deadline:
            tile = self._pick_tile(now, tried)
            if tile is None:
                break
            begin = max(now, tile.free_at)
            if attempts == 0:
                self.queue.note_start(begin)
            if begin >= deadline:
                # The call would still be queued at its deadline: it
                # expires in the queue, zero accelerator cycles spent.
                outcome.completed_at = deadline
                outcome.status = "expired"
                outcome.error = DeadlineExceeded(
                    f"expired after {deadline - arrival:.0f} cycles "
                    f"waiting for a tile", method=full)
                outcome.health = self.health.state
                return outcome
            attempts += 1
            tried.add(tile.index)
            attempt = self._attempt(tile, method, full, handler,
                                    request_bytes, begin, deadline)
            tile.free_at = attempt.end
            outcome.accel_cycles += attempt.cycles
            outcome.attempts = attempts
            now = attempt.end
            self._record(tile, attempt, now)
            if attempt.ok or attempt.expired:
                if attempt.ok and attempts == 1:
                    hedged = self._maybe_hedge(
                        attempt, tile, method, full, handler,
                        request_bytes, begin, deadline, tried, outcome)
                    if hedged is not None:
                        attempt, now = hedged
                outcome.tile = tile.index
                return self._settle(outcome, attempt, full, deadline)
            if attempt.permanent:
                outcome.completed_at = now
                outcome.status = "failed"
                outcome.error = RpcError.wrap(attempt.fault, method=full)
                outcome.health = self.health.state
                return outcome
            last_fault = attempt.fault
            if attempts < self.policy.max_attempts:
                self.stats.failovers += 1

        # Accelerator service is unavailable (faults everywhere, or all
        # breakers open): fall back to the host core iff the precomputed
        # software cost fits the remaining budget.
        return self._host_serve(method, full, handler, request_bytes,
                                arrival, now, deadline, last_fault,
                                outcome)

    def _pick_tile(self, now: float, tried: set[int]):
        allowed = [t for t in self.tiles
                   if t.index not in tried and t.breaker.allow(now)]
        self.health.refresh(now)  # allow() may have opened a probe
        if not allowed:
            return None
        return min(allowed, key=lambda t: t.free_at)

    def _record(self, tile: Tile, attempt: _Attempt, now: float) -> None:
        if attempt.ok or attempt.expired:
            # The tile did its work correctly; a deadline gate firing is
            # the *call's* problem, not the hardware's.
            tile.breaker.record_success(now)
        elif not attempt.permanent:
            tile.breaker.record_failure(now)
        self.health.refresh(now)

    def _settle(self, outcome: CallOutcome, attempt: _Attempt,
                full: str, deadline: float) -> CallOutcome:
        outcome.completed_at = attempt.end
        outcome.health = self.health.state
        if attempt.ok and attempt.end <= deadline:
            outcome.status = "ok"
            outcome.response = attempt.data
        else:
            outcome.status = "expired"
            outcome.error = DeadlineExceeded(
                f"deadline passed at cycle {deadline:.0f}; call "
                f"terminated at {attempt.end:.0f}", method=full)
        return outcome

    # -- one accelerator attempt -----------------------------------------------

    def _attempt(self, tile: Tile, method, full: str, handler,
                 request_bytes: bytes, begin: float, deadline: float,
                 stretch: float = 1.0) -> _Attempt:
        """Run deser -> handler -> ser on one tile, gating each stage
        start on the deadline.  ``stretch`` models shared-uncore
        contention while a hedge race is in flight.

        With ``policy.stateless_tiles`` the attempt runs inside a
        pure-charging device window: whatever the outcome (success,
        fault, expiry), the tile's TLB and heap state at window close
        is exactly what it was at open, so charging cannot depend on
        which tile -- or which shard -- served the previous call."""
        if not self.policy.stateless_tiles:
            return self._run_attempt(tile, method, full, handler,
                                     request_bytes, begin, deadline,
                                     stretch)
        mark = tile.accel.begin_pure_call()
        try:
            return self._run_attempt(tile, method, full, handler,
                                     request_bytes, begin, deadline,
                                     stretch)
        finally:
            tile.accel.end_pure_call(mark)

    def _run_attempt(self, tile: Tile, method, full: str, handler,
                     request_bytes: bytes, begin: float, deadline: float,
                     stretch: float = 1.0) -> _Attempt:
        accel = tile.accel
        now = begin
        charged = 0.0
        try:
            result = accel.deserialize(method.input_descriptor,
                                       request_bytes,
                                       auto_renew_arena=True)
        except AccelFault as fault:
            cost = stretch * getattr(fault, "charged_cycles", fault.cycle)
            return _Attempt(end=now + cost, cycles=cost, fault=fault,
                            permanent=not fault.injected)
        except ProtoError as error:
            return _Attempt(end=now, cycles=0.0, fault=error,
                            permanent=True)
        cost = stretch * (result.stats.cycles
                          + result.stats.transport_cycles)
        now += cost
        charged += cost
        if now >= deadline:
            return _Attempt(end=now, cycles=charged, expired=True)

        request = accel.read_message(method.input_descriptor,
                                     result.dest_addr)
        response = handler(request)
        if (not isinstance(response, Message)
                or response.descriptor is not method.output_descriptor):
            return _Attempt(end=now, cycles=charged, permanent=True,
                            fault=RpcError(
                                f"handler must return {method.output_type}",
                                method=full, site="rpc.handler"))
        now += self.policy.handler_cycles
        charged += self.policy.handler_cycles
        if now >= deadline:
            return _Attempt(end=now, cycles=charged, expired=True)

        try:
            addr = accel.load_object(response)
            ser = accel.serialize(method.output_descriptor, addr)
        except AccelFault as fault:
            cost = stretch * getattr(fault, "charged_cycles", fault.cycle)
            return _Attempt(end=now + cost, cycles=charged + cost,
                            fault=fault, permanent=not fault.injected)
        cost = stretch * (ser.stats.cycles + ser.stats.transport_cycles)
        now += cost
        charged += cost
        accel.reset_arenas()  # request lifetime over; reclaim
        return _Attempt(end=now, cycles=charged, ok=True, data=ser.data)

    # -- hedging ----------------------------------------------------------------

    def _maybe_hedge(self, primary: _Attempt, primary_tile: Tile, method,
                     full: str, handler, request_bytes: bytes,
                     begin: float, deadline: float, tried: set[int],
                     outcome: CallOutcome):
        """Race a second tile against a slow (but successful) primary.

        Returns ``(winning_attempt, now)`` or ``None`` when no hedge
        fired.  Both attempts are charged; the overlap is stretched by
        the shared-uncore contention model."""
        policy = self.policy.hedge
        if not policy.should_hedge(primary.cycles):
            return None
        fire_at = begin + policy.after_cycles
        tile = self._pick_tile(fire_at, tried)
        if tile is None:
            return None
        hedge_begin = max(fire_at, tile.free_at)
        if hedge_begin >= deadline:
            return None
        self.stats.hedges += 1
        outcome.hedged = True
        tried.add(tile.index)
        stretch = self.policy.hedge_stretch()
        hedge = self._attempt(tile, method, full, handler, request_bytes,
                              hedge_begin, deadline, stretch=stretch)
        tile.free_at = hedge.end
        outcome.accel_cycles += hedge.cycles
        outcome.attempts += 1
        self._record(tile, hedge, hedge.end)
        if hedge.ok and hedge.end < primary.end:
            self.stats.hedge_wins += 1
            self.stats.wasted_hedge_cycles += primary.cycles
            outcome.tile = tile.index
            return hedge, hedge.end
        self.stats.wasted_hedge_cycles += hedge.cycles
        return primary, primary.end

    # -- host fallback ----------------------------------------------------------

    def _host_cost(self, method, handler, request_bytes: bytes):
        """Price and produce the software answer without charging yet."""
        message, dop = self._host().deserialize(method.input_descriptor,
                                                bytes(request_bytes))
        response = handler(message)
        if (not isinstance(response, Message)
                or response.descriptor is not method.output_descriptor):
            return None, None
        data, sop = self._host().serialize(response)
        return data, dop.cycles + self.policy.handler_cycles + sop.cycles

    def _host_serve(self, method, full: str, handler,
                    request_bytes: bytes, arrival: float, now: float,
                    deadline: float, last_fault, outcome: CallOutcome
                    ) -> CallOutcome:
        if self.policy.host_fallback and now < deadline:
            try:
                data, cost = self._host_cost(method, handler,
                                             request_bytes)
            except ProtoError as error:
                outcome.completed_at = now
                outcome.status = "failed"
                outcome.error = RpcError.wrap(error, method=full)
                outcome.health = self.health.state
                return outcome
            if data is not None and now + cost <= deadline:
                self.stats.host_fallbacks += 1
                outcome.completed_at = now + cost
                outcome.cpu_cycles += cost
                outcome.status = "ok"
                outcome.response = data
                outcome.host_fallback = True
                outcome.health = self.health.state
                return outcome
        outcome.completed_at = now
        outcome.health = self.health.state
        if now >= deadline:
            outcome.status = "expired"
            outcome.error = DeadlineExceeded(
                f"no recovery path fits the remaining budget "
                f"(deadline at cycle {deadline:.0f})", method=full)
        elif last_fault is not None:
            outcome.status = "failed"
            outcome.error = RpcError.wrap(last_fault, method=full)
        else:
            # Every breaker is open (pool bypassed) and the host path is
            # off or does not fit the budget.
            outcome.status = "failed"
            outcome.error = RpcError(
                "no accelerator tile available (breakers open) and no "
                "host path fits the budget", method=full,
                site="serve.breaker")
        return outcome
