"""Per-tile circuit breakers and the serving-level health FSM.

A :class:`CircuitBreaker` guards one accelerator tile.  It follows the
classic three-state machine, driven entirely by the simulated cycle
clock:

* ``CLOSED`` -- offloads flow; consecutive failures are counted.
* ``OPEN`` -- after ``failure_threshold`` consecutive failures the tile
  is quarantined: :meth:`CircuitBreaker.allow` refuses offloads until
  ``recovery_cycles`` have elapsed since the trip.
* ``HALF_OPEN`` -- the cool-down expired; probe calls are admitted one
  at a time.  ``probe_successes`` consecutive successes re-close the
  breaker; any probe failure re-opens it and restarts the cool-down.

The FSM is structurally incapable of an ``OPEN -> CLOSED`` edge: the
only exit from ``OPEN`` is the half-open probe, and the only entry to
``CLOSED`` from there is a recorded probe success
(``tests/serve/test_breaker.py`` property-checks this over arbitrary
event sequences).  Every transition is appended to
:attr:`CircuitBreaker.transitions` as ``(cycle, from_state, to_state)``.

:class:`HealthMonitor` derives the serving-level health FSM from the
tile breakers: ``HEALTHY`` (all closed), ``DEGRADED`` (some tile not
closed), ``BYPASSED`` (every tile quarantined -- calls go straight to
the host software library).  It is surfaced in perf reports and the
serving benchmark output.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class HealthState(enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    BYPASSED = "bypassed"


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip/recovery knobs for one tile's breaker."""

    #: Consecutive failures that trip CLOSED -> OPEN.
    failure_threshold: int = 3
    #: Cool-down (simulated cycles) before OPEN admits a probe.
    recovery_cycles: float = 50_000.0
    #: Consecutive HALF_OPEN successes required to re-close.
    probe_successes: int = 2
    #: Disabled breakers never trip: the serving layer behaves exactly
    #: like the bare PR 2 driver (tests/serve/test_breaker.py pins this).
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.recovery_cycles < 0:
            raise ValueError("recovery_cycles must be >= 0")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")


@dataclass
class CircuitBreaker:
    """Three-state breaker for one accelerator tile."""

    policy: BreakerPolicy = field(default_factory=BreakerPolicy)
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    probe_streak: int = 0
    opened_at: float = 0.0
    #: (cycle, from_state, to_state) for every transition, in order.
    transitions: list = field(default_factory=list)

    def _move(self, to: BreakerState, now: float) -> None:
        self.transitions.append((now, self.state, to))
        self.state = to

    def allow(self, now: float) -> bool:
        """May an offload be issued to this tile at cycle ``now``?

        An OPEN breaker whose cool-down has elapsed transitions to
        HALF_OPEN here (the probe *is* the admitted call).
        """
        if not self.policy.enabled:
            return True
        if self.state is BreakerState.OPEN:
            if now - self.opened_at >= self.policy.recovery_cycles:
                self.probe_streak = 0
                self._move(BreakerState.HALF_OPEN, now)
                return True
            return False
        return True

    def record_success(self, now: float) -> None:
        if not self.policy.enabled:
            return
        if self.state is BreakerState.HALF_OPEN:
            self.probe_streak += 1
            if self.probe_streak >= self.policy.probe_successes:
                self.consecutive_failures = 0
                self._move(BreakerState.CLOSED, now)
        else:
            self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        if not self.policy.enabled:
            return
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: quarantine again, restart the cool-down.
            self.opened_at = now
            self._move(BreakerState.OPEN, now)
            return
        self.consecutive_failures += 1
        if (self.state is BreakerState.CLOSED
                and self.consecutive_failures
                >= self.policy.failure_threshold):
            self.opened_at = now
            self._move(BreakerState.OPEN, now)


class HealthMonitor:
    """Serving-level health derived from the per-tile breakers."""

    def __init__(self, breakers: list[CircuitBreaker]):
        if not breakers:
            raise ValueError("need at least one breaker")
        self.breakers = breakers
        #: (cycle, from_state, to_state) health transitions, in order.
        self.transitions: list = []
        self._state = self.derive()

    def derive(self) -> HealthState:
        """Health implied by the breakers' current states."""
        states = [b.state for b in self.breakers]
        if all(s is BreakerState.CLOSED for s in states):
            return HealthState.HEALTHY
        if all(s is BreakerState.OPEN for s in states):
            return HealthState.BYPASSED
        return HealthState.DEGRADED

    @property
    def state(self) -> HealthState:
        return self._state

    def refresh(self, now: float) -> HealthState:
        """Re-derive health after breaker activity; log transitions."""
        new = self.derive()
        if new is not self._state:
            self.transitions.append((now, self._state, new))
            self._state = new
        return new
