"""Per-tenant admission budgets and the fabric-level tenant registry.

The fabric's isolation claim -- one tenant's overload sheds *that
tenant*, not the fleet -- rests on accounting admission per tenant
before any shard queue is consulted:

* :class:`TenantPolicy` bounds a tenant's *in-flight* calls across the
  whole fabric (admitted at the fabric, not yet terminated on the
  simulated clock).  An arrival past the budget is shed at the front
  door with :class:`~repro.serve.errors.TenantOverloaded` -- zero
  accelerator cycles, zero shard-queue occupancy, so a tenant at 10x
  its budget cannot crowd a under-budget tenant out of the shard
  queues (``tests/serve/test_fabric_isolation.py``).
* :class:`TenantAccount` is the live ledger: the in-flight window plus
  a per-tenant :class:`~repro.serve.server.ServeStats`, which extends
  the PR 3 accounting invariant tenant by tenant
  (``shed + failed + succeeded + migrated == offered``).  The
  ``migrated`` bucket counts calls that completed OK away from their
  (draining) old-ring home during a reshard
  (:mod:`repro.serve.fabric`); it is disjoint from ``succeeded`` so no
  resharded call is ever double-counted or silently dropped
  (``tests/fleet/test_reshard_replay.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.proto.descriptor import ServiceDescriptor
from repro.serve.server import ServeStats


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission budget."""

    #: Calls admitted at the fabric but not yet terminated; arrivals
    #: past this bound are shed for this tenant only.
    max_inflight: int = 64

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")


@dataclass
class TenantAccount:
    """The fabric's live ledger for one tenant."""

    tenant: str
    service: ServiceDescriptor
    policy: TenantPolicy = field(default_factory=TenantPolicy)
    stats: ServeStats = field(default_factory=ServeStats)
    #: Termination cycles of admitted calls; an entry > now means that
    #: call is still in flight at cycle ``now``.
    _completions: list[float] = field(default_factory=list)

    def inflight(self, now: float) -> int:
        self._completions = [c for c in self._completions if c > now]
        return len(self._completions)

    def admit(self, now: float) -> bool:
        """Budget check at arrival; does *not* record occupancy yet
        (the caller notes the completion once the shard prices it)."""
        return self.inflight(now) < self.policy.max_inflight

    def note_completion(self, completed_at: float) -> None:
        self._completions.append(completed_at)

    def fold(self, outcome) -> None:
        """Fold one terminal :class:`~repro.serve.server.CallOutcome`
        into this tenant's fabric-level stats."""
        stats = self.stats
        stats.offered += 1
        stats.accel_cycles += outcome.accel_cycles
        stats.cpu_cycles += outcome.cpu_cycles
        if outcome.status == "shed":
            stats.shed += 1
            return
        stats.latencies.append(outcome.latency_cycles)
        if outcome.status == "ok":
            # A migrated success terminated away from its draining
            # old-ring home: its own accounting bucket, disjoint from
            # succeeded, so the resharding identity closes per tenant.
            if outcome.migrated:
                stats.migrated += 1
            else:
                stats.succeeded += 1
        elif outcome.status == "expired":
            stats.expired += 1
        else:
            stats.faulted += 1


class TenantRegistry:
    """All tenants known to the fabric, keyed by tenant id."""

    def __init__(self):
        self._accounts: dict[str, TenantAccount] = {}

    def add(self, tenant: str, service: ServiceDescriptor,
            policy: TenantPolicy | None = None) -> TenantAccount:
        if tenant in self._accounts:
            raise ValueError(f"tenant {tenant!r} already registered")
        account = TenantAccount(tenant, service,
                                policy or TenantPolicy())
        self._accounts[tenant] = account
        return account

    def account(self, tenant: str) -> TenantAccount:
        try:
            return self._accounts[tenant]
        except KeyError:
            raise KeyError(f"tenant {tenant!r} is not registered") \
                from None

    def __iter__(self):
        return iter(self._accounts.values())

    def __len__(self) -> int:
        return len(self._accounts)

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(self._accounts)
