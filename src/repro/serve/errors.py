"""Structured serving-layer rejections.

Both subclass :class:`~repro.proto.rpc.RpcError` so callers inspect one
taxonomy: ``method`` names the call, ``site`` names the serving stage
that rejected it (``serve.queue``, ``serve.deadline``), and the message
carries the quantitative detail.  Neither rejection consumes accelerator
cycles -- load shedding and deadline expiry happen *before* the offload
is issued (docs/SERVING.md).
"""

from __future__ import annotations

from repro.proto.rpc import RpcError


class Overloaded(RpcError):
    """The admission queue was full: the call was shed at arrival."""

    def __init__(self, message: str, *, method: str | None = None):
        super().__init__(message, method=method, site="serve.queue")


class TenantOverloaded(RpcError):
    """The tenant's own admission budget was exhausted: the call was
    shed at the fabric front door, before any shard queue was touched.

    Distinct from :class:`Overloaded` (a *shard* queue full) so the
    isolation story is visible in the error taxonomy: a tenant at 10x
    its budget sees ``serve.tenant`` sheds while other tenants' calls
    keep flowing (docs/SERVING.md, fabric section).
    """

    def __init__(self, message: str, *, method: str | None = None,
                 tenant: str | None = None):
        super().__init__(message, method=method, site="serve.tenant")
        self.tenant = tenant


class DeadlineExceeded(RpcError):
    """The call's cycle budget ran out before a result was produced.

    Raised either before service starts (the queue wait alone exceeded
    the deadline -- zero accelerator cycles spent) or after a failed
    offload when no recovery path fits the remaining budget.
    """

    def __init__(self, message: str, *, method: str | None = None):
        super().__init__(message, method=method, site="serve.deadline")


class ShardDraining(RpcError):
    """The shard's drain barrier refused a new call.

    A DRAINING shard accepts only its pending work (refuse-new,
    accept-pending; docs/SERVING.md, resharding section).  The fabric
    re-routes around draining shards, so this surfaces only when a
    caller bypasses the router -- a zero-cycle structured refusal, never
    a silent drop.
    """

    def __init__(self, message: str, *, method: str | None = None):
        super().__init__(message, method=method, site="serve.drain")


class FabricConfigError(ValueError):
    """A fabric or router policy knob failed validation at construction.

    Structured so tooling can name the offending knob: ``knob`` is the
    policy field, ``value`` the rejected setting.  Subclasses
    :class:`ValueError` so pre-existing ``except ValueError`` call sites
    keep working.
    """

    def __init__(self, knob: str, value, message: str):
        super().__init__(f"{knob}={value!r}: {message}")
        self.knob = knob
        self.value = value
