"""Structured serving-layer rejections.

Both subclass :class:`~repro.proto.rpc.RpcError` so callers inspect one
taxonomy: ``method`` names the call, ``site`` names the serving stage
that rejected it (``serve.queue``, ``serve.deadline``), and the message
carries the quantitative detail.  Neither rejection consumes accelerator
cycles -- load shedding and deadline expiry happen *before* the offload
is issued (docs/SERVING.md).
"""

from __future__ import annotations

from repro.proto.rpc import RpcError


class Overloaded(RpcError):
    """The admission queue was full: the call was shed at arrival."""

    def __init__(self, message: str, *, method: str | None = None):
        super().__init__(message, method=method, site="serve.queue")


class TenantOverloaded(RpcError):
    """The tenant's own admission budget was exhausted: the call was
    shed at the fabric front door, before any shard queue was touched.

    Distinct from :class:`Overloaded` (a *shard* queue full) so the
    isolation story is visible in the error taxonomy: a tenant at 10x
    its budget sees ``serve.tenant`` sheds while other tenants' calls
    keep flowing (docs/SERVING.md, fabric section).
    """

    def __init__(self, message: str, *, method: str | None = None,
                 tenant: str | None = None):
        super().__init__(message, method=method, site="serve.tenant")
        self.tenant = tenant


class DeadlineExceeded(RpcError):
    """The call's cycle budget ran out before a result was produced.

    Raised either before service starts (the queue wait alone exceeded
    the deadline -- zero accelerator cycles spent) or after a failed
    offload when no recovery path fits the remaining budget.
    """

    def __init__(self, message: str, *, method: str | None = None):
        super().__init__(message, method=method, site="serve.deadline")
