"""Fleet-replay traffic generation and the offered-load fleet sweep.

The paper's efficiency claim is fleet-shaped: protoacc's cycle wins
matter because they multiply across the Section 3 distributions.  This
module replays those distributions through the serving fabric as an
open-loop arrival process with deterministic seeds:

* **Message sizes** are drawn from the digitized Figure 3 buckets
  (:data:`repro.fleet.distributions.MESSAGE_SIZE_BUCKETS`), log-uniform
  within a bucket exactly like :class:`repro.fleet.sampler.
  FleetSampler`, capped at ``max_payload_bytes`` to keep replay
  runtimes sane (the cap is recorded in the bench payload).
* **Schema mix** follows the Figure 4 field statistics: tenants are
  assigned one of three schema templates -- varint-dominated (>56% of
  fleet fields are varint-like), bytes-dominated (bytes/string carry
  >92% of message bytes), and mixed -- with weights reflecting that
  split.  Varint value *sizes* follow
  :data:`~repro.fleet.distributions.VARINT_SIZE_SHARES`.
* **Arrivals** are exponential interarrivals on the simulated cycle
  clock at a configurable offered load; the same seed always yields the
  identical call sequence (tenant, bytes, arrival cycle), which is what
  makes the shard-count bit-identity test possible
  (``tests/serve/test_fleet_replay.py``).

``workload="echo"`` swaps the fleet templates for per-tenant copies of
the PR 3 Echo schema -- the acceptance workload for the 1 -> 4 shard
p99/throughput curves in ``BENCH_fleet.json``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.fleet.distributions import (
    MESSAGE_SIZE_BUCKETS,
    VARINT_SIZE_SHARES,
)
from repro.fleet.sampler import _pick_bucket, _size_within
from repro.proto import parse_schema
from repro.serve.fabric import FabricPolicy, ServingFabric
from repro.serve.router import _hash64
from repro.serve.server import ResilientServer, ServePolicy
from repro.serve.tenants import TenantPolicy
from repro.serve.workload import SERVING_SCHEMA

#: Schema templates for the fleet mix.  Every template exposes the same
#: service shape (``Fleet.Ingest``) so the replay driver is uniform;
#: the *request* layouts differ per the Figure 4 field statistics.
VARINT_SCHEMA = """
    syntax = "proto2";

    message FleetRequest {
      optional uint64 cookie = 1;
      repeated uint64 ticks = 2;
      repeated uint32 ids = 3;
      optional bool flag = 4;
    }

    message FleetResponse {
      optional uint64 cookie = 1;
      optional uint32 count = 2;
    }

    service Fleet {
      rpc Ingest (FleetRequest) returns (FleetResponse);
    }
"""

BYTES_SCHEMA = """
    syntax = "proto2";

    message FleetRequest {
      optional uint64 cookie = 1;
      optional bytes payload = 2;
      optional string tag = 3;
    }

    message FleetResponse {
      optional uint64 cookie = 1;
      optional uint32 count = 2;
    }

    service Fleet {
      rpc Ingest (FleetRequest) returns (FleetResponse);
    }
"""

MIXED_SCHEMA = """
    syntax = "proto2";

    message FleetRequest {
      optional uint64 cookie = 1;
      optional string tag = 2;
      repeated int32 counts = 3;
      optional fixed64 stamp = 4;
      optional bytes blob = 5;
    }

    message FleetResponse {
      optional uint64 cookie = 1;
      optional uint32 count = 2;
    }

    service Fleet {
      rpc Ingest (FleetRequest) returns (FleetResponse);
    }
"""

FLEET_TEMPLATES: dict[str, str] = {
    "varint": VARINT_SCHEMA,
    "bytes": BYTES_SCHEMA,
    "mixed": MIXED_SCHEMA,
}

#: Tenant-count mix over the templates.  Figure 4a: varint-like fields
#: dominate field *counts*; Figure 4b: bytes-like fields dominate byte
#: *volume* -- so varint tenants are the most numerous while bytes
#: tenants move the most bytes per message.
FLEET_TEMPLATE_WEIGHTS: dict[str, float] = {
    "varint": 0.5,
    "bytes": 0.3,
    "mixed": 0.2,
}


#: The replay serving discipline: pure per-call charging
#: (``stateless_tiles`` -- TLB flush + heap rollback around every
#: attempt) so neither shard placement nor call order can change a
#: call's cycle bill.  Both the fabric and the single-node reference
#: run under it, which is what makes them bit-comparable.
REPLAY_SERVE_POLICY = ServePolicy(stateless_tiles=True)


@dataclass(frozen=True)
class FleetReplaySpec:
    """One seeded open-loop fleet replay."""

    messages: int = 1_000
    #: Mean cycles between arrivals (exponential); lower = hotter.
    interarrival_cycles: float = 2_000.0
    seed: int = 424242
    tenants: int = 4
    #: "fleet" (Section 3 schema/size mix) or "echo" (PR 3 acceptance
    #: workload, one Echo schema copy per tenant).
    workload: str = "fleet"
    #: Cap on drawn payload sizes (the Figure 3 top bucket reaches tens
    #: of KiB; replay runtime scales with it).
    max_payload_bytes: int = 2_048
    #: Echo-workload request shape.
    text_bytes: int = 64
    repeats: int = 4

    def __post_init__(self) -> None:
        if self.messages < 1:
            raise ValueError("messages must be >= 1")
        if self.interarrival_cycles <= 0:
            raise ValueError("interarrival_cycles must be positive")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.workload not in ("fleet", "echo"):
            raise ValueError(f"unknown workload {self.workload!r}")


@dataclass(frozen=True)
class ReplayCall:
    """One generated arrival, fully determined by the spec's seed."""

    at: float
    tenant: str
    method: str
    request: bytes


def tenant_plan(spec: FleetReplaySpec) -> tuple[tuple[str, str], ...]:
    """Deterministic (tenant_id, template) assignment for the spec."""
    if spec.workload == "echo":
        return tuple((f"tenant-{i}", "echo") for i in range(spec.tenants))
    rng = random.Random(_hash64(f"{spec.seed}:tenant-plan"))
    names = list(FLEET_TEMPLATE_WEIGHTS)
    weights = list(FLEET_TEMPLATE_WEIGHTS.values())
    return tuple((f"tenant-{i}", rng.choices(names, weights)[0])
                 for i in range(spec.tenants))


def _draw_size(rng: random.Random, cap: int) -> int:
    """One Figure 3 message-size draw, capped for replay runtime."""
    size = _size_within(rng, _pick_bucket(rng, MESSAGE_SIZE_BUCKETS))
    return max(1, min(size, cap))


_VARINT_SIZES = list(VARINT_SIZE_SHARES)
_VARINT_WEIGHTS = list(VARINT_SIZE_SHARES.values())


def _draw_varint(rng: random.Random, max_bytes: int = 9) -> int:
    """A value whose varint encoding is ``s`` bytes, with ``s`` drawn
    from the fleet's encoded-size histogram."""
    s = min(rng.choices(_VARINT_SIZES, _VARINT_WEIGHTS)[0], max_bytes)
    if s == 1:
        return rng.randrange(0, 1 << 7)
    return rng.randrange(1 << (7 * (s - 1)), 1 << (7 * s))


_TEXT_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789 "


def _fleet_request(template: str, schema, rng: random.Random,
                   size: int):
    """Fill one request message to roughly ``size`` encoded bytes,
    with the template's field mix."""
    request = schema["FleetRequest"].new_message()
    request["cookie"] = rng.getrandbits(32)
    budget = size
    if template == "varint":
        while budget > 0:
            value = _draw_varint(rng)
            field = "ticks" if rng.random() < 0.7 else "ids"
            if field == "ids":
                value &= 0xFFFFFFFF
            request[field].append(value)
            budget -= 1 + max(1, (value.bit_length() + 6) // 7)
        request["flag"] = bool(rng.getrandbits(1))
    elif template == "bytes":
        tag_bytes = min(12, budget)
        request["tag"] = "".join(rng.choice(_TEXT_ALPHABET)
                                 for _ in range(tag_bytes))
        payload = max(0, budget - tag_bytes)
        request["payload"] = rng.randbytes(payload)
    else:  # mixed
        tag_bytes = min(max(1, budget // 4), 64)
        request["tag"] = "".join(rng.choice(_TEXT_ALPHABET)
                                 for _ in range(tag_bytes))
        request["stamp"] = rng.getrandbits(64)
        budget -= tag_bytes + 9
        for _ in range(max(1, min(budget // 4, 32))):
            request["counts"].append(rng.randrange(0, 1 << 20))
            budget -= 4
        request["blob"] = rng.randbytes(max(0, budget))
    return request


def _echo_request(schema, rng: random.Random, spec: FleetReplaySpec):
    request = schema["EchoRequest"].new_message()
    request["text"] = "".join(rng.choice(_TEXT_ALPHABET)
                              for _ in range(spec.text_bytes))
    request["repeats"] = spec.repeats
    request["cookie"] = rng.getrandbits(32)
    return request


def generate_calls(spec: FleetReplaySpec) -> list[ReplayCall]:
    """The full deterministic call sequence for one replay: same seed
    => identical tenants, bytes, and arrival cycles, independent of how
    many shards will serve them."""
    plan = tenant_plan(spec)
    schemas = {template: parse_schema(proto)
               for template, proto in FLEET_TEMPLATES.items()}
    echo_schema = (parse_schema(SERVING_SCHEMA)
                   if spec.workload == "echo" else None)
    rng = random.Random(spec.seed)
    calls: list[ReplayCall] = []
    now = 0.0
    for _ in range(spec.messages):
        now += rng.expovariate(1.0 / spec.interarrival_cycles)
        tenant, template = plan[rng.randrange(len(plan))]
        if template == "echo":
            request = _echo_request(echo_schema, rng, spec)
            method = "Repeat"
        else:
            size = _draw_size(rng, spec.max_payload_bytes)
            request = _fleet_request(template, schemas[template], rng,
                                     size)
            method = "Ingest"
        calls.append(ReplayCall(at=now, tenant=tenant, method=method,
                                request=request.serialize()))
    return calls


# -- attaching tenants to a fabric or a single server ---------------------------


def _make_fleet_handler(schema, template: str):
    def ingest(request):
        response = schema["FleetResponse"].new_message()
        response["cookie"] = request["cookie"]
        if template == "varint":
            count = len(request["ticks"]) + len(request["ids"])
        elif template == "bytes":
            count = len(request["payload"] or b"")
        else:
            count = len(request["blob"] or b"")
        response["count"] = count & 0xFFFFFFFF
        return response
    return ingest


def _make_echo_handler(schema):
    def repeat(request):
        response = schema["EchoResponse"].new_message()
        for _ in range(request["repeats"]):
            response["texts"].append(request["text"])
        response["cookie"] = request["cookie"]
        return response
    return repeat


def _attach(add_tenant, register, spec: FleetReplaySpec) -> None:
    """Attach every tenant (fresh schema parse per tenant -- that *is*
    the per-tenant schema registry) and register its handler."""
    for tenant, template in tenant_plan(spec):
        if template == "echo":
            schema = parse_schema(SERVING_SCHEMA)
            add_tenant(tenant, schema.service("Echo"))
            register(tenant, "Repeat", _make_echo_handler(schema))
        else:
            schema = parse_schema(FLEET_TEMPLATES[template])
            add_tenant(tenant, schema.service("Fleet"))
            register(tenant, "Ingest",
                     _make_fleet_handler(schema, template))


def build_fleet_fabric(policy: FabricPolicy, spec: FleetReplaySpec,
                       budget: TenantPolicy | None = None
                       ) -> ServingFabric:
    """A fabric with the spec's tenants attached and handlers wired."""
    fabric = ServingFabric(policy)
    _attach(lambda t, s: fabric.add_tenant(t, s, budget),
            fabric.register, spec)
    return fabric


def build_fleet_server(policy: ServePolicy | None,
                       spec: FleetReplaySpec) -> ResilientServer:
    """The single-node twin: one multi-tenant ResilientServer with the
    identical tenant set (the bit-identity reference path)."""
    server = ResilientServer(policy=policy)
    _attach(server.attach_tenant,
            lambda t, m, h: server.register(m, h, tenant=t), spec)
    return server


def replay_through_fabric(fabric: ServingFabric, calls) -> list:
    return [fabric.call(c.tenant, c.method, c.request, at=c.at)
            for c in calls]


def replay_through_server(server: ResilientServer, calls) -> list:
    return [server.call(c.method, c.request, at=c.at, tenant=c.tenant)
            for c in calls]


# -- resize replays (ISSUE 8) ---------------------------------------------------


@dataclass(frozen=True)
class ResizeEvent:
    """One scheduled resize during a replay, keyed by call index (the
    event fires on the simulated clock at that call's arrival cycle, so
    the schedule is as deterministic as the call sequence itself)."""

    #: Fire just before the call with this index is offered.
    at_call: int
    #: "add" grows the fleet by one JOINING shard; "drain" evicts.
    action: str
    #: The shard to drain (ignored for "add").
    shard: int | None = None

    def __post_init__(self) -> None:
        if self.at_call < 0:
            raise ValueError("at_call must be >= 0")
        if self.action not in ("add", "drain"):
            raise ValueError(f"unknown resize action {self.action!r}")
        if self.action == "drain" and self.shard is None:
            raise ValueError("drain events need a shard")


@dataclass
class ResizeReport:
    """Everything a test or the bench needs about one resize replay."""

    base_shards: int
    events: tuple[ResizeEvent, ...]
    outcomes: list
    fabric: ServingFabric
    #: Tenants whose ring home differs between the pre-resize and final
    #: routing tables (the only tenants whose tails may move).
    moved_tenants: tuple[str, ...]
    unmoved_tenants: tuple[str, ...]


def accounting_identity_ok(fabric: ServingFabric) -> bool:
    """The resharding zero-drop invariant, checked per tenant:
    ``shed + expired + faulted + succeeded + migrated == offered``."""
    for account in fabric.registry:
        s = account.stats
        if (s.shed + s.expired + s.faulted + s.succeeded + s.migrated
                != s.offered):
            return False
    return True


def tenant_signature(outcomes, tenant: str) -> list[tuple]:
    """One tenant's per-call charging signature, in offered order --
    the bit-identity comparand for unmoved tenants across a resize
    (status, response bytes, accelerator cycles, CPU cycles)."""
    return [(o.status, o.response, o.accel_cycles, o.cpu_cycles)
            for o in outcomes if o.tenant == tenant]


def run_resize_replay(spec: FleetReplaySpec, base_shards: int,
                      events, serve: ServePolicy | None = None,
                      budget: TenantPolicy | None = None
                      ) -> ResizeReport:
    """Replay the spec's seeded call sequence through a fabric while a
    resize schedule fires mid-stream.  The call sequence is *identical*
    to the no-resize replay of the same spec -- only the fabric's shape
    changes -- so unmoved tenants' per-call charging can be compared
    bit-for-bit against ``replay_through_fabric`` on a static fabric
    (``tests/fleet/test_reshard_replay.py``)."""
    serve = serve or REPLAY_SERVE_POLICY
    calls = generate_calls(spec)
    fabric = build_fleet_fabric(
        FabricPolicy(shards=base_shards, serve=serve), spec, budget)
    base_table = fabric.routing_table()
    pending = sorted(events, key=lambda e: e.at_call)
    outcomes = []
    for i, call in enumerate(calls):
        while pending and pending[0].at_call <= i:
            event = pending.pop(0)
            if event.action == "add":
                fabric.controller.add_shard(call.at)
            else:
                fabric.controller.drain(event.shard, call.at)
        outcomes.append(fabric.call(call.tenant, call.method,
                                    call.request, at=call.at))
    final_table = fabric.routing_table()
    moved = tuple(sorted(t for t in base_table
                         if final_table[t] != base_table[t]))
    unmoved = tuple(sorted(t for t in base_table
                           if final_table[t] == base_table[t]))
    return ResizeReport(base_shards=base_shards,
                        events=tuple(sorted(events,
                                            key=lambda e: e.at_call)),
                        outcomes=outcomes, fabric=fabric,
                        moved_tenants=moved, unmoved_tenants=unmoved)


def resize_row(spec: FleetReplaySpec, report: ResizeReport,
               baseline_outcomes) -> dict:
    """One bench row comparing a resized replay against the no-resize
    replay of the identical call sequence."""
    stats = report.fabric.stats
    unmoved_identical = all(
        tenant_signature(report.outcomes, t)
        == tenant_signature(baseline_outcomes, t)
        for t in report.unmoved_tenants)
    return {
        "workload": spec.workload,
        "interarrival_cycles": spec.interarrival_cycles,
        "base_shards": report.base_shards,
        "final_shards": len([s for s in report.fabric.shards
                             if s.state.value != "removed"]),
        "events": [{"at_call": e.at_call, "action": e.action,
                    "shard": e.shard} for e in report.events],
        "ring_epoch": report.fabric.ring_epoch,
        "offered": stats.offered,
        "succeeded": stats.succeeded,
        "migrated": stats.migrated,
        "shed": stats.shed,
        "failed": stats.failed,
        "p99_cycles": stats.p99_cycles,
        "moved_tenants": list(report.moved_tenants),
        "unmoved_tenants": list(report.unmoved_tenants),
        "unmoved_bit_identical": unmoved_identical,
        "accounting_identity_ok": accounting_identity_ok(report.fabric),
        "warmup_deflections": report.fabric.warmup_deflections,
        "reshard_events": [
            {"at": e.at, "kind": e.kind, "shard": e.shard,
             "epoch": e.epoch, "detail": e.detail}
            for e in report.fabric.reshard_events],
    }


# -- the offered-load fleet sweep ----------------------------------------------


def fleet_row(shards: int, spec: FleetReplaySpec, fabric,
              outcomes) -> dict:
    """One report row: fleet aggregates for one (shards, load) run.

    ``fabric`` is a :class:`ServingFabric` or anything sharing its
    report surface (``stats``/``tenant_sheds``/``fallback_routes``/
    ``watchdog_aborts``/``healths``), notably :class:`repro.serve.
    parallel.ParallelReplayResult` -- one report path for both
    execution modes."""
    stats = fabric.stats
    makespan = max((o.completed_at for o in outcomes), default=0.0)
    delivered = stats.succeeded + stats.migrated
    throughput = (delivered / makespan * 1e6) if makespan else 0.0
    return {
        "shards": shards,
        "workload": spec.workload,
        "interarrival_cycles": spec.interarrival_cycles,
        "offered": stats.offered,
        "succeeded": stats.succeeded,
        "migrated": stats.migrated,
        "shed": stats.shed,
        "failed": stats.failed,
        "shed_rate": stats.shed_rate,
        "p50_cycles": stats.p50_cycles,
        "p99_cycles": stats.p99_cycles,
        "throughput_per_mcycle": throughput,
        "tenant_sheds": sum(fabric.tenant_sheds.values()),
        "fallback_routes": len(fabric.fallback_routes),
        "watchdog_aborts": fabric.watchdog_aborts,
        "healths": fabric.healths,
    }


def sweep_fleet(shard_counts, interarrivals, spec: FleetReplaySpec,
                serve: ServePolicy | None = None,
                budget: TenantPolicy | None = None,
                jobs: int = 1, pool=None) -> list[dict]:
    """The fleet sweep: a fresh fabric per (shard count, offered load)
    point, the *same* seeded call sequence per load point across shard
    counts (so curves are directly comparable), hottest load last.

    ``jobs > 1`` (or an explicit ``pool``) switches each point to
    host-parallel shard execution (:mod:`repro.serve.parallel`) -- one
    worker process per shard -- which charges bit-identically to the
    serial fabric, so the rows are byte-identical either way
    (``tests/fleet/test_parallel_replay.py``)."""
    serve = serve or REPLAY_SERVE_POLICY
    parallel = jobs > 1 or pool is not None
    rows = []
    for interarrival in interarrivals:
        point = replace(spec, interarrival_cycles=float(interarrival))
        calls = generate_calls(point)
        for shards in shard_counts:
            policy = FabricPolicy(shards=shards, serve=serve)
            if parallel:
                from repro.serve.parallel import run_parallel_replay
                result = run_parallel_replay(point, policy, jobs=jobs,
                                             budget=budget, pool=pool,
                                             calls=calls)
                rows.append(fleet_row(shards, point, result,
                                      result.outcomes))
            else:
                fabric = build_fleet_fabric(policy, point, budget)
                outcomes = replay_through_fabric(fabric, calls)
                rows.append(fleet_row(shards, point, fabric, outcomes))
    return rows
