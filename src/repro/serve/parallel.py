"""Host-parallel shard execution: ``jobs=N`` over the serving fabric.

The fabric's shards share no state by construction -- each is a full
:class:`~repro.serve.server.ResilientServer` with its own tile pool,
transport instance, and derived fault plan -- and the pure-charging
replay discipline (:data:`~repro.serve.replay.REPLAY_SERVE_POLICY`)
makes every call's cycle bill a pure function of its request bytes.
This module cashes that in: a worker *process* owns one
:class:`~repro.serve.fabric.FabricShard` end to end and replays exactly
the calls the consistent-hash ring routes to it, so a 4-shard replay
runs on 4 cores while charging stays bit-identical to the serial
fabric.

Why bit-identity holds (the determinism argument, asserted by
``tests/fleet/test_parallel_replay.py``):

* **Routing is static.** On a fabric that never reshards, tenant ->
  shard is a pure consistent hash (seeded blake2b ring, independent of
  ``PYTHONHASHSEED`` and process boundaries), so the dispatcher can
  pre-partition the replay without consulting any shard.
* **All mutable per-call state is shard- or tenant-local.** Tile
  ``free_at`` clocks, admission queues, breaker states, and the
  tenant's in-flight window all live with the shard that serves the
  tenant -- and *every* call of a tenant lands on that one shard -- so
  replaying a shard's calls in arrival order reproduces the serial
  fabric's state evolution on that shard exactly.
* **Shard construction is a pure function of the spec.**  A
  :class:`ShardSpec` carries only picklable policy/replay values; the
  worker re-derives the shard's fault plan from
  ``fault_plan.derive("fabric.shard", str(index))`` exactly like
  :class:`~repro.serve.fabric.FabricShard` and re-attaches *all*
  tenants in :func:`~repro.serve.replay.tenant_plan` order, because
  attaching a tenant registers its types with the device ADT table and
  therefore shifts device state that call charging sees.

The one serial behaviour a worker cannot reproduce is **cross-shard
fallback**: when faults quarantine a shard, the serial fabric re-routes
to the healthiest *other* shard, which does not exist inside a
single-shard worker.  The worker instead serves on the owning shard and
counts a ``route_deviation``; bit-identity is guaranteed whenever the
merged deviation count is zero (always, on a fault-free replay).
Resharding (drain/grow) is inherently cross-shard and stays on the
serial path -- :func:`run_parallel_replay` refuses fabrics whose
reshard machinery could fire.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.serve.errors import TenantOverloaded
from repro.serve.fabric import FabricPolicy, FabricShard
from repro.serve.replay import (
    FleetReplaySpec,
    ReplayCall,
    _attach,
    generate_calls,
    tenant_plan,
)
from repro.serve.router import ConsistentHashRouter
from repro.serve.server import CallOutcome, ServeStats
from repro.serve.tenants import TenantPolicy, TenantRegistry


@dataclass(frozen=True)
class ShardSpec:
    """A picklable recipe for rebuilding one shard in a worker process.

    Everything here is values, not live objects: the worker re-runs the
    same constructors the serial fabric would (fault-plan derivation by
    shard index, tenant attachment in plan order, transport built from
    ``policy.serve.transport``), so the rebuilt shard is bit-identical
    to its serial twin.
    """

    index: int
    policy: FabricPolicy
    replay: FleetReplaySpec
    budget: TenantPolicy | None = None


@dataclass
class ShardResult:
    """One worker's complete, picklable account of its shard's replay."""

    index: int
    #: ``(call_index, outcome)`` in arrival order -- merged by index.
    outcomes: list[tuple[int, CallOutcome]]
    #: Per-tenant fabric-level ledgers for tenants this shard owns.
    tenant_stats: dict[str, ServeStats]
    tenant_sheds: dict[str, int]
    watchdog_aborts: int
    health: str
    #: Calls served while the owning shard was unroutable (the serial
    #: fabric would have consulted cross-shard fallback); bit-identity
    #: to serial is guaranteed when this is zero fleet-wide.
    route_deviations: int
    #: CPU seconds this worker spent building + replaying the shard --
    #: the deterministic input to the bench's ideal-speedup figure.
    busy_seconds: float


def build_shard(spec: ShardSpec) -> tuple[FabricShard, TenantRegistry]:
    """Rebuild one shard exactly as the serial fabric constructs it.

    Every tenant is attached (not just this shard's) because
    ``attach_tenant`` registers the tenant's types with the device --
    per-call charging sees that ADT state, so the attachment sequence
    must match the serial fabric's.
    """
    shard = FabricShard(spec.index, spec.policy)
    registry = TenantRegistry()
    budget = spec.budget or spec.policy.default_budget

    def add_tenant(tenant, service):
        registry.add(tenant, service, budget)
        shard.server.attach_tenant(tenant, service)

    _attach(add_tenant,
            lambda t, m, h: shard.server.register(m, h, tenant=t),
            spec.replay)
    return shard, registry


def execute_shard(spec: ShardSpec,
                  calls: list[tuple[int, ReplayCall]]) -> ShardResult:
    """Replay one shard's slice of the call sequence, in arrival order.

    The loop mirrors :meth:`~repro.serve.fabric.ServingFabric.call`'s
    static-fabric path line for line -- front-door tenant budget, shed
    bookkeeping, shard serve, completion notes -- minus the reshard
    tick (a no-op on a static fabric) and cross-shard fallback (counted
    as ``route_deviations`` instead; see the module docstring).
    """
    started = time.process_time()
    shard, registry = build_shard(spec)
    outcomes: list[tuple[int, CallOutcome]] = []
    tenant_sheds: dict[str, int] = {}
    route_deviations = 0
    for call_index, call in calls:
        account = registry.account(call.tenant)
        full = account.service.full_method_name(call.method)
        if not account.admit(call.at):
            outcome = CallOutcome(
                status="shed", arrival=call.at, completed_at=call.at,
                error=TenantOverloaded(
                    f"tenant {call.tenant!r} at its in-flight budget "
                    f"({account.policy.max_inflight})",
                    method=full, tenant=call.tenant),
                tenant=call.tenant, ring_epoch=0)
            tenant_sheds[call.tenant] = \
                tenant_sheds.get(call.tenant, 0) + 1
            account.fold(outcome)
            outcomes.append((call_index, outcome))
            continue
        if not shard.view(call.at).routable:
            route_deviations += 1
        outcome = shard.server.call(call.method, call.request,
                                    at=call.at, tenant=call.tenant)
        outcome.shard = shard.index
        outcome.tenant = call.tenant
        outcome.migrated = False
        outcome.ring_epoch = 0
        shard.note_completion(outcome.completed_at)
        account.note_completion(outcome.completed_at)
        account.fold(outcome)
        outcomes.append((call_index, outcome))
    served = {c.tenant for _, c in calls}
    return ShardResult(
        index=spec.index,
        outcomes=outcomes,
        tenant_stats={a.tenant: a.stats for a in registry
                      if a.tenant in served},
        tenant_sheds=tenant_sheds,
        watchdog_aborts=shard.server.watchdog_aborts,
        health=shard.server.health.state.value,
        route_deviations=route_deviations,
        busy_seconds=time.process_time() - started)


def _worker_entry(payload: tuple) -> ShardResult:
    spec, calls = payload
    return execute_shard(spec, calls)


def warm_fleet_worker() -> None:
    """Extra pool warm-up for fleet workers: pre-parse the replay
    schema templates so a worker's first shard build measures the
    shard, not the parser."""
    from repro.proto import parse_schema
    from repro.serve.replay import FLEET_TEMPLATES
    from repro.serve.workload import SERVING_SCHEMA
    for proto in FLEET_TEMPLATES.values():
        parse_schema(proto)
    parse_schema(SERVING_SCHEMA)


@dataclass
class ParallelReplayResult:
    """The merged fleet view of one host-parallel replay.

    Duck-types the slice of :class:`~repro.serve.fabric.ServingFabric`
    that :func:`~repro.serve.replay.fleet_row` reads (``stats``,
    ``tenant_sheds``, ``fallback_routes``, ``watchdog_aborts``,
    ``healths``), so one report path serves both execution modes.
    """

    #: Merged by call index: identical order to the serial replay.
    outcomes: list[CallOutcome]
    shard_results: list[ShardResult]
    #: Tenant -> owning shard, from the pre-partition ring walk.
    routing: dict[str, int]
    jobs: int
    #: Fabric width; shards the ring sent no calls to spawn no worker
    #: (they report a fresh-server "healthy" and zero busy seconds).
    shards: int = 0

    #: Matches ServingFabric's attributes for fleet_row.
    fallback_routes: list = field(default_factory=list)

    @property
    def stats(self) -> ServeStats:
        """Fleet aggregate, folded in tenant-plan order (the serial
        registry's registration order) so float sums associate the
        same way as the serial fold."""
        by_tenant: dict[str, ServeStats] = {}
        for result in self.shard_results:
            by_tenant.update(result.tenant_stats)
        total = ServeStats()
        # Fold in registration (tenant_plan) order -- tenant-0,
        # tenant-1, ... -- so float sums associate exactly like the
        # serial registry fold.
        def plan_rank(tenant: str):
            _, _, suffix = tenant.rpartition("-")
            return (int(suffix), tenant) if suffix.isdigit() \
                else (len(by_tenant), tenant)
        for tenant in sorted(by_tenant, key=plan_rank):
            stats = by_tenant[tenant]
            total.offered += stats.offered
            total.shed += stats.shed
            total.expired += stats.expired
            total.faulted += stats.faulted
            total.succeeded += stats.succeeded
            total.migrated += stats.migrated
            total.accel_cycles += stats.accel_cycles
            total.cpu_cycles += stats.cpu_cycles
            total.latencies.extend(stats.latencies)
        return total

    @property
    def tenant_sheds(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for result in self.shard_results:
            merged.update(result.tenant_sheds)
        return merged

    @property
    def watchdog_aborts(self) -> int:
        return sum(r.watchdog_aborts for r in self.shard_results)

    def _by_index(self) -> dict[int, ShardResult]:
        return {r.index: r for r in self.shard_results}

    @property
    def healths(self) -> list[str]:
        by_index = self._by_index()
        width = max(self.shards, *(i + 1 for i in by_index), 0) \
            if by_index else self.shards
        return [by_index[i].health if i in by_index else "healthy"
                for i in range(width)]

    @property
    def route_deviations(self) -> int:
        return sum(r.route_deviations for r in self.shard_results)

    @property
    def busy_seconds(self) -> list[float]:
        """Per-shard worker CPU seconds, in shard order."""
        by_index = self._by_index()
        width = max(self.shards, *(i + 1 for i in by_index), 0) \
            if by_index else self.shards
        return [by_index[i].busy_seconds if i in by_index else 0.0
                for i in range(width)]

    def tenant_stats(self, tenant: str) -> ServeStats:
        for result in self.shard_results:
            if tenant in result.tenant_stats:
                return result.tenant_stats[tenant]
        return ServeStats()


def partition_calls(spec: FleetReplaySpec, policy: FabricPolicy,
                    calls: list[ReplayCall]
                    ) -> tuple[dict[str, int],
                               dict[int, list[tuple[int, ReplayCall]]]]:
    """Pre-route the replay: the same ring the serial fabric builds
    (``ConsistentHashRouter`` over shards 0..N-1) assigns every tenant
    a home shard, and each shard's slice keeps global call indices so
    the merge is a deterministic scatter-gather."""
    router = ConsistentHashRouter(list(range(policy.shards)),
                                  policy.router)
    routing = {tenant: router.route(tenant)
               for tenant, _ in tenant_plan(spec)}
    slices: dict[int, list[tuple[int, ReplayCall]]] = {
        shard: [] for shard in range(policy.shards)}
    for index, call in enumerate(calls):
        slices[routing[call.tenant]].append((index, call))
    return routing, slices


def run_parallel_replay(spec: FleetReplaySpec,
                        policy: FabricPolicy | None = None,
                        jobs: int = 1,
                        budget: TenantPolicy | None = None,
                        pool: ProcessPoolExecutor | None = None,
                        calls: list[ReplayCall] | None = None
                        ) -> ParallelReplayResult:
    """Replay ``spec`` with one worker per shard, ``jobs`` at a time.

    ``jobs=1`` runs the identical shard-partitioned path in-process (no
    pool), so the parallel code itself is exercised -- and comparable
    bit-for-bit against :func:`~repro.serve.replay.
    replay_through_fabric` -- even on one core.  Pass a ``pool`` (from
    :func:`repro.bench.pool.make_pool`) to amortise worker warm-up
    across many replays; it is not shut down here.
    """
    policy = policy or FabricPolicy()
    if policy.reshard.auto_evict_after_cycles is not None:
        raise ValueError(
            "host-parallel replay needs a static fabric: auto-evict "
            "resharding is cross-shard and must run serially")
    if calls is None:
        calls = generate_calls(spec)
    routing, slices = partition_calls(spec, policy, calls)
    tasks = [(ShardSpec(index=shard, policy=policy, replay=spec,
                        budget=budget), shard_calls)
             for shard, shard_calls in slices.items() if shard_calls]
    if jobs <= 1 and pool is None:
        results = [execute_shard(spec_, shard_calls)
                   for spec_, shard_calls in tasks]
    else:
        owned = pool is None
        if owned:
            from repro.bench.pool import make_pool
            pool = make_pool(jobs, warm=warm_fleet_worker)
        try:
            results = list(pool.map(_worker_entry, tasks))
        finally:
            if owned:
                pool.shutdown()
    merged: list[CallOutcome | None] = [None] * len(calls)
    for result in results:
        for call_index, outcome in result.outcomes:
            merged[call_index] = outcome
    if any(o is None for o in merged):
        raise RuntimeError("parallel replay lost calls in the merge")
    return ParallelReplayResult(outcomes=merged, shard_results=results,
                                routing=routing, jobs=max(1, jobs),
                                shards=policy.shards)
