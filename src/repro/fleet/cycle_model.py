"""The 24-slice bytes-to-cycles attribution model (Section 3.6.4).

The fleet profilers report *bytes* per field type, not cycles.  The paper
bridges the gap by:

1. classifying fleet protobuf bytes into 24 ``[field-type-like, size]``
   slices -- ten bytes-like size buckets (Figure 4c's bounds, midpoint
   interpolation), ten varint sizes (1-10 encoded bytes, exact bins from
   protobufz), and the four fixed-width types;
2. measuring per-byte serialization/deserialization time for each slice
   with a microbenchmark on a production-class host (we use the Xeon cost
   model); and
3. multiplying bytes by time-per-byte to estimate fleet-wide time per
   slice -- Figures 5 (deserialization) and 6 (serialization).

Reproduced headline claims: no single slice dominates (no silver bullet);
only ~14% of deserialization time handles data at over 1 GB/s; and large
bytes-like fields are 100-500x faster per byte than small fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cpu.model import SoftwareCpu
from repro.cpu.xeon import xeon_cpu
from repro.fleet.distributions import (
    BYTES_FIELD_SIZE_BUCKETS,
    FIELD_BYTES_SHARES,
    VARINT_SIZE_SHARES,
)
from repro.proto.descriptor import FieldDescriptor, MessageDescriptor
from repro.proto.message import Message
from repro.proto.types import FieldType

#: How the Figure 4b byte shares map onto slice groups.
_BYTES_LIKE_SHARE = (FIELD_BYTES_SHARES["string"]
                     + FIELD_BYTES_SHARES["bytes"]
                     + FIELD_BYTES_SHARES["repeated string"]
                     + FIELD_BYTES_SHARES["repeated bytes"])
_VARINT_SHARE = FIELD_BYTES_SHARES["varint-like"]
_DOUBLE_SHARE = FIELD_BYTES_SHARES["double"]
_FLOAT_SHARE = FIELD_BYTES_SHARES["float"]
_FIXED32_SHARE = FIELD_BYTES_SHARES["fixed"] * 0.4
_FIXED64_SHARE = FIELD_BYTES_SHARES["fixed"] * 0.6


@dataclass(frozen=True)
class Slice:
    """One [field-type-like, size] slice of fleet protobuf bytes."""

    name: str
    kind: str                      # "bytes-like" | "varint" | fixed kinds
    byte_share: float              # fraction of fleet protobuf bytes
    build_message: Callable[[], Message]

    def build_batch(self, count: int = 4) -> list[Message]:
        return [self.build_message() for _ in range(count)]


def _bytes_like_message(size: int) -> Message:
    descriptor = MessageDescriptor(
        f"BytesSlice{size}",
        [FieldDescriptor(name="payload", number=1,
                         field_type=FieldType.BYTES)])
    message = descriptor.new_message()
    message["payload"] = bytes((i * 31 + 7) & 0xFF for i in range(size))
    return message


def _varint_message(encoded_bytes: int) -> Message:
    from repro.bench.microbench import varint_value

    descriptor = MessageDescriptor(
        f"VarintSlice{encoded_bytes}",
        [FieldDescriptor(name=f"f{i}", number=i,
                         field_type=FieldType.UINT64)
         for i in range(1, 6)])
    message = descriptor.new_message()
    for fd in descriptor.fields:
        message[fd.name] = varint_value(encoded_bytes)
    return message


def _fixed_message(field_type: FieldType) -> Message:
    descriptor = MessageDescriptor(
        f"FixedSlice{field_type.value}",
        [FieldDescriptor(name=f"f{i}", number=i, field_type=field_type)
         for i in range(1, 6)])
    message = descriptor.new_message()
    for index, fd in enumerate(descriptor.fields):
        if field_type in (FieldType.FLOAT, FieldType.DOUBLE):
            message[fd.name] = 1.5 + index
        else:
            message[fd.name] = 1000 + index
    return message


def build_slices() -> list[Slice]:
    """The 24 slices with their fleet byte shares."""
    slices: list[Slice] = []
    # Bytes-like: distribute the group's bytes across size buckets by
    # *byte volume* (count share x midpoint size).
    volumes = [bucket.share * bucket.midpoint
               for bucket in BYTES_FIELD_SIZE_BUCKETS]
    total_volume = sum(volumes)
    for bucket, volume in zip(BYTES_FIELD_SIZE_BUCKETS, volumes):
        size = max(1, int(bucket.midpoint))
        slices.append(Slice(
            name=f"bytes {bucket.label}",
            kind="bytes-like",
            byte_share=_BYTES_LIKE_SHARE * volume / total_volume,
            build_message=lambda size=size: _bytes_like_message(size)))
    # Varint-like: protobufz labels size bins exactly; weight by bytes.
    varint_volumes = {n: share * n
                      for n, share in VARINT_SIZE_SHARES.items()}
    total_varint = sum(varint_volumes.values())
    for encoded_bytes, volume in varint_volumes.items():
        slices.append(Slice(
            name=f"varint {encoded_bytes}B",
            kind="varint",
            byte_share=_VARINT_SHARE * volume / total_varint,
            build_message=(lambda n=encoded_bytes: _varint_message(n))))
    for name, kind, share, field_type in (
            ("double", "double-like", _DOUBLE_SHARE, FieldType.DOUBLE),
            ("float", "float-like", _FLOAT_SHARE, FieldType.FLOAT),
            ("fixed32", "fixed32-like", _FIXED32_SHARE, FieldType.FIXED32),
            ("fixed64", "fixed64-like", _FIXED64_SHARE, FieldType.FIXED64)):
        slices.append(Slice(
            name=name, kind=kind, byte_share=share,
            build_message=(lambda ft=field_type: _fixed_message(ft))))
    return slices


class CycleAttributionModel:
    """Estimates fleet ser/deser time per slice (Figures 5 and 6)."""

    def __init__(self, cpu: SoftwareCpu | None = None):
        self.cpu = cpu or xeon_cpu()
        self.slices = build_slices()

    def _seconds_per_byte(self, slice_: Slice, operation: str) -> float:
        messages = slice_.build_batch()
        total_cycles = 0.0
        total_bytes = 0
        for message in messages:
            data, result = self.cpu.serialize(message)
            if operation == "serialize":
                total_cycles += result.cycles
            else:
                _, deser = self.cpu.deserialize(message.descriptor, data)
                total_cycles += deser.cycles
            total_bytes += len(data)
        return total_cycles / self.cpu.params.clock_hz / total_bytes

    def throughput_gbps(self, slice_: Slice, operation: str) -> float:
        """Per-slice throughput in Gbit/s on the modelled host."""
        return 8 / self._seconds_per_byte(slice_, operation) / 1e9

    def time_shares(self, operation: str) -> dict[str, float]:
        """Figure 5 (deserialize) / Figure 6 (serialize): the estimated
        share of fleet ser/deser time spent per slice."""
        if operation not in ("serialize", "deserialize"):
            raise ValueError("operation must be serialize or deserialize")
        weighted = {
            slice_.name: slice_.byte_share
            * self._seconds_per_byte(slice_, operation)
            for slice_ in self.slices
        }
        total = sum(weighted.values())
        return {name: value / total for name, value in weighted.items()}

    def share_of_time_above(self, gbps: float, operation: str) -> float:
        """Fraction of fleet time spent on slices handled faster than
        ``gbps`` (the paper's "only 14% of deserialization time runs at
        over 1 GB/s" claim uses gbps = 8)."""
        shares = self.time_shares(operation)
        total = 0.0
        for slice_ in self.slices:
            if self.throughput_gbps(slice_, operation) > gbps:
                total += shares[slice_.name]
        return total

    def per_byte_speed_ratio(self, operation: str) -> float:
        """Fastest vs slowest slice in per-byte terms (the paper: large
        bytes-like fields are 100-500x faster per byte)."""
        costs = [self._seconds_per_byte(slice_, operation)
                 for slice_ in self.slices]
        return max(costs) / min(costs)
