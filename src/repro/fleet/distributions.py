"""Fleet-wide protobuf usage distributions (digitized from the paper).

Every constant here is anchored to a statement in the paper; where the
paper gives only partial information (e.g. three points of a CDF), the
remaining mass is interpolated smoothly and the anchors are asserted by
the test suite.

Anchors used:

- Section 3.2: protobuf ops are 9.6% of fleet cycles; 88% of protobuf
  cycles are C++; deserialization is 2.2% and serialization 1.25% of
  fleet cycles; footnote 4: serialization is 8.8% and Byte Size 6.0% of
  C++ protobuf cycles.
- Section 7: merge+copy+clear address 17.1% of C++ protobuf cycles,
  constructors 6.4%, destructors 13.9%.
- Section 3.3: 96% of serialized/deserialized bytes are proto2.
- Section 3.4: 16.3% of deserialization and 35.2% of serialization
  cycles come from the RPC stack.
- Section 3.5 / Figure 3: 24% of messages are <= 8 B, 56% <= 32 B,
  93% <= 512 B; the [32769, inf) bucket holds 0.08% of messages but at
  least 13.7x the bytes of the [0, 8] bucket.
- Section 3.6 / Figure 4a: over 56% of fields are varint-like; 4b: bytes
  + string (+ repeated) fields are over 92% of message bytes; 4c: the
  4097-32768 and 32769-inf buckets hold 1.3% and 0.06% of bytes fields,
  and the top bucket has at least 7.2x the bytes of the 0-8 bucket.
- Section 3.7 / Figure 7: at least 92% of observed messages have
  field-number usage density > 1/64; Section 3.9: over 90% of messages
  populate less than 52% of their defined fields.
- Section 3.8: 99.9% of protobuf bytes are at depth <= 12, 99.999% at
  depth <= 25, and the maximum observed depth is below 100.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- Section 3.2 scalars --------------------------------------------------------

#: Fraction of all fleet CPU cycles spent in protobuf operations.
PROTOBUF_FLEET_CYCLE_SHARE = 0.096
#: Fraction of protobuf cycles spent in C++ protobufs.
CPP_SHARE_OF_PROTOBUF = 0.88
#: Fraction of serialized/deserialized bytes defined in proto2 (Sec. 3.3).
PROTO2_BYTES_SHARE = 0.96
#: Fraction of deserialization cycles initiated by the RPC stack (Sec 3.4).
RPC_SHARE_OF_DESER = 0.163
#: Fraction of serialization cycles initiated by the RPC stack.
RPC_SHARE_OF_SER = 0.352

#: Figure 2: share of C++ protobuf cycles by operation.  Deserialize is
#: derived from 2.2% fleet / (9.6% x 88%); serialize and byte-size are
#: footnote 4's 8.8% and 6.0%; merge/copy/clear split Section 7's 17.1%;
#: constructors/destructors are Section 7's 6.4%/13.9%; "other" absorbs
#: the remainder (glue code not amenable to acceleration).
FLEET_OP_SHARES: dict[str, float] = {
    "deserialize": 0.260,
    "serialize": 0.088,
    "byte_size": 0.060,
    "destructor": 0.139,
    "constructor": 0.064,
    "merge": 0.070,
    "copy": 0.051,
    "clear": 0.050,
    "other": 0.218,
}


@dataclass(frozen=True)
class SizeBucket:
    """One histogram bucket over byte sizes, inclusive bounds.

    ``hi`` is ``None`` for the open-ended top bucket; ``midpoint`` follows
    the paper's interpolation rule (Section 3.6.4): bucket midpoint, with
    the top bucket's representative size chosen to make byte totals work
    out (we use 40 KiB).
    """

    lo: int
    hi: int | None
    share: float

    @property
    def label(self) -> str:
        return f"{self.lo} - {'inf' if self.hi is None else self.hi}"

    @property
    def midpoint(self) -> float:
        if self.hi is None:
            return 40960.0
        return (self.lo + self.hi) / 2

    def contains(self, size: int) -> bool:
        return size >= self.lo and (self.hi is None or size <= self.hi)


#: Figure 3: top-level message size distribution (fraction of messages).
#: Anchors: cumulative 24% at 8 B, 56% at 32 B, 93% at 512 B, 0.08% in
#: the top bucket.
MESSAGE_SIZE_BUCKETS: tuple[SizeBucket, ...] = (
    SizeBucket(0, 8, 0.24),
    SizeBucket(9, 16, 0.14),
    SizeBucket(17, 32, 0.18),
    SizeBucket(33, 64, 0.12),
    SizeBucket(65, 128, 0.10),
    SizeBucket(129, 512, 0.15),
    SizeBucket(513, 2048, 0.035),
    SizeBucket(2049, 4096, 0.015),
    SizeBucket(4097, 32768, 0.0192),
    SizeBucket(32769, None, 0.0008),
)

#: Figure 4a: fraction of observed fields by primitive type (sub-messages
#: accounted via the fields they contain).  Anchor: the varint-like types
#: (int32, int64, enum, bool, uint64, ...) sum to over 56%.
FIELD_COUNT_SHARES: dict[str, float] = {
    "int32": 0.18,
    "int64": 0.16,
    "enum": 0.12,
    "bool": 0.06,
    "uint64": 0.05,
    "string": 0.20,
    "bytes": 0.05,
    "double": 0.07,
    "float": 0.04,
    "fixed64": 0.02,
    "fixed32": 0.015,
    "other_varint": 0.035,
}

#: Figure 4b: fraction of message *bytes* by field type.  Anchor: bytes,
#: string, and repeated bytes/string constitute over 92% of bytes.
FIELD_BYTES_SHARES: dict[str, float] = {
    "string": 0.48,
    "bytes": 0.30,
    "repeated string": 0.08,
    "repeated bytes": 0.065,
    "varint-like": 0.040,
    "double": 0.015,
    "float": 0.008,
    "fixed": 0.012,
}

#: Figure 4c: bytes-field size distribution (fraction of bytes fields).
#: Anchors: 4097-32768 holds 1.3% and 32769-inf 0.06% of fields; the top
#: bucket carries at least 7.2x the bytes of the 0-8 bucket.
BYTES_FIELD_SIZE_BUCKETS: tuple[SizeBucket, ...] = (
    SizeBucket(0, 8, 0.41),
    SizeBucket(9, 16, 0.19),
    SizeBucket(17, 32, 0.145),
    SizeBucket(33, 64, 0.10),
    SizeBucket(65, 128, 0.08),
    SizeBucket(129, 512, 0.042),
    SizeBucket(513, 2048, 0.013),
    SizeBucket(2049, 4096, 0.0064),
    SizeBucket(4097, 32768, 0.013),
    SizeBucket(32769, None, 0.0006),
)

#: Encoded-size distribution of varint-like field values (1-10 bytes),
#: from the protobufz histograms (Section 3.6.4: "exact labels on size
#: bins").  Small varints dominate: most ints are small counts/ids/enums;
#: 10-byte encodings are negative int32/int64 values.
VARINT_SIZE_SHARES: dict[int, float] = {
    1: 0.52,
    2: 0.16,
    3: 0.09,
    4: 0.06,
    5: 0.05,
    6: 0.025,
    7: 0.02,
    8: 0.015,
    9: 0.01,
    10: 0.05,
}

#: Figure 7: field-number usage density histogram (bucket width 0.05,
#: labelled by lower edge; the "0.00" bucket is density < 1/64).
#: Anchors: at most 8% of messages fall below 1/64; over 90% of messages
#: populate fewer than 52% of their defined fields.
DENSITY_HISTOGRAM: dict[float, float] = {
    0.00: 0.08,   # density < 1/64: the only regime favouring prior work
    0.05: 0.10,
    0.10: 0.12,
    0.15: 0.12,
    0.20: 0.11,
    0.25: 0.09,
    0.30: 0.08,
    0.35: 0.07,
    0.40: 0.055,
    0.45: 0.045,
    0.50: 0.035,
    0.55: 0.015,
    0.60: 0.015,
    0.65: 0.012,
    0.70: 0.010,
    0.75: 0.008,
    0.80: 0.007,
    0.85: 0.006,
    0.90: 0.005,
    0.95: 0.004,
    1.00: 0.013,  # fully populated (small fixed-shape messages)
}

#: Section 3.8 anchors: cumulative fraction of protobuf *bytes* at or
#: below each sub-message depth (top-level message = depth 1).
DEPTH_CDF_POINTS: tuple[tuple[int, float], ...] = (
    (1, 0.62),
    (2, 0.85),
    (4, 0.965),
    (8, 0.996),
    (12, 0.999),
    (25, 0.99999),
    (99, 1.0),
)


def validate_distribution(shares, tolerance: float = 1e-6) -> None:
    """Raise ValueError unless the shares sum to 1."""
    values = (list(shares.values()) if isinstance(shares, dict)
              else [bucket.share for bucket in shares])
    total = sum(values)
    if abs(total - 1.0) > tolerance:
        raise ValueError(f"distribution sums to {total}, expected 1.0")
    if any(v < 0 for v in values):
        raise ValueError("distribution has negative mass")


def cumulative_message_size_share(limit: int) -> float:
    """Fraction of messages with encoded size <= ``limit`` bytes."""
    total = 0.0
    for bucket in MESSAGE_SIZE_BUCKETS:
        if bucket.hi is not None and bucket.hi <= limit:
            total += bucket.share
    return total


def bucket_byte_volumes(buckets: tuple[SizeBucket, ...]) -> dict[str, float]:
    """Relative byte volume per bucket (share x midpoint), normalised."""
    raw = {bucket.label: bucket.share * bucket.midpoint
           for bucket in buckets}
    total = sum(raw.values())
    return {label: volume / total for label, volume in raw.items()}


def density_share_above(threshold: float) -> float:
    """Fraction of messages with usage density strictly above
    ``threshold`` (Section 3.7's 1/64 comparison).

    The 0.00 bucket is *defined* as density < 1/64 (the regime where prior
    work's per-instance tables would win); every other bucket lies above.
    """
    if threshold <= 1 / 64:
        return 1.0 - DENSITY_HISTOGRAM[0.00]
    return sum(share for edge, share in DENSITY_HISTOGRAM.items()
               if edge > threshold)


def depth_coverage(depth: int) -> float:
    """Fraction of protobuf bytes at sub-message depth <= ``depth``,
    linearly interpolated between the paper's anchor points."""
    if depth < 1:
        return 0.0
    points = DEPTH_CDF_POINTS
    for (d0, c0), (d1, c1) in zip(points, points[1:]):
        if depth < d1:
            if depth <= d0:
                return c0
            frac = (depth - d0) / (d1 - d0)
            return c0 + frac * (c1 - c0)
    return 1.0
