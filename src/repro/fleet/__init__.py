"""The fleet profiling study (Section 3 of the paper).

Google's internal data sources -- GWP cycle profiles, the protobufz
message sampler, and the protodb schema database -- are proprietary, so
this subpackage encodes the *published* fleet distributions (digitized
from Figures 2-7 and the section's quoted statistics) and rebuilds the
paper's analysis pipeline on top of them:

- :mod:`repro.fleet.distributions` -- the distributions themselves, with
  provenance notes tying every constant to a paper statement.
- :mod:`repro.fleet.protodb` -- a synthetic protodb: a population of
  message types with field-number ranges and type mixes.
- :mod:`repro.fleet.sampler` -- a protobufz-style Monte Carlo sampler of
  message "shapes"; re-deriving Figures 3, 4 and 7 from its samples
  validates the pipeline.
- :mod:`repro.fleet.profiler` -- a GWP-style cycle-attribution model
  producing Figure 2 and the fleet-savings arithmetic of Section 3.2.
- :mod:`repro.fleet.cycle_model` -- the 24-slice bytes-to-cycles model
  behind Figures 5 and 6.
"""

from repro.fleet.distributions import (
    FLEET_OP_SHARES,
    MESSAGE_SIZE_BUCKETS,
    FIELD_COUNT_SHARES,
    FIELD_BYTES_SHARES,
    BYTES_FIELD_SIZE_BUCKETS,
    VARINT_SIZE_SHARES,
    DENSITY_HISTOGRAM,
    DEPTH_CDF_POINTS,
    SizeBucket,
    PROTOBUF_FLEET_CYCLE_SHARE,
    CPP_SHARE_OF_PROTOBUF,
    PROTO2_BYTES_SHARE,
    RPC_SHARE_OF_DESER,
    RPC_SHARE_OF_SER,
)
from repro.fleet.protodb import ProtoDb, MessageTypeRecord
from repro.fleet.sampler import FleetSampler, ShapeSample, SampleAnalysis
from repro.fleet.profiler import GwpProfile, fleet_opportunity
from repro.fleet.cycle_model import (
    CycleAttributionModel,
    Slice,
    build_slices,
)
from repro.fleet.gwp import (
    CycleProfile,
    GwpSampler,
    accelerator_savings,
    profile_software_service,
)

__all__ = [
    "FLEET_OP_SHARES",
    "MESSAGE_SIZE_BUCKETS",
    "FIELD_COUNT_SHARES",
    "FIELD_BYTES_SHARES",
    "BYTES_FIELD_SIZE_BUCKETS",
    "VARINT_SIZE_SHARES",
    "DENSITY_HISTOGRAM",
    "DEPTH_CDF_POINTS",
    "SizeBucket",
    "PROTOBUF_FLEET_CYCLE_SHARE",
    "CPP_SHARE_OF_PROTOBUF",
    "PROTO2_BYTES_SHARE",
    "RPC_SHARE_OF_DESER",
    "RPC_SHARE_OF_SER",
    "ProtoDb",
    "MessageTypeRecord",
    "FleetSampler",
    "ShapeSample",
    "SampleAnalysis",
    "GwpProfile",
    "fleet_opportunity",
    "CycleAttributionModel",
    "Slice",
    "build_slices",
    "CycleProfile",
    "GwpSampler",
    "accelerator_savings",
    "profile_software_service",
]
