"""A synthetic protodb: static schema metadata (Section 3.1.3).

The real protodb catalogues every .proto file in Google's codebase.  Our
synthetic counterpart generates a population of message-type records whose
aggregate statistics match the published distributions: the proto2/proto3
split (Section 3.3), packedness of repeated fields, and the field-number
ranges that drive Figure 7's usage-density analysis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.fleet.distributions import (
    FIELD_COUNT_SHARES,
    PROTO2_BYTES_SHARE,
)


@dataclass(frozen=True)
class MessageTypeRecord:
    """Static information protodb holds about one message type."""

    name: str
    syntax: str                  # "proto2" | "proto3"
    min_field_number: int
    max_field_number: int
    defined_fields: int
    field_type_mix: dict[str, int] = field(default_factory=dict)
    packed_repeated: bool = True

    @property
    def field_number_span(self) -> int:
        return self.max_field_number - self.min_field_number + 1


class ProtoDb:
    """A queryable population of synthetic message-type records."""

    def __init__(self, types: int = 2000, seed: int = 7):
        rng = random.Random(seed)
        self._records: list[MessageTypeRecord] = []
        type_names = list(FIELD_COUNT_SHARES)
        type_weights = list(FIELD_COUNT_SHARES.values())
        for index in range(types):
            defined = max(1, int(rng.lognormvariate(1.6, 0.9)))
            # Field numbers usually start at 1 and are mostly contiguous,
            # with occasional gaps from deprecations; a minority of types
            # start at a large number (the case the sparse-hasbits min-
            # field-number offset in Section 4.2 exists for).
            start = 1 if rng.random() < 0.9 else rng.randint(100, 4000)
            gap_factor = 1.0 if rng.random() < 0.7 else rng.uniform(1.2, 3.0)
            span = max(defined, int(defined * gap_factor))
            mix: dict[str, int] = {}
            for type_name in rng.choices(type_names, type_weights,
                                         k=defined):
                mix[type_name] = mix.get(type_name, 0) + 1
            self._records.append(MessageTypeRecord(
                name=f"svc{index % 40}.Message{index}",
                syntax=("proto2" if rng.random() < PROTO2_BYTES_SHARE
                        else "proto3"),
                min_field_number=start,
                max_field_number=start + span - 1,
                defined_fields=defined,
                field_type_mix=mix,
                packed_repeated=rng.random() < 0.8,
            ))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def record(self, index: int) -> MessageTypeRecord:
        return self._records[index]

    def proto2_share(self) -> float:
        """Fraction of types defined in proto2 (Section 3.3's 96% is by
        bytes; by type count it is similar)."""
        proto2 = sum(1 for r in self._records if r.syntax == "proto2")
        return proto2 / len(self._records)

    def span_histogram(self) -> dict[int, int]:
        """Distribution of field-number spans across types."""
        histogram: dict[int, int] = {}
        for record in self._records:
            histogram[record.field_number_span] = (
                histogram.get(record.field_number_span, 0) + 1)
        return histogram
