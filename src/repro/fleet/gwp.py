"""A Google-Wide-Profiling-style sampling profiler (Section 3.1.1).

GWP visits random machines, samples cycle counts against symbols, and
aggregates fleet-wide.  This module provides the same mechanism for our
simulated hosts: operations report their cycle costs to a
:class:`GwpSampler`, which statistically samples them (visit-based, like
the real system) and aggregates a :class:`CycleProfile` -- where the
cycles went, by protobuf operation category.

Used two ways:

- :func:`profile_software_service` instruments a software host running a
  message workload with a chosen operation mix, re-deriving a
  Figure 2-style breakdown from *execution* rather than from encoded
  constants; and
- :func:`accelerator_savings` applies measured accelerator speedups to a
  profile, the Section 5.2 extrapolation applied to any workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cpu.model import SoftwareCpu
from repro.cpu.ops import clear_cycles, copy_cycles, merge_cycles
from repro.proto.descriptor import MessageDescriptor
from repro.proto.message import Message

#: Operation categories, mirroring Figure 2's rows.
CATEGORIES = ("deserialize", "serialize", "byte_size", "merge", "copy",
              "clear", "constructor", "destructor", "other")


@dataclass
class CycleProfile:
    """Aggregated cycles per operation category."""

    cycles: dict[str, float] = field(default_factory=dict)

    def add(self, category: str, amount: float) -> None:
        if category not in CATEGORIES:
            raise ValueError(f"unknown category {category!r}")
        self.cycles[category] = self.cycles.get(category, 0.0) + amount

    @property
    def total(self) -> float:
        return sum(self.cycles.values())

    def shares(self) -> dict[str, float]:
        """Fraction of profiled cycles per category."""
        total = self.total
        if total == 0:
            return {}
        return {category: amount / total
                for category, amount in self.cycles.items()}

    def top(self, count: int = 5) -> list[tuple[str, float]]:
        return sorted(self.shares().items(), key=lambda kv: -kv[1])[:count]

    def merge(self, other: "CycleProfile") -> None:
        for category, amount in other.cycles.items():
            self.add(category, amount)


class GwpSampler:
    """Statistical cycle sampling with visit semantics.

    Each reported event is recorded with probability ``sample_rate`` and
    up-weighted by ``1 / sample_rate``, so the expected profile equals
    the true one while only a fraction of events are touched -- the
    low-overhead property that lets the real GWP run fleet-wide.
    """

    def __init__(self, sample_rate: float = 1.0, seed: int = 0):
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must lie in (0, 1]")
        self.sample_rate = sample_rate
        self._rng = random.Random(seed)
        self.profile = CycleProfile()
        self.events_seen = 0
        self.events_recorded = 0

    def record(self, category: str, cycles: float) -> None:
        self.events_seen += 1
        if self._rng.random() >= self.sample_rate:
            return
        self.events_recorded += 1
        self.profile.add(category, cycles / self.sample_rate)


#: Default per-message operation mix for service profiling: how many
#: times each operation runs per message lifetime in a typical serving
#: path (parse once, inspect, copy occasionally, serialize once...).
DEFAULT_OP_MIX: dict[str, float] = {
    "deserialize": 1.0,
    "serialize": 1.0,
    "copy": 0.3,
    "merge": 0.15,
    "clear": 0.5,
}

#: Fraction of a serialize call's cycles attributable to the ByteSize
#: pass (footnote 4: 6.0 of 14.8 protobuf-percentage points).
_BYTESIZE_SHARE_OF_SER = 6.0 / 14.8


def profile_software_service(
        cpu: SoftwareCpu, descriptor: MessageDescriptor,
        messages: list[Message],
        op_mix: dict[str, float] | None = None,
        sampler: GwpSampler | None = None,
        glue_overhead: float = 0.28) -> CycleProfile:
    """Run a service's protobuf work on ``cpu`` and profile it.

    ``op_mix`` gives expected executions of each operation per message;
    fractional values are realised in expectation via the sampler's RNG.
    ``glue_overhead`` adds the non-accelerable "other" category as a
    fraction of total protobuf cycles (reflection, accessors, RPC glue).
    """
    mix = dict(DEFAULT_OP_MIX if op_mix is None else op_mix)
    sampler = sampler or GwpSampler()
    rng = random.Random(1234)
    for message in messages:
        wire = message.serialize()
        repeats = {op: int(count) + (rng.random() < count - int(count))
                   for op, count in mix.items()}
        for _ in range(repeats.get("deserialize", 0)):
            decoded, result = cpu.deserialize(descriptor, wire)
            construct = sum(
                cpu.params.event_cycles(op, arg)
                for op, arg in result.trace
                if op.value in ("obj_construct",))
            sampler.record("deserialize", result.cycles - construct)
            sampler.record("constructor", construct)
            sampler.record("destructor",
                           clear_cycles(cpu.params, decoded,
                                        arena_backed=False))
        for _ in range(repeats.get("serialize", 0)):
            _, result = cpu.serialize(message)
            byte_size = result.cycles * _BYTESIZE_SHARE_OF_SER
            sampler.record("serialize", result.cycles - byte_size)
            sampler.record("byte_size", byte_size)
        for _ in range(repeats.get("copy", 0)):
            sampler.record("copy", copy_cycles(cpu.params, message))
        for _ in range(repeats.get("merge", 0)):
            sampler.record("merge",
                           merge_cycles(cpu.params, message, message))
        for _ in range(repeats.get("clear", 0)):
            sampler.record("clear",
                           clear_cycles(cpu.params, message,
                                        arena_backed=True))
    accounted = sampler.profile.total
    if glue_overhead > 0 and accounted > 0:
        sampler.record("other",
                       accounted * glue_overhead / (1 - glue_overhead)
                       * sampler.sample_rate)
    return sampler.profile


def accelerator_savings(profile: CycleProfile,
                        speedups: dict[str, float]) -> float:
    """Fraction of profiled cycles an accelerator recovers.

    ``speedups`` maps categories to measured speedup factors; categories
    not present are left on the CPU.  A k-times speedup recovers
    ``1 - 1/k`` of a category's cycles (the Section 5.2 arithmetic).
    """
    total = profile.total
    if total == 0:
        return 0.0
    saved = 0.0
    for category, speedup in speedups.items():
        if speedup <= 0:
            raise ValueError(f"speedup for {category} must be positive")
        saved += profile.cycles.get(category, 0.0) * (1 - 1 / speedup)
    return saved / total
