"""A protobufz-style message-shape sampler (Section 3.1.2).

protobufz visits random machines and samples top-level messages as they
are serialized/deserialized, recording complete shape information: the
encoded size, the types and sizes of all present fields, and the message
hierarchy.  Our Monte Carlo counterpart draws shapes from the published
distributions; :class:`SampleAnalysis` then re-derives the Figure 3/4/7
histograms from raw samples, validating the analysis pipeline end-to-end
(the tests check convergence back to the inputs).

The joint structure mirrors reality: a message's encoded size is drawn
first (Figure 3), then its field population fills that budget, so large
bytes fields only occur inside large messages.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.fleet.distributions import (
    BYTES_FIELD_SIZE_BUCKETS,
    DENSITY_HISTOGRAM,
    DEPTH_CDF_POINTS,
    FIELD_COUNT_SHARES,
    MESSAGE_SIZE_BUCKETS,
    SizeBucket,
    VARINT_SIZE_SHARES,
)

_BYTES_LIKE = ("string", "bytes")
_VARINT_LIKE = ("int32", "int64", "enum", "bool", "uint64", "other_varint")


@dataclass(frozen=True)
class FieldShape:
    """One sampled field occurrence: its primitive type and wire bytes
    (value only, excluding the key)."""

    type_name: str
    wire_bytes: int


@dataclass
class ShapeSample:
    """One sampled top-level message shape."""

    encoded_size: int
    fields: list[FieldShape] = field(default_factory=list)
    density: float = 0.0
    max_depth: int = 1

    @property
    def field_bytes(self) -> int:
        return sum(f.wire_bytes for f in self.fields)


def _pick_bucket(rng: random.Random,
                 buckets: tuple[SizeBucket, ...]) -> SizeBucket:
    roll = rng.random()
    acc = 0.0
    for bucket in buckets:
        acc += bucket.share
        if roll < acc:
            return bucket
    return buckets[-1]


def _size_within(rng: random.Random, bucket: SizeBucket) -> int:
    """Log-uniform size inside a bucket (sizes are scale-free)."""
    lo = max(bucket.lo, 1)
    hi = bucket.hi if bucket.hi is not None else 131072
    if hi <= lo:
        return lo
    return int(round(math.exp(rng.uniform(math.log(lo), math.log(hi)))))


def _depth_pmf() -> list[tuple[int, float]]:
    """Per-depth probability mass from the paper's byte-CDF anchors."""
    pmf = []
    previous = 0.0
    for depth, cdf in DEPTH_CDF_POINTS:
        pmf.append((depth, cdf - previous))
        previous = cdf
    return pmf


class FleetSampler:
    """Draws synthetic protobufz shape samples."""

    def __init__(self, seed: int = 11):
        self._rng = random.Random(seed)
        self._field_names = list(FIELD_COUNT_SHARES)
        self._field_weights = list(FIELD_COUNT_SHARES.values())
        self._varint_sizes = list(VARINT_SIZE_SHARES)
        self._varint_weights = list(VARINT_SIZE_SHARES.values())
        self._depth_pmf = _depth_pmf()
        self._density_edges = list(DENSITY_HISTOGRAM)
        self._density_weights = list(DENSITY_HISTOGRAM.values())

    def _field_value_bytes(self, type_name: str, budget: int) -> int:
        rng = self._rng
        if type_name in _BYTES_LIKE:
            bucket = _pick_bucket(rng, BYTES_FIELD_SIZE_BUCKETS)
            return min(_size_within(rng, bucket), max(budget, 1))
        if type_name in _VARINT_LIKE:
            return rng.choices(self._varint_sizes,
                               self._varint_weights)[0]
        if type_name in ("double", "fixed64"):
            return 8
        return 4  # float, fixed32

    def sample(self) -> ShapeSample:
        """Draw one top-level message shape."""
        rng = self._rng
        size = _size_within(rng, _pick_bucket(rng, MESSAGE_SIZE_BUCKETS))
        sample = ShapeSample(encoded_size=size)
        budget = size
        while budget > 0:
            type_name = rng.choices(self._field_names,
                                    self._field_weights)[0]
            value = self._field_value_bytes(type_name, budget)
            key = 1  # field numbers are overwhelmingly single-byte keys
            sample.fields.append(FieldShape(type_name, value))
            budget -= value + key
            if len(sample.fields) > 4096:
                break
        edge = rng.choices(self._density_edges, self._density_weights)[0]
        sample.density = (rng.uniform(0.0, 1 / 64) if edge == 0.0
                          else rng.uniform(edge, min(edge + 0.05, 1.0)))
        depths, weights = zip(*self._depth_pmf)
        sample.max_depth = rng.choices(depths, weights)[0]
        return sample

    def sample_many(self, count: int) -> list[ShapeSample]:
        return [self.sample() for _ in range(count)]


class SampleAnalysis:
    """Re-derives the paper's Figure 3/4/7 views from raw shape samples."""

    def __init__(self, samples: list[ShapeSample]):
        if not samples:
            raise ValueError("no samples to analyse")
        self.samples = samples

    def message_size_histogram(self) -> dict[str, float]:
        """Figure 3: fraction of messages per size bucket."""
        counts = {bucket.label: 0 for bucket in MESSAGE_SIZE_BUCKETS}
        for sample in self.samples:
            for bucket in MESSAGE_SIZE_BUCKETS:
                if bucket.contains(sample.encoded_size):
                    counts[bucket.label] += 1
                    break
        total = len(self.samples)
        return {label: count / total for label, count in counts.items()}

    def field_count_shares(self) -> dict[str, float]:
        """Figure 4a: fraction of observed fields by type."""
        counts: dict[str, int] = {}
        for sample in self.samples:
            for field_shape in sample.fields:
                counts[field_shape.type_name] = (
                    counts.get(field_shape.type_name, 0) + 1)
        total = sum(counts.values())
        return {name: count / total for name, count in counts.items()}

    def field_bytes_shares(self) -> dict[str, float]:
        """Figure 4b: fraction of message bytes by field type."""
        volumes: dict[str, float] = {}
        for sample in self.samples:
            for field_shape in sample.fields:
                volumes[field_shape.type_name] = (
                    volumes.get(field_shape.type_name, 0)
                    + field_shape.wire_bytes)
        total = sum(volumes.values())
        return {name: volume / total for name, volume in volumes.items()}

    def bytes_like_byte_share(self) -> float:
        """The paper's >92% headline: share of bytes in bytes-like fields."""
        shares = self.field_bytes_shares()
        return sum(shares.get(name, 0.0) for name in _BYTES_LIKE)

    def varint_like_count_share(self) -> float:
        """The paper's >56% headline: share of fields that are varint-like."""
        shares = self.field_count_shares()
        return sum(shares.get(name, 0.0) for name in _VARINT_LIKE)

    def bytes_field_size_histogram(self) -> dict[str, float]:
        """Figure 4c: size distribution of bytes-like fields."""
        counts = {bucket.label: 0 for bucket in BYTES_FIELD_SIZE_BUCKETS}
        total = 0
        for sample in self.samples:
            for field_shape in sample.fields:
                if field_shape.type_name not in _BYTES_LIKE:
                    continue
                total += 1
                for bucket in BYTES_FIELD_SIZE_BUCKETS:
                    if bucket.contains(field_shape.wire_bytes):
                        counts[bucket.label] += 1
                        break
        if total == 0:
            return {label: 0.0 for label in counts}
        return {label: count / total for label, count in counts.items()}

    def density_share_above(self, threshold: float) -> float:
        """Figure 7's comparison: messages with density above threshold."""
        above = sum(1 for s in self.samples if s.density > threshold)
        return above / len(self.samples)

    def byte_share_at_depth(self, depth: int) -> float:
        """Section 3.8: fraction of bytes at sub-message depth <= depth."""
        total = sum(s.encoded_size for s in self.samples)
        covered = sum(s.encoded_size for s in self.samples
                      if s.max_depth <= depth)
        return covered / total if total else 1.0
