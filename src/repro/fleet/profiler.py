"""GWP-style fleet cycle attribution (Sections 3.1.1 and 3.2).

Google-Wide Profiling samples stack traces across the fleet; joining them
with the protobuf library's symbols yields Figure 2 (C++ protobuf cycles
by operation) and the headline opportunity arithmetic:

- protobuf operations are 9.6% of fleet cycles;
- 88% of those are C++;
- deserialization (2.2% of fleet cycles) + serialization including Byte
  Size (1.25%) = the 3.45% fleet-wide acceleration opportunity;
- Section 5.2 extrapolates that the measured speedups recover over 2.5%
  of fleet cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.distributions import (
    CPP_SHARE_OF_PROTOBUF,
    FLEET_OP_SHARES,
    PROTOBUF_FLEET_CYCLE_SHARE,
)

#: Operations the paper's accelerator offloads today.
ACCELERATED_OPS = ("deserialize", "serialize", "byte_size")

#: Operations Section 7 identifies as addressable by reusing the same
#: hardware blocks with new custom instructions.
FUTURE_OPS = ("merge", "copy", "clear")


@dataclass
class GwpProfile:
    """A synthesised fleet cycle profile."""

    total_fleet_cycles: float = 1.0e15  # arbitrary scale; shares matter

    @property
    def protobuf_cycles(self) -> float:
        return self.total_fleet_cycles * PROTOBUF_FLEET_CYCLE_SHARE

    @property
    def cpp_protobuf_cycles(self) -> float:
        return self.protobuf_cycles * CPP_SHARE_OF_PROTOBUF

    def op_cycles(self, op: str) -> float:
        """Fleet cycles attributed to one C++ protobuf operation."""
        return self.cpp_protobuf_cycles * FLEET_OP_SHARES[op]

    def op_fleet_share(self, op: str) -> float:
        """One operation's share of *all* fleet cycles."""
        return self.op_cycles(op) / self.total_fleet_cycles

    def figure2_rows(self) -> list[tuple[str, float]]:
        """Figure 2: C++ protobuf cycle shares by operation, descending."""
        return sorted(FLEET_OP_SHARES.items(), key=lambda kv: kv[1],
                      reverse=True)


def fleet_opportunity() -> dict[str, float]:
    """Section 3.2/3.9 headline numbers as fleet-cycle fractions."""
    profile = GwpProfile()
    accelerated = sum(profile.op_fleet_share(op) for op in ACCELERATED_OPS)
    future = sum(profile.op_fleet_share(op) for op in FUTURE_OPS)
    return {
        "protobuf_share": PROTOBUF_FLEET_CYCLE_SHARE,
        "cpp_share_of_protobuf": CPP_SHARE_OF_PROTOBUF,
        "deser_fleet_share": profile.op_fleet_share("deserialize"),
        "ser_fleet_share": (profile.op_fleet_share("serialize")
                            + profile.op_fleet_share("byte_size")),
        "accelerated_opportunity": accelerated,
        "future_ops_opportunity": future,
    }


def realized_savings(deser_speedup: float, ser_speedup: float) -> float:
    """Fleet cycles recovered given measured accelerator speedups
    (Section 5.2's "over 2.5% of fleet-wide cycles" extrapolation).

    A kx speedup on an operation recovers (1 - 1/k) of its cycles.
    """
    if deser_speedup <= 0 or ser_speedup <= 0:
        raise ValueError("speedups must be positive")
    profile = GwpProfile()
    deser = profile.op_fleet_share("deserialize") * (1 - 1 / deser_speedup)
    ser = (profile.op_fleet_share("serialize")
           + profile.op_fleet_share("byte_size")) * (1 - 1 / ser_speedup)
    return deser + ser
