"""Service shape profiles for the HyperProtoBench generator.

Each profile describes how one heavy protobuf-user service's message
shapes deviate from the fleet-wide distributions of Section 3: its
message-size regime, field-type mix, nesting depth, repeated-field usage,
and string-size profile.  The six benchmarks cover the archetypes the
paper's fleet analysis surfaces: RPC request/response traffic, storage
blobs, logging/analytics events, deeply nested configuration, columnar
export, and feature-vector traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.proto.types import FieldType


@dataclass(frozen=True)
class ServiceProfile:
    """Distribution parameters for one synthetic service benchmark."""

    name: str
    description: str
    #: Mean fields per message (Poisson-ish).
    fields_per_message: float
    #: Relative weights of field types in this service's schemas.
    type_weights: dict[FieldType, float]
    #: Probability a field is repeated.
    repeated_probability: float
    #: Elements per repeated field (geometric mean).
    repeated_mean_elements: float
    #: Probability a field is a sub-message (per level).
    submessage_probability: float
    #: Maximum schema nesting depth.
    max_depth: int
    #: Log-normal parameters of string/bytes value sizes (mu, sigma in
    #: natural-log bytes).
    string_size_mu: float = 2.5
    string_size_sigma: float = 1.0
    #: Probability a defined field is populated in a sampled message
    #: (Figure 7 usage density; fleet average is well under 52%).
    presence_probability: float = 0.45
    #: Typical varint magnitudes: mean encoded size in bytes.
    varint_mean_size: float = 2.0
    #: Messages per benchmark batch.
    batch: int = 24


_RPC_WEIGHTS = {
    FieldType.INT64: 4, FieldType.INT32: 4, FieldType.ENUM: 3,
    FieldType.BOOL: 2, FieldType.STRING: 5, FieldType.DOUBLE: 1,
    FieldType.UINT64: 2,
}

_STORAGE_WEIGHTS = {
    FieldType.BYTES: 6, FieldType.STRING: 3, FieldType.INT64: 2,
    FieldType.FIXED64: 1, FieldType.BOOL: 1,
}

_LOGGING_WEIGHTS = {
    FieldType.STRING: 5, FieldType.INT64: 3, FieldType.ENUM: 3,
    FieldType.BOOL: 2, FieldType.INT32: 2, FieldType.FLOAT: 1,
}

_CONFIG_WEIGHTS = {
    FieldType.STRING: 4, FieldType.BOOL: 3, FieldType.INT32: 3,
    FieldType.ENUM: 2, FieldType.DOUBLE: 1,
}

_COLUMNAR_WEIGHTS = {
    FieldType.INT64: 4, FieldType.DOUBLE: 3, FieldType.STRING: 4,
    FieldType.BYTES: 2, FieldType.FIXED64: 1, FieldType.SINT64: 1,
}

_FEATURES_WEIGHTS = {
    FieldType.FLOAT: 5, FieldType.DOUBLE: 2, FieldType.INT32: 2,
    FieldType.STRING: 1, FieldType.UINT32: 1,
}

#: The six HyperProtoBench service profiles (bench0 .. bench5).
SERVICE_PROFILES: tuple[ServiceProfile, ...] = (
    ServiceProfile(
        name="bench0",
        description="RPC frontend: many small request/response messages",
        fields_per_message=9,
        type_weights=_RPC_WEIGHTS,
        repeated_probability=0.10,
        repeated_mean_elements=3,
        submessage_probability=0.25,
        max_depth=3,
        string_size_mu=3.0, string_size_sigma=0.9,
        presence_probability=0.40,
        varint_mean_size=1.8,
    ),
    ServiceProfile(
        name="bench1",
        description="Blob storage metadata + payloads: bytes-dominated",
        fields_per_message=6,
        type_weights=_STORAGE_WEIGHTS,
        repeated_probability=0.15,
        repeated_mean_elements=2,
        submessage_probability=0.15,
        max_depth=2,
        string_size_mu=5.5, string_size_sigma=1.6,
        presence_probability=0.60,
        varint_mean_size=3.0,
    ),
    ServiceProfile(
        name="bench2",
        description="Logging/analytics events: medium strings and enums",
        fields_per_message=14,
        type_weights=_LOGGING_WEIGHTS,
        repeated_probability=0.20,
        repeated_mean_elements=4,
        submessage_probability=0.30,
        max_depth=4,
        string_size_mu=3.0, string_size_sigma=1.0,
        presence_probability=0.35,
        varint_mean_size=2.2,
    ),
    ServiceProfile(
        name="bench3",
        description="Deeply nested configuration snapshots",
        fields_per_message=7,
        type_weights=_CONFIG_WEIGHTS,
        repeated_probability=0.25,
        repeated_mean_elements=3,
        submessage_probability=0.35,
        max_depth=6,
        string_size_mu=3.5, string_size_sigma=0.9,
        presence_probability=0.50,
        varint_mean_size=1.5,
    ),
    ServiceProfile(
        name="bench4",
        description="Columnar export rows: packed numeric vectors",
        fields_per_message=10,
        type_weights=_COLUMNAR_WEIGHTS,
        repeated_probability=0.35,
        repeated_mean_elements=5,
        submessage_probability=0.10,
        max_depth=2,
        string_size_mu=3.6, string_size_sigma=1.1,
        presence_probability=0.70,
        varint_mean_size=2.6,
    ),
    ServiceProfile(
        name="bench5",
        description="ML feature vectors: float-heavy repeated fields",
        fields_per_message=8,
        type_weights=_FEATURES_WEIGHTS,
        repeated_probability=0.50,
        repeated_mean_elements=16,
        submessage_probability=0.20,
        max_depth=3,
        string_size_mu=2.0, string_size_sigma=0.6,
        presence_probability=0.55,
        varint_mean_size=1.6,
    ),
)
