"""HyperProtoBench workload construction for the three-system runner."""

from __future__ import annotations

from repro.bench.runner import Workload
from repro.hyperprotobench.generator import BenchGenerator, GeneratedBench
from repro.hyperprotobench.shapes import SERVICE_PROFILES


def bench_names() -> list[str]:
    """The six benchmark names of Figures 12 and 13."""
    return [profile.name for profile in SERVICE_PROFILES]


def generate_bench(name: str, seed: int = 0,
                   batch: int | None = None) -> GeneratedBench:
    """Generate the named benchmark (schema + message batch)."""
    for profile in SERVICE_PROFILES:
        if profile.name == name:
            return BenchGenerator(profile, seed=seed).generate(batch=batch)
    raise ValueError(f"unknown HyperProtoBench benchmark {name!r}")


def build_hyperprotobench(name: str, seed: int = 0,
                          batch: int | None = None) -> Workload:
    """Build the named benchmark as a runnable workload."""
    bench = generate_bench(name, seed=seed, batch=batch)
    return Workload(bench.name, bench.root, bench.messages)
