"""The synthetic benchmark generator (Section 5.2).

Given a :class:`~repro.hyperprotobench.shapes.ServiceProfile`, the
generator produces:

1. a schema representative of the service (renderable to .proto text via
   :func:`repro.proto.writer.schema_to_proto`), with nested message types
   down to the profile's depth; and
2. a population of messages sampled from the profile's presence, size and
   value distributions -- the benchmark "constructs, mutates, and
   serializes/deserializes" these, as the paper's C++ benchmarks do.

Generation is deterministic per (profile, seed) so benchmark runs are
reproducible.
"""

from __future__ import annotations

import random
import string as string_module
from dataclasses import dataclass

from repro.hyperprotobench.shapes import ServiceProfile
from repro.proto.descriptor import (
    EnumDescriptor,
    FieldDescriptor,
    MessageDescriptor,
    Schema,
)
from repro.proto.message import Message
from repro.proto.types import FieldType, Label, is_packable
from repro.proto.writer import schema_to_proto

_PRINTABLE = (string_module.ascii_letters + string_module.digits
              + "_-./ ")


@dataclass
class GeneratedBench:
    """One generated benchmark: schema, root type, and message batch."""

    name: str
    schema: Schema
    root: MessageDescriptor
    messages: list[Message]

    @property
    def proto_source(self) -> str:
        """The benchmark's schema as .proto text (what the paper's
        generator writes out)."""
        return schema_to_proto(self.schema)


class BenchGenerator:
    """Samples a schema and workload from one service profile."""

    def __init__(self, profile: ServiceProfile, seed: int = 0):
        self.profile = profile
        # hash() of the stable profile name would vary across interpreter
        # runs (string-hash randomisation); derive the seed stably.
        name_seed = sum(ord(c) << i % 24 for i, c in enumerate(profile.name))
        self._rng = random.Random((name_seed ^ seed) & 0xFFFFFFFF)
        self._type_counter = 0
        self._status_enum = EnumDescriptor(
            name=f"{profile.name.capitalize()}Status",
            values={"UNKNOWN": 0, "OK": 1, "RETRY": 2, "FAILED": 3,
                    "CANCELLED": 4, "DEADLINE": 5, "INTERNAL": 6,
                    "DENIED": 7, "EXHAUSTED": 8})

    # -- schema generation --------------------------------------------------

    def _next_type_name(self, depth: int) -> str:
        self._type_counter += 1
        return f"{self.profile.name.capitalize()}M{self._type_counter}"

    def _generate_type(self, schema: Schema, depth: int) -> MessageDescriptor:
        profile = self.profile
        rng = self._rng
        name = self._next_type_name(depth)
        count = max(1, int(rng.gauss(profile.fields_per_message,
                                     profile.fields_per_message ** 0.5)))
        scalar_names = list(profile.type_weights)
        scalar_weights = list(profile.type_weights.values())
        fields: list[FieldDescriptor] = []
        number = 0
        for index in range(count):
            number += 1 if rng.random() < 0.85 else rng.randint(2, 5)
            repeated = rng.random() < profile.repeated_probability
            label = Label.REPEATED if repeated else Label.OPTIONAL
            if (depth < profile.max_depth
                    and rng.random() < profile.submessage_probability):
                child = self._generate_type(schema, depth + 1)
                fields.append(FieldDescriptor(
                    name=f"sub{index}", number=number,
                    field_type=FieldType.MESSAGE, label=label,
                    type_name=child.name))
                continue
            field_type = rng.choices(scalar_names, scalar_weights)[0]
            packed = (repeated and is_packable(field_type)
                      and rng.random() < 0.8)
            fields.append(FieldDescriptor(
                name=f"f{index}", number=number, field_type=field_type,
                label=label, packed=packed,
                enum_type=(self._status_enum
                           if field_type is FieldType.ENUM else None)))
        descriptor = MessageDescriptor(name, fields)
        schema.add_message(descriptor)
        return descriptor

    # -- value sampling ------------------------------------------------------

    def _varint_magnitude(self) -> int:
        """A value whose encoded size clusters around the profile mean."""
        rng = self._rng
        size = max(1, min(10, round(rng.expovariate(
            1.0 / self.profile.varint_mean_size)) + 1))
        if size == 1:
            return rng.randint(0, 127)
        lo = min(1 << 7 * (size - 1), 2**62)
        hi = min((1 << 7 * size) - 1, 2**63 - 1)
        return rng.randint(lo, max(lo, hi))

    def _string_value(self) -> str:
        rng = self._rng
        size = int(rng.lognormvariate(self.profile.string_size_mu,
                                      self.profile.string_size_sigma))
        size = max(1, min(size, 65536))
        return "".join(rng.choices(_PRINTABLE, k=size))

    def _scalar_value(self, fd: FieldDescriptor):
        rng = self._rng
        ft = fd.field_type
        if ft is FieldType.STRING:
            return self._string_value()
        if ft is FieldType.BYTES:
            return self._string_value().encode("latin-1")
        if ft is FieldType.BOOL:
            return rng.random() < 0.5
        if ft in (FieldType.FLOAT, FieldType.DOUBLE):
            return rng.uniform(-1e6, 1e6)
        if ft is FieldType.ENUM:
            return rng.randint(0, 8)
        if ft in (FieldType.SINT32, FieldType.SINT64):
            magnitude = self._varint_magnitude()
            if ft is FieldType.SINT32:
                magnitude = min(magnitude, 2**30)
            return magnitude if rng.random() < 0.5 else -magnitude
        if ft in (FieldType.INT32, FieldType.UINT32, FieldType.FIXED32,
                  FieldType.SFIXED32):
            return min(self._varint_magnitude(), 2**31 - 1)
        if ft in (FieldType.INT64, FieldType.SFIXED64):
            magnitude = min(self._varint_magnitude(), 2**62)
            # Occasional negative values exercise the 10-byte varint
            # pathology the fleet data shows (VARINT_SIZE_SHARES[10]).
            return -magnitude if rng.random() < 0.08 else magnitude
        if ft is FieldType.FIXED64:
            return min(self._varint_magnitude(), 2**63 - 1)
        return min(self._varint_magnitude(), 2**63 - 1)  # UINT64

    def _populate(self, descriptor: MessageDescriptor,
                  depth: int) -> Message:
        profile = self.profile
        rng = self._rng
        message = descriptor.new_message()
        populated = 0
        for fd in descriptor.fields:
            if rng.random() >= profile.presence_probability:
                continue
            populated += 1
            if fd.field_type is FieldType.MESSAGE:
                assert fd.message_type is not None
                if fd.is_repeated:
                    count = self._repeat_count()
                    for _ in range(count):
                        message[fd.name]._items.append(
                            self._populate(fd.message_type, depth + 1))
                    message._hasbits.add(fd.number)
                else:
                    message[fd.name] = self._populate(fd.message_type,
                                                      depth + 1)
                continue
            if fd.is_repeated:
                message[fd.name] = [self._scalar_value(fd)
                                    for _ in range(self._repeat_count())]
            else:
                message[fd.name] = self._scalar_value(fd)
        if populated == 0 and descriptor.fields:
            # Empty messages serialize to zero bytes; keep at least one
            # field so every sampled message exercises the pipeline.
            fd = min((f for f in descriptor.fields
                      if f.field_type is not FieldType.MESSAGE),
                     key=lambda f: f.number, default=None)
            if fd is not None:
                if fd.is_repeated:
                    message[fd.name] = [self._scalar_value(fd)]
                else:
                    message[fd.name] = self._scalar_value(fd)
        return message

    def _repeat_count(self) -> int:
        mean = self.profile.repeated_mean_elements
        return max(1, int(self._rng.expovariate(1.0 / mean)) + 1)

    # -- entry point -----------------------------------------------------------

    def generate(self, batch: int | None = None) -> GeneratedBench:
        """Produce the benchmark: schema plus a batch of messages."""
        schema = Schema(package=self.profile.name)
        schema.add_enum(self._status_enum)
        root = self._generate_type(schema, depth=1)
        schema.resolve()
        size = batch if batch is not None else self.profile.batch
        messages = [self._populate(root, depth=1) for _ in range(size)]
        return GeneratedBench(self.profile.name, schema, root, messages)
