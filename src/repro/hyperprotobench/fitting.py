"""Fit a ServiceProfile from protobufz-style shape samples.

The paper's internal generator "fits a distribution to the input data
and then samples from it" (Section 5.2).  Given
:class:`~repro.fleet.sampler.ShapeSample` records for one service, this
module estimates the generator parameters: fields per message, the
field-type mix, string-size log-normal parameters, varint magnitudes,
presence density, and nesting depth.

Repeated-field structure is not observable in our shape samples (the
real protobufz records it; our Monte Carlo sampler flattens it), so
those two parameters fall back to fleet-typical defaults unless
overridden -- a documented fidelity gap, not a silent one.
"""

from __future__ import annotations

import math

from repro.fleet.sampler import ShapeSample
from repro.hyperprotobench.shapes import ServiceProfile
from repro.proto.types import FieldType

#: Sampler field-type names -> schema field types.
_NAME_TO_TYPE = {
    "int32": FieldType.INT32,
    "int64": FieldType.INT64,
    "enum": FieldType.ENUM,
    "bool": FieldType.BOOL,
    "uint64": FieldType.UINT64,
    "string": FieldType.STRING,
    "bytes": FieldType.BYTES,
    "double": FieldType.DOUBLE,
    "float": FieldType.FLOAT,
    "fixed64": FieldType.FIXED64,
    "fixed32": FieldType.FIXED32,
    "other_varint": FieldType.SINT64,
}

_BYTES_LIKE = ("string", "bytes")
_VARINT_LIKE = ("int32", "int64", "enum", "bool", "uint64", "other_varint")


def _mean(values: list[float], default: float) -> float:
    return sum(values) / len(values) if values else default


def fit_profile(name: str, samples: list[ShapeSample],
                batch: int = 24, **overrides) -> ServiceProfile:
    """Estimate generator parameters from shape samples.

    Keyword ``overrides`` replace any fitted (or defaulted) parameter --
    use them to supply the repeated/sub-message structure the samples
    cannot carry.
    """
    if not samples:
        raise ValueError("cannot fit a profile from zero samples")
    type_counts: dict[FieldType, float] = {}
    string_logs: list[float] = []
    varint_sizes: list[float] = []
    for sample in samples:
        for field_shape in sample.fields:
            field_type = _NAME_TO_TYPE.get(field_shape.type_name)
            if field_type is None:
                continue
            type_counts[field_type] = type_counts.get(field_type, 0) + 1
            if field_shape.type_name in _BYTES_LIKE:
                string_logs.append(math.log(max(field_shape.wire_bytes,
                                                1)))
            elif field_shape.type_name in _VARINT_LIKE:
                varint_sizes.append(field_shape.wire_bytes)
    if not type_counts:
        raise ValueError("samples contain no recognisable field types")
    mu = _mean(string_logs, default=2.5)
    sigma = (math.sqrt(_mean([(x - mu) ** 2 for x in string_logs], 1.0))
             if len(string_logs) > 1 else 1.0)
    depths = sorted(sample.max_depth for sample in samples)
    fitted = {
        "fields_per_message": _mean(
            [float(len(sample.fields)) for sample in samples], 4.0),
        "type_weights": type_counts,
        "string_size_mu": mu,
        "string_size_sigma": max(sigma, 0.1),
        "varint_mean_size": max(_mean(varint_sizes, 2.0), 1.0),
        "presence_probability": min(max(_mean(
            [sample.density for sample in samples], 0.45), 0.05), 0.95),
        "max_depth": max(depths[int(len(depths) * 0.95)
                                if len(depths) > 1 else 0], 1),
        # Not observable in flattened shape samples; fleet-typical values
        # unless the caller knows better.
        "repeated_probability": 0.2,
        "repeated_mean_elements": 4.0,
        "submessage_probability": 0.25,
    }
    fitted.update(overrides)
    return ServiceProfile(
        name=name,
        description=f"fitted from {len(samples)} shape samples",
        batch=batch,
        **fitted)
