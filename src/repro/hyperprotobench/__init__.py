"""HyperProtoBench: fleet-representative synthetic benchmarks (Section 5.2).

The paper's generator fits distributions to protobufz "shape" samples of
the five heaviest serialization users and five heaviest deserialization
users in Google's fleet, then samples those distributions to emit a
.proto file plus a benchmark per service -- bench0 through bench5.

Our generator does the same against published-distribution-derived
service profiles: each profile skews the fleet-wide distributions the way
a particular class of heavy protobuf user does (RPC-ish small messages,
storage blobs, deeply nested configuration, ...), and the generator emits
a real schema (renderable as .proto text), a population of messages, and
a :class:`repro.bench.runner.Workload` ready for the three-system runner.
"""

from repro.hyperprotobench.shapes import ServiceProfile, SERVICE_PROFILES
from repro.hyperprotobench.generator import BenchGenerator, GeneratedBench
from repro.hyperprotobench.workload import (
    build_hyperprotobench,
    bench_names,
)
from repro.hyperprotobench.fitting import fit_profile

__all__ = [
    "ServiceProfile",
    "SERVICE_PROFILES",
    "BenchGenerator",
    "GeneratedBench",
    "build_hyperprotobench",
    "bench_names",
    "fit_profile",
]
