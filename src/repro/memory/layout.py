"""Byte-for-byte C++ object images in simulated memory.

The accelerator serializes *from* and deserializes *into* the in-memory
representation generated C++ code uses (Section 2.1.3): message objects
with a vptr, a hasbits array, and typed field slots; ``std::string`` with
libstdc++'s small-string optimisation; and vector-like repeated fields.

Layout of a message object (all little-endian):

====================  =======================================================
offset                contents
====================  =======================================================
0                     vptr (8 B; a per-type sentinel in this model)
8                     sparse hasbits array (Section 4.2): one bit per field
                      number in ``[min_field_number, max_field_number]``,
                      indexed by ``number - min_field_number``, rounded up
                      to whole 64-bit words
after hasbits         one slot per field in declaration order, naturally
                      aligned: inline scalars, or 8 B pointers for strings/
                      bytes (``std::string*``), sub-messages and repeated
                      fields
====================  =======================================================

``std::string`` (32 B, libstdc++): ``[data_ptr, size, capacity | SSO buf]``
with a 15-byte SSO capacity -- the "small string optimisation" the paper's
deserializer handles in hardware (Section 4.4.7).

Repeated field (24 B header): ``[data_ptr, size, capacity]`` with a
contiguous element array (elements are inline scalars or 8 B pointers).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

from repro.memory.memspace import SimMemory
from repro.proto.descriptor import FieldDescriptor, MessageDescriptor
from repro.proto.message import Message
from repro.proto.types import CPP_SCALAR_BYTES, FieldType

#: sizeof(std::string) in 64-bit libstdc++.
STRING_OBJECT_BYTES = 32

#: Longest string stored inline in the SSO buffer.
SSO_CAPACITY = 15

#: Header bytes of a repeated-field object: data pointer, size, capacity.
REPEATED_HEADER_BYTES = 24

_POINTER_BYTES = 8
_HASBITS_OFFSET = 8

_SCALAR_PACK = {
    FieldType.DOUBLE: "<d",
    FieldType.FLOAT: "<f",
    FieldType.INT32: "<i",
    FieldType.SINT32: "<i",
    FieldType.SFIXED32: "<i",
    FieldType.ENUM: "<i",
    FieldType.INT64: "<q",
    FieldType.SINT64: "<q",
    FieldType.SFIXED64: "<q",
    FieldType.UINT32: "<I",
    FieldType.FIXED32: "<I",
    FieldType.UINT64: "<Q",
    FieldType.FIXED64: "<Q",
    FieldType.BOOL: "<B",
}

Allocator = Callable[[int, int], int]


def _slot_width(fd: FieldDescriptor) -> int:
    """Bytes occupied by the field's slot inside the message object."""
    if fd.is_repeated or fd.field_type in (
            FieldType.STRING, FieldType.BYTES, FieldType.MESSAGE):
        return _POINTER_BYTES
    return CPP_SCALAR_BYTES[fd.field_type]


def element_width(fd: FieldDescriptor) -> int:
    """Bytes per element in a repeated field's backing array."""
    if fd.field_type in (FieldType.STRING, FieldType.BYTES,
                         FieldType.MESSAGE):
        return _POINTER_BYTES
    return CPP_SCALAR_BYTES[fd.field_type]


@dataclass(frozen=True)
class MessageLayout:
    """Computed object layout for one message type."""

    descriptor: MessageDescriptor
    vptr: int
    hasbits_offset: int
    hasbits_words: int
    field_offsets: dict[int, int]  # field number -> byte offset
    object_size: int

    def hasbit_position(self, field_number: int) -> tuple[int, int]:
        """(word_index, bit_index) of a field's presence bit.

        The sparse representation indexes directly by field number relative
        to the type's minimum defined field number (Section 4.2), so the
        accelerator needs no per-field mapping table.
        """
        bit = field_number - self.descriptor.min_field_number
        return bit // 64, bit % 64


class LayoutCache:
    """Memoised descriptor -> :class:`MessageLayout` computation.

    Also assigns the per-type vptr sentinels that stand in for C++ vtable
    pointers (the ADT header stores a "pointer to a default instance (or
    vptr value)" -- Section 4.2).
    """

    _VPTR_BASE = 0x7F00_0000_0000

    def __init__(self) -> None:
        self._layouts: dict[int, MessageLayout] = {}
        self._vptr_by_type: dict[int, int] = {}
        self._type_by_vptr: dict[int, MessageDescriptor] = {}

    def vptr_for(self, descriptor: MessageDescriptor) -> int:
        key = id(descriptor)
        if key not in self._vptr_by_type:
            vptr = self._VPTR_BASE + 0x40 * (len(self._vptr_by_type) + 1)
            self._vptr_by_type[key] = vptr
            self._type_by_vptr[vptr] = descriptor
        return self._vptr_by_type[key]

    def type_for_vptr(self, vptr: int) -> MessageDescriptor:
        return self._type_by_vptr[vptr]

    def layout(self, descriptor: MessageDescriptor) -> MessageLayout:
        key = id(descriptor)
        cached = self._layouts.get(key)
        if cached is not None:
            return cached
        span = descriptor.field_number_span
        hasbits_words = max(1, -(-span // 64))
        offset = _HASBITS_OFFSET + hasbits_words * 8
        field_offsets: dict[int, int] = {}
        for fd in descriptor.fields:
            width = _slot_width(fd)
            align = min(width, 8)
            offset = -(-offset // align) * align
            field_offsets[fd.number] = offset
            offset += width
        object_size = -(-offset // 8) * 8
        layout = MessageLayout(
            descriptor=descriptor,
            vptr=self.vptr_for(descriptor),
            hasbits_offset=_HASBITS_OFFSET,
            hasbits_words=hasbits_words,
            field_offsets=field_offsets,
            object_size=object_size,
        )
        self._layouts[key] = layout
        return layout


# -- writing images -----------------------------------------------------------


def _pack_scalar(fd: FieldDescriptor, value) -> bytes:
    fmt = _SCALAR_PACK[fd.field_type]
    if fd.field_type is FieldType.BOOL:
        return struct.pack(fmt, 1 if value else 0)
    return struct.pack(fmt, value)


def _write_string_object(memory: SimMemory, alloc: Allocator,
                         payload: bytes) -> int:
    """Allocate and initialise a libstdc++ std::string; returns its address."""
    addr = alloc(STRING_OBJECT_BYTES, 8)
    size = len(payload)
    if size <= SSO_CAPACITY:
        data_ptr = addr + 16
        memory.write_u64(addr, data_ptr)
        memory.write_u64(addr + 8, size)
        memory.write(addr + 16, payload.ljust(16, b"\x00"))
    else:
        data_ptr = alloc(size, 8)
        memory.write(data_ptr, payload)
        memory.write_u64(addr, data_ptr)
        memory.write_u64(addr + 8, size)
        memory.write_u64(addr + 16, size)  # heap capacity
        memory.write_u64(addr + 24, 0)
    return addr


def _string_payload(fd: FieldDescriptor, value) -> bytes:
    if fd.field_type is FieldType.STRING:
        return value.encode("utf-8")
    return bytes(value)


def _write_repeated(memory: SimMemory, alloc: Allocator, cache: LayoutCache,
                    fd: FieldDescriptor, items) -> int:
    """Allocate a repeated-field object plus backing array."""
    header = alloc(REPEATED_HEADER_BYTES, 8)
    width = element_width(fd)
    count = len(items)
    array = alloc(max(count * width, 1), 8)
    memory.write_u64(header, array)
    memory.write_u64(header + 8, count)
    memory.write_u64(header + 16, count)
    for index, item in enumerate(items):
        slot = array + index * width
        if fd.field_type in (FieldType.STRING, FieldType.BYTES):
            memory.write_u64(
                slot, _write_string_object(memory, alloc,
                                           _string_payload(fd, item)))
        elif fd.field_type is FieldType.MESSAGE:
            memory.write_u64(
                slot, write_message_image(memory, alloc, item, cache))
        else:
            memory.write(slot, _pack_scalar(fd, item))
    return header


def write_message_image(memory: SimMemory, alloc: Allocator,
                        message: Message, cache: LayoutCache,
                        addr: int | None = None) -> int:
    """Materialise ``message`` as a C++ object image; returns its address.

    ``alloc`` decides where child objects go -- pass the software heap to
    set up serializer inputs, or an accelerator arena's allocate for objects
    the accelerator would own.
    """
    layout = cache.layout(message.descriptor)
    if addr is None:
        addr = alloc(layout.object_size, 8)
    memory.fill(addr, layout.object_size, 0)
    memory.write_u64(addr, layout.vptr)
    hasbits = [0] * layout.hasbits_words
    for fd in message.descriptor.fields:
        if not message.has(fd.name):
            continue
        word, bit = layout.hasbit_position(fd.number)
        hasbits[word] |= 1 << bit
        slot = addr + layout.field_offsets[fd.number]
        value = message[fd.name]
        if fd.is_repeated:
            memory.write_u64(
                slot, _write_repeated(memory, alloc, cache, fd, list(value)))
        elif fd.field_type in (FieldType.STRING, FieldType.BYTES):
            memory.write_u64(
                slot, _write_string_object(memory, alloc,
                                           _string_payload(fd, value)))
        elif fd.field_type is FieldType.MESSAGE:
            memory.write_u64(
                slot, write_message_image(memory, alloc, value, cache))
        else:
            memory.write(slot, _pack_scalar(fd, value))
    for word_index, word in enumerate(hasbits):
        memory.write_u64(addr + layout.hasbits_offset + word_index * 8, word)
    return addr


# -- reading images -----------------------------------------------------------


@dataclass(frozen=True)
class StdString:
    """A decoded view of a std::string object image."""

    address: int
    data_ptr: int
    size: int
    is_sso: bool
    payload: bytes


def read_string_object(memory: SimMemory, addr: int) -> StdString:
    """Decode the std::string at ``addr``."""
    data_ptr = memory.read_u64(addr)
    size = memory.read_u64(addr + 8)
    is_sso = data_ptr == addr + 16
    payload = memory.read(data_ptr, size)
    return StdString(addr, data_ptr, size, is_sso, payload)


def _read_scalar(memory: SimMemory, fd: FieldDescriptor, addr: int):
    fmt = _SCALAR_PACK[fd.field_type]
    width = CPP_SCALAR_BYTES[fd.field_type]
    value = struct.unpack(fmt, memory.read(addr, width))[0]
    if fd.field_type is FieldType.BOOL:
        return bool(value)
    return value


def _read_string_value(memory: SimMemory, fd: FieldDescriptor, addr: int):
    payload = read_string_object(memory, addr).payload
    if fd.field_type is FieldType.STRING:
        try:
            return payload.decode("utf-8")
        except UnicodeDecodeError:
            return payload.decode("latin-1")
    return payload


def read_message_image(memory: SimMemory, descriptor: MessageDescriptor,
                       addr: int, cache: LayoutCache) -> Message:
    """Reconstruct a :class:`Message` from the object image at ``addr``.

    Used by tests to check that the accelerator's deserializer produced a
    correct object graph, and by examples to show software reading
    accelerator-deserialized data.
    """
    layout = cache.layout(descriptor)
    message = Message(descriptor)
    hasbits = [
        memory.read_u64(addr + layout.hasbits_offset + w * 8)
        for w in range(layout.hasbits_words)
    ]
    for fd in descriptor.fields:
        word, bit = layout.hasbit_position(fd.number)
        if not hasbits[word] >> bit & 1:
            continue
        slot = addr + layout.field_offsets[fd.number]
        if fd.is_repeated:
            header = memory.read_u64(slot)
            array = memory.read_u64(header)
            count = memory.read_u64(header + 8)
            width = element_width(fd)
            repeated = message[fd.name]
            for index in range(count):
                item_addr = array + index * width
                if fd.field_type in (FieldType.STRING, FieldType.BYTES):
                    repeated.append(_read_string_value(
                        memory, fd, memory.read_u64(item_addr)))
                elif fd.field_type is FieldType.MESSAGE:
                    assert fd.message_type is not None
                    repeated.append(read_message_image(
                        memory, fd.message_type,
                        memory.read_u64(item_addr), cache))
                else:
                    repeated.append(_read_scalar(memory, fd, item_addr))
            message._hasbits.add(fd.number)
        elif fd.field_type in (FieldType.STRING, FieldType.BYTES):
            message[fd.name] = _read_string_value(
                memory, fd, memory.read_u64(slot))
        elif fd.field_type is FieldType.MESSAGE:
            assert fd.message_type is not None
            message[fd.name] = read_message_image(
                memory, fd.message_type, memory.read_u64(slot), cache)
        else:
            message[fd.name] = _read_scalar(memory, fd, slot)
    return message
