"""Latency/bandwidth model of the accelerator's memory path.

The accelerator accesses the same unified memory as the CPU over a coherent
128-bit (16 B/beat) TileLink system bus, through memory interface wrappers
that track a configurable number of outstanding out-of-order requests
(Section 4.1).  This model charges cycles accordingly:

- *streaming* accesses (memloader input, memwriter output) are pipelined
  across outstanding requests, so they cost one startup latency plus one
  cycle per beat;
- *dependent* accesses (pointer chases into the C++ object graph, ADT
  entry loads) pay the full round-trip latency because the next address is
  unknown until the data returns -- the very behaviour that makes a
  PCIe-attached design unattractive (Section 3.9);
- *independent* random accesses overlap up to ``max_outstanding`` deep.

Latencies default to an L2-resident working set (benchmarks run batched and
warm, as the paper's do), with a configurable miss mix folded into an
average memory access time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MemoryTimingModel:
    """Cycle cost model for accelerator-side memory traffic."""

    #: Bus beat width in bytes (128-bit TileLink system bus).
    bytes_per_beat: int = 16
    #: Round-trip latency (cycles) of an L2 hit from the accelerator.
    l2_hit_cycles: int = 22
    #: Round-trip latency of an LLC hit.
    llc_hit_cycles: int = 45
    #: Round-trip latency of a DRAM access.
    dram_cycles: int = 110
    #: Fraction of accesses served by each level (sums to 1).
    l2_fraction: float = 0.85
    llc_fraction: float = 0.12
    #: Maximum outstanding requests the memory interface wrappers track.
    max_outstanding: int = 8

    def __post_init__(self) -> None:
        if not 0 <= self.l2_fraction + self.llc_fraction <= 1:
            raise ValueError("hit fractions must sum to at most 1")

    @property
    def dram_fraction(self) -> float:
        return 1.0 - self.l2_fraction - self.llc_fraction

    @property
    def average_latency(self) -> float:
        """Average round-trip latency in cycles (AMAT-style mix)."""
        return (self.l2_fraction * self.l2_hit_cycles
                + self.llc_fraction * self.llc_hit_cycles
                + self.dram_fraction * self.dram_cycles)

    def beats(self, nbytes: int) -> int:
        """Bus beats needed to move ``nbytes``."""
        if nbytes <= 0:
            return 0
        return -(-nbytes // self.bytes_per_beat)

    #: Cache-line request granularity of the memory interface wrappers.
    line_bytes: int = 64

    @property
    def stream_bytes_per_cycle(self) -> float:
        """Sustained sequential bandwidth in bytes per cycle.

        With ``max_outstanding`` line-sized requests in flight against a
        round-trip latency of ``average_latency``, Little's law bounds
        bandwidth at ``outstanding * line / latency``; the bus beat rate
        caps it at ``bytes_per_beat`` per cycle.
        """
        inflight_rate = (self.max_outstanding * self.line_bytes
                         / self.average_latency)
        return min(float(self.bytes_per_beat), inflight_rate)

    def stream_cycles(self, nbytes: int) -> float:
        """Cycles to stream ``nbytes`` sequentially (pipelined).

        One startup latency, then sustained-rate transfer at
        :attr:`stream_bytes_per_cycle`.
        """
        if nbytes <= 0:
            return 0.0
        return self.average_latency + nbytes / self.stream_bytes_per_cycle

    def dependent_access_cycles(self, nbytes: int) -> float:
        """Cycles for a pointer-chasing access (full latency exposed)."""
        if nbytes <= 0:
            return 0.0
        return self.average_latency + self.beats(nbytes)

    def independent_access_cycles(self, nbytes: int, count: int = 1) -> float:
        """Cycles for ``count`` mutually independent accesses of ``nbytes``.

        Latency overlaps up to ``max_outstanding`` deep, so the exposed
        latency is divided across the window.
        """
        if count <= 0 or nbytes <= 0:
            return 0.0
        exposed = self.average_latency / min(count, self.max_outstanding)
        return count * (exposed + self.beats(nbytes))
