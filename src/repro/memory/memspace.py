"""A flat, byte-addressable simulated memory.

Addresses are plain integers starting at :data:`BASE_ADDRESS` (so that 0
can serve as a null pointer).  The memory records read/write statistics
used by the timing models.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: First usable address; address 0 is reserved as the null pointer.
BASE_ADDRESS = 0x1000

_ALIGNMENT = 8


@dataclass
class MemoryStats:
    """Aggregate access counters for one :class:`SimMemory`."""

    reads: int = 0
    read_bytes: int = 0
    writes: int = 0
    written_bytes: int = 0

    def snapshot(self) -> "MemoryStats":
        return MemoryStats(self.reads, self.read_bytes,
                           self.writes, self.written_bytes)


class SimMemory:
    """A contiguous simulated memory with a bump heap.

    The heap allocator hands out *software-owned* regions (top-level message
    objects, serialized input buffers); the accelerator's own allocations go
    through :class:`~repro.memory.arena.AcceleratorArena` regions carved out
    of this memory.
    """

    #: Backing-store page size.  Pages materialise (zeroed) on first
    #: write, so zeroing cost tracks bytes actually touched rather than
    #: the address-space high-water mark -- arenas parked at high
    #: addresses cost nothing until used.
    _PAGE_SHIFT = 16
    _PAGE = 1 << _PAGE_SHIFT

    def __init__(self, size: int = 64 << 20):
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self._pages: dict[int, bytearray] = {}
        self._brk = BASE_ADDRESS
        self.stats = MemoryStats()
        # Decoded-structure cache for effectively-immutable regions
        # (ADT blocks): readers memoise decodes here; any write that
        # overlaps the cached envelope flushes the lot.
        self._decode_cache: dict = {}
        self._decode_lo = 1 << 63
        self._decode_hi = 0

    # -- decoded-structure cache -----------------------------------------------

    def decode_cache_get(self, key):
        return self._decode_cache.get(key)

    def decode_cache_put(self, key, addr: int, length: int, value):
        """Memoise a decode of bytes [addr, addr+length); returns value."""
        if addr < self._decode_lo:
            self._decode_lo = addr
        if addr + length > self._decode_hi:
            self._decode_hi = addr + length
        self._decode_cache[key] = value
        return value

    # -- allocation ---------------------------------------------------------

    def allocate(self, size: int, alignment: int = _ALIGNMENT) -> int:
        """Reserve ``size`` bytes on the software heap; returns the address."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        addr = -(-self._brk // alignment) * alignment
        if addr + size - BASE_ADDRESS > self.size:
            raise MemoryError(
                f"simulated memory exhausted ({self.size} bytes)")
        self._brk = addr + size
        return addr

    @property
    def heap_top(self) -> int:
        return self._brk

    def heap_release(self, mark: int) -> None:
        """Roll the bump heap back to ``mark`` (a prior ``heap_top``).

        Regions handed out after the mark are forgotten and their
        addresses re-issued to later allocations.  Callers own the
        lifetime argument: nothing may still reference the released
        regions.  Stale decode-cache entries are safe -- any rewrite of
        a re-issued region flushes overlapping entries.
        """
        if not BASE_ADDRESS <= mark <= self._brk:
            raise ValueError(
                f"heap mark {mark:#x} outside [{BASE_ADDRESS:#x}, "
                f"{self._brk:#x}]")
        self._brk = mark

    # -- raw access -----------------------------------------------------------

    def _check(self, addr: int, length: int) -> None:
        if addr < BASE_ADDRESS or addr + length - BASE_ADDRESS > self.size:
            raise IndexError(
                f"access [{addr:#x}, {addr + length:#x}) out of bounds")

    def read(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        self.stats.reads += 1
        self.stats.read_bytes += length
        start = addr - BASE_ADDRESS
        page = start >> self._PAGE_SHIFT
        offset = start & self._PAGE - 1
        if offset + length <= self._PAGE:
            backing = self._pages.get(page)
            if backing is None:
                # Never-written page: zeros, without materialising it.
                return bytes(length)
            return bytes(backing[offset:offset + length])
        pieces = bytearray()
        remaining = length
        while remaining:
            take = min(self._PAGE - offset, remaining)
            backing = self._pages.get(page)
            if backing is None:
                pieces += bytes(take)
            else:
                pieces += backing[offset:offset + take]
            remaining -= take
            page += 1
            offset = 0
        return bytes(pieces)

    def write(self, addr: int, data) -> None:
        length = len(data)
        self._check(addr, length)
        if (self._decode_cache and addr < self._decode_hi
                and addr + length > self._decode_lo):
            self._decode_cache.clear()
            self._decode_lo = 1 << 63
            self._decode_hi = 0
        self.stats.writes += 1
        self.stats.written_bytes += length
        start = addr - BASE_ADDRESS
        page = start >> self._PAGE_SHIFT
        offset = start & self._PAGE - 1
        if offset + length <= self._PAGE:
            backing = self._pages.get(page)
            if backing is None:
                backing = self._pages[page] = bytearray(self._PAGE)
            backing[offset:offset + length] = data
            return
        view = memoryview(data)
        position = 0
        while position < length:
            take = min(self._PAGE - offset, length - position)
            backing = self._pages.get(page)
            if backing is None:
                backing = self._pages[page] = bytearray(self._PAGE)
            backing[offset:offset + take] = view[position:position + take]
            position += take
            page += 1
            offset = 0

    # -- typed helpers ---------------------------------------------------------

    def read_u8(self, addr: int) -> int:
        return self.read(addr, 1)[0]

    def read_u32(self, addr: int) -> int:
        return struct.unpack("<I", self.read(addr, 4))[0]

    def read_u64(self, addr: int) -> int:
        return struct.unpack("<Q", self.read(addr, 8))[0]

    def read_i64(self, addr: int) -> int:
        return struct.unpack("<q", self.read(addr, 8))[0]

    def write_u8(self, addr: int, value: int) -> None:
        self.write(addr, bytes((value & 0xFF,)))

    def write_u32(self, addr: int, value: int) -> None:
        self.write(addr, struct.pack("<I", value & 0xFFFFFFFF))

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, struct.pack("<Q", value & (2**64 - 1)))

    def fill(self, addr: int, length: int, byte: int = 0) -> None:
        self.write(addr, bytes([byte]) * length)
