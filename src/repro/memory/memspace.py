"""A flat, byte-addressable simulated memory.

Addresses are plain integers starting at :data:`BASE_ADDRESS` (so that 0
can serve as a null pointer).  The memory records read/write statistics
used by the timing models.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: First usable address; address 0 is reserved as the null pointer.
BASE_ADDRESS = 0x1000

_ALIGNMENT = 8


@dataclass
class MemoryStats:
    """Aggregate access counters for one :class:`SimMemory`."""

    reads: int = 0
    read_bytes: int = 0
    writes: int = 0
    written_bytes: int = 0

    def snapshot(self) -> "MemoryStats":
        return MemoryStats(self.reads, self.read_bytes,
                           self.writes, self.written_bytes)


class SimMemory:
    """A contiguous simulated memory with a bump heap.

    The heap allocator hands out *software-owned* regions (top-level message
    objects, serialized input buffers); the accelerator's own allocations go
    through :class:`~repro.memory.arena.AcceleratorArena` regions carved out
    of this memory.
    """

    def __init__(self, size: int = 64 << 20):
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self._data = bytearray(size)
        self._brk = BASE_ADDRESS
        self.stats = MemoryStats()

    # -- allocation ---------------------------------------------------------

    def allocate(self, size: int, alignment: int = _ALIGNMENT) -> int:
        """Reserve ``size`` bytes on the software heap; returns the address."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        addr = -(-self._brk // alignment) * alignment
        if addr + size - BASE_ADDRESS > self.size:
            raise MemoryError(
                f"simulated memory exhausted ({self.size} bytes)")
        self._brk = addr + size
        return addr

    @property
    def heap_top(self) -> int:
        return self._brk

    # -- raw access -----------------------------------------------------------

    def _check(self, addr: int, length: int) -> None:
        if addr < BASE_ADDRESS or addr + length - BASE_ADDRESS > self.size:
            raise IndexError(
                f"access [{addr:#x}, {addr + length:#x}) out of bounds")

    def read(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        self.stats.reads += 1
        self.stats.read_bytes += length
        start = addr - BASE_ADDRESS
        return bytes(self._data[start:start + length])

    def write(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self.stats.writes += 1
        self.stats.written_bytes += len(data)
        start = addr - BASE_ADDRESS
        self._data[start:start + len(data)] = data

    # -- typed helpers ---------------------------------------------------------

    def read_u8(self, addr: int) -> int:
        return self.read(addr, 1)[0]

    def read_u32(self, addr: int) -> int:
        return struct.unpack("<I", self.read(addr, 4))[0]

    def read_u64(self, addr: int) -> int:
        return struct.unpack("<Q", self.read(addr, 8))[0]

    def read_i64(self, addr: int) -> int:
        return struct.unpack("<q", self.read(addr, 8))[0]

    def write_u8(self, addr: int, value: int) -> None:
        self.write(addr, bytes((value & 0xFF,)))

    def write_u32(self, addr: int, value: int) -> None:
        self.write(addr, struct.pack("<I", value & 0xFFFFFFFF))

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, struct.pack("<Q", value & (2**64 - 1)))

    def fill(self, addr: int, length: int, byte: int = 0) -> None:
        self.write(addr, bytes([byte]) * length)
