"""Simulated memory substrate: flat memory, C++ object layouts, arenas.

The paper's accelerator does not exchange Python objects with software --
it reads and writes the *bytes* of C++ protobuf objects in DRAM.  This
subpackage provides that substrate:

- :mod:`repro.memory.memspace` -- a flat, byte-addressable simulated memory
  with access statistics.
- :mod:`repro.memory.layout` -- byte-for-byte C++ object images: generated
  message classes (vptr + sparse hasbits + field slots), libstdc++
  ``std::string`` with the small-string optimisation, and repeated fields.
- :mod:`repro.memory.arena` -- accelerator arenas (Section 4.3): bump
  allocators the accelerator carves objects and output buffers from.
- :mod:`repro.memory.timing` -- a latency/bandwidth model of the L2-coherent
  TileLink path the accelerator's memory interface wrappers use.
"""

from repro.memory.memspace import SimMemory, MemoryStats
from repro.memory.arena import AcceleratorArena, ArenaExhausted
from repro.memory.layout import (
    MessageLayout,
    LayoutCache,
    StdString,
    write_message_image,
    read_message_image,
    STRING_OBJECT_BYTES,
    SSO_CAPACITY,
    REPEATED_HEADER_BYTES,
)
from repro.memory.timing import MemoryTimingModel

__all__ = [
    "SimMemory",
    "MemoryStats",
    "AcceleratorArena",
    "ArenaExhausted",
    "MessageLayout",
    "LayoutCache",
    "StdString",
    "write_message_image",
    "read_message_image",
    "STRING_OBJECT_BYTES",
    "SSO_CAPACITY",
    "REPEATED_HEADER_BYTES",
    "MemoryTimingModel",
]
