"""Accelerator arenas (Section 4.3 of the paper).

The application pre-allocates arena regions and hands their pointers to the
accelerator via the ``{ser,deser}_assign_arena`` RoCC instructions.  The
accelerator then allocates deserialized objects (sub-messages, strings,
repeated buffers) and serialized outputs with simple pointer increments,
keeping the CPU off the allocation critical path.

For serialization the arena holds two regions (Section 4.5.1): a data
buffer that is written *high-to-low*, and a table of pointers to the start
of each completed serialized message.
"""

from __future__ import annotations

from repro.memory.memspace import SimMemory

_ALIGNMENT = 8


class ArenaExhausted(MemoryError):
    """The arena region assigned to the accelerator is full.

    Real hardware would raise an interrupt so software can assign a fresh
    arena; our model surfaces the condition as this exception.
    """


class AcceleratorArena:
    """A bump-pointer allocation region inside simulated memory."""

    def __init__(self, memory: SimMemory, size: int = 4 << 20):
        if size <= 0:
            raise ValueError("arena size must be positive")
        self.memory = memory
        self.base = memory.allocate(size, alignment=64)
        self.size = size
        self._bump = self.base
        self.allocations = 0

    def allocate(self, size: int, alignment: int = _ALIGNMENT) -> int:
        """Bump-allocate ``size`` bytes; returns the address."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        addr = -(-self._bump // alignment) * alignment
        if addr + size > self.base + self.size:
            raise ArenaExhausted(
                f"arena of {self.size} bytes exhausted allocating {size}")
        self._bump = addr + size
        self.allocations += 1
        return addr

    @property
    def bytes_used(self) -> int:
        return self._bump - self.base

    @property
    def bytes_free(self) -> int:
        return self.size - self.bytes_used

    def reset(self) -> None:
        """Reclaim the whole arena at once."""
        self._bump = self.base
        self.allocations = 0


class SerializerArena:
    """The serializer's two-region arena (Section 4.5.1).

    The *data* region is filled from its high address downward, because the
    serializer iterates fields in reverse field-number order and must see
    all of a sub-message's fields before it knows the sub-message length.
    The *pointer table* region records where each completed top-level
    serialized message begins.
    """

    def __init__(self, memory: SimMemory, data_size: int = 4 << 20,
                 table_entries: int = 4096):
        self.memory = memory
        self.data_base = memory.allocate(data_size, alignment=64)
        self.data_size = data_size
        self._cursor = self.data_base + data_size  # writes grow downward
        self.table_base = memory.allocate(table_entries * 16, alignment=64)
        self.table_entries = table_entries
        self._outputs: list[tuple[int, int]] = []

    @property
    def cursor(self) -> int:
        """Current high-to-low write position (next byte goes below it)."""
        return self._cursor

    def push_bytes(self, data: bytes) -> int:
        """Write ``data`` immediately below the cursor; returns its address."""
        addr = self._cursor - len(data)
        if addr < self.data_base:
            raise ArenaExhausted("serializer output arena exhausted")
        self.memory.write(addr, data)
        self._cursor = addr
        return addr

    def finish_message(self) -> tuple[int, int]:
        """Record the just-completed message (address, length) in the table."""
        index = len(self._outputs)
        if index >= self.table_entries:
            raise ArenaExhausted("serializer pointer table exhausted")
        start = self._cursor
        if self._outputs:
            prev_start, _ = self._outputs[-1]
            length = prev_start - start
        else:
            length = self.data_base + self.data_size - start
        self.memory.write_u64(self.table_base + index * 16, start)
        self.memory.write_u64(self.table_base + index * 16 + 8, length)
        self._outputs.append((start, length))
        return start, length

    def output(self, index: int) -> bytes:
        """Read back the ``index``-th serialized output (API of Section 4.5.2)."""
        start, length = self._outputs[index]
        return self.memory.read(start, length)

    @property
    def output_count(self) -> int:
        return len(self._outputs)

    def reset(self) -> None:
        self._cursor = self.data_base + self.data_size
        self._outputs.clear()

    def mark(self) -> tuple[int, int]:
        """Snapshot (cursor, output count) before a serialize attempt."""
        return self._cursor, len(self._outputs)

    def rollback(self, mark: tuple[int, int]) -> None:
        """Abandon a faulted attempt's partial output (the driver rewinds
        the cursor before retrying or falling back -- Section 4.3)."""
        self._cursor = mark[0]
        del self._outputs[mark[1]:]
