"""TLB and page-table-walker model for the memory interface wrappers.

The accelerator uses virtual addresses; each memory interface wrapper keeps
a private TLB and falls back to the shared page-table walker on a miss
(Section 4.1).  Our simulated memory is identity-mapped, so the TLB exists
purely for cycle accounting -- but it is a real LRU TLB so workloads with
poor locality pay realistic PTW penalties.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

PAGE_BYTES = 4096


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 1.0
        return self.hits / self.accesses


class Tlb:
    """A fully-associative LRU TLB."""

    def __init__(self, entries: int = 32, ptw_cycles: int = 80):
        if entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self.entries = entries
        self.ptw_cycles = ptw_cycles
        self._map: OrderedDict[int, int] = OrderedDict()
        self.stats = TlbStats()
        #: FaultInjector hook; when set, translate_range models the PTW
        #: returning an invalid PTE (a transient fault to software).
        self.faults = None

    def flush(self) -> None:
        """Drop every cached translation (cumulative stats survive).

        Used by the serving layer's pure-charging call discipline: a
        flushed TLB makes the next operation's PTW penalties a pure
        function of the addresses it touches, with no dependence on
        prior traffic.
        """
        self._map.clear()

    def translate(self, vaddr: int) -> tuple[int, int]:
        """Translate ``vaddr``; returns (paddr, penalty_cycles).

        Identity mapping: paddr == vaddr.  The interesting output is the
        penalty, 0 on a hit or ``ptw_cycles`` on a miss.
        """
        vpn = vaddr // PAGE_BYTES
        if vpn in self._map:
            self._map.move_to_end(vpn)
            self.stats.hits += 1
            return vaddr, 0
        self.stats.misses += 1
        if len(self._map) >= self.entries:
            self._map.popitem(last=False)
        self._map[vpn] = vpn
        return vaddr, self.ptw_cycles

    def translate_range(self, vaddr: int, length: int) -> int:
        """Translate every page a [vaddr, vaddr+length) access touches.

        Returns the total PTW penalty in cycles.
        """
        if length <= 0:
            return 0
        if self.faults is not None:
            from repro.faults.plan import FaultSite
            self.faults.poll(FaultSite.TLB_FAULT)
        penalty = 0
        first = vaddr // PAGE_BYTES
        last = (vaddr + length - 1) // PAGE_BYTES
        for vpn in range(first, last + 1):
            _, cost = self.translate(vpn * PAGE_BYTES)
            penalty += cost
        return penalty

    def flush(self) -> None:
        self._map.clear()
