"""Top-level SoC configuration (the knobs of Figure 8 and Section 5)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.timing import MemoryTimingModel


@dataclass
class SoCConfig:
    """Parameters of the simulated accelerated RISC-V SoC.

    Defaults follow the paper's evaluated configuration: BOOM core and
    accelerator both at 2 GHz, a 128-bit TileLink system bus, and on-chip
    sub-message context stacks sized for depth 25 (Section 3.8: 99.999% of
    message bytes are at depth <= 25; deeper nesting spills to memory).
    """

    #: Core and accelerator clock in Hz (paper models both at 2 GHz).
    clock_hz: float = 2.0e9
    #: Number of parallel field serializer units (Section 4.5.4).
    field_serializer_units: int = 4
    #: On-chip sub-message context stack depth before spilling (Section 3.8).
    context_stack_depth: int = 25
    #: Extra cycles per stack level when spilling context to memory.
    stack_spill_cycles: int = 40
    #: TLB entries per memory interface wrapper.
    tlb_entries: int = 32
    #: Page-table-walk latency in cycles on a TLB miss.
    ptw_cycles: int = 80
    #: Cycles for the CPU to issue one RoCC custom instruction.
    rocc_dispatch_cycles: int = 4
    #: Cycles for the post-offload fence visible to the CPU (Section 4.1).
    fence_cycles: int = 12
    #: Memory timing for the accelerator's TileLink path.
    memory: MemoryTimingModel = field(default_factory=MemoryTimingModel)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def gbits_per_second(self, payload_bytes: int, cycles: float) -> float:
        """Throughput metric used throughout the paper's Figures 11-13."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        return payload_bytes * 8 / self.cycles_to_seconds(cycles) / 1e9
