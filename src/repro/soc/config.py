"""Top-level SoC configuration (the knobs of Figure 8 and Section 5)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.timing import MemoryTimingModel
from repro.soc.pcie import PcieParams


class SoCConfigError(ValueError):
    """A nonsensical SoC knob (or knob combination), named precisely.

    Mirrors :class:`repro.serve.errors.FabricConfigError`: callers and
    tests can match on ``knob`` without parsing the message.
    """

    def __init__(self, knob: str, value, message: str):
        super().__init__(f"{knob}={value!r}: {message}")
        self.knob = knob
        self.value = value


@dataclass
class SoCConfig:
    """Parameters of the simulated accelerated RISC-V SoC.

    Defaults follow the paper's evaluated configuration: BOOM core and
    accelerator both at 2 GHz, a 128-bit TileLink system bus, and on-chip
    sub-message context stacks sized for depth 25 (Section 3.8: 99.999% of
    message bytes are at depth <= 25; deeper nesting spills to memory).

    ``transport`` selects the accelerator's attach point: ``"rocc"``
    (the paper's near-core custom-instruction interface) or ``"pcie"``
    (the queue-pair/DMA model of :mod:`repro.soc.pcie`, parameterised by
    ``pcie``).  The deser/ser cycle model is identical on both; only the
    attach-point cost (``transport_cycles`` stats) differs.
    """

    #: Core and accelerator clock in Hz (paper models both at 2 GHz).
    clock_hz: float = 2.0e9
    #: Number of parallel field serializer units (Section 4.5.4).
    field_serializer_units: int = 4
    #: On-chip sub-message context stack depth before spilling (Section 3.8).
    context_stack_depth: int = 25
    #: Extra cycles per stack level when spilling context to memory.
    stack_spill_cycles: int = 40
    #: TLB entries per memory interface wrapper.
    tlb_entries: int = 32
    #: Page-table-walk latency in cycles on a TLB miss.
    ptw_cycles: int = 80
    #: Cycles for the CPU to issue one RoCC custom instruction.
    rocc_dispatch_cycles: int = 4
    #: Cycles for the post-offload fence visible to the CPU (Section 4.1).
    fence_cycles: int = 12
    #: Memory timing for the accelerator's TileLink path.
    memory: MemoryTimingModel = field(default_factory=MemoryTimingModel)
    #: Accelerator attach point: "rocc" or "pcie".
    transport: str = "rocc"
    #: PCIe attach-point parameters (used when transport="pcie").
    pcie: PcieParams = field(default_factory=PcieParams)

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise SoCConfigError("clock_hz", self.clock_hz,
                                 "clock must be positive")
        if self.rocc_dispatch_cycles < 0:
            raise SoCConfigError("rocc_dispatch_cycles",
                                 self.rocc_dispatch_cycles,
                                 "dispatch cost cannot be negative")
        if self.fence_cycles < 0:
            raise SoCConfigError("fence_cycles", self.fence_cycles,
                                 "fence cost cannot be negative")
        if self.transport not in ("rocc", "pcie"):
            raise SoCConfigError("transport", self.transport,
                                 "unknown transport; expected 'rocc' or "
                                 "'pcie'")
        pcie = self.pcie
        if pcie.ring_depth < 1:
            raise SoCConfigError("pcie.ring_depth", pcie.ring_depth,
                                 "descriptor rings need at least one slot")
        if pcie.coalesce_threshold < 1:
            raise SoCConfigError("pcie.coalesce_threshold",
                                 pcie.coalesce_threshold,
                                 "coalescing threshold must be >= 1")
        if pcie.coalesce_threshold > pcie.ring_depth:
            raise SoCConfigError(
                "pcie.coalesce_threshold", pcie.coalesce_threshold,
                f"threshold cannot exceed ring_depth={pcie.ring_depth} "
                "(the completion queue would overflow before the "
                "interrupt ever fired)")
        if pcie.doorbell_batch < 1:
            raise SoCConfigError("pcie.doorbell_batch", pcie.doorbell_batch,
                                 "doorbell batch must be >= 1")
        if pcie.doorbell_batch > pcie.ring_depth:
            raise SoCConfigError(
                "pcie.doorbell_batch", pcie.doorbell_batch,
                f"doorbell batch cannot exceed ring_depth={pcie.ring_depth} "
                "(the submission queue would overflow before the "
                "doorbell ever rang)")
        if pcie.dma_latency_cycles < 0:
            raise SoCConfigError("pcie.dma_latency_cycles",
                                 pcie.dma_latency_cycles,
                                 "DMA latency cannot be negative")
        if pcie.link_bytes_per_cycle <= 0:
            raise SoCConfigError("pcie.link_bytes_per_cycle",
                                 pcie.link_bytes_per_cycle,
                                 "link bandwidth must be positive")
        for knob in ("desc_write_cycles", "mmio_doorbell_cycles",
                     "completion_write_cycles", "interrupt_cycles",
                     "coalesce_timeout_cycles"):
            value = getattr(pcie, knob)
            if value < 0:
                raise SoCConfigError(f"pcie.{knob}", value,
                                     "cycle cost cannot be negative")

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def gbits_per_second(self, payload_bytes: int, cycles: float) -> float:
        """Throughput metric used throughout the paper's Figures 11-13."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        return payload_bytes * 8 / self.cycles_to_seconds(cycles) / 1e9
