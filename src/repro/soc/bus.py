"""TileLink system bus accounting (128-bit data path, Section 4.1).

Tracks beats moved by the accelerator so benchmarks can report bus
utilisation alongside throughput.  The cycle *cost* of traffic is charged
by :class:`repro.memory.timing.MemoryTimingModel`; this class is the
occupancy ledger.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SystemBus:
    """Occupancy counters for the shared system bus."""

    bytes_per_beat: int = 16
    read_beats: int = 0
    write_beats: int = 0
    #: Stall ledger: transactions that timed out (fault injection or
    #: contention) and the dead cycles the requester spent waiting.
    stalls: int = 0
    stall_cycles: float = 0.0

    def record_stall(self, cycles: float) -> None:
        """A transaction timed out; ``cycles`` were spent waiting."""
        self.stalls += 1
        self.stall_cycles += cycles

    def record_read(self, nbytes: int) -> int:
        beats = self._beats(nbytes)
        self.read_beats += beats
        return beats

    def record_write(self, nbytes: int) -> int:
        beats = self._beats(nbytes)
        self.write_beats += beats
        return beats

    def _beats(self, nbytes: int) -> int:
        if nbytes <= 0:
            return 0
        return -(-nbytes // self.bytes_per_beat)

    @property
    def total_beats(self) -> int:
        return self.read_beats + self.write_beats

    def utilization(self, cycles: float) -> float:
        """Fraction of ``cycles`` the bus spent moving accelerator data."""
        if cycles <= 0:
            return 0.0
        return min(1.0, self.total_beats / cycles)
