"""Multi-tile scaling model (Appendix A.7.1: "multi-core systems").

The Chipyard SoC generator can instantiate the accelerator per tile; the
tiles share the system bus, L2 banks and DRAM (Figure 8).  This model
answers the scaling question analytically: given one tile's measured
cycles and bus traffic, how does aggregate throughput grow with tile
count before the shared uncore saturates?

Per tile, an operation moves ``beats`` bus beats over ``cycles`` cycles.
N tiles demand ``N x beats/cycles`` beats per cycle; the shared bus
delivers at most ``bus_beats_per_cycle`` (1.0 for the single 128-bit
TileLink system bus; banked configurations raise it).  Below saturation
tiles scale linearly; above it, the bus caps aggregate throughput and
per-tile latency stretches by the utilisation ratio.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TileWorkProfile:
    """One tile's measured behaviour on a workload."""

    payload_bytes: int
    cycles: float
    bus_beats: float

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError("cycles must be positive")
        if self.payload_bytes < 0 or self.bus_beats < 0:
            raise ValueError("bytes and beats must be non-negative")

    @property
    def beats_per_cycle(self) -> float:
        return self.bus_beats / self.cycles


@dataclass
class MultiTileModel:
    """Aggregate throughput of N accelerator tiles on a shared uncore.

    ``transport`` names the shared resource the tiles contend on:
    ``"rocc"`` tiles share the on-chip system bus (beats per cycle);
    ``"pcie"`` tiles share the link's payload bandwidth
    (``link_bytes_per_cycle``, matching
    :class:`~repro.soc.pcie.PcieParams`).  The scaling algebra is
    identical -- only the capacity/demand units change.
    """

    profile: TileWorkProfile
    #: Deliverable beats per cycle of the shared bus/LLC path.
    bus_beats_per_cycle: float = 1.0
    clock_hz: float = 2.0e9
    #: Shared medium: "rocc" (system bus) or "pcie" (link bandwidth).
    transport: str = "rocc"
    #: Link payload bandwidth when transport="pcie", bytes per cycle.
    link_bytes_per_cycle: float = 64.0

    def __post_init__(self) -> None:
        if self.transport not in ("rocc", "pcie"):
            raise ValueError(f"unknown transport {self.transport!r}; "
                             "expected 'rocc' or 'pcie'")
        if self.link_bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")

    def bus_demand(self, tiles: int) -> float:
        """Shared-medium units per cycle N tiles would like to consume
        (bus beats on RoCC, payload bytes on PCIe)."""
        if tiles < 1:
            raise ValueError("need at least one tile")
        if self.transport == "pcie":
            return tiles * self.profile.payload_bytes / self.profile.cycles
        return tiles * self.profile.beats_per_cycle

    def _capacity(self) -> float:
        """Deliverable shared-medium units per cycle."""
        if self.transport == "pcie":
            return self.link_bytes_per_cycle
        return self.bus_beats_per_cycle

    def saturation_tiles(self) -> float:
        """Tile count at which the shared medium saturates."""
        demand = self.bus_demand(1)
        if demand == 0:
            return float("inf")
        return self._capacity() / demand

    def speedup(self, tiles: int) -> float:
        """Aggregate throughput of N tiles relative to one tile.

        The single-tile profile already reflects whatever bandwidth it
        achieved, so one tile is the unit by definition; additional
        tiles add linearly until aggregate demand hits the bus cap.
        """
        if tiles < 1:
            raise ValueError("need at least one tile")
        cap = max(1.0, self.saturation_tiles())
        return float(min(tiles, cap))

    def aggregate_gbps(self, tiles: int) -> float:
        """Aggregate payload throughput of N tiles in Gbit/s."""
        single = (self.profile.payload_bytes * 8
                  / (self.profile.cycles / self.clock_hz) / 1e9)
        return single * self.speedup(tiles)

    def per_tile_efficiency(self, tiles: int) -> float:
        """Fraction of a lone tile's throughput each tile retains."""
        return self.speedup(tiles) / tiles

    def latency_stretch(self, active_tiles: int) -> float:
        """Per-operation latency multiplier with N tiles active at once.

        Below saturation the bus absorbs every tile's demand and latency
        is unchanged (1.0).  Above it, each in-flight operation's memory
        phase is served at ``capacity / demand`` of its solo rate, so
        latency stretches by the utilisation ratio.  The serving layer
        applies this to concurrent hedged attempts: racing a second tile
        is only free while the shared uncore has headroom
        (docs/SERVING.md).
        """
        if active_tiles < 1:
            raise ValueError("need at least one active tile")
        if self.bus_beats_per_cycle <= 0:
            raise ValueError("bus capacity must be positive")
        return max(1.0, self.bus_demand(active_tiles)
                   / self.bus_beats_per_cycle)
