"""The RoCC custom-instruction interface (Sections 4.1, 4.4.1, 4.5.2).

The CPU dispatches custom RISC-V instructions carrying two 64-bit register
operands to the accelerator with ones-of-cycles latency.  This module
defines the instruction set the paper describes and a small dispatch queue
that models in-flight operation tracking and the ``block_for_*_completion``
fences.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RoccFunct(enum.IntEnum):
    """funct7 values of the accelerator's custom instructions."""

    DESER_ASSIGN_ARENA = 0
    DESER_INFO = 1
    DO_PROTO_DESER = 2
    BLOCK_FOR_DESER_COMPLETION = 3
    SER_ASSIGN_ARENA = 4
    SER_INFO = 5
    DO_PROTO_SER = 6
    BLOCK_FOR_SER_COMPLETION = 7
    # Section 7 extension ops: reuse the ser/deser hardware blocks to
    # offload clear, copy and merge (another 17.1% of C++ protobuf
    # cycles fleet-wide).
    DO_PROTO_CLEAR = 8
    DO_PROTO_COPY = 9
    DO_PROTO_MERGE = 10


@dataclass(frozen=True)
class RoccInstruction:
    """One custom instruction: a funct plus two 64-bit register operands."""

    funct: RoccFunct
    rs1: int = 0
    rs2: int = 0

    def __post_init__(self) -> None:
        for name, value in (("rs1", self.rs1), ("rs2", self.rs2)):
            if not 0 <= value < 2**64:
                raise ValueError(f"{name} must fit in 64 bits, got {value:#x}")


@dataclass
class RoccInterface:
    """Command router between the core and the accelerator units.

    Tracks dispatch-cycle accounting and the number of in-flight operations
    so `block_for_*_completion` can be modelled as committing only once all
    in-flight work retires (Section 4.4.1's "flexible middle ground").

    This class is also the reference implementation of the
    :class:`~repro.soc.transport.AccelTransport` protocol -- the seam
    that lets :class:`~repro.soc.pcie.PcieTransport` slot in as a second
    attach point.  For RoCC the transport surface is nearly free: the
    per-instruction core dispatch cost accrues into an uncollected-cycle
    ledger the driver drains into ``transport_cycles`` stats, and the
    batch-window / payload hooks are no-ops (there are no rings,
    doorbells, or DMA staging to amortise).
    """

    #: Transport identity ("rocc" here, "pcie" for PcieTransport).
    name = "rocc"

    dispatch_cycles_each: int = 4
    instructions_issued: int = 0
    dispatch_cycles_total: int = 0
    _inflight_deser: int = 0
    _inflight_ser: int = 0
    log: list[RoccInstruction] = field(default_factory=list)
    #: Fault interrupts the accelerator raised to the core (Section 4.3's
    #: interrupt line carries arena exhaustion and unit faults alike).
    faults_raised: int = 0
    fault_sites: dict = field(default_factory=dict)
    #: Transport cycles charged but not yet drained via take_cycles().
    _uncollected: float = 0.0

    def record_fault(self, site: str | None) -> None:
        """The accelerator signalled a fault interrupt from ``site``."""
        self.faults_raised += 1
        key = site or "unknown"
        self.fault_sites[key] = self.fault_sites.get(key, 0) + 1

    def issue(self, instruction: RoccInstruction) -> None:
        self.instructions_issued += 1
        self.dispatch_cycles_total += self.dispatch_cycles_each
        self._uncollected += self.dispatch_cycles_each
        self.log.append(instruction)
        if instruction.funct is RoccFunct.DO_PROTO_DESER:
            self._inflight_deser += 1
        elif instruction.funct is RoccFunct.DO_PROTO_SER:
            self._inflight_ser += 1

    # -- AccelTransport surface -------------------------------------------------

    def take_cycles(self) -> float:
        """Drain the transport cycles charged since the last drain.

        The driver calls this after each operation (and after window
        close) to attribute attach-point cost to ``transport_cycles``
        stats.  For RoCC this is the custom-instruction dispatch cost:
        ``dispatch_cycles_each`` per issued instruction.
        """
        cycles = self._uncollected
        self._uncollected = 0.0
        return cycles

    def begin_batch(self) -> None:
        """Open a batch window (no-op on RoCC: dispatch cost is flat
        per instruction; nothing amortises)."""

    def end_batch(self) -> None:
        """Close a batch window (no-op on RoCC)."""

    def note_payload(self, nbytes: int) -> None:
        """Register produced output bytes (no-op on RoCC: results land
        in the shared arena over the system bus, already charged by the
        unit's memwriter model)."""

    def counters(self) -> dict:
        """Observability snapshot for perf reports and probes."""
        return {
            "transport": self.name,
            "instructions_issued": self.instructions_issued,
            "transport_cycles_total": float(self.dispatch_cycles_total),
            "faults_raised": self.faults_raised,
        }

    def retire_deser(self, count: int = 1) -> None:
        if count > self._inflight_deser:
            raise RuntimeError("retiring more deserializations than in flight")
        self._inflight_deser -= count

    def retire_ser(self, count: int = 1) -> None:
        if count > self._inflight_ser:
            raise RuntimeError("retiring more serializations than in flight")
        self._inflight_ser -= count

    @property
    def inflight_deserializations(self) -> int:
        return self._inflight_deser

    @property
    def inflight_serializations(self) -> int:
        return self._inflight_ser

    def block_for_deser_completion(self) -> bool:
        """True if the fence commits immediately (nothing in flight)."""
        self.issue(RoccInstruction(RoccFunct.BLOCK_FOR_DESER_COMPLETION))
        return self._inflight_deser == 0

    def block_for_ser_completion(self) -> bool:
        self.issue(RoccInstruction(RoccFunct.BLOCK_FOR_SER_COMPLETION))
        return self._inflight_ser == 0
