"""SoC integration substrate: accelerator transports, TLBs, system bus.

Models the glue of Figure 8: the BOOM core dispatches custom RISC-V
instructions to the accelerator over the RoCC interface; the accelerator's
memory interface wrappers translate virtual addresses through private TLBs
backed by the page-table walker, and move data over the 128-bit TileLink
system bus shared with the core.

The accelerator can also attach as a PCIe device (`repro.soc.pcie`):
submission/completion queue pairs, batched doorbells, DMA latency, and
interrupt coalescing.  Both attach points implement the
:class:`~repro.soc.transport.AccelTransport` protocol, selected by
``SoCConfig.transport`` and resolved through
:func:`~repro.soc.transport.build_transport`.
"""

from repro.soc.config import SoCConfig, SoCConfigError
from repro.soc.rocc import RoccFunct, RoccInstruction, RoccInterface
from repro.soc.pcie import (
    DescriptorRing,
    InterruptCoalescer,
    PcieParams,
    PcieTransport,
    RingFull,
)
from repro.soc.transport import (
    TRANSPORTS,
    AccelTransport,
    TransportResolution,
    build_transport,
    probe_transport,
    resolve_transport,
)
from repro.soc.tlb import Tlb, TlbStats
from repro.soc.bus import SystemBus
from repro.soc.multitile import MultiTileModel, TileWorkProfile

__all__ = [
    "SoCConfig",
    "SoCConfigError",
    "RoccFunct",
    "RoccInstruction",
    "RoccInterface",
    "DescriptorRing",
    "InterruptCoalescer",
    "PcieParams",
    "PcieTransport",
    "RingFull",
    "TRANSPORTS",
    "AccelTransport",
    "TransportResolution",
    "build_transport",
    "probe_transport",
    "resolve_transport",
    "Tlb",
    "TlbStats",
    "SystemBus",
    "MultiTileModel",
    "TileWorkProfile",
]
