"""SoC integration substrate: RoCC interface, TLBs, and the system bus.

Models the glue of Figure 8: the BOOM core dispatches custom RISC-V
instructions to the accelerator over the RoCC interface; the accelerator's
memory interface wrappers translate virtual addresses through private TLBs
backed by the page-table walker, and move data over the 128-bit TileLink
system bus shared with the core.
"""

from repro.soc.config import SoCConfig
from repro.soc.rocc import RoccFunct, RoccInstruction, RoccInterface
from repro.soc.tlb import Tlb, TlbStats
from repro.soc.bus import SystemBus
from repro.soc.multitile import MultiTileModel, TileWorkProfile

__all__ = [
    "SoCConfig",
    "RoccFunct",
    "RoccInstruction",
    "RoccInterface",
    "Tlb",
    "TlbStats",
    "SystemBus",
    "MultiTileModel",
    "TileWorkProfile",
]
