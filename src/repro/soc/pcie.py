"""PCIe/DMA attach point: queue pairs, doorbells, and coalesced IRQs.

The paper hangs the accelerator off the core over RoCC (ones-of-cycles
dispatch, Section 4.1).  RPCAcc (PAPERS.md) makes the case that *where*
the accelerator hangs is the interesting systems question: a
PCIe-attached device pays heavy fixed costs -- MMIO doorbell writes,
DMA engine spin-up, completion interrupts -- but amortises them over
bounded descriptor rings, so there is a message-size x batch-size
crossover against RoCC that neither paper quantifies.  This module
models that attach point as a second :class:`AccelTransport`
implementation beside :class:`~repro.soc.rocc.RoccInterface`.

Queue-pair model (NVMe-shaped, one descriptor per offloaded operation):

1. The host writes one submission-queue entry per ``DO_PROTO_*``
   command (``desc_write_cycles``); the paired ``*_INFO`` operand
   travels inside the same descriptor and charges nothing extra.
2. Deserialization payloads are staged host-to-device by DMA at
   ``link_bytes_per_cycle`` as part of the submission (posted writes,
   pipelined behind the descriptor).  Serialization outputs are staged
   device-to-host after completion (:meth:`PcieTransport.note_payload`).
3. Every ``doorbell_batch`` submissions -- or at window close -- the
   host rings the doorbell (``mmio_doorbell_cycles``, an uncached MMIO
   store).  The device then fetches and executes the whole group; each
   completion costs ``completion_write_cycles`` for the CQE write.
4. The first doorbell of a window additionally pays
   ``dma_latency_cycles`` once: DMA engine spin-up plus the first
   descriptor-fetch round trip (pipeline fill; later fetches overlap
   with execution).
5. Completion interrupts are coalesced: one fires when
   ``coalesce_threshold`` completions are pending, when the submission
   stream has been quiet for ``coalesce_timeout_cycles``, or -- so a
   full batch is never starved -- when the window closes with
   completions still pending (adaptive SQ-empty fire).

Every cost is simulated cycles, accumulated into the transport's
uncollected-cycle ledger and drained by the driver into per-operation
``transport_cycles`` stats (docs/MODEL.md, transport section).  The
deser/ser unit cycles (``stats.cycles``) are identical on both
transports by construction -- the units don't know what they hang off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soc.rocc import RoccFunct, RoccInstruction, RoccInterface


@dataclass(frozen=True)
class PcieParams:
    """Knobs of the modeled PCIe attach point (validated by SoCConfig).

    Defaults model a Gen4 x8-class link on a 2 GHz clock: ~64 B/cycle
    of streaming payload bandwidth, an uncached MMIO doorbell costing
    ~128 cycles, ~500 cycles of DMA round-trip fill, and a ~150-cycle
    interrupt service path, with NVMe-ish ring geometry.
    """

    #: Capability-probe result: a PCIe function is present and usable.
    #: ``False`` makes :func:`repro.soc.transport.resolve_transport`
    #: fall back to RoCC with a recorded reason.
    present: bool = True
    #: Submission/completion ring slots (bounded; zero is rejected).
    ring_depth: int = 256
    #: Bytes per submission-queue entry (one per operation).
    desc_bytes: int = 32
    #: Host cycles to compose and write one SQE.
    desc_write_cycles: float = 0.5
    #: Host cycles for one uncached MMIO doorbell store.
    mmio_doorbell_cycles: float = 128.0
    #: Submissions between doorbell rings (batched doorbells).
    doorbell_batch: int = 128
    #: One-time per-window DMA pipeline-fill latency (engine spin-up +
    #: first descriptor fetch round trip).
    dma_latency_cycles: float = 500.0
    #: Streaming payload bandwidth of the link, bytes per cycle.
    link_bytes_per_cycle: float = 64.0
    #: Device cycles to post one completion-queue entry.
    completion_write_cycles: float = 0.25
    #: Host cycles to take and service one completion interrupt.
    interrupt_cycles: float = 150.0
    #: Pending completions that force an interrupt (coalescing).
    coalesce_threshold: int = 64
    #: Moderation timer: cycles since the last interrupt (measured on
    #: the transport's charging clock) after which pending completions
    #: force one even below the threshold.
    coalesce_timeout_cycles: float = 8000.0


class RingFull(RuntimeError):
    """Submission attempted on a full descriptor ring."""


class DescriptorRing:
    """A bounded single-producer/single-consumer descriptor ring.

    Tracks absolute sequence numbers so tests can prove no descriptor
    is ever lost or duplicated: slot ``i`` of the backing list holds
    the payload of sequence ``i mod depth`` between its submit and its
    consume, and consumes always return sequences in submission order.
    """

    def __init__(self, depth: int):
        if depth < 1:
            raise ValueError(f"ring depth must be >= 1, got {depth}")
        self.depth = depth
        self._slots: list = [None] * depth
        #: Absolute producer sequence (== total submissions).
        self.submitted = 0
        #: Absolute consumer sequence (== total consumes).
        self.consumed = 0

    @property
    def occupancy(self) -> int:
        return self.submitted - self.consumed

    @property
    def full(self) -> bool:
        return self.occupancy >= self.depth

    @property
    def empty(self) -> bool:
        return self.occupancy == 0

    def submit(self, payload) -> int:
        """Push one descriptor; returns its absolute sequence number."""
        if self.full:
            raise RingFull(f"ring depth {self.depth} exhausted")
        seq = self.submitted
        self._slots[seq % self.depth] = (seq, payload)
        self.submitted += 1
        return seq

    def consume(self, count: int = 1) -> list:
        """Pop ``count`` descriptors in submission order."""
        if count < 0 or count > self.occupancy:
            raise RingFull(f"cannot consume {count} of {self.occupancy}")
        out = []
        for _ in range(count):
            seq = self.consumed
            slot, payload = self._slots[seq % self.depth]
            assert slot == seq, "ring slot overwritten before consume"
            self._slots[seq % self.depth] = None
            self.consumed += 1
            out.append((seq, payload))
        return out


class InterruptCoalescer:
    """Threshold/timeout interrupt moderation (docs/MODEL.md).

    ``add(n)`` registers freshly posted completions; ``advance(c)``
    advances the moderation timer (time since the last interrupt, as
    observed on the transport's charging clock).  Both return ``True``
    when an interrupt must fire now; the caller then invokes
    :meth:`fire`.  ``flush_due()`` is the window-close rule: with the
    SQ empty and completions pending, fire immediately -- a full batch
    is never starved behind the timeout.
    """

    def __init__(self, threshold: int, timeout_cycles: float):
        self.threshold = threshold
        self.timeout_cycles = timeout_cycles
        self.pending = 0
        self.elapsed = 0.0
        self.fired = 0

    def add(self, completions: int) -> bool:
        self.pending += completions
        return self.pending >= self.threshold

    def advance(self, cycles: float) -> bool:
        self.elapsed += cycles
        return self.pending > 0 and self.elapsed >= self.timeout_cycles

    def flush_due(self) -> bool:
        return self.pending > 0

    def fire(self) -> int:
        """Service the interrupt: reap every pending completion."""
        reaped = self.pending
        self.pending = 0
        self.elapsed = 0.0
        self.fired += 1
        return reaped


#: funct values that travel as one descriptor each over PCIe.  The
#: ``*_INFO`` halves of the paired commands ride inside the same
#: descriptor (32 B has room for both operand pairs) and the
#: ``BLOCK_FOR_*`` fences are the window-close interrupt wait, so
#: neither charges separately.
_SUBMISSION_FUNCTS = frozenset({
    RoccFunct.DESER_ASSIGN_ARENA,
    RoccFunct.SER_ASSIGN_ARENA,
    RoccFunct.DO_PROTO_DESER,
    RoccFunct.DO_PROTO_SER,
    RoccFunct.DO_PROTO_CLEAR,
    RoccFunct.DO_PROTO_COPY,
    RoccFunct.DO_PROTO_MERGE,
})


@dataclass
class PcieTransport(RoccInterface):
    """The PCIe-attached command router (an :class:`AccelTransport`).

    Subclasses :class:`~repro.soc.rocc.RoccInterface` for the shared
    command-log/in-flight/fault bookkeeping (the *logical* instruction
    stream is transport-independent) and replaces the cycle model: no
    per-instruction core dispatch (``dispatch_cycles_each`` is 0);
    instead, ring/doorbell/DMA/interrupt mechanics charge the window.

    All charges are dyadic rationals (multiples of 1/64 cycle), so
    accumulation order cannot perturb totals -- the property that keeps
    ``transport_cycles`` bit-identical across execution tiers.
    """

    params: PcieParams = field(default_factory=PcieParams)
    name: str = "pcie"
    # Device-lifetime observability counters.
    doorbells_rung: int = 0
    interrupts_raised: int = 0
    dma_payload_bytes: int = 0
    ring_full_stalls: int = 0
    windows_opened: int = 0

    def __post_init__(self) -> None:
        self.dispatch_cycles_each = 0
        self.sq = DescriptorRing(self.params.ring_depth)
        self.cq = DescriptorRing(self.params.ring_depth)
        self.coalescer = InterruptCoalescer(
            self.params.coalesce_threshold,
            self.params.coalesce_timeout_cycles)
        self._window_depth = 0
        self._sq_since_doorbell = 0
        self._dma_primed = False

    # -- charging core ----------------------------------------------------------

    def _charge(self, cycles: float, moderated: bool = True) -> None:
        self._uncollected += cycles
        self.dispatch_cycles_total += cycles
        if moderated and self.coalescer.advance(cycles):
            self._fire_interrupt()

    def _fire_interrupt(self) -> None:
        reaped = self.coalescer.fire()
        self.cq.consume(reaped)
        self.interrupts_raised += 1
        self._uncollected += self.params.interrupt_cycles
        self.dispatch_cycles_total += self.params.interrupt_cycles

    # -- AccelTransport surface -------------------------------------------------

    def begin_batch(self) -> None:
        self._window_depth += 1
        if self._window_depth == 1:
            self.windows_opened += 1
            self._dma_primed = False

    def end_batch(self) -> None:
        if self._window_depth == 0:
            return
        self._window_depth -= 1
        if self._window_depth == 0:
            self._ring_doorbell()
            # Adaptive SQ-empty fire: the window is over, so waiting
            # out the timeout would only add latency -- a full batch
            # is never starved behind the coalescer.
            if self.coalescer.flush_due():
                self._fire_interrupt()

    def note_payload(self, nbytes: int) -> None:
        """Device-to-host DMA of ``nbytes`` of produced output.

        Writeback overlaps interrupt moderation, so it charges the
        window without advancing the moderation timer -- which keeps
        the interrupt schedule a pure function of the submission
        stream (identical across execution tiers).
        """
        if nbytes:
            self.dma_payload_bytes += nbytes
            self._charge(nbytes / self.params.link_bytes_per_cycle,
                         moderated=False)

    def issue(self, instruction: RoccInstruction) -> None:
        super().issue(instruction)
        if instruction.funct in _SUBMISSION_FUNCTS:
            implicit = self._window_depth == 0
            if implicit:
                self.begin_batch()
            self._submit(instruction)
            if implicit:
                self.end_batch()

    # -- queue-pair mechanics ---------------------------------------------------

    def _submit(self, instruction: RoccInstruction) -> None:
        if self.sq.full:
            # Unreachable under validated configs (doorbell_batch and
            # coalesce_threshold are both capped at ring_depth), kept
            # as the honest backpressure path: drain everything.
            self.ring_full_stalls += 1
            self._ring_doorbell()
            if self.coalescer.flush_due():
                self._fire_interrupt()
        self.sq.submit(instruction.funct)
        self._charge(self.params.desc_write_cycles)
        if instruction.funct is RoccFunct.DO_PROTO_DESER:
            # rs2 of DO_PROTO_DESER is the wire-buffer length: the
            # host stages the payload to device memory as part of the
            # submission (posted writes behind the descriptor).
            self.dma_payload_bytes += instruction.rs2
            self._charge(instruction.rs2 / self.params.link_bytes_per_cycle)
        self._sq_since_doorbell += 1
        if self._sq_since_doorbell >= self.params.doorbell_batch:
            self._ring_doorbell()

    def _ring_doorbell(self) -> None:
        group = self._sq_since_doorbell
        if group == 0:
            return
        self._sq_since_doorbell = 0
        self.doorbells_rung += 1
        self._charge(self.params.mmio_doorbell_cycles)
        if not self._dma_primed:
            self._dma_primed = True
            self._charge(self.params.dma_latency_cycles)
        # The device fetches and executes the whole doorbell group;
        # each completion is one CQE write.  The simulated units run
        # inline, so submission-visible and completion-visible are the
        # same simulated-clock event from the host's charging side.
        for seq, payload in self.sq.consume(group):
            self.cq.submit((seq, payload))
        self._charge(self.params.completion_write_cycles * group)
        if self.coalescer.add(group):
            self._fire_interrupt()

    def counters(self) -> dict:
        data = super().counters()
        data.update(
            doorbells_rung=self.doorbells_rung,
            interrupts_raised=self.interrupts_raised,
            dma_payload_bytes=self.dma_payload_bytes,
            ring_full_stalls=self.ring_full_stalls,
            windows_opened=self.windows_opened,
            sq_submitted=self.sq.submitted,
            cq_completed=self.cq.submitted,
            cq_reaped=self.cq.consumed,
        )
        return data
