"""The accelerator attach-point seam: AccelTransport + capability probe.

The deser/ser units don't care what they hang off; the *driver* does.
This module names the contract between them -- the
:class:`AccelTransport` protocol both :class:`~repro.soc.rocc.RoccInterface`
(near-core custom instructions) and :class:`~repro.soc.pcie.PcieTransport`
(queue pairs over a link) satisfy -- and implements the
capability-probe/fallback manager in the style of
``five82__encodeworkflow``'s ``HardwareAccel``/``HardwareManager``:
resolve the configured transport name, probe the hardware it needs, and
degrade gracefully to RoCC with a recorded reason when the probe fails.
Unknown transport names are a *configuration* error (structured,
naming the knob), not a fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.soc.config import SoCConfig, SoCConfigError
from repro.soc.pcie import PcieTransport
from repro.soc.rocc import RoccInstruction, RoccInterface

#: Registered transport names, in probe-preference order.
TRANSPORTS = ("rocc", "pcie")


@runtime_checkable
class AccelTransport(Protocol):
    """What the driver needs from an attach point.

    Three facets:

    * **Command issue** -- ``issue`` routes one logical accelerator
      command; ``retire_*``/``inflight_*``/``block_for_*_completion``
      track outstanding work and model the completion fences.
    * **Cycle charging** -- ``begin_batch``/``end_batch`` bracket an
      amortisation window, ``note_payload`` registers device-produced
      output bytes, and ``take_cycles`` drains the attach-point cost
      accrued since the last drain (the driver folds it into
      per-operation ``transport_cycles`` stats).
    * **Fault/interrupt surface** -- ``record_fault`` counts fault
      interrupts raised to the core; ``counters`` is the observability
      snapshot.
    """

    name: str

    def issue(self, instruction: RoccInstruction) -> None: ...
    def retire_deser(self, count: int = 1) -> None: ...
    def retire_ser(self, count: int = 1) -> None: ...
    @property
    def inflight_deserializations(self) -> int: ...
    @property
    def inflight_serializations(self) -> int: ...
    def block_for_deser_completion(self) -> bool: ...
    def block_for_ser_completion(self) -> bool: ...
    def begin_batch(self) -> None: ...
    def end_batch(self) -> None: ...
    def note_payload(self, nbytes: int) -> None: ...
    def take_cycles(self) -> float: ...
    def record_fault(self, site: str | None) -> None: ...
    def counters(self) -> dict: ...


@dataclass(frozen=True)
class TransportResolution:
    """Outcome of resolving a configured transport name.

    ``effective`` is what the device actually attached over; when it
    differs from ``requested``, ``fallback_reason`` says why (the probe
    failed), mirroring the manager pattern in ``five82__encodeworkflow``.
    """

    requested: str
    effective: str
    fallback_reason: str | None = None

    @property
    def fell_back(self) -> bool:
        return self.requested != self.effective


def probe_transport(name: str, config: SoCConfig) -> str | None:
    """Probe whether transport ``name`` is usable on this SoC; returns
    ``None`` when usable, else a human-readable failure reason."""
    if name == "rocc":
        return None  # the core's own interface; always present
    if name == "pcie":
        if not config.pcie.present:
            return ("capability probe found no usable PCIe function "
                    "(pcie.present=False)")
        return None
    return f"no probe registered for transport {name!r}"


def resolve_transport(config: SoCConfig) -> TransportResolution:
    """Resolve ``config.transport``: validate the name, probe it, and
    fall back to RoCC (with a recorded reason) if the probe fails."""
    requested = config.transport
    if requested not in TRANSPORTS:
        raise SoCConfigError(
            "transport", requested,
            f"unknown transport; expected one of {', '.join(TRANSPORTS)}")
    reason = probe_transport(requested, config)
    if reason is None:
        return TransportResolution(requested, requested)
    return TransportResolution(requested, "rocc", fallback_reason=reason)


def build_transport(config: SoCConfig
                    ) -> tuple[AccelTransport, TransportResolution]:
    """Construct the attach point for ``config`` (post-probe).

    Worker-constructible by contract: this factory reads only the
    picklable ``config`` -- no module-level rings, counters, or probe
    caches -- so a spawned worker process rebuilding a shard from a
    :class:`~repro.serve.parallel.ShardSpec` gets a transport
    bit-identical to the parent's (``tests/serve/test_pickle_specs.py``
    builds one in a spawn-context subprocess to hold this).
    """
    resolution = resolve_transport(config)
    if resolution.effective == "pcie":
        return PcieTransport(params=config.pcie), resolution
    return (RoccInterface(dispatch_cycles_each=config.rocc_dispatch_cycles),
            resolution)
