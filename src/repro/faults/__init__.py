"""Fault injection and error recovery for the accelerator pipeline.

See docs/FAULTS.md for the taxonomy, the injection sites, the recovery
policy, and how fault cycles are charged into throughput figures.
"""

from repro.faults.injector import FaultInjector, InjectedFault
from repro.faults.plan import (
    DESER_SITES,
    FaultPlan,
    FaultSite,
    HANG_SITES,
    IMMEDIATE_SITES,
    PERSISTENT_SITES,
    SER_SITES,
    TRANSIENT_SITES,
)
from repro.faults.recovery import RecoveryPolicy

__all__ = [
    "DESER_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSite",
    "HANG_SITES",
    "IMMEDIATE_SITES",
    "InjectedFault",
    "PERSISTENT_SITES",
    "RecoveryPolicy",
    "SER_SITES",
    "TRANSIENT_SITES",
]
