"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

One injector is attached to one accelerator device.  The driver brackets
each offloaded operation with :meth:`FaultInjector.begin_operation` /
:meth:`~FaultInjector.end_operation`; each *attempt* (the initial run and
every retry) is announced via :meth:`~FaultInjector.begin_attempt`, which
also binds the attempt's stats object so fired faults carry an accurate
cycle stamp.  Units call :meth:`~FaultInjector.poll` at their named sites;
when the armed fault's site and trigger count match, the poll raises
:class:`~repro.proto.errors.AccelFault`.

Determinism: all randomness comes from one ``random.Random(plan.seed)``
stream advanced only in ``begin_operation``, so a fixed plan over a fixed
operation sequence always injects the same faults -- the property the
harness cache and the recovery tests rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults.plan import (
    FaultPlan,
    FaultSite,
    IMMEDIATE_SITES,
    TRANSIENT_SITES,
)
from repro.proto.errors import AccelFault


@dataclass
class InjectedFault:
    """Log record of one fired fault."""

    op_index: int
    site: FaultSite
    transient: bool
    cycle: float
    attempt: int


class _Armed:
    """The (at most one) fault armed for the current operation."""

    __slots__ = ("site", "transient", "trigger", "remaining", "polls")

    def __init__(self, site: FaultSite, transient: bool, trigger: int,
                 remaining: int):
        self.site = site
        self.transient = transient
        self.trigger = trigger            # fire on the Nth poll of the site
        self.remaining = remaining        # firings left; -1 = every attempt
        self.polls = 0


class FaultInjector:
    """Seeded executor of one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._armed: _Armed | None = None
        self._stats = None
        self._op_index = -1
        self._attempt = 0
        self.injected = 0
        self.operations = 0
        self.log: list[InjectedFault] = []

    # -- operation bracketing ---------------------------------------------------

    def begin_operation(self, kind: str) -> None:
        """Draw this operation's fault (or none).  ``kind`` is ``"deser"``
        or ``"ser"``."""
        self._op_index += 1
        self._attempt = 0
        self._armed = None
        self._stats = None
        self.operations += 1
        # Always consume the same number of main-stream draws per
        # operation (one roll, plus one child seed when armed) so the
        # stream stays aligned regardless of which sites are planned;
        # site and trigger come from a child RNG.
        roll = self._rng.random()
        sites = self.plan.sites_for(kind)
        armed = roll < self.plan.rate
        if not armed:
            return
        pick = random.Random(self._rng.getrandbits(64))
        if not sites:
            return
        site = sites[pick.randrange(len(sites))]
        transient = site in TRANSIENT_SITES
        trigger = (1 if site in IMMEDIATE_SITES
                   else pick.randint(1, self.plan.max_trigger))
        remaining = self.plan.transient_duration if transient else -1
        self._armed = _Armed(site, transient, trigger, remaining)

    def begin_attempt(self, stats) -> None:
        """A new attempt of the current operation starts; bind its stats
        object so fired faults carry the attempt's cycle count."""
        self._attempt += 1
        self._stats = stats
        if self._armed is not None:
            self._armed.polls = 0

    def end_operation(self) -> None:
        self._armed = None
        self._stats = None

    # -- the injection points ---------------------------------------------------

    def poll(self, site: FaultSite) -> None:
        """Called by a unit at a named site; raises when the armed fault
        fires here."""
        armed = self._armed
        if armed is None or armed.site is not site:
            return
        armed.polls += 1
        if armed.polls != armed.trigger or armed.remaining == 0:
            return
        if armed.remaining > 0:
            armed.remaining -= 1
        cycle = float(self._stats.cycles) if self._stats is not None else 0.0
        self.injected += 1
        self.log.append(InjectedFault(self._op_index, site, armed.transient,
                                      cycle, self._attempt))
        raise AccelFault(
            f"injected {'transient' if armed.transient else 'persistent'} "
            f"fault at {site.value} (cycle {cycle:.0f})",
            site=site.value, cycle=cycle, transient=armed.transient,
            injected=True)
