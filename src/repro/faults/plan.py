"""Declarative, seeded fault plans: what to break, where, and how often.

A :class:`FaultPlan` names the hardware *sites* at which faults may fire
and a per-operation probability.  Plans are frozen and picklable so the
benchmark harness can ship them to worker processes, and they carry a
``fingerprint()`` that the harness folds into its disk-cache keys (only
when faults are active, so fault-free cache entries stay bit-identical
to the pre-fault-subsystem ones).

Site semantics (docs/FAULTS.md has the full taxonomy):

* Transient sites model soft errors and contention -- retrying the same
  operation is expected to succeed once the condition clears.
* Persistent sites model conditions a retry cannot fix (the hardware
  keeps detecting the same corruption); the driver goes straight to the
  CPU fallback for those.

Data-corrupting sites (bit flips, ADT entry corruption) are modelled as
*detected* faults: the unit's ECC/parity check raises instead of letting
corrupt data flow downstream.  That keeps recovery semantics exact --
the retried or fallback decode always runs over pristine bytes, which is
what lets the test suite demand bit-identical results under fault load.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, field


class FaultSite(enum.Enum):
    """Named injection points threaded through the pipeline."""

    MEMLOADER_BITFLIP = "memloader.bitflip"    # ECC error in a window
    MEMLOADER_TRUNCATE = "memloader.truncate"  # stream ended short (beat count mismatch)
    VARINT_OVERLONG = "varint.overlong"        # decoder saw > 10 continuation bytes
    UTF8_CORRUPT = "utf8.corrupt"              # validator DFA hit a bad sequence
    ADT_ENTRY = "adt.entry"                    # ADT entry parity failure
    BUS_STALL = "bus.stall"                    # TileLink channel timed out
    TLB_FAULT = "tlb.fault"                    # PTW returned an invalid PTE
    DESER_ABORT = "deser.abort"                # field handler died mid-message
    SER_ABORT = "ser.abort"                    # serializer pipeline died mid-message
    DESER_HANG = "deser.hang"                  # field handler stopped progressing
    SER_HANG = "ser.hang"                      # serializer pipeline stopped progressing
    PCIE_DMA = "pcie.dma"                      # payload/descriptor DMA failed (link CRC)
    PCIE_DOORBELL = "pcie.doorbell"            # doorbell MMIO write lost/rejected


#: Sites where a bounded retry of the same operation may succeed.
TRANSIENT_SITES = frozenset({
    FaultSite.MEMLOADER_BITFLIP,
    FaultSite.ADT_ENTRY,
    FaultSite.BUS_STALL,
    FaultSite.TLB_FAULT,
    # Link-level CRC retries and doorbell re-posts succeed once the
    # condition clears; the driver resubmits the descriptor.
    FaultSite.PCIE_DMA,
    FaultSite.PCIE_DOORBELL,
})

#: Sites that deterministically recur on retry (driver falls back).
PERSISTENT_SITES = frozenset(FaultSite) - TRANSIENT_SITES

#: Sites reachable during a deserialization operation.
DESER_SITES = (
    FaultSite.MEMLOADER_BITFLIP,
    FaultSite.MEMLOADER_TRUNCATE,
    FaultSite.VARINT_OVERLONG,
    FaultSite.UTF8_CORRUPT,
    FaultSite.ADT_ENTRY,
    FaultSite.BUS_STALL,
    FaultSite.TLB_FAULT,
    FaultSite.DESER_ABORT,
    FaultSite.DESER_HANG,
)

#: Sites reachable during a serialization operation.
SER_SITES = (
    FaultSite.ADT_ENTRY,
    FaultSite.BUS_STALL,
    FaultSite.TLB_FAULT,
    FaultSite.SER_ABORT,
    FaultSite.SER_HANG,
)

#: Sites reachable only over the PCIe attach point (polled by the
#: *driver* at submission, before any unit runs).  Deliberately NOT
#: folded into DESER_SITES/SER_SITES: the RoCC-path site draw must stay
#: bit-identical to pre-transport releases, so PCIe operations announce
#: themselves with a ``"pcie."``-prefixed kind instead (``sites_for``).
PCIE_SITES = (
    FaultSite.PCIE_DMA,
    FaultSite.PCIE_DOORBELL,
)

#: Sites that model a hung FSM: the unit stops making forward progress
#: and burns cycles until the watchdog's per-operation budget expires
#: (docs/SERVING.md).  Hangs are persistent -- the aborted operation is
#: never retried on the same tile; recovery is fallback or failover.
HANG_SITES = frozenset({FaultSite.DESER_HANG, FaultSite.SER_HANG})

#: Sites polled once, at the start of an attempt; their armed fault fires
#: on the first poll regardless of ``max_trigger`` (the condition exists
#: before the operation touches any data).
IMMEDIATE_SITES = frozenset({
    FaultSite.MEMLOADER_BITFLIP,
    FaultSite.MEMLOADER_TRUNCATE,
    FaultSite.BUS_STALL,
    FaultSite.TLB_FAULT,
    # Submission-time conditions: they exist before the units touch any
    # data, and the driver polls them first, so they fire on poll one.
    FaultSite.PCIE_DMA,
    FaultSite.PCIE_DOORBELL,
})


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of a fault-injection campaign.

    ``rate`` is the per-operation probability that one fault is armed for
    that operation; the armed site is drawn uniformly from ``sites``
    (restricted to the sites the operation kind can reach).
    ``transient_duration`` is how many attempts a transient fault keeps
    firing before it clears -- 1 means the first retry succeeds.
    ``max_trigger`` bounds how many polls into the operation a non-
    immediate fault waits before firing (tests pin it to 1 to make the
    fault land on the first reachable poll).
    """

    seed: int = 0
    rate: float = 0.0
    sites: tuple[FaultSite, ...] = field(default=tuple(FaultSite))
    transient_duration: int = 1
    max_trigger: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.transient_duration < 1:
            raise ValueError("transient_duration must be >= 1")
        if self.max_trigger < 1:
            raise ValueError("max_trigger must be >= 1")
        # Accept site names ("tlb.fault") as well as FaultSite members.
        object.__setattr__(self, "sites",
                           tuple(FaultSite(s) for s in self.sites))
        if not self.sites:
            raise ValueError("a FaultPlan needs at least one site")

    def enabled(self) -> bool:
        return self.rate > 0.0

    def sites_for(self, kind: str) -> tuple[FaultSite, ...]:
        """The plan's sites reachable by one operation ``kind``.

        ``"deser"``/``"ser"`` are the RoCC-path kinds (unchanged since
        the fault subsystem landed, so seeded site draws replay
        bit-identically); ``"pcie.deser"``/``"pcie.ser"`` additionally
        reach the transport's own submission sites.
        """
        base = kind.removeprefix("pcie.")
        reachable = DESER_SITES if base == "deser" else SER_SITES
        if kind.startswith("pcie."):
            reachable = reachable + PCIE_SITES
        return tuple(s for s in self.sites if s in reachable)

    def derive(self, *labels: str) -> "FaultPlan":
        """A copy of this plan with a seed mixed from ``labels``.

        Every fresh :class:`~repro.faults.injector.FaultInjector` replays
        the plan seed's RNG stream from the start, so independent runs
        (one benchmark workload each, say) would otherwise fault at
        *identical* operation indices.  Deriving a per-workload seed
        decorrelates them while staying fully deterministic.
        """
        material = "|".join((str(self.seed),) + labels)
        digest = hashlib.sha256(material.encode()).digest()
        return dataclasses.replace(
            self, seed=int.from_bytes(digest[:8], "big"))

    def fingerprint(self) -> str:
        """Deterministic identity for cache keys and reports."""
        return "faults:v2|" + "|".join((
            str(self.seed), repr(self.rate),
            ",".join(s.value for s in self.sites),
            str(self.transient_duration), str(self.max_trigger)))
