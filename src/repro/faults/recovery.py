"""The driver's recovery policy for accelerator faults.

Transient faults (bus stalls, TLB faults, soft errors caught by ECC) are
retried with exponential backoff -- the fault interrupt costs nothing but
the wasted attempt plus a software pause before re-issuing the RoCC pair.
Persistent faults, and transient ones that survive ``max_retries``
attempts, divert the message to the software parser on the host core;
:mod:`repro.accel.driver` charges the wasted accelerator cycles, every
backoff pause, and the CPU decode itself, so throughput figures remain
honest under fault load (docs/FAULTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded retry-with-backoff, then per-message CPU fallback.

    ``cpu_fallback=False`` disables the driver's *internal* fallback:
    persistent faults (and exhausted retry budgets) re-raise the
    structured :class:`~repro.proto.errors.AccelFault` -- with the
    wasted-attempt and backoff cycles attached as ``charged_cycles`` --
    instead of silently decoding on the host core.  The serving layer
    (repro.serve) uses this mode so *it* owns the fallback decision:
    it must weigh the remaining deadline and the tile circuit breaker
    before spending host cycles (docs/SERVING.md).
    """

    max_retries: int = 3
    backoff_cycles: float = 64.0
    backoff_multiplier: float = 2.0
    cpu_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_cycles < 0:
            raise ValueError("backoff_cycles must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff(self, retry_index: int) -> float:
        """Pause (in cycles) before retry number ``retry_index`` (0-based)."""
        return self.backoff_cycles * self.backoff_multiplier ** retry_index
