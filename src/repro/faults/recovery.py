"""The driver's recovery policy for accelerator faults.

Transient faults (bus stalls, TLB faults, soft errors caught by ECC) are
retried with exponential backoff -- the fault interrupt costs nothing but
the wasted attempt plus a software pause before re-issuing the RoCC pair.
Persistent faults, and transient ones that survive ``max_retries``
attempts, divert the message to the software parser on the host core;
:mod:`repro.accel.driver` charges the wasted accelerator cycles, every
backoff pause, and the CPU decode itself, so throughput figures remain
honest under fault load (docs/FAULTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded retry-with-backoff, then per-message CPU fallback."""

    max_retries: int = 3
    backoff_cycles: float = 64.0
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_cycles < 0:
            raise ValueError("backoff_cycles must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff(self, retry_index: int) -> float:
        """Pause (in cycles) before retry number ``retry_index`` (0-based)."""
        return self.backoff_cycles * self.backoff_multiplier ** retry_index
