"""Cost parameters for the Xeon E5-2686 v4 server baseline ("Xeon").

One core (2 HT) at 2.3 GHz base / 2.7 GHz turbo; the batched
single-threaded benchmarks run at turbo.  Relative to BOOM the Xeon has a
wider rename/issue width, a far better branch predictor and BTB (cheaper
per-field dispatch), a mature tcmalloc-style allocator fast path, and --
most visibly in the long-string benchmarks -- AVX-backed ``memcpy``
sustaining tens of bytes per cycle from its larger caches and stronger
uncore (the paper highlights the Xeon's very-long-string serialization).
"""

from repro.cpu.model import CpuParams, SoftwareCpu

XEON_PARAMS = CpuParams(
    name="Xeon",
    clock_hz=2.7e9,
    call_overhead_deser=70.0,
    call_overhead_ser=30.0,
    tag_decode_base=5.0,
    tag_decode_per_byte=1.5,
    tag_encode=2.5,
    varint_decode_base=4.0,
    varint_decode_per_byte=2.0,
    varint_encode_base=2.5,
    varint_encode_per_byte=1.5,
    zigzag=1.0,
    fixed_read=3.0,
    fixed_write=2.5,
    field_dispatch=10.0,
    field_check=1.0,
    bytesize_field=3.0,
    memcpy_base=25.0,
    memcpy_bytes_per_cycle=20.0,
    memcpy_cold_bytes_per_cycle=4.2,
    alloc=115.0,
    obj_construct_base=60.0,
    obj_construct_bytes_per_cycle=16.0,
    msg_enter=48.0,
    msg_exit=12.0,
    icache_miss_cycles=20.0,
    branch_mispredict_cycles=6.0,
)


def xeon_cpu() -> SoftwareCpu:
    """The paper's "Xeon" baseline host."""
    return SoftwareCpu(XEON_PARAMS)
