"""Instruction-cache and branch-predictor pressure (Section 7).

The paper: "protoc generates large amounts of branch-heavy code to
handle serializations and deserializations in software.  In some cases,
a call to serialize or deserialize can even effectively act like an I$
and branch predictor flush. ... This can save significant CPU cycles,
potentially as many as accelerating protobufs itself."

This model estimates that hidden tax.  Generated C++ emits on the order
of a cache line of code per field for each of the parse and serialize
paths, plus several data-dependent branches per field; a *cold* call
(after the working set was evicted by other service code) pays an I$
miss per touched line and a mispredict per learned branch.  Offloading
to the accelerator removes both the misses in protobuf code and the
flush-like eviction it inflicts on the caller's own code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.model import CpuParams
from repro.proto.descriptor import MessageDescriptor

#: Generated-code footprint: I$ lines per defined field (parse +
#: serialize paths each emit roughly this much).
CODE_LINES_PER_FIELD = 1.5
#: Fixed lines per generated class (prologue, dispatch tables).
CODE_LINES_BASE = 4.0
#: Data-dependent branches per field learned by the predictor.
BRANCHES_PER_FIELD = 4.0


def generated_code_lines(descriptor: MessageDescriptor) -> float:
    """Estimated I$ lines of generated ser/deser code for one type,
    including reachable sub-message types."""
    lines = CODE_LINES_BASE + CODE_LINES_PER_FIELD * len(descriptor.fields)
    seen = {id(descriptor)}
    worklist = [fd.message_type for fd in descriptor.fields
                if fd.message_type is not None]
    while worklist:
        child = worklist.pop()
        if id(child) in seen:
            continue
        seen.add(id(child))
        lines += CODE_LINES_BASE + CODE_LINES_PER_FIELD * len(child.fields)
        worklist.extend(fd.message_type for fd in child.fields
                        if fd.message_type is not None)
    return lines


def cold_call_penalty_cycles(params: CpuParams,
                             descriptor: MessageDescriptor,
                             miss_fraction: float = 1.0) -> float:
    """Extra cycles a ser/deser call pays when its code is cold.

    ``miss_fraction`` scales between fully warm (0) and a complete
    flush (1) -- the paper's "can act like an I$ and branch predictor
    flush" worst case.
    """
    if not 0.0 <= miss_fraction <= 1.0:
        raise ValueError("miss_fraction must lie in [0, 1]")
    lines = generated_code_lines(descriptor)
    branches = BRANCHES_PER_FIELD * len(descriptor.fields)
    return miss_fraction * (lines * params.icache_miss_cycles
                            + branches * params.branch_mispredict_cycles)


@dataclass(frozen=True)
class FrontendPressureReport:
    """Cold-vs-warm comparison for one message type on one host."""

    descriptor_name: str
    code_lines: float
    warm_cycles: float
    cold_penalty: float

    @property
    def cold_cycles(self) -> float:
        return self.warm_cycles + self.cold_penalty

    @property
    def penalty_ratio(self) -> float:
        """Cold penalty relative to the warm ser/deser work itself --
        the paper's "as many cycles as accelerating protobufs" claim
        corresponds to ratios near or above 1."""
        return self.cold_penalty / self.warm_cycles


def analyze(params: CpuParams, descriptor: MessageDescriptor,
            warm_cycles: float,
            miss_fraction: float = 1.0) -> FrontendPressureReport:
    """Build a report for one (host, type, measured-warm-cost) triple."""
    return FrontendPressureReport(
        descriptor_name=descriptor.name,
        code_lines=generated_code_lines(descriptor),
        warm_cycles=warm_cycles,
        cold_penalty=cold_call_penalty_cycles(params, descriptor,
                                              miss_fraction))
