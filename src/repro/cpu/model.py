"""Event-trace CPU cost model.

:class:`SoftwareCpu` runs the *actual* software serializer/deserializer
from :mod:`repro.proto` with tracing enabled, then converts the event
stream into cycles using a :class:`CpuParams` table.  Throughput is
reported in Gbit/s of wire data, the metric of Figures 11-13.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional, Sequence

from repro.proto.decoder import parse_message
from repro.proto.descriptor import MessageDescriptor, structural_fingerprint
from repro.proto.encoder import serialize_message
from repro.proto.message import Message
from repro.proto.trace import Op, Trace


class CycleCache:
    """Keyed per-operation cycle memoisation.

    The trace-based cost of one software ser/deser operation is a pure
    function of (cost params, message-type structure, wire bytes) -- no
    state carries over between operations -- so identical operations can
    charge the first computation's cycles.  Keys combine the frozen
    :class:`CpuParams`, the descriptor's structural fingerprint, and the
    exact wire buffer.  See docs/PERF.md for the determinism argument.
    """

    #: Entry cap: beyond this the cache resets (bounds batch sweeps).
    MAX_ENTRIES = 1 << 18

    def __init__(self, name: str):
        self.name = name
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._entries: dict[tuple, float] = {}

    def lookup(self, key: tuple) -> Optional[float]:
        if not self.enabled:
            return None
        cycles = self._entries.get(key)
        if cycles is None:
            self.misses += 1
            return None
        self.hits += 1
        return cycles

    def store(self, key: tuple, cycles: float) -> None:
        if not self.enabled:
            return
        if len(self._entries) >= self.MAX_ENTRIES:
            self._entries.clear()
        self._entries[key] = cycles

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: Process-wide software-CPU cycle caches (deser and ser operations).
DESER_CYCLE_CACHE = CycleCache("cpu-deser")
SER_CYCLE_CACHE = CycleCache("cpu-ser")


def set_cycle_cache_enabled(enabled: bool) -> None:
    """Toggle the software-CPU cycle caches (both operations)."""
    DESER_CYCLE_CACHE.enabled = enabled
    SER_CYCLE_CACHE.enabled = enabled


@dataclass(frozen=True)
class CpuParams:
    """Per-event cycle costs for one microarchitecture.

    ``*_base``/``*_per_byte`` pairs model loops whose trip count depends on
    encoded size (the varint encode/decode loops); ``memcpy_bytes_per_cycle``
    is the sustained copy bandwidth in bytes per core cycle.
    """

    name: str
    clock_hz: float
    #: Fixed overhead of one parse call (entry, stream setup, clears).
    call_overhead_deser: float
    #: Fixed overhead of one serialize call (incl. ByteSize entry).
    call_overhead_ser: float
    tag_decode_base: float
    tag_decode_per_byte: float
    tag_encode: float
    varint_decode_base: float
    varint_decode_per_byte: float
    varint_encode_base: float
    varint_encode_per_byte: float
    zigzag: float
    fixed_read: float
    fixed_write: float
    #: Per decoded field: the wire-type switch and indirect dispatch.
    field_dispatch: float
    #: Per defined field scanned during serialization (hasbits test).
    field_check: float
    #: Per present field during the ByteSize pass.
    bytesize_field: float
    memcpy_base: float
    #: Sustained copy bandwidth into warm destinations (serialization's
    #: output buffer is reused across the batch).
    memcpy_bytes_per_cycle: float
    #: Sustained copy bandwidth into freshly allocated memory
    #: (deserialization writes string/array payloads into new buffers,
    #: paying cold write misses and page touches).
    memcpy_cold_bytes_per_cycle: float
    #: Heap allocation fast path (string buffers, message objects).
    alloc: float
    obj_construct_base: float
    obj_construct_bytes_per_cycle: float
    msg_enter: float
    msg_exit: float
    #: Frontend-pressure parameters (Section 7: generated ser/deser code
    #: is large and branch-heavy; a cold call can act like an I$ and
    #: branch-predictor flush).  Only the frontend-pressure analysis uses
    #: these; the steady-state benchmarks assume warm code.
    icache_miss_cycles: float = 0.0
    branch_mispredict_cycles: float = 0.0

    def event_cycles(self, op: Op, arg: int,
                     cold_memcpy: bool = False) -> float:
        """Cycle cost of one trace event."""
        if op is Op.TAG_DECODE:
            return self.tag_decode_base + self.tag_decode_per_byte * arg
        if op is Op.TAG_ENCODE:
            return self.tag_encode
        if op is Op.VARINT_DECODE:
            return (self.varint_decode_base
                    + self.varint_decode_per_byte * arg)
        if op is Op.VARINT_ENCODE:
            return (self.varint_encode_base
                    + self.varint_encode_per_byte * arg)
        if op is Op.ZIGZAG:
            return self.zigzag
        if op is Op.FIXED_READ:
            return self.fixed_read
        if op is Op.FIXED_WRITE:
            return self.fixed_write
        if op is Op.FIELD_DISPATCH:
            return self.field_dispatch
        if op is Op.FIELD_CHECK:
            return self.field_check
        if op is Op.BYTESIZE_FIELD:
            return self.bytesize_field
        if op is Op.MEMCPY:
            rate = (self.memcpy_cold_bytes_per_cycle if cold_memcpy
                    else self.memcpy_bytes_per_cycle)
            return self.memcpy_base + arg / rate
        if op is Op.ALLOC:
            return self.alloc
        if op is Op.OBJ_CONSTRUCT:
            return (self.obj_construct_base
                    + arg / self.obj_construct_bytes_per_cycle)
        if op is Op.MSG_ENTER:
            return self.msg_enter
        if op is Op.MSG_EXIT:
            return self.msg_exit
        raise ValueError(f"unknown trace op {op}")

    def trace_cycles(self, trace: Trace, cold_memcpy: bool = False) -> float:
        return sum(self.event_cycles(op, arg, cold_memcpy)
                   for op, arg in trace)


@dataclass
class CpuOpResult:
    """One software ser/deser operation's cost."""

    cycles: float
    wire_bytes: int
    trace: Trace


class SoftwareCpu:
    """A host running the software protobuf library."""

    def __init__(self, params: CpuParams):
        self.params = params

    @property
    def name(self) -> str:
        return self.params.name

    def deserialize(self, descriptor: MessageDescriptor,
                    data: bytes) -> tuple[Message, CpuOpResult]:
        trace = Trace()
        message = parse_message(descriptor, data, trace=trace)
        cycles = (self.params.call_overhead_deser
                  + self.params.trace_cycles(trace, cold_memcpy=True))
        return message, CpuOpResult(cycles, len(data), trace)

    def serialize(self, message: Message) -> tuple[bytes, CpuOpResult]:
        trace = Trace()
        data = serialize_message(message, trace=trace)
        cycles = (self.params.call_overhead_ser
                  + self.params.trace_cycles(trace))
        return data, CpuOpResult(cycles, len(data), trace)

    def deserialize_batch_cycles(self, descriptor: MessageDescriptor,
                                 buffers: list[bytes]) -> float:
        """Total cycles to deserialize the batch.

        Identical (params, type, wire bytes) operations are memoised via
        :data:`DESER_CYCLE_CACHE`: a batch of N structurally identical
        buffers traces the parse once and charges cached cycles for the
        remaining N-1 -- bit-for-bit equal to the uncached sum because
        each operation's trace cost is state-free.
        """
        prefix = (self.params, structural_fingerprint(descriptor))
        total = 0.0
        for data in buffers:
            key = prefix + (bytes(data),)
            cycles = DESER_CYCLE_CACHE.lookup(key)
            if cycles is None:
                cycles = self.deserialize(descriptor, data)[1].cycles
                DESER_CYCLE_CACHE.store(key, cycles)
            total += cycles
        return total

    def serialize_batch_cycles(self, messages: list[Message],
                               keys: Optional[Sequence[bytes]] = None
                               ) -> float:
        """Total cycles to serialize the batch.

        ``keys`` optionally supplies each message's wire bytes (e.g. a
        workload's cached buffers); when given, identical messages are
        memoised via :data:`SER_CYCLE_CACHE` the same way deserialization
        is.  Without keys every message is traced (computing a key would
        itself require serializing).
        """
        if keys is None or len(keys) != len(messages):
            return sum(self.serialize(message)[1].cycles
                       for message in messages)
        prefix = (self.params,
                  structural_fingerprint(messages[0].descriptor)
                  if messages else "")
        total = 0.0
        for message, wire in zip(messages, keys):
            key = prefix + (bytes(wire),)
            cycles = SER_CYCLE_CACHE.lookup(key)
            if cycles is None:
                cycles = self.serialize(message)[1].cycles
                SER_CYCLE_CACHE.store(key, cycles)
            total += cycles
        return total

    def gbits_per_second(self, payload_bytes: int, cycles: float) -> float:
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        seconds = cycles / self.params.clock_hz
        return payload_bytes * 8 / seconds / 1e9
