"""Software cost models for clear / copy / merge (Section 7 baselines).

The paper's Figure 2 attributes 17.1% of C++ protobuf cycles to merge,
copy and clear, and 13.9% to destructors.  These functions walk actual
:class:`~repro.proto.message.Message` structures and charge CpuParams
event costs, mirroring how the generated C++ implementations behave:

- ``Clear()`` tests every defined field and, without arenas, frees owned
  strings and destroys sub-messages recursively;
- ``CopyFrom()`` clears then performs a deep copy (allocating strings
  and constructing sub-message objects);
- ``MergeFrom()`` overwrites singular fields, appends repeated fields,
  and recurses into present sub-messages.
"""

from __future__ import annotations

from repro.cpu.model import CpuParams
from repro.proto.message import Message
from repro.proto.trace import Op
from repro.proto.types import FieldType

#: Deallocation cost relative to allocation (free fast path).
_FREE_FRACTION = 0.6


def _string_bytes(fd, value) -> int:
    if fd.field_type is FieldType.STRING:
        return len(value.encode("utf-8"))
    return len(value)


def clear_cycles(params: CpuParams, message: Message,
                 arena_backed: bool = False) -> float:
    """Cycles for ``message.Clear()`` on this host.

    With ``arena_backed=True``, owned objects are not freed (the arena
    reclaims them in bulk) -- the software mitigation Section 7 suggests
    for destructor cost.
    """
    cycles = params.call_overhead_ser * 0.5
    for fd in message.descriptor.fields:
        cycles += params.event_cycles(Op.FIELD_CHECK, 1)
        if not message.has(fd.name):
            continue
        values = message[fd.name] if fd.is_repeated else [message[fd.name]]
        if fd.field_type is FieldType.MESSAGE:
            for child in values:
                cycles += clear_cycles(params, child, arena_backed)
                if not arena_backed:
                    cycles += params.alloc * _FREE_FRACTION
        elif fd.field_type in (FieldType.STRING, FieldType.BYTES):
            if not arena_backed:
                cycles += len(values) * params.alloc * _FREE_FRACTION
        if fd.is_repeated and not arena_backed:
            cycles += params.alloc * _FREE_FRACTION  # vector buffer
    return cycles


def copy_cycles(params: CpuParams, message: Message) -> float:
    """Cycles for ``dest.CopyFrom(message)`` (clear of dest excluded;
    callers add :func:`clear_cycles` when the destination was live)."""
    cycles = params.call_overhead_ser * 0.5
    for fd in message.descriptor.fields:
        cycles += params.event_cycles(Op.FIELD_CHECK, 1)
        if not message.has(fd.name):
            continue
        values = message[fd.name] if fd.is_repeated else [message[fd.name]]
        if fd.is_repeated:
            cycles += params.event_cycles(Op.ALLOC, 1)
        for value in values:
            if fd.field_type is FieldType.MESSAGE:
                cycles += params.event_cycles(Op.OBJ_CONSTRUCT, 48)
                cycles += params.event_cycles(Op.ALLOC, 1)
                cycles += copy_cycles(params, value)
            elif fd.field_type in (FieldType.STRING, FieldType.BYTES):
                size = _string_bytes(fd, value)
                cycles += params.event_cycles(Op.ALLOC, 1)
                cycles += params.event_cycles(Op.MEMCPY, size)
            else:
                cycles += params.event_cycles(Op.FIXED_WRITE, 1)
    return cycles


def merge_cycles(params: CpuParams, source: Message,
                 dest: Message | None = None) -> float:
    """Cycles for ``dest.MergeFrom(source)``.

    The destination only matters for sub-message fields (merge vs fresh
    construct); pass None to model merging into an empty message.
    """
    cycles = params.call_overhead_ser * 0.5
    for fd in source.descriptor.fields:
        cycles += params.event_cycles(Op.FIELD_CHECK, 1)
        if not source.has(fd.name):
            continue
        values = source[fd.name] if fd.is_repeated else [source[fd.name]]
        for value in values:
            if fd.field_type is FieldType.MESSAGE:
                dest_child = None
                if (dest is not None and not fd.is_repeated
                        and dest.has(fd.name)):
                    dest_child = dest[fd.name]
                else:
                    cycles += params.event_cycles(Op.OBJ_CONSTRUCT, 48)
                    cycles += params.event_cycles(Op.ALLOC, 1)
                cycles += merge_cycles(params, value, dest_child)
            elif fd.field_type in (FieldType.STRING, FieldType.BYTES):
                size = _string_bytes(fd, value)
                cycles += params.event_cycles(Op.ALLOC, 1)
                cycles += params.event_cycles(Op.MEMCPY, size)
            else:
                cycles += params.event_cycles(Op.FIXED_WRITE, 1)
    return cycles
