"""Mechanistic CPU cost models for the software protobuf baselines.

The paper evaluates against two hosts: the baseline RISC-V SoC with a
BOOM out-of-order core at 2 GHz ("riscv-boom") and one core of a Xeon
E5-2686 v4 at 2.3/2.7 GHz ("Xeon").  We model both by replaying the event
trace the software serializer/deserializer emits (varint loop iterations,
per-field dispatch branches, allocations, memcpys) and charging per-event
cycle costs that reflect each microarchitecture.  This keeps the baselines
mechanistic -- the effects the paper discusses (varint-size scaling, the
cost of small fields, the Xeon's memcpy advantage on long strings) emerge
from the trace rather than from per-benchmark lookup tables.
"""

from repro.cpu.model import CpuParams, SoftwareCpu
from repro.cpu.boom import boom_cpu, BOOM_PARAMS
from repro.cpu.xeon import xeon_cpu, XEON_PARAMS

__all__ = [
    "CpuParams",
    "SoftwareCpu",
    "boom_cpu",
    "BOOM_PARAMS",
    "xeon_cpu",
    "XEON_PARAMS",
]
