"""Cost parameters for the baseline BOOM RISC-V SoC ("riscv-boom").

A high-end SonicBOOM configuration at 2 GHz, comparable in IPC to ARM
Cortex A72-class cores (the paper's footnote 6).  Costs reflect a capable
but moderate-width OoO core: the byte-serial varint loops pay several
cycles per byte (loop-carried dependence plus an unpredictable exit
branch), per-field dispatch suffers indirect-branch mispredicts in the
generated parse code (the I$/BTB pressure Section 7 discusses), and
sustained memcpy bandwidth is limited by the 8-byte LSU datapath and the
weaker uncore the paper notes.
"""

from repro.cpu.model import CpuParams, SoftwareCpu

BOOM_PARAMS = CpuParams(
    name="riscv-boom",
    clock_hz=2.0e9,
    call_overhead_deser=140.0,
    call_overhead_ser=90.0,
    tag_decode_base=8.0,
    tag_decode_per_byte=3.0,
    tag_encode=6.0,
    varint_decode_base=6.0,
    varint_decode_per_byte=4.0,
    varint_encode_base=7.0,
    varint_encode_per_byte=3.0,
    zigzag=2.0,
    fixed_read=6.0,
    fixed_write=5.0,
    field_dispatch=22.0,
    field_check=2.0,
    bytesize_field=8.0,
    memcpy_base=40.0,
    memcpy_bytes_per_cycle=5.0,
    memcpy_cold_bytes_per_cycle=2.5,
    alloc=140.0,
    obj_construct_base=70.0,
    obj_construct_bytes_per_cycle=8.0,
    msg_enter=55.0,
    msg_exit=18.0,
    icache_miss_cycles=32.0,
    branch_mispredict_cycles=12.0,
)


def boom_cpu() -> SoftwareCpu:
    """The paper's "riscv-boom" baseline host."""
    return SoftwareCpu(BOOM_PARAMS)
