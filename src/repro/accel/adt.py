"""Accelerator Descriptor Tables (Section 4.2 of the paper).

One ADT exists per message *type* (not per instance), generated at program
load time by the modified protoc, so no schema-management code runs in
field setters.  An ADT occupies one contiguous block of memory with three
regions:

1. A 64 B **header**: default-instance vptr, C++ object size, hasbits
   offset, and the min/max defined field numbers.
2. **Entries**, 128 bits each, indexed directly by
   ``field_number - min_field_number``: the field's C++ type, repeated/
   packed flags, its byte offset inside the C++ object, and (for
   sub-message fields) a pointer to the sub-type's ADT.
3. The **is_submessage bit field**, letting the serializer frontend switch
   contexts without waiting for a full entry read (Section 4.2).

Encoding of one 16 B entry::

    [0]    u8   field type code (FieldType ordinal; 0xFF = undefined hole)
    [1]    u8   flags: 1=repeated, 2=packed, 4=zigzag, 8=is_message,
                16=utf8-validate (proto3 strings)
    [2:4]  u16  oneof group id + 1 (0 = not a oneof member)
    [4:8]  u32  field offset in the C++ object
    [8:16] u64  sub-message ADT pointer (0 unless is_message)

Header bytes [32:64] hold up to two oneof *group masks* -- per group a
u64 hasbits mask plus the u32 hasbits word it applies to -- letting the
hasbits writer clear a member's siblings in one read-modify-write when
exactly-one-of semantics demand it.  Two groups per type, each within
one 64-number window, is the modelled hardware table limit; wider
schemas still work through the software path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.layout import LayoutCache, MessageLayout
from repro.memory.memspace import SimMemory
from repro.proto.descriptor import MessageDescriptor, structural_fingerprint
from repro.proto.errors import SchemaError
from repro.proto.types import FieldType, ZIGZAG_TYPES

ADT_HEADER_BYTES = 64
ADT_ENTRY_BYTES = 16

_TYPE_CODES = {ft: code for code, ft in enumerate(FieldType)}
_TYPES_BY_CODE = dict(enumerate(FieldType))
UNDEFINED_TYPE_CODE = 0xFF

FLAG_REPEATED = 1
FLAG_PACKED = 2
FLAG_ZIGZAG = 4
FLAG_MESSAGE = 8
FLAG_UTF8 = 16


#: Hardware table limit: oneof groups representable per message type.
MAX_ONEOF_GROUPS = 2


@dataclass(frozen=True)
class AdtTemplate:
    """Pre-compiled, address-independent image of one type's ADT.

    Everything in an ADT block except the per-instance vptr and the
    sub-message ADT pointers is a pure function of the message type's
    structure, so compilation is done once per structural fingerprint
    and replayed as a single blit (plus pointer fixups) on every
    subsequent accelerator instance -- the modified protoc's amortised
    per-*type* table generation (Section 4.2), applied to the simulator
    itself.
    """

    #: Entry region bytes (span * 16 B) with sub-ADT pointer slots zeroed.
    entries: bytes
    #: (entry byte offset, descriptor.fields index) pairs naming where
    #: each sub-message ADT pointer must be patched in.
    sub_fixups: tuple[tuple[int, int], ...]
    #: The is_submessage bit-field words.
    submsg_words: tuple[int, ...]
    #: Header bytes [32:64): the oneof group-mask table.
    oneof_header: bytes


#: Process-wide compiled-ADT cache, keyed by structural fingerprint.
_TEMPLATE_CACHE: dict[str, AdtTemplate] = {}

#: Gates both the template cache and AdtView's decoded-entry memoisation
#: (the host-side caches; the modelled hardware ADT entry cache and its
#: cycle accounting are always on).
_CACHES_ENABLED = True


def set_adt_caches_enabled(enabled: bool) -> None:
    global _CACHES_ENABLED
    _CACHES_ENABLED = bool(enabled)
    if not enabled:
        _TEMPLATE_CACHE.clear()
    # The specialized-kernel code cache is keyed off the same compiled
    # templates; invalidate it whenever the ADT caches are toggled.
    from repro.accel import codegen
    codegen.invalidate_kernel_caches()


def clear_template_cache() -> None:
    _TEMPLATE_CACHE.clear()


def _compile_template(descriptor: MessageDescriptor,
                      layout: MessageLayout) -> AdtTemplate:
    """Compile one type's ADT entry/bits/oneof regions (no addresses)."""
    group_ids = _oneof_group_ids(descriptor)
    oneof_header = bytearray(ADT_HEADER_BYTES - 32)
    for group, group_id in group_ids.items():
        numbers = descriptor.oneof_groups[group]
        bits = [n - descriptor.min_field_number for n in numbers]
        words = {bit // 64 for bit in bits}
        if len(words) != 1:
            raise SchemaError(
                f"{descriptor.name}: oneof {group!r} spans multiple "
                "hasbits words; the accelerator clears siblings with "
                "a single-word mask")
        word = words.pop()
        mask = 0
        for bit in bits:
            mask |= 1 << bit % 64
        base = (group_id - 1) * 16
        oneof_header[base:base + 8] = mask.to_bytes(8, "little")
        oneof_header[base + 8:base + 12] = word.to_bytes(4, "little")
    span = descriptor.field_number_span
    entries = bytearray(span * ADT_ENTRY_BYTES)
    sub_fixups: list[tuple[int, int]] = []
    submsg_words = [0] * max(1, -(-span // 64))
    field_indices = {fd.number: index
                     for index, fd in enumerate(descriptor.fields)}
    for index in range(span):
        number = descriptor.min_field_number + index
        base = index * ADT_ENTRY_BYTES
        fd = descriptor.field_by_number(number)
        if fd is None:
            entries[base] = UNDEFINED_TYPE_CODE
            continue
        flags = 0
        if fd.is_repeated:
            flags |= FLAG_REPEATED
        if fd.packed:
            flags |= FLAG_PACKED
        if fd.field_type in ZIGZAG_TYPES:
            flags |= FLAG_ZIGZAG
        if fd.validate_utf8:
            flags |= FLAG_UTF8
        if fd.is_message:
            flags |= FLAG_MESSAGE
            sub_fixups.append((base, field_indices[number]))
            # Unpacked repeated sub-messages still flip the
            # is_submessage bit; the serializer frontend needs it.
            submsg_words[index // 64] |= 1 << index % 64
        group_id = group_ids.get(fd.oneof_group, 0) if fd.oneof_group \
            else 0
        entries[base] = _TYPE_CODES[fd.field_type]
        entries[base + 1] = flags
        entries[base + 2:base + 4] = group_id.to_bytes(2, "little")
        entries[base + 4:base + 8] = \
            layout.field_offsets[number].to_bytes(4, "little")
    return AdtTemplate(entries=bytes(entries),
                       sub_fixups=tuple(sub_fixups),
                       submsg_words=tuple(submsg_words),
                       oneof_header=bytes(oneof_header))


def _oneof_group_ids(descriptor: MessageDescriptor) -> dict[str, int]:
    """Group-name -> 1-based hardware table id, in declaration order."""
    groups = descriptor.oneof_groups
    if len(groups) > MAX_ONEOF_GROUPS:
        raise SchemaError(
            f"{descriptor.name}: the accelerator ADT supports at "
            f"most {MAX_ONEOF_GROUPS} oneof groups per message type")
    return {group: index + 1 for index, group in enumerate(groups)}


def adt_size_bytes(descriptor: MessageDescriptor) -> int:
    """Total footprint of one type's ADT block."""
    span = descriptor.field_number_span
    submsg_words = max(1, -(-span // 64))
    return ADT_HEADER_BYTES + span * ADT_ENTRY_BYTES + submsg_words * 8


@dataclass(frozen=True)
class AdtEntry:
    """Decoded view of one 128-bit ADT entry."""

    defined: bool
    field_type: FieldType | None
    repeated: bool
    packed: bool
    zigzag: bool
    is_message: bool
    field_offset: int
    sub_adt_ptr: int
    utf8_validate: bool = False
    #: 1-based oneof group id (0 = not a oneof member).
    oneof_group: int = 0


class AdtBuilder:
    """Generates and writes ADTs for every message type in a schema.

    Plays the role of the modified protoc + program-load population: call
    :meth:`build` once, then hand :meth:`adt_address` values to the
    accelerator via ``deser_info`` / ``do_proto_ser``.
    """

    def __init__(self, memory: SimMemory, layout_cache: LayoutCache):
        self.memory = memory
        self.layouts = layout_cache
        self._addresses: dict[int, int] = {}
        self._descriptors: dict[int, MessageDescriptor] = {}
        self.template_hits = 0
        self.template_misses = 0

    def adt_address(self, descriptor: MessageDescriptor) -> int:
        try:
            return self._addresses[id(descriptor)]
        except KeyError:
            raise KeyError(
                f"no ADT built for {descriptor.full_name}; call build() "
                "with its schema first") from None

    def descriptor_for(self, adt_addr: int) -> MessageDescriptor:
        return self._descriptors[adt_addr]

    def build(self, descriptors: list[MessageDescriptor]) -> dict[str, int]:
        """Allocate and populate ADTs for ``descriptors`` (plus reachable
        sub-message types).  Returns {full_name: adt_address}.

        Two-pass so mutually recursive message types resolve: first
        allocate every block, then fill entries with final pointers.
        """
        worklist = list(descriptors)
        ordered: list[MessageDescriptor] = []
        seen: set[int] = set()
        while worklist:
            descriptor = worklist.pop()
            if id(descriptor) in seen:
                continue
            seen.add(id(descriptor))
            ordered.append(descriptor)
            for fd in descriptor.fields:
                if fd.message_type is not None:
                    worklist.append(fd.message_type)
        for descriptor in ordered:
            if id(descriptor) in self._addresses:
                continue
            addr = self.memory.allocate(adt_size_bytes(descriptor),
                                        alignment=64)
            self._addresses[id(descriptor)] = addr
            self._descriptors[addr] = descriptor
        for descriptor in ordered:
            self._populate(descriptor)
        return {d.full_name: self._addresses[id(d)] for d in ordered}

    def _populate(self, descriptor: MessageDescriptor) -> None:
        memory = self.memory
        addr = self._addresses[id(descriptor)]
        layout = self.layouts.layout(descriptor)
        if _CACHES_ENABLED:
            fingerprint = structural_fingerprint(descriptor)
            template = _TEMPLATE_CACHE.get(fingerprint)
            if template is None:
                self.template_misses += 1
                template = _compile_template(descriptor, layout)
                _TEMPLATE_CACHE[fingerprint] = template
            else:
                self.template_hits += 1
        else:
            self.template_misses += 1
            template = _compile_template(descriptor, layout)
        # Header region: per-instance fields, then the cached oneof table.
        memory.write_u64(addr, layout.vptr)
        memory.write_u64(addr + 8, layout.object_size)
        memory.write_u64(addr + 16, layout.hasbits_offset)
        memory.write_u32(addr + 24, descriptor.min_field_number)
        memory.write_u32(addr + 28, descriptor.max_field_number)
        memory.write(addr + 32, template.oneof_header)
        # Entry region: blit the compiled image, patching this build's
        # sub-message ADT pointers into their zeroed slots.
        entries = bytearray(template.entries)
        for offset, field_index in template.sub_fixups:
            sub_type = descriptor.fields[field_index].message_type
            assert sub_type is not None
            sub_ptr = self._addresses[id(sub_type)]
            entries[offset + 8:offset + 16] = sub_ptr.to_bytes(8, "little")
        entries_base = addr + ADT_HEADER_BYTES
        memory.write(entries_base, entries)
        bits_base = entries_base + len(entries)
        for word_index, word in enumerate(template.submsg_words):
            memory.write_u64(bits_base + word_index * 8, word)


class AdtView:
    """Read-side decoder of an ADT block, as the accelerator sees it.

    The accelerator units only ever touch ADTs through this view, which
    reads simulated memory (never Python descriptors) -- keeping the
    hardware model honest about what information it has.  Because an ADT
    block is immutable once built, decodes are memoised on the memory's
    decode cache (flushed should anything ever write over the block);
    the hardware ADT-entry cache's hit/miss *cycle* accounting is
    modelled separately by the units.
    """

    def __init__(self, memory: SimMemory, addr: int):
        self.memory = memory
        self.addr = addr
        header = (memory.decode_cache_get(("adt-h", addr))
                  if _CACHES_ENABLED else None)
        if header is None:
            header = (memory.read_u64(addr), memory.read_u64(addr + 8),
                      memory.read_u64(addr + 16),
                      memory.read_u32(addr + 24),
                      memory.read_u32(addr + 28))
            if _CACHES_ENABLED:
                memory.decode_cache_put(("adt-h", addr), addr,
                                        ADT_HEADER_BYTES, header)
        (self._vptr, self._object_size, self._hasbits_offset,
         self._min_field, self._max_field) = header

    @property
    def default_vptr(self) -> int:
        return self._vptr

    @property
    def object_size(self) -> int:
        return self._object_size

    @property
    def hasbits_offset(self) -> int:
        return self._hasbits_offset

    @property
    def min_field_number(self) -> int:
        return self._min_field

    @property
    def max_field_number(self) -> int:
        return self._max_field

    @property
    def span(self) -> int:
        if self.max_field_number == 0:
            return 0
        return self.max_field_number - self.min_field_number + 1

    def entry_address(self, field_number: int) -> int | None:
        """Address of the entry for ``field_number`` (None if out of range)."""
        if not self.min_field_number <= field_number <= self.max_field_number:
            return None
        index = field_number - self.min_field_number
        return self.addr + ADT_HEADER_BYTES + index * ADT_ENTRY_BYTES

    def entry(self, field_number: int) -> AdtEntry | None:
        """Decode the entry for ``field_number``; None if outside [min, max].

        An in-range hole decodes to ``AdtEntry(defined=False, ...)``.
        """
        entry_addr = self.entry_address(field_number)
        if entry_addr is None:
            return None
        if _CACHES_ENABLED:
            cached = self.memory.decode_cache_get(("adt-e", entry_addr))
            if cached is not None:
                return cached
        raw = self.memory.read(entry_addr, ADT_ENTRY_BYTES)
        type_code = raw[0]
        if type_code == UNDEFINED_TYPE_CODE:
            entry = AdtEntry(False, None, False, False, False, False, 0, 0)
        else:
            flags = raw[1]
            entry = AdtEntry(
                defined=True,
                field_type=_TYPES_BY_CODE[type_code],
                repeated=bool(flags & FLAG_REPEATED),
                packed=bool(flags & FLAG_PACKED),
                zigzag=bool(flags & FLAG_ZIGZAG),
                is_message=bool(flags & FLAG_MESSAGE),
                field_offset=int.from_bytes(raw[4:8], "little"),
                sub_adt_ptr=int.from_bytes(raw[8:16], "little"),
                utf8_validate=bool(flags & FLAG_UTF8),
                oneof_group=int.from_bytes(raw[2:4], "little"),
            )
        if _CACHES_ENABLED:
            self.memory.decode_cache_put(
                ("adt-e", entry_addr), entry_addr, ADT_ENTRY_BYTES, entry)
        return entry

    def oneof_mask(self, group_id: int) -> tuple[int, int]:
        """(hasbits word index, sibling mask) for a 1-based group id."""
        if group_id < 1:
            raise ValueError("oneof group ids are 1-based")
        base = self.addr + 32 + (group_id - 1) * 16
        mask = self.memory.read_u64(base)
        word = self.memory.read_u32(base + 8)
        return word, mask

    def is_submessage_bit(self, field_number: int) -> bool:
        """Read the is_submessage bit for ``field_number``."""
        if not self.min_field_number <= field_number <= self.max_field_number:
            return False
        index = field_number - self.min_field_number
        word_addr = (self.addr + ADT_HEADER_BYTES
                     + self.span * ADT_ENTRY_BYTES + index // 64 * 8)
        word = (self.memory.decode_cache_get(("adt-b", word_addr))
                if _CACHES_ENABLED else None)
        if word is None:
            word = self.memory.read_u64(word_addr)
            if _CACHES_ENABLED:
                self.memory.decode_cache_put(
                    ("adt-b", word_addr), word_addr, 8, word)
        return bool(word >> index % 64 & 1)
