"""UTF-8 validation unit (Section 7: "Future support for proto3").

The paper notes the only accelerator change required for proto3 is
validating string fields' UTF-8 during deserialization.  Hardware
validates the stream as it passes through the string-copy datapath, one
window per cycle, so on valid input the check is fully overlapped with
the copy and costs no extra cycles; an invalid sequence raises a fault
to software.

The model implements a real DFA-equivalent check (via Python's decoder)
plus statistics on bytes validated and faults raised.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import FaultSite
from repro.proto.errors import DecodeError


@dataclass
class Utf8ValidationUnit:
    """Streaming UTF-8 validator overlapped with the copy datapath."""

    strings_validated: int = 0
    bytes_validated: int = 0
    faults: int = 0
    fault_injector: object = None  # FaultInjector under test

    def validate(self, payload: bytes | memoryview,
                 context: str = "string") -> None:
        """Check ``payload``; raises :class:`DecodeError` when invalid.

        Zero added cycles on the happy path -- the checker consumes the
        same 16 B/cycle stream the copy does.
        """
        self.strings_validated += 1
        self.bytes_validated += len(payload)
        if self.fault_injector is not None:
            # Models the DFA latching a bad state (soft error in the
            # state register) and rejecting a valid string.
            self.fault_injector.poll(FaultSite.UTF8_CORRUPT)
        try:
            str(payload, "utf-8")
        except UnicodeDecodeError as error:
            self.faults += 1
            raise DecodeError(
                f"{context}: invalid UTF-8 in proto3 string field "
                f"(byte {error.start})",
                offset=error.start, site="utf8") from None
