"""Schema-specialized codegen kernels (the software analogue of the
paper's hardwired per-type field handlers).

The interpretive deserializer/serializer units walk every message
through generic Python dispatch -- dict lookups, dataclass views, and
polymorphic helpers per field.  That is faithful to the hardware FSM but
makes *simulator wall-clock* the bottleneck for fleet-scale sweeps.
This module compiles each (message type, SoC config, timing params)
triple into a straight-line Python kernel:

* the tag switch is unrolled into per-field-number ``elif`` branches on
  the decoded key integer (one branch per expected key, so scalars,
  strings, packed and unpacked repeated fields and sub-messages all
  dispatch without touching an ADT entry object);
* varint decode is inlined (single-byte fast path, shared
  :func:`~repro.proto.varint.decode_varint` slow path so error text is
  byte-identical);
* all per-field constants -- ADT entry addresses, object offsets,
  hasbits words/masks, cycle charges -- are baked in as literals.

**Cycle accounting is bit-identical to the interpreter.**  The kernels
replay the interpreter's float additions in the same order with the
same values (charges are emitted with ``repr`` so literals round-trip
exactly), call the same modelled state (ADT entry cache, TLB, memloader
startup, memwriter) and raise the same structured errors.  Codegen only
changes host wall-clock.

Kernels are cached in a bounded LRU (:data:`CODE_CACHE`) keyed by the
schema's structural fingerprint plus the config/params reprs, and are
invalidated together with the ADT template cache
(:func:`repro.accel.adt.set_adt_caches_enabled` calls
:func:`invalidate_kernel_caches`).  Per accelerator instance a
*binding* resolves the compiled kernel against the live ADT image --
validating header fields and every entry byte-for-byte against the
image the generator assumed -- so a corrupted or mismatched ADT simply
falls back to the interpreter.  When a fault plan is armed the driver
never installs bindings at all: every one of the 11 named fault sites
keeps firing through the interpretive path.
"""

from __future__ import annotations

import functools
from collections import OrderedDict
from typing import Callable, Optional

from repro.accel.adt import (
    ADT_ENTRY_BYTES,
    ADT_HEADER_BYTES,
    AdtView,
    _compile_template,
    _oneof_group_ids,
)
from repro.accel.deserializer import DeserStats
from repro.accel.memloader import Memloader
from repro.accel.memwriter import Memwriter
from repro.accel.serializer import SerStats
from repro.faults.plan import FaultSite
from repro.memory.layout import LayoutCache
from repro.proto.descriptor import MessageDescriptor, structural_fingerprint
from repro.proto.errors import AccelDecodeFault, AccelFault, DecodeError
from repro.proto.types import (
    CPP_SCALAR_BYTES,
    FIXED_WIDTH_BYTES,
    FieldType,
    WireType,
    ZIGZAG_TYPES,
)
from repro.proto.varint import decode_varint, encode_varint
from repro.proto.wire import encode_tag

_U32 = 0xFFFFFFFF
_U64 = 0xFFFFFFFFFFFFFFFF

#: Single-byte varint outputs, pre-built so the kernels avoid a call for
#: the overwhelmingly common small values (bit-identical to encode_varint).
_B1 = tuple(bytes([value]) for value in range(128))

#: Wire-type names in numeric order, for error text identical to
#: ``WireType(value).name``.
_WTN = ("VARINT", "FIXED64", "LENGTH_DELIMITED", "START_GROUP",
        "END_GROUP", "FIXED32")

_FIXED_TYPES = frozenset(FIXED_WIDTH_BYTES)
_STRINGISH = frozenset({FieldType.STRING, FieldType.BYTES})


# ---------------------------------------------------------------------------
# Code cache (bounded LRU, keyed by ADT fingerprint + config/timing reprs)
# ---------------------------------------------------------------------------

CODE_CACHE_CAPACITY = 64

_MISS = object()


class KernelCodeCache:
    """Bounded LRU of compiled kernel namespaces.

    Values are ``(namespace, spec)`` tuples, or ``None`` for schemas the
    generator declined (the negative result is cached too, so the
    interpreter fallback stays cheap).  Hit/miss counters are exported
    through :mod:`repro.accel.perf`.
    """

    def __init__(self, capacity: int = CODE_CACHE_CAPACITY):
        self.capacity = capacity
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple):
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return _MISS

    def put(self, key: tuple, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


CODE_CACHE = KernelCodeCache()

_ENABLED = True
#: Bumped on every invalidation; bindings recompile when it moves.
_GENERATION = 0


def codegen_enabled() -> bool:
    return _ENABLED


def set_codegen_enabled(enabled: bool) -> None:
    """Gate kernel use process-wide (the interpreter always works)."""
    global _ENABLED, _GENERATION
    _ENABLED = bool(enabled)
    _GENERATION += 1
    if not enabled:
        CODE_CACHE.clear()


def invalidate_kernel_caches() -> None:
    """Drop compiled kernels and force bindings to re-resolve.

    Called by :func:`repro.accel.adt.set_adt_caches_enabled` so the code
    cache invalidates together with the ADT template/view caches."""
    global _GENERATION
    _GENERATION += 1
    CODE_CACHE.clear()


def cache_counters() -> tuple[int, int, int, int]:
    """(hits, misses, live entries, capacity) of the kernel code cache."""
    return CODE_CACHE.hits, CODE_CACHE.misses, len(CODE_CACHE), \
        CODE_CACHE.capacity


# ---------------------------------------------------------------------------
# Shared generator plumbing
# ---------------------------------------------------------------------------


def _f(value: float) -> str:
    """Exact (shortest round-trip) float literal."""
    return repr(float(value))


def _type_order(root: MessageDescriptor):
    """Depth-first type indexing over the descriptor graph (stable for a
    given root, mirrored by the plan resolver through the spec)."""
    order: dict[int, int] = {}
    descs: list[MessageDescriptor] = []

    def visit(descriptor: MessageDescriptor) -> None:
        if id(descriptor) in order:
            return
        order[id(descriptor)] = len(descs)
        descs.append(descriptor)
        for fd in descriptor.fields:
            if fd.message_type is not None:
                visit(fd.message_type)

    visit(root)
    return order, descs


def _build_spec(descs, order, layouts: LayoutCache) -> list[dict]:
    """Per-type validation spec the plan resolver checks against the live
    ADT image (entry region byte-for-byte, modulo sub-ADT pointers)."""
    spec = []
    for descriptor in descs:
        layout = layouts.layout(descriptor)
        template = _compile_template(descriptor, layout)
        msg = tuple((fd.number, order[id(fd.message_type)])
                    for fd in descriptor.fields if fd.is_message)
        spec.append({
            "min": descriptor.min_field_number,
            "max": descriptor.max_field_number,
            "span": descriptor.field_number_span,
            "hbo": layout.hasbits_offset,
            "size": layout.object_size,
            "entries": template.entries,
            "oneof": template.oneof_header,
            "msg": msg,
        })
    return spec


def _resolve_plans(memory, adt_addr: int, spec: list[dict]):
    """Resolve runtime addresses for a kernel against the live ADT graph.

    Returns per-type plan tuples ``(entries_base, sub_ptr0, sub_vptr0,
    ...)`` or ``None`` when the live image disagrees with the spec (the
    binding then falls back to the interpreter)."""
    plans: list = [None] * len(spec)

    def walk(addr: int, ti: int) -> bool:
        plan = plans[ti]
        if plan is not None:
            return plan[0] == addr + ADT_HEADER_BYTES
        entry = spec[ti]
        view = AdtView(memory, addr)
        if (view.min_field_number != entry["min"]
                or view.max_field_number != entry["max"]
                or view.hasbits_offset != entry["hbo"]
                or view.object_size != entry["size"]):
            return False
        span = entry["span"]
        if span:
            raw = bytes(memory.read(addr + ADT_HEADER_BYTES,
                                    span * ADT_ENTRY_BYTES))
            expected = entry["entries"]
            for index in range(span):
                base = index * ADT_ENTRY_BYTES
                # Sub-ADT pointer bytes [8:16] are per-build; everything
                # else must match the generator's assumed image exactly.
                if raw[base:base + 8] != expected[base:base + 8]:
                    return False
            if bytes(memory.read(addr + 32, 32)) != entry["oneof"]:
                return False
        plan = [addr + ADT_HEADER_BYTES]
        plans[ti] = plan
        for number, sub_ti in entry["msg"]:
            decoded = view.entry(number)
            if decoded is None or not decoded.defined \
                    or decoded.sub_adt_ptr == 0:
                return False
            sub_view = AdtView(memory, decoded.sub_adt_ptr)
            plan.append(decoded.sub_adt_ptr)
            plan.append(sub_view.default_vptr)
            if not walk(decoded.sub_adt_ptr, sub_ti):
                return False
        return True

    if not walk(adt_addr, 0):
        return None
    return [tuple(plan) for plan in plans]


def _oneof_word_masks(descriptor: MessageDescriptor) -> dict[str, tuple]:
    """{group name: (hasbits word, sibling mask)} -- same math as the
    ADT template compiler, so kernels clear siblings identically."""
    masks = {}
    for group in _oneof_group_ids(descriptor):
        numbers = descriptor.oneof_groups[group]
        bits = [n - descriptor.min_field_number for n in numbers]
        word = bits[0] // 64
        mask = 0
        for bit in bits:
            mask |= 1 << bit % 64
        masks[group] = (word, mask)
    return masks


def _deser_watchdog(unit, stats, a, cycles):
    """Shared helper the generated deserializer raises through."""
    stats.cycles = cycles
    if cycles > a[0]:
        a[0] = cycles
    return unit._watchdog_fire(FaultSite.DESER_HANG, stats, None)


def _ser_watchdog(unit, stats, s, tp):
    """Shared helper the generated serializer raises through."""
    stats.frontend_cycles = s[0]
    stats.fsu_cycles = s[1]
    stats.tlb_penalty_cycles = tp
    return unit._watchdog_fire(stats, None)


class _Writer:
    def __init__(self):
        self.lines: list[str] = []

    def w(self, indent: int, text: str = "") -> None:
        self.lines.append("    " * indent + text if text else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


# ---------------------------------------------------------------------------
# Deserializer kernel generator
# ---------------------------------------------------------------------------


def _gen_deser_source(descriptor: MessageDescriptor, config, params):
    """Emit the straight-line deserializer module for ``descriptor``."""
    layouts = LayoutCache()
    order, descs = _type_order(descriptor)
    spec = _build_spec(descs, order, layouts)
    mem = config.memory

    BPB = int(mem.bytes_per_beat)
    SBPC = _f(mem.stream_bytes_per_cycle)
    TI = _f(params.typeinfo_hit)
    DEP16 = _f(mem.dependent_access_cycles(16))
    DEP24 = _f(mem.dependent_access_cycles(24))
    DEP32 = _f(mem.dependent_access_cycles(32))
    PK = _f(params.parse_key)
    SW = _f(params.scalar_write)
    SS = _f(params.string_setup)
    RO = _f(params.repeated_open)
    RC = _f(params.repeated_close)
    SUB = _f(params.submsg_setup)
    SKIP = _f(params.skip_field)
    FIN = _f(params.message_finish)
    PVC = _f(1 / params.packed_varints_per_cycle)
    LIMIT = int(config.context_stack_depth)
    SPILL = _f(config.stack_spill_cycles)

    out = _Writer()
    w = out.w

    def varint(ind: int, tgt: str) -> None:
        w(ind, "if pos >= slen:")
        w(ind + 1, "raise DecodeError("
                   '"varint unit given an empty window", site="varint")')
        w(ind, f"{tgt} = data[pos]")
        w(ind, f"if {tgt} < 128:")
        w(ind + 1, "pos += 1")
        w(ind, "else:")
        w(ind + 1, f"{tgt}, _n = dv(data[pos:pos + 10])")
        w(ind + 1, "pos += _n")
        w(ind, "a[8] += 1")

    def close_region(ind: int) -> None:
        w(ind, "w64(r[1], r[2])")
        w(ind, "w64(r[1] + 8, r[3])")
        w(ind, "w64(r[1] + 16, r[4])")
        w(ind, f"cycles += {RC}")

    def lookup_entry(ind: int, addr_expr: str, dep: str) -> None:
        w(ind, f"if lookup({addr_expr}):")
        w(ind + 1, f"cycles += {TI}")
        w(ind, "else:")
        w(ind + 1, f"cycles += {dep}")

    def grow(ind: int, width: int) -> None:
        w(ind, "_nc = r[4] * 2")
        w(ind, f"_nd = alloc(_nc * {width}, 8)")
        w(ind, f"_ob = r[3] * {width}")
        w(ind, "mw(_nd, mr(r[2], _ob))")
        w(ind, f"cycles += -(-_ob // {BPB})")
        w(ind, "r[2] = _nd")
        w(ind, "r[4] = _nc")

    def append(ind: int, width: int, db_expr: str) -> None:
        w(ind, "if r[3] >= r[4]:")
        grow(ind + 1, width)
        w(ind, f"mw(r[2] + r[3] * {width}, {db_expr})")
        w(ind, "r[3] += 1")
        w(ind, "a[5] += 1")

    def reopen(ind: int, number: int, off: int, width: int) -> None:
        w(ind, f"if r is None or r[0] != {number}:")
        w(ind + 1, "if r is not None:")
        close_region(ind + 2)
        w(ind + 1, f"_h = r64(obj + {off})")
        w(ind + 1, "if _h:")
        w(ind + 2, f"r = [{number}, _h, r64(_h), r64(_h + 8), "
                   "r64(_h + 16)]")
        w(ind + 2, f"cycles += {DEP24}")
        w(ind + 1, "else:")
        w(ind + 2, "_h = alloc(24, 8)")
        w(ind + 2, f"r = [{number}, _h, alloc({8 * width}, 8), 0, 8]")
        w(ind + 2, f"cycles += {RO}")
        w(ind + 2, f"w64(obj + {off}, _h)")

    def string_body(ind: int, utf8: bool) -> None:
        # Decodes a length-delimited string/bytes payload into a fresh
        # string object; leaves its address in ``sa``.
        varint(ind, "ln")
        w(ind, "if ln > slen - pos:")
        w(ind + 1, "raise DecodeError("
                   '"truncated string/bytes payload")')
        w(ind, f"cycles += {SS}")
        w(ind, "sa = alloc(32, 8)")
        w(ind, "if ln <= 15:")
        w(ind + 1, "pl = data[pos:pos + ln]")
        w(ind + 1, "pos += ln")
        w(ind + 1, "w64(sa, sa + 16)")
        w(ind + 1, "w64(sa + 8, ln)")
        w(ind + 1, 'mw(sa + 16, pl.ljust(16, b"\\x00"))')
        w(ind, "else:")
        w(ind + 1, "dp = alloc(ln, 8)")
        w(ind + 1, "pl = data[pos:pos + ln]")
        w(ind + 1, "pos += ln")
        w(ind + 1, "mw(dp, pl)")
        w(ind + 1, "w64(sa, dp)")
        w(ind + 1, "w64(sa + 8, ln)")
        w(ind + 1, "w64(sa + 16, ln)")
        w(ind + 1, "w64(sa + 24, 0)")
        w(ind, f"cycles += ln / {SBPC}")
        w(ind, "a[4] += 1")
        if utf8:
            w(ind, "validate(pl)")

    def varint_value(ind: int, fd) -> str:
        """Emit the varint decode + transforms; returns the wire-image
        bytes expression for the decoded value in ``v``."""
        ft = fd.field_type
        width = CPP_SCALAR_BYTES[ft]
        varint(ind, "v")
        if ft in ZIGZAG_TYPES:
            w(ind, "a[9] += 1")
            w(ind, "v = (v >> 1) ^ -(v & 1)")
        if ft is FieldType.BOOL:
            return '(b"\\x01" if v else b"\\x00")'
        if width == 8 and ft not in ZIGZAG_TYPES:
            # decode_varint already masks to 64 bits.
            return 'v.to_bytes(8, "little")'
        mask = _U64 if width == 8 else _U32
        return f'(v & {mask:#x}).to_bytes({width}, "little")'

    def fixed_value(ind: int, width: int, tgt: str) -> None:
        w(ind, f"if slen - pos < {width}:")
        w(ind + 1, 'raise DecodeError("truncated fixed-width value")')
        w(ind, f"{tgt} = data[pos:pos + {width}]")
        w(ind, f"pos += {width}")

    def submessage_enter(ind: int, slot_expr: str, sub_ti: int,
                         plan_slot: int, sub_size: int,
                         singular: bool) -> None:
        varint(ind, "ln")
        w(ind, "if ln > slen - pos:")
        w(ind + 1, 'raise DecodeError("truncated sub-message")')
        lookup_entry(ind, f"p[{plan_slot}]", DEP32)
        if singular:
            w(ind, f"ex = r64({slot_expr})")
            w(ind, "if ex:")
            w(ind + 1, "ch = ex")
            w(ind + 1, f"cycles += {SUB}")
            w(ind, "else:")
            w(ind + 1, f"ch = alloc({sub_size}, 8)")
            w(ind + 1, f"fill(ch, {sub_size}, 0)")
            w(ind + 1, f"w64(ch, p[{plan_slot + 1}])")
            w(ind + 1, f"w64({slot_expr}, ch)")
            w(ind + 1, f"cycles += {SUB}")
        else:
            w(ind, f"ch = alloc({sub_size}, 8)")
            w(ind, f"fill(ch, {sub_size}, 0)")
            w(ind, f"w64(ch, p[{plan_slot + 1}])")
            w(ind, f"w64({slot_expr}, ch)")
            w(ind, f"cycles += {SUB}")
        w(ind, "a[3] += 1")
        w(ind, f"if depth >= {LIMIT}:")
        w(ind + 1, f"cycles += {SPILL}")
        w(ind + 1, "a[6] += 1")
        w(ind, "if depth + 1 > a[7]:")
        w(ind + 1, "a[7] = depth + 1")
        fresh = "ex == 0" if singular else "True"
        w(ind, f"pos, cycles = _d{sub_ti}(z, data, slen, pos, pos + ln, "
               f"ch, depth + 1, cycles, {fresh})")

    def skip_unknown(ind: int) -> None:
        w(ind, f"cycles += {SKIP}")
        w(ind, "if _wt == 0:")
        varint(ind + 1, "v")
        w(ind, "elif _wt == 1:")
        w(ind + 1, "if slen - pos < 8:")
        w(ind + 2, "raise DecodeError(f\"consume(8) exceeds remaining "
                   "{slen - pos} (truncated input stream)\")")
        w(ind + 1, "pos += 8")
        w(ind, "elif _wt == 5:")
        w(ind + 1, "if slen - pos < 4:")
        w(ind + 2, "raise DecodeError(f\"consume(4) exceeds remaining "
                   "{slen - pos} (truncated input stream)\")")
        w(ind + 1, "pos += 4")
        w(ind, "elif _wt == 2:")
        varint(ind + 1, "ln")
        w(ind + 1, "if ln > slen - pos:")
        w(ind + 2, "raise DecodeError(\"bulk consume ran past end of "
                   "stream (truncated input)\")")
        w(ind + 1, f"cycles += ln / {SBPC}")
        w(ind + 1, "pos += ln")
        w(ind, "else:")
        w(ind + 1, "raise DecodeError(f\"cannot skip deprecated wire "
                   "type {_WTN[_wt]}\")")
        w(ind, "a[2] += 1")

    for ti, d in enumerate(descs):
        layout = layouts.layout(d)
        span = d.field_number_span
        minf = d.min_field_number
        hbo = layout.hasbits_offset
        nwords = max(1, -(-span // 64))
        masks = _oneof_word_masks(d)
        msg_slots = {number: 1 + 2 * k
                     for k, (number, _sub) in enumerate(spec[ti]["msg"])}

        def hasbit(ind: int, fd) -> None:
            bit = fd.number - minf
            hw, hb_mask = bit // 64, 1 << bit % 64
            if fd.oneof_group:
                word, mask = masks[fd.oneof_group]
                keep = ~mask & _U64
                w(ind, f"hb[{word}] = hb[{word}] & {keep:#x} "
                       f"| {hb_mask:#x}")
            else:
                w(ind, f"hb[{hw}] |= {hb_mask:#x}")

        w(0, f"def _d{ti}(z, data, slen, pos, end, obj, depth, cycles, "
             "fresh):")
        w(1, "mr, mw, r64, w64, fill, alloc, lookup, validate, a, wd, "
             "stats, unit, plans = z")
        w(1, f"p = plans[{ti}]")
        w(1, "eb = p[0]")
        w(1, "try:")
        w(2, "if fresh:")
        w(3, f"hb = [0] * {nwords}")
        w(2, "else:")
        if nwords == 1:
            w(3, f"hb = [r64(obj + {hbo})]")
        else:
            w(3, f"hb = [r64(obj + {hbo} + _i * 8) "
                 f"for _i in range({nwords})]")
        w(2, "r = None")
        w(2, "while pos < end:")
        w(3, "if wd is not None and cycles >= wd:")
        w(4, "raise _dwd(unit, stats, a, cycles)")
        varint(3, "k")
        w(3, f"cycles += {PK}")

        first = True
        for fd in d.fields:
            ft = fd.field_type
            number = fd.number
            off = layout.field_offsets[number]
            eoff = (number - minf) * ADT_ENTRY_BYTES
            entry_expr = f"eb + {eoff}" if eoff else "eb"
            keyword = "if" if first else "elif"

            def branch(wire: WireType):
                w(3, f"{keyword} k == {number << 3 | int(wire)}:")
                lookup_entry(4, entry_expr, DEP16)
                w(4, "a[1] += 1")
                hasbit(4, fd)

            if fd.is_message:
                sub_ti = order[id(fd.message_type)]
                sub_size = layouts.layout(fd.message_type).object_size
                slot = msg_slots[number]
                branch(WireType.LENGTH_DELIMITED)
                if fd.is_repeated:
                    reopen(4, number, off, 8)
                    w(4, "if r[3] >= r[4]:")
                    grow(5, 8)
                    w(4, "sl = r[2] + r[3] * 8")
                    w(4, "r[3] += 1")
                    w(4, "a[5] += 1")
                    submessage_enter(4, "sl", sub_ti, slot, sub_size,
                                     singular=False)
                else:
                    w(4, "if r is not None:")
                    close_region(5)
                    w(5, "r = None")
                    submessage_enter(4, f"obj + {off}", sub_ti, slot,
                                     sub_size, singular=True)
            elif ft in _STRINGISH:
                branch(WireType.LENGTH_DELIMITED)
                if fd.is_repeated:
                    reopen(4, number, off, 8)
                    string_body(4, fd.validate_utf8)
                    append(4, 8, 'sa.to_bytes(8, "little")')
                else:
                    w(4, "if r is not None:")
                    close_region(5)
                    w(5, "r = None")
                    string_body(4, fd.validate_utf8)
                    w(4, f"w64(obj + {off}, sa)")
            else:
                width = CPP_SCALAR_BYTES[ft]
                is_fixed = ft in _FIXED_TYPES
                elem_wire = (WireType.FIXED64 if is_fixed and width == 8
                             else WireType.FIXED32 if is_fixed
                             else WireType.VARINT)
                if fd.is_repeated:
                    # Element-wire branch.
                    branch(elem_wire)
                    reopen(4, number, off, width)
                    if is_fixed:
                        fixed_value(4, width, "db")
                        w(4, f"cycles += {SW}")
                        append(4, width, "db")
                    else:
                        db = varint_value(4, fd)
                        w(4, f"cycles += {SW}")
                        append(4, width, db)
                    # Packed branch (the unit accepts packed wire for
                    # any repeated numeric, declared packed or not).
                    w(3, f"elif k == "
                         f"{number << 3 | int(WireType.LENGTH_DELIMITED)}:")
                    lookup_entry(4, entry_expr, DEP16)
                    w(4, "a[1] += 1")
                    hasbit(4, fd)
                    reopen(4, number, off, width)
                    varint(4, "ln")
                    w(4, "cycles += 1.0")
                    w(4, "pe = pos + ln")
                    w(4, "if ln > slen - pos:")
                    w(5, 'raise DecodeError("truncated packed field")')
                    w(4, "while pos < pe:")
                    if is_fixed:
                        fixed_value(5, width, "db")
                        w(5, f"cycles += {_f(width / BPB)}")
                        append(5, width, "db")
                    else:
                        db = varint_value(5, fd)
                        w(5, f"cycles += {PVC}")
                        append(5, width, db)
                    w(4, "if pos != pe:")
                    w(5, "raise DecodeError("
                         '"packed payload overran its length")')
                else:
                    branch(elem_wire)
                    w(4, "if r is not None:")
                    close_region(5)
                    w(5, "r = None")
                    if is_fixed:
                        w(4, f"if slen - pos < {width}:")
                        w(5, 'raise DecodeError'
                             '("truncated fixed-width value")')
                        w(4, f"mw(obj + {off}, data[pos:pos + {width}])")
                        w(4, f"pos += {width}")
                        w(4, f"cycles += {SW}")
                    else:
                        db = varint_value(4, fd)
                        w(4, f"mw(obj + {off}, {db})")
                        w(4, f"cycles += {SW}")
            first = False

        # Generic fallback: wrong-wire-type keys on defined fields,
        # in-range holes, out-of-range unknowns, invalid keys.
        w(3, "else:" if not first else "if True:")
        w(4, "_wt = k & 7")
        w(4, "if _wt > 5:")
        w(5, 'raise DecodeError(f"invalid wire type {_wt}")')
        w(4, "_fn = k >> 3")
        w(4, "if _fn < 1:")
        w(5, 'raise DecodeError(f"invalid field number {_fn}")')
        if span:
            w(4, f"if {minf} <= _fn <= {d.max_field_number}:")
            w(5, f"if lookup(eb + (_fn - {minf}) * {ADT_ENTRY_BYTES}):")
            w(6, f"cycles += {TI}")
            w(5, "else:")
            w(6, f"cycles += {DEP16}")
            gfirst = True
            for fd in d.fields:
                ft = fd.field_type
                w(5, f"{'if' if gfirst else 'elif'} _fn == {fd.number}:")
                gfirst = False
                w(6, "a[1] += 1")
                hasbit(6, fd)
                if fd.is_repeated:
                    width = (8 if ft in _STRINGISH or fd.is_message
                             else CPP_SCALAR_BYTES[ft])
                    reopen(6, fd.number, layout.field_offsets[fd.number],
                           width)
                else:
                    w(6, "if r is not None:")
                    close_region(7)
                    w(7, "r = None")
                if fd.is_message and not fd.is_repeated:
                    w(6, "raise DecodeError(f\"wire type {_WTN[_wt]} "
                         "does not match a sub-message field\")")
                else:
                    w(6, "raise DecodeError(f\"wire type {_WTN[_wt]} "
                         f"does not match {ft.value}\")")
            w(5, "else:")
            skip_unknown(6)
            w(4, "else:")
            w(5, f"cycles += {TI}")
            skip_unknown(5)
        else:
            # No defined entries: every in-range probe misses the table.
            w(4, f"cycles += {TI}")
            skip_unknown(4)

        # Frame epilogue.
        w(2, "if pos > end:")
        w(3, "raise DecodeError("
             '"sub-message parsing overran length", offset=pos)')
        w(2, "if r is not None:")
        close_region(3)
        w(2, f"cycles += {FIN}")
        w(2, f"if depth - 1 >= {LIMIT}:")
        w(3, f"cycles += {SPILL}")
        w(3, "a[6] += 1")
        for word in range(nwords):
            w(2, f"w64(obj + {hbo + word * 8}, hb[{word}])")
        w(2, "return pos, cycles")
        w(1, "except BaseException:")
        w(2, "if cycles > a[0]:")
        w(3, "a[0] = cycles")
        w(2, "raise")
        w(0)

    # Entry point: mirrors DeserializerUnit.deserialize's fault-free path.
    top_layout = layouts.layout(descriptor)
    top_words = max(1, -(-descriptor.field_number_span // 64))
    w(0, "def _deser_entry(unit, plans, dest, src, slen, hide):")
    w(1, "stats = DeserStats(wire_bytes=slen)")
    w(1, f"cycles = {_f(params.dispatch_overhead)}")
    w(1, "a = [0.0, 0, 0, 0, 0, 0, 0, 1, 0, 0]")
    w(1, "mem = unit.memory")
    w(1, "arena = unit._arena")
    w(1, "tlb_pen = 0.0")
    w(1, "try:")
    w(2, "try:")
    w(3, "tlb_pen = unit._tlb.translate_range(src, "
         "slen if slen > 1 else 1)")
    w(3, "loader = Memloader(mem, unit.config.memory, src, slen, "
         "faults=None)")
    w(3, "if not hide:")
    w(4, "cycles += loader.startup_cycles")
    w(3, "data = loader.prefetched()")
    w(3, "w64 = mem.write_u64")
    w(3, "wd = unit.watchdog.budget_cycles "
         "if unit.watchdog is not None else None")
    w(3, "z = (mem.read, mem.write, mem.read_u64, w64, mem.fill, "
         "arena.allocate, unit._adt_cache.lookup, "
         "unit.utf8_unit.validate, a, wd, stats, unit, plans)")
    for word in range(top_words):
        w(3, f"w64(dest + {top_layout.hasbits_offset + word * 8}, 0)")
    w(3, "before = arena.bytes_used")
    w(3, "pos, cycles = _d0(z, data, slen, 0, slen, dest, 1, cycles, "
         "True)")
    w(3, "if slen - pos:")
    w(4, "raise DecodeError("
         '"trailing bytes after top-level message", offset=pos)')
    w(2, "except AccelFault:")
    w(3, "raise")
    w(2, "except DecodeError as error:")
    w(3, "_c = a[0] if a[0] > cycles else cycles")
    w(3, 'raise AccelDecodeFault.wrap(error, site="deserializer", '
         "cycle=_c) from error")
    w(1, "finally:")
    w(2, "unit.varint_unit.credit(decodes=a[8], zigzag_ops=a[9])")
    w(1, "stats.arena_bytes = arena.bytes_used - before")
    w(1, "stats.cycles = cycles + tlb_pen")
    w(1, "stats.tlb_penalty_cycles = tlb_pen")
    w(1, "stats.fields_parsed = a[1]")
    w(1, "stats.unknown_fields_skipped = a[2]")
    w(1, "stats.submessages = a[3]")
    w(1, "stats.strings = a[4]")
    w(1, "stats.repeated_elements = a[5]")
    w(1, "stats.stack_spills = a[6]")
    w(1, "stats.max_stack_depth = a[7]")
    w(1, "cache = unit._adt_cache")
    w(1, "stats.adt_cache_hits = cache.hits")
    w(1, "stats.adt_cache_misses = cache.misses")
    w(1, "return stats")
    return out.source(), spec


# ---------------------------------------------------------------------------
# Serializer kernel generator
# ---------------------------------------------------------------------------


def _gen_ser_source(descriptor: MessageDescriptor, config, params):
    """Emit the straight-line serializer module for ``descriptor``."""
    layouts = LayoutCache()
    order, descs = _type_order(descriptor)
    spec = _build_spec(descs, order, layouts)
    mem = config.memory

    BPB = int(mem.bytes_per_beat)
    FSU = _f(params.fsu_encode)
    FPF = _f(params.frontend_per_field)
    SPUSH = _f(params.frontend_submsg_push)
    SPOP = _f(params.frontend_submsg_pop)
    DF = _f(params.dispatch_overhead + params.pipeline_fill)
    UNITS = int(config.field_serializer_units)
    LIMIT = int(config.context_stack_depth)
    SPILL = _f(config.stack_spill_cycles)

    out = _Writer()
    w = out.w

    def scalar_wire(ind: int, ft: FieldType, raw_expr: str) -> str:
        """Emit value transforms; returns the wire-bytes expression."""
        if ft in _FIXED_TYPES:
            return raw_expr
        width = CPP_SCALAR_BYTES[ft]
        signed = ft in (FieldType.INT32, FieldType.INT64, FieldType.SINT32,
                        FieldType.SINT64, FieldType.ENUM)
        if ft is FieldType.BOOL:
            w(ind, f"_p = 1 if {raw_expr} != b\"\\x00\" else 0")
        elif ft in ZIGZAG_TYPES:
            w(ind, f"_v = int.from_bytes({raw_expr}, \"little\", "
                   "signed=True)")
            w(ind, "s[9] += 1")
            w(ind, f"_p = ((_v << 1) ^ (_v >> 63)) & {_U64:#x}")
        elif signed:
            w(ind, f"_v = int.from_bytes({raw_expr}, \"little\", "
                   "signed=True)")
            w(ind, f"_p = _v & {_U64:#x}")
        else:
            w(ind, f"_p = int.from_bytes({raw_expr}, \"little\")")
        w(ind, "s[8] += 1")
        w(ind, "_w = _B1[_p] if _p < 128 else ev(_p)")
        return "_w"

    def string_field(ind: int, addr_expr: str, key: bytes) -> None:
        w(ind, f"_sa = {addr_expr}")
        w(ind, "_dp = r64(_sa)")
        w(ind, "_sz = r64(_sa + 8)")
        w(ind, "_pl = mr(_dp, _sz)")
        w(ind, f"_bt = -(-(_sz + 32) // {BPB})")
        w(ind, "s[1] += _bt if _bt > 1 else 1.0")
        w(ind, "s[4] += 1")
        w(ind, "push(_pl)")
        w(ind, "s[8] += 1")
        w(ind, "_lb = _B1[_sz] if _sz < 128 else ev(_sz)")
        w(ind, f"s[1] += {FSU}")
        w(ind, "push(_lb)")
        w(ind, f"push({key!r})")

    def submsg_child(ind: int, sub_ti: int, key: bytes) -> None:
        w(ind, f"s[0] += {SPUSH}")
        w(ind, "s[3] += 1")
        w(ind, "begin()")
        w(ind, f"_s{sub_ti}(zs, _ch, depth + 1)")
        w(ind, "_ln = endm()")
        w(ind, "s[8] += 1")
        w(ind, "push(_B1[_ln] if _ln < 128 else ev(_ln))")
        w(ind, f"push({key!r})")
        w(ind, f"s[0] += {SPOP}")

    for ti, d in enumerate(descs):
        layout = layouts.layout(d)
        span = d.field_number_span
        minf = d.min_field_number
        hbo = layout.hasbits_offset
        nwords = max(1, -(-span // 64))

        w(0, f"def _s{ti}(zs, obj, depth):")
        w(1, "mr, r64, push, begin, endm, s, wd, tp, unit, stats, arena "
             "= zs")
        w(1, "if depth > s[7]:")
        w(2, "s[7] = depth")
        w(1, f"if depth > {LIMIT}:")
        w(2, f"s[0] += {SPILL}")
        w(2, "s[6] += 1")
        if not span:
            w(1, "return")
            w(0)
            continue
        w(1, f"s[0] += {nwords}")
        for word in range(nwords):
            w(1, f"h{word} = r64(obj + {hbo + word * 8})")
        for fd in sorted(d.fields, key=lambda f: -f.number):
            ft = fd.field_type
            number = fd.number
            off = layout.field_offsets[number]
            bit = number - minf
            hw, hbit = bit // 64, bit % 64
            w(1, f"if h{hw} >> {hbit} & 1:")
            w(2, "if wd is not None:")
            w(3, f"_fc = s[1] / {UNITS}")
            w(3, f"if {DF} + (s[0] if s[0] > _fc else _fc) + tp >= wd:")
            w(4, "raise _swd(unit, stats, s, tp)")
            w(2, f"s[0] += {FPF}")
            w(2, "s[2] += 1")
            if fd.is_message:
                sub_ti = order[id(fd.message_type)]
                key = encode_tag(number, WireType.LENGTH_DELIMITED)
                if fd.is_repeated:
                    w(2, f"_hd = r64(obj + {off})")
                    w(2, "_da = r64(_hd)")
                    w(2, "_ct = r64(_hd + 8)")
                    w(2, f"s[1] += {_f(max(1.0, float(mem.beats(24))))}")
                    w(2, "_kids = [r64(_da + _k * 8) "
                         "for _k in range(_ct)]")
                    w(2, "_i = _ct - 1")
                    w(2, "while _i >= 0:")
                    w(3, "_ch = _kids[_i]")
                    submsg_child(3, sub_ti, key)
                    w(3, "_i -= 1")
                else:
                    w(2, f"_ch = r64(obj + {off})")
                    submsg_child(2, sub_ti, key)
            elif fd.is_repeated:
                width = 8 if ft in _STRINGISH else CPP_SCALAR_BYTES[ft]
                w(2, f"_hd = r64(obj + {off})")
                w(2, "_da = r64(_hd)")
                w(2, "_ct = r64(_hd + 8)")
                w(2, f"s[1] += {_f(max(1.0, float(mem.beats(24))))}")
                if fd.packed:
                    key = encode_tag(number, WireType.LENGTH_DELIMITED)
                    w(2, "_cb = arena.cursor")
                    w(2, "_i = _ct - 1")
                    w(2, "while _i >= 0:")
                    w(3, f"_raw = mr(_da + _i * {width}, {width})")
                    w(3, f"s[1] += {FSU}")
                    wire = scalar_wire(3, ft, "_raw")
                    w(3, f"push({wire})")
                    w(3, "_i -= 1")
                    w(2, f"s[1] += -(-(_ct * {width}) // {BPB}) "
                         "if _ct else 0.0")
                    w(2, "s[5] += _ct")
                    w(2, "_pn = _cb - arena.cursor")
                    w(2, "s[8] += 1")
                    w(2, "push(_B1[_pn] if _pn < 128 else ev(_pn))")
                    w(2, f"push({key!r})")
                elif ft in _STRINGISH:
                    key = encode_tag(number, WireType.LENGTH_DELIMITED)
                    w(2, "_i = _ct - 1")
                    w(2, "while _i >= 0:")
                    string_field(3, f"r64(_da + _i * 8)", key)
                    w(3, "_i -= 1")
                    w(2, "s[5] += _ct")
                    w(2, "if _ct > 0:")
                    w(3, "s[2] += _ct - 1")
                else:
                    is_fixed = ft in _FIXED_TYPES
                    elem_wire = (WireType.FIXED64
                                 if is_fixed and width == 8
                                 else WireType.FIXED32 if is_fixed
                                 else WireType.VARINT)
                    key = encode_tag(number, elem_wire)
                    combo = _f(params.fsu_encode
                               + max(1.0, float(mem.beats(width))))
                    w(2, "_i = _ct - 1")
                    w(2, "while _i >= 0:")
                    w(3, f"_raw = mr(_da + _i * {width}, {width})")
                    w(3, f"s[1] += {combo}")
                    wire = scalar_wire(3, ft, "_raw")
                    w(3, f"push({wire})")
                    w(3, f"push({key!r})")
                    w(3, "_i -= 1")
                    w(2, "s[5] += _ct")
                    w(2, "if _ct > 0:")
                    w(3, "s[2] += _ct - 1")
            elif ft in _STRINGISH:
                key = encode_tag(number, WireType.LENGTH_DELIMITED)
                string_field(2, f"r64(obj + {off})", key)
            else:
                width = CPP_SCALAR_BYTES[ft]
                is_fixed = ft in _FIXED_TYPES
                elem_wire = (WireType.FIXED64 if is_fixed and width == 8
                             else WireType.FIXED32 if is_fixed
                             else WireType.VARINT)
                key = encode_tag(number, elem_wire)
                w(2, f"_raw = mr(obj + {off}, {width})")
                w(2, f"s[1] += {_f(max(1.0, float(mem.beats(width))))}")
                wire = scalar_wire(2, ft, "_raw")
                w(2, f"s[1] += {FSU}")
                w(2, f"push({wire})")
                w(2, f"push({key!r})")
        w(0)

    # Entry point: mirrors SerializerUnit.serialize's fault-free path.
    w(0, "def _ser_entry(unit, plans, obj_addr):")
    w(1, "stats = SerStats()")
    w(1, "arena = unit._arena")
    w(1, "memwriter = Memwriter(arena, unit.config.memory)")
    w(1, f"s = [{_f(params.frontend_init)}, 0.0, 0, 0, 0, 0, 0, 0, 0, 0]")
    w(1, "tp = unit._tlb.translate_range(obj_addr, 64)")
    w(1, "wd = unit.watchdog.budget_cycles "
         "if unit.watchdog is not None else None")
    w(1, "mem = unit.memory")
    w(1, "try:")
    w(2, "zs = (mem.read, mem.read_u64, memwriter.push, "
         "memwriter.begin_message, memwriter.end_message, s, wd, tp, "
         "unit, stats, arena)")
    w(2, "_s0(zs, obj_addr, 1)")
    w(1, "finally:")
    w(2, "unit.varint_unit.credit(encodes=s[8], zigzag_ops=s[9])")
    w(1, "_, length = memwriter.finish_top_level()")
    w(1, "stats.output_bytes = length")
    w(1, "stats.memwriter_cycles = memwriter.cycles")
    w(1, "stats.frontend_cycles = s[0]")
    w(1, "stats.fsu_cycles = s[1]")
    w(1, "stats.fields_serialized = s[2]")
    w(1, "stats.submessages = s[3]")
    w(1, "stats.strings = s[4]")
    w(1, "stats.repeated_elements = s[5]")
    w(1, "stats.stack_spills = s[6]")
    w(1, "stats.max_stack_depth = s[7]")
    w(1, f"_fc = s[1] / {UNITS}")
    w(1, "_m = s[0] if s[0] > _fc else _fc")
    w(1, "if memwriter.cycles > _m:")
    w(2, "_m = memwriter.cycles")
    w(1, f"stats.cycles = {DF} + _m + tp")
    w(1, "stats.tlb_penalty_cycles = tp")
    w(1, "return stats")
    return out.source(), spec


# ---------------------------------------------------------------------------
# Compilation + bindings
# ---------------------------------------------------------------------------

_GENERATORS = {"deser": _gen_deser_source, "ser": _gen_ser_source}


def _exec_namespace(source: str, tag: str) -> dict:
    namespace = {
        "DecodeError": DecodeError,
        "AccelFault": AccelFault,
        "AccelDecodeFault": AccelDecodeFault,
        "DeserStats": DeserStats,
        "SerStats": SerStats,
        "Memloader": Memloader,
        "Memwriter": Memwriter,
        "dv": decode_varint,
        "ev": encode_varint,
        "_B1": _B1,
        "_WTN": _WTN,
        "_dwd": _deser_watchdog,
        "_swd": _ser_watchdog,
        "__source__": source,
    }
    exec(compile(source, f"<codegen:{tag}>", "exec"), namespace)
    return namespace


def compiled_kernel(kind: str, descriptor: MessageDescriptor, config,
                    params):
    """Fetch (or generate) the compiled kernel for a schema/config pair.

    Returns ``(namespace, spec)`` or ``None`` when generation failed
    (the negative result is cached; callers fall back to the
    interpreter)."""
    fingerprint = structural_fingerprint(descriptor)
    key = (kind, fingerprint, repr(config), repr(params))
    value = CODE_CACHE.get(key)
    if value is not _MISS:
        return value
    try:
        source, spec = _GENERATORS[kind](descriptor, config, params)
        namespace = _exec_namespace(
            source, f"{kind}:{descriptor.full_name}:{fingerprint[:12]}")
        value = (namespace, spec)
    except Exception:
        # Any schema the generator cannot express runs interpreted.
        value = None
    CODE_CACHE.put(key, value)
    return value


class KernelBinding:
    """Per-unit resolver from ADT address to a ready-to-run kernel.

    Owns a small map ``{adt_addr: (generation, kernel | None)}``;
    entries recompute when :data:`_GENERATION` moves (cache
    invalidation) and resolve to ``None`` whenever the live ADT image
    disagrees with the generator's assumptions."""

    def __init__(self, unit, resolver: Callable[[int], MessageDescriptor],
                 kind: str):
        self.unit = unit
        self.resolver = resolver
        self.kind = kind
        self._kernels: dict[int, tuple[int, Optional[Callable]]] = {}

    def kernel_for(self, adt_addr: int) -> Optional[Callable]:
        if not _ENABLED:
            return None
        cached = self._kernels.get(adt_addr)
        if cached is not None and cached[0] == _GENERATION:
            return cached[1]
        kernel = self._build(adt_addr)
        self._kernels[adt_addr] = (_GENERATION, kernel)
        return kernel

    def _build(self, adt_addr: int) -> Optional[Callable]:
        try:
            descriptor = self.resolver(adt_addr)
        except KeyError:
            return None
        compiled = compiled_kernel(self.kind, descriptor, self.unit.config,
                                   self.unit.params)
        if compiled is None:
            return None
        namespace, spec = compiled
        plans = _resolve_plans(self.unit.memory, adt_addr, spec)
        if plans is None:
            return None
        entry = namespace["_deser_entry" if self.kind == "deser"
                          else "_ser_entry"]
        return functools.partial(entry, self.unit, plans)


def bind_deserializer(unit, resolver) -> KernelBinding:
    """Create the codegen binding the driver installs on a deserializer
    unit (``unit.codegen``); ``resolver`` maps adt_addr -> descriptor."""
    return KernelBinding(unit, resolver, "deser")


def bind_serializer(unit, resolver) -> KernelBinding:
    """Create the codegen binding for a serializer unit."""
    return KernelBinding(unit, resolver, "ser")
