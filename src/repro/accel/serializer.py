"""The serializer unit (Section 4.5, Figure 10).

Converts a C++ protobuf object image into wire bytes.  The *frontend*
loads the ``is_submessage`` and ``hasbits`` bit fields, iterates present
fields in **reverse field-number order** (Section 4.5.1), and issues
handle-field-ops; *field serializer units* (a round-robin pool) load and
encode field values in parallel; the round-robin output sequencer feeds
the :class:`~repro.accel.memwriter.Memwriter`, which writes the output
buffer from high to low addresses and injects sub-message keys when
end-of-message ops (field number zero) arrive.

Writing high-to-low in reverse field order produces *byte-identical*
output to the software serializer while making sub-message lengths known
before their keys are written -- the property our test suite pins.

Cycle accounting: the three pipeline stages run decoupled, so an
operation's cost is the maximum of the per-stage totals plus a pipeline
fill; field-value loads are address-independent (base + ADT offset) and
overlap across the FSU pool.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel import tiers
from repro.accel.adt import AdtEntry, AdtView
from repro.accel.memwriter import Memwriter
from repro.accel.varint_unit import CombinationalVarintUnit
from repro.faults.plan import FaultSite
from repro.memory.arena import SerializerArena
from repro.memory.layout import read_string_object
from repro.memory.memspace import SimMemory
from repro.proto.errors import AccelFault, WatchdogAbort
from repro.proto.types import CPP_SCALAR_BYTES, FieldType, WireType
from repro.proto.varint import encode_signed
from repro.proto.wire import encode_tag
from repro.soc.config import SoCConfig
from repro.soc.tlb import Tlb

_SIGNED_CPP_TYPES = frozenset({
    FieldType.INT32, FieldType.INT64, FieldType.SINT32, FieldType.SINT64,
    FieldType.SFIXED32, FieldType.SFIXED64, FieldType.ENUM,
})


@dataclass
class SerTimingParams:
    """Per-stage cycle costs of the serializer pipeline."""

    #: RoCC command pair reaching the frontend.
    dispatch_overhead: float = 3.0
    #: Pipeline fill before the memwriter sees the first op.
    pipeline_fill: float = 2.0
    #: Frontend context-stack initialisation per operation.
    frontend_init: float = 2.0
    #: Frontend cost per present field (bit found + ADT entry + op issue).
    frontend_per_field: float = 1.0
    #: Extra frontend cost entering/leaving a sub-message context.
    frontend_submsg_push: float = 2.0
    frontend_submsg_pop: float = 1.0
    #: FSU encode slot per field (combinational varint/key generation).
    fsu_encode: float = 1.0


@dataclass
class SerStats:
    """Outcome of one serialization operation."""

    cycles: float = 0.0
    output_bytes: int = 0
    fields_serialized: int = 0
    submessages: int = 0
    strings: int = 0
    repeated_elements: int = 0
    frontend_cycles: float = 0.0
    fsu_cycles: float = 0.0
    memwriter_cycles: float = 0.0
    max_stack_depth: int = 0
    stack_spills: int = 0
    tlb_penalty_cycles: float = 0.0
    #: Attach-point cost (RoCC dispatch or PCIe queue-pair work) charged
    #: by the transport, NOT included in ``cycles`` -- the unit's own
    #: cycle count is transport-independent (docs/MODEL.md).
    transport_cycles: float = 0.0
    # Fault-recovery accounting (all zero on the fault-free path).
    faults_injected: int = 0
    fault_retries: int = 0
    cpu_fallbacks: int = 0
    wasted_accel_cycles: float = 0.0
    recovery_backoff_cycles: float = 0.0
    fallback_cpu_cycles: float = 0.0

    def merge(self, other: "SerStats") -> None:
        for name in ("cycles", "output_bytes", "fields_serialized",
                     "submessages", "strings", "repeated_elements",
                     "frontend_cycles", "fsu_cycles", "memwriter_cycles",
                     "stack_spills", "tlb_penalty_cycles",
                     "transport_cycles",
                     "faults_injected", "fault_retries", "cpu_fallbacks",
                     "wasted_accel_cycles", "recovery_backoff_cycles",
                     "fallback_cpu_cycles"):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.max_stack_depth = max(self.max_stack_depth,
                                   other.max_stack_depth)


class SerializerUnit:
    """Behavioral model of the serializer unit."""

    def __init__(self, memory: SimMemory, config: SoCConfig | None = None,
                 timing: SerTimingParams | None = None):
        self.memory = memory
        self.config = config or SoCConfig()
        self.params = timing or SerTimingParams()
        self.varint_unit = CombinationalVarintUnit()
        self._arena: SerializerArena | None = None
        self._tlb = Tlb(self.config.tlb_entries, self.config.ptw_cycles)
        self.faults = None
        #: Optional per-operation cycle-budget watchdog (an object with
        #: ``budget_cycles`` and ``aborts``; see repro.serve.watchdog).
        self.watchdog = None
        #: "codegen" | "batch" | "interp": whether to use
        #: schema-specialized kernels when a binding is installed
        #: (repro.accel.codegen; "batch" additionally lets the driver's
        #: BatchEngine vectorize whole batches, repro.accel.batchgen).
        self.fast_path = "codegen"
        #: KernelBinding installed by the driver; None runs interpreted.
        self.codegen = None

    # -- RoCC-visible operations -----------------------------------------------

    def assign_arena(self, arena: SerializerArena) -> None:
        """Model of ``ser_assign_arena`` (Section 4.3)."""
        self._arena = arena

    def attach_faults(self, injector) -> None:
        """Wire a FaultInjector through this unit and its sub-units."""
        self.faults = injector
        self.varint_unit.faults = injector
        self._tlb.faults = injector

    def serialize(self, adt_addr: int, obj_addr: int) -> SerStats:
        """Model of one ``ser_info`` + ``do_proto_ser`` pair.

        Returns stats; the serialized bytes land in the arena and are
        retrievable via ``arena.output(n)`` (Section 4.5.2's API).
        """
        if self._arena is None:
            raise RuntimeError(
                "no serializer arena assigned; issue ser_assign_arena")
        if (self.codegen is not None and self.faults is None
                and self.fast_path in ("codegen", "batch")):
            # Specialized straight-line kernel (see DeserializerUnit).
            # The "batch" tier shares this scalar path for its anchors
            # and per-message fallbacks.
            kernel = self.codegen.kernel_for(adt_addr)
            if kernel is not None:
                tiers.note("ser", "codegen")
                return kernel(obj_addr)
        tiers.note("ser", "interp")
        stats = SerStats()
        if self.faults is not None:
            self.faults.begin_attempt(stats)
            # The frontend's first object-image read is a bus transaction.
            self.faults.poll(FaultSite.BUS_STALL)
        memwriter = Memwriter(self._arena, self.config.memory)
        adt = AdtView(self.memory, adt_addr)
        stats.frontend_cycles += self.params.frontend_init
        stats.tlb_penalty_cycles += self._tlb.translate_range(obj_addr, 64)
        self._serialize_message(adt, obj_addr, memwriter, stats, depth=1)
        _, length = memwriter.finish_top_level()
        stats.output_bytes = length
        stats.memwriter_cycles = memwriter.cycles
        stats.cycles = (self.params.dispatch_overhead
                        + self.params.pipeline_fill
                        + max(stats.frontend_cycles,
                              stats.fsu_cycles
                              / self.config.field_serializer_units,
                              stats.memwriter_cycles)
                        + stats.tlb_penalty_cycles)
        return stats

    def _op_cycles(self, stats: SerStats) -> float:
        """Running cycle estimate of the in-flight operation (the final
        memwriter total is not known mid-flight; the decoupled-stage max
        over the frontend/FSU totals is the watchdog's progress clock)."""
        return (self.params.dispatch_overhead + self.params.pipeline_fill
                + max(stats.frontend_cycles,
                      stats.fsu_cycles / self.config.field_serializer_units)
                + stats.tlb_penalty_cycles)

    def _watchdog_fire(self, stats: SerStats,
                       hang: AccelFault | None) -> AccelFault:
        """Build the abort for a hung (or runaway) serializer pipeline;
        mirrors DeserializerUnit._watchdog_fire (docs/SERVING.md)."""
        if self.watchdog is None:
            assert hang is not None
            return hang
        self.watchdog.aborts += 1
        cycle = max(self._op_cycles(stats), self.watchdog.budget_cycles)
        kind = "hung" if hang is not None else "runaway"
        return WatchdogAbort(
            f"watchdog aborted {kind} serializer pipeline "
            f"(budget {self.watchdog.budget_cycles:.0f} cycles)",
            site=FaultSite.SER_HANG.value, cycle=cycle, transient=False,
            injected=hang is not None)

    # -- frontend ---------------------------------------------------------------

    def _read_hasbits(self, adt: AdtView, obj_addr: int,
                      stats: SerStats) -> list[int]:
        words = max(1, -(-adt.span // 64))
        # The frontend streams hasbits and is_submessage words in parallel
        # (Section 4.5.3); one cycle per word covers both.
        stats.frontend_cycles += words
        return [
            self.memory.read_u64(obj_addr + adt.hasbits_offset + w * 8)
            for w in range(words)
        ]

    def _present_numbers_reverse(self, adt: AdtView, obj_addr: int,
                                 stats: SerStats) -> list[int]:
        """Present field numbers in reverse order, from the hasbits scan."""
        if adt.span == 0:
            return []
        hasbits = self._read_hasbits(adt, obj_addr, stats)
        minimum = adt.min_field_number
        numbers = []
        for index in range(adt.span - 1, -1, -1):
            if hasbits[index // 64] >> index % 64 & 1:
                numbers.append(minimum + index)
        return numbers

    def _serialize_message(self, adt: AdtView, obj_addr: int,
                           memwriter: Memwriter, stats: SerStats,
                           depth: int) -> None:
        stats.max_stack_depth = max(stats.max_stack_depth, depth)
        if depth > self.config.context_stack_depth:
            stats.frontend_cycles += self.config.stack_spill_cycles
            stats.stack_spills += 1
        for number in self._present_numbers_reverse(adt, obj_addr, stats):
            if self.faults is not None:
                self.faults.poll(FaultSite.SER_ABORT)
                try:
                    self.faults.poll(FaultSite.SER_HANG)
                except AccelFault as hang:
                    raise self._watchdog_fire(stats, hang) from hang
                self.faults.poll(FaultSite.ADT_ENTRY)
            if (self.watchdog is not None
                    and self._op_cycles(stats) >= self.watchdog.budget_cycles):
                raise self._watchdog_fire(stats, None)
            entry = adt.entry(number)
            if entry is None or not entry.defined:
                continue
            stats.frontend_cycles += self.params.frontend_per_field
            stats.fields_serialized += 1
            self._serialize_field(adt, obj_addr, number, entry, memwriter,
                                  stats, depth)

    # -- field serializer units ---------------------------------------------------

    def _serialize_field(self, adt: AdtView, obj_addr: int, number: int,
                         entry: AdtEntry, memwriter: Memwriter,
                         stats: SerStats, depth: int) -> None:
        slot = obj_addr + entry.field_offset
        if entry.is_message:
            self._serialize_submessage_field(obj_addr, number, entry,
                                             memwriter, stats, depth)
            return
        if entry.repeated:
            self._serialize_repeated(slot, number, entry, memwriter, stats)
            return
        ft = entry.field_type
        assert ft is not None
        if ft in (FieldType.STRING, FieldType.BYTES):
            self._serialize_string(self.memory.read_u64(slot), number,
                                   memwriter, stats)
            return
        self._serialize_scalar(slot, number, entry, memwriter, stats)

    def _load_scalar_payload(self, slot: int, entry: AdtEntry,
                             stats: SerStats) -> tuple[bytes, int]:
        """Load one inline scalar; returns (raw C++ bytes, width)."""
        ft = entry.field_type
        assert ft is not None
        width = CPP_SCALAR_BYTES[ft]
        raw = self.memory.read(slot, width)
        stats.fsu_cycles += max(1.0,
                                float(self.config.memory.beats(width)))
        return raw, width

    def _scalar_wire_bytes(self, entry: AdtEntry, raw: bytes) -> bytes:
        """Encode the C++ value bytes of one element into wire bytes."""
        ft = entry.field_type
        assert ft is not None
        if ft in (FieldType.DOUBLE, FieldType.FLOAT, FieldType.FIXED32,
                  FieldType.FIXED64, FieldType.SFIXED32, FieldType.SFIXED64):
            return raw  # fixed-width values copy straight to the wire
        value = int.from_bytes(
            raw, "little", signed=ft in _SIGNED_CPP_TYPES)
        if entry.zigzag:
            payload = self.varint_unit.zigzag_encode(value)
        elif ft is FieldType.BOOL:
            payload = 1 if value else 0
        else:
            payload = encode_signed(value)
        return self.varint_unit.encode(payload)

    def _element_wire_type(self, entry: AdtEntry) -> WireType:
        ft = entry.field_type
        assert ft is not None
        if ft in (FieldType.DOUBLE, FieldType.FIXED64, FieldType.SFIXED64):
            return WireType.FIXED64
        if ft in (FieldType.FLOAT, FieldType.FIXED32, FieldType.SFIXED32):
            return WireType.FIXED32
        if ft in (FieldType.STRING, FieldType.BYTES, FieldType.MESSAGE):
            return WireType.LENGTH_DELIMITED
        return WireType.VARINT

    def _serialize_scalar(self, slot: int, number: int, entry: AdtEntry,
                          memwriter: Memwriter, stats: SerStats) -> None:
        raw, _ = self._load_scalar_payload(slot, entry, stats)
        wire = self._scalar_wire_bytes(entry, raw)
        key = encode_tag(number, self._element_wire_type(entry))
        stats.fsu_cycles += self.params.fsu_encode
        # High-to-low output: push the value, then the key above it.
        memwriter.push(wire)
        memwriter.push(key)

    def _serialize_string(self, string_addr: int, number: int,
                          memwriter: Memwriter, stats: SerStats) -> None:
        view = read_string_object(self.memory, string_addr)
        stats.fsu_cycles += max(
            1.0, float(self.config.memory.beats(view.size + 32)))
        stats.strings += 1
        memwriter.push(view.payload)
        length = self.varint_unit.encode(view.size)
        key = encode_tag(number, WireType.LENGTH_DELIMITED)
        stats.fsu_cycles += self.params.fsu_encode
        memwriter.push(length)
        memwriter.push(key)

    def _serialize_repeated(self, slot: int, number: int, entry: AdtEntry,
                            memwriter: Memwriter, stats: SerStats) -> None:
        header = self.memory.read_u64(slot)
        data_addr = self.memory.read_u64(header)
        count = self.memory.read_u64(header + 8)
        stats.fsu_cycles += max(1.0, float(self.config.memory.beats(24)))
        ft = entry.field_type
        assert ft is not None
        if ft in (FieldType.STRING, FieldType.BYTES):
            width = 8
        else:
            width = CPP_SCALAR_BYTES[ft]
        if entry.packed:
            cursor_before = memwriter.arena.cursor
            for index in range(count - 1, -1, -1):
                raw = self.memory.read(data_addr + index * width, width)
                stats.fsu_cycles += self.params.fsu_encode
                memwriter.push(self._scalar_wire_bytes(entry, raw))
            stats.fsu_cycles += float(
                self.config.memory.beats(count * width))
            stats.repeated_elements += count
            payload_len = cursor_before - memwriter.arena.cursor
            memwriter.push(self.varint_unit.encode(payload_len))
            memwriter.push(encode_tag(number, WireType.LENGTH_DELIMITED))
            return
        key = encode_tag(number, self._element_wire_type(entry))
        for index in range(count - 1, -1, -1):
            element_addr = data_addr + index * width
            if ft in (FieldType.STRING, FieldType.BYTES):
                self._serialize_string(self.memory.read_u64(element_addr),
                                       number, memwriter, stats)
            else:
                raw = self.memory.read(element_addr, width)
                stats.fsu_cycles += self.params.fsu_encode + max(
                    1.0, float(self.config.memory.beats(width)))
                memwriter.push(self._scalar_wire_bytes(entry, raw))
                memwriter.push(key)
        stats.repeated_elements += count
        stats.fields_serialized += max(0, count - 1)

    def _serialize_submessage_field(self, obj_addr: int, number: int,
                                    entry: AdtEntry, memwriter: Memwriter,
                                    stats: SerStats, depth: int) -> None:
        slot = obj_addr + entry.field_offset
        sub_adt = AdtView(self.memory, entry.sub_adt_ptr)
        if entry.repeated:
            header = self.memory.read_u64(slot)
            data_addr = self.memory.read_u64(header)
            count = self.memory.read_u64(header + 8)
            stats.fsu_cycles += max(1.0,
                                    float(self.config.memory.beats(24)))
            children = [self.memory.read_u64(data_addr + i * 8)
                        for i in range(count)]
        else:
            children = [self.memory.read_u64(slot)]
        key = encode_tag(number, WireType.LENGTH_DELIMITED)
        for child_addr in reversed(children):
            stats.frontend_cycles += self.params.frontend_submsg_push
            stats.submessages += 1
            memwriter.begin_message()
            self._serialize_message(sub_adt, child_addr, memwriter, stats,
                                    depth + 1)
            length = memwriter.end_message()
            # The memwriter injects the sub-message's key, now that the
            # length is known (the reason output is written high-to-low).
            memwriter.push(self.varint_unit.encode(length))
            memwriter.push(key)
            stats.frontend_cycles += self.params.frontend_submsg_pop
