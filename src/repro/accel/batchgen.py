"""Vectorized batch kernels: the ``fast_path="batch"`` execution tier.

The third execution tier after the interpretive FSMs and the PR 4
scalar codegen kernels.  Where those run one message at a time, this
engine executes a whole same-schema batch per call with numpy column
operations over a stacked byte matrix: varint runs decode via a
parallel-prefix gather over the 7-bit groups, fixed-width fields copy
with strided views, and tag dispatch runs *once* against a template
message instead of once per message (see :mod:`repro.proto.batchwire`
for the wire-structure machinery and the conformance byte classes).

Execution model -- anchor and replay:

1. Messages run scalar (through the installed codegen kernels) in
   batch order until one *anchor* succeeds with zero TLB penalty and
   zero ADT-entry-cache misses.  Its wire (deserialize) or output
   (serialize) becomes the template; its stats become the per-message
   fold.
2. Every later message whose buffer structurally conforms to the
   template is *replayed* instead of executed: the engine performs the
   anchor's exact side-effect schedule -- arena allocations in order,
   a real TLB ``translate_range``, real ADT-cache lookups over the
   anchor's entry sequence, RoCC issue/retire pairs, varint-unit
   credits -- while its values come from the vectorized decode.  Its
   cycles are ``fold + tlb_penalty``, the same single float add the
   interpreter performs, so modeled stats stay bit-identical.
3. Anything irregular -- different length, non-conforming bytes,
   different varint widths, evicted cache lines, arena pressure, a
   watchdog-budget risk -- falls back to the scalar tier *per
   message*, which reproduces the interpreter's exact behaviour
   (including its exact structured errors) by construction.

Batch-shape classification is cached in the codegen
:data:`~repro.accel.codegen.CODE_CACHE` under the new kinds
``batch-deser``/``batch-ser``; per-template wire plans live in a small
LRU inside each cached entry.  The armed-FaultPlan bypass extends to
this tier: the driver never constructs a :class:`BatchEngine` when a
fault plan is armed, so every named injection site keeps firing
through the scalar paths.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass, field

try:  # pragma: no cover
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.accel import codegen, tiers
from repro.accel.adt import AdtView
from repro.accel.deserializer import DeserStats
from repro.accel.serializer import SerStats
from repro.proto import batchwire
from repro.proto.descriptor import MessageDescriptor, structural_fingerprint
from repro.soc.rocc import RoccFunct, RoccInstruction
from repro.soc.tlb import PAGE_BYTES

#: Below this size the template walk and matrix setup cost more than
#: the scalar kernels; the driver's plain loop runs instead.
MIN_BATCH = 4

#: Per-schema bound on cached template wire plans (workloads cycle
#: through a handful of shapes; the LRU keeps pathological template
#: churn from growing without bound).
TEMPLATE_PLANS_PER_SCHEMA = 8

_INITIAL_CAPACITY = 8          # _open_repeated's initial element count
_HEADER_BYTES = 24             # repeated-field header (data, count, cap)


def batch_available() -> bool:
    """True when the vectorized tier can run (numpy importable)."""
    return np is not None


class _SchemaPlans:
    """CODE_CACHE value for one (kind, schema, config) key.

    Holds the schema's eligibility verdict implicitly (ineligible
    schemas cache ``None`` instead of this object) and a bounded LRU of
    template-bytes -> :class:`~repro.proto.batchwire.TemplateWirePlan`
    (``None`` entries are negative results: walked and rejected)."""

    def __init__(self):
        self._plans: OrderedDict[bytes, object] = OrderedDict()

    def plan_for(self, descriptor: MessageDescriptor, template: bytes):
        if template in self._plans:
            self._plans.move_to_end(template)
            return self._plans[template]
        plan = batchwire.template_wire_plan(descriptor, template)
        self._plans[template] = plan
        while len(self._plans) > TEMPLATE_PLANS_PER_SCHEMA:
            self._plans.popitem(last=False)
        return plan


def _schema_plans(kind: str, descriptor: MessageDescriptor, unit):
    """The cached :class:`_SchemaPlans` for a schema/config pair, or
    None for batch-ineligible schemas (negative result, also cached)."""
    key = (kind, structural_fingerprint(descriptor), repr(unit.config),
           repr(unit.params))
    value = codegen.CODE_CACHE.get(key)
    if value is not codegen._MISS:
        return value
    value = _SchemaPlans() if batchwire.batch_eligible(descriptor) else None
    codegen.CODE_CACHE.put(key, value)
    return value


@dataclass
class _RepeatedReplay:
    """Replay bookkeeping for one repeated field of the template."""

    number: int
    width: int
    slot_offset: int           # parent-object slot holding the header ptr
    header_index: int          # index into the alloc-schedule addresses
    data_index: int            # ditto, for the *final* element array
    count: int
    capacity: int
    elem_matrix: object = None  # (n_conforming, count*width) uint8
    elem_blob: bytes = b""      # elem_matrix flattened row-major
    elem_size: int = 0          # bytes per row of elem_matrix


class _DeserAnchor:
    """Adopted deserialize anchor: template, fold, and replay program."""

    def __init__(self, engine, plan, adt_addr: int, layout,
                 template: bytes, stats: DeserStats, base_row: bytes,
                 decode_delta: int, zigzag_delta: int):
        self.engine = engine
        self.plan = plan
        self.adt_addr = adt_addr
        self.layout = layout
        self.template = template
        self.stats = stats            # the anchor's own per-op stats
        self.fold = stats.cycles      # == FSM cycles (anchor TLB penalty 0)
        self.base_row = base_row      # the anchor's final object image
        self.decode_delta = decode_delta
        self.zigzag_delta = zigzag_delta
        adt = AdtView(engine.driver.memory, adt_addr)
        #: ADT entry-line addresses touched per message, in key order
        #: (replayed through the real cache to keep LRU order and the
        #: cumulative hit counters bit-identical).
        self.entry_addrs = [
            addr for addr in (adt.entry_address(number)
                              for number in plan.key_numbers)
            if addr is not None
        ]
        self.entry_addr_set = frozenset(self.entry_addrs)
        # Arena-allocation schedule: replaying plan.events against the
        # FSM's open/grow rules yields the exact in-order allocation
        # sizes (all 8-aligned) and, per repeated field, which of those
        # allocations are the header and the final element array.
        self.alloc_sizes: list[int] = []
        self.repeated: list[_RepeatedReplay] = []
        state: dict[int, _RepeatedReplay] = {}
        for kind, number in plan.events:
            width = plan.repeated[number].width
            if kind == "open":
                entry = adt.entry(number)
                rep = _RepeatedReplay(
                    number=number, width=width,
                    slot_offset=entry.field_offset,
                    header_index=len(self.alloc_sizes),
                    data_index=len(self.alloc_sizes) + 1,
                    count=0, capacity=_INITIAL_CAPACITY)
                self.alloc_sizes.append(_HEADER_BYTES)
                self.alloc_sizes.append(_INITIAL_CAPACITY * width)
                state[number] = rep
                self.repeated.append(rep)
            else:  # append
                rep = state[number]
                if rep.count >= rep.capacity:
                    rep.capacity *= 2
                    rep.data_index = len(self.alloc_sizes)
                    self.alloc_sizes.append(rep.capacity * width)
                rep.count += 1
        #: Per-message arena consumption.  Every schedule size is a
        #: multiple of 8 (headers are 24 bytes; element arrays are
        #: power-of-two-capacity x width), so after the first 8-aligned
        #: allocation the bump pointer stays aligned and each replayed
        #: message consumes exactly this many bytes.
        self.alloc_total = sum(self.alloc_sizes)
        self.length = len(template)
        #: buffer index -> compact row index in the decoded matrices
        self.row_of: dict[int, int] = {}
        self.rows_blob = None         # n_conforming rows, flattened bytes

    def vectorize(self, buffers: list[bytes], start: int) -> None:
        """Classify and decode ``buffers[start:]`` in one shot."""
        length = len(self.template)
        candidates = [index for index in range(start, len(buffers))
                      if len(buffers[index]) == length]
        if not candidates:
            return
        matrix = batchwire.stack_rows([buffers[i] for i in candidates])
        ok = batchwire.conforming_rows(
            matrix, np.frombuffer(self.template, dtype=np.uint8),
            np.frombuffer(self.plan.mask, dtype=np.uint8))
        conforming = [i for i, good in zip(candidates, ok) if good]
        if not conforming:
            return
        matrix = matrix[ok] if len(conforming) < len(candidates) else matrix
        self.row_of = {index: j for j, index in enumerate(conforming)}
        adt = AdtView(self.engine.driver.memory, self.adt_addr)
        rows = np.tile(np.frombuffer(self.base_row, dtype=np.uint8),
                       (len(conforming), 1))
        for op in self.plan.singular_ops:
            offset = adt.entry(op.number).field_offset
            if op.kind == "fixed":
                rows[:, offset:offset + op.width] = \
                    matrix[:, op.start:op.start + op.width]
            else:
                payload = batchwire.gather_varint(matrix, op.start,
                                                  op.length)
                rows[:, offset:offset + op.width] = \
                    batchwire.decoded_slot_bytes(payload, op.kind, op.width)
        for rep in self.repeated:
            spec = self.plan.repeated[rep.number]
            if not spec.elements:
                continue
            columns = []
            for element in spec.elements:
                if spec.kind == "fixed":
                    columns.append(
                        matrix[:, element.start:element.start + rep.width])
                else:
                    payload = batchwire.gather_varint(matrix, element.start,
                                                      element.length)
                    columns.append(batchwire.decoded_slot_bytes(
                        payload, spec.kind, rep.width))
            rep.elem_matrix = np.concatenate(columns, axis=1)
            rep.elem_blob = rep.elem_matrix.tobytes()
            rep.elem_size = rep.elem_matrix.shape[1]
        self.rows_blob = rows.tobytes()

    def replay_run(self, buffers: list[bytes],
                   start: int, total: DeserStats):
        """Replay the maximal run of consecutive conforming messages
        starting at ``buffers[start]``.

        Returns ``(count, dest_addresses)``; a count of zero means
        ``buffers[start]`` must run on the scalar tier (non-conforming,
        evicted ADT lines, or arena pressure).  Replaying whole runs
        lets the per-message side effects execute with locals hoisted
        out of the loop and the integer stat fields folded once with a
        multiply -- bit-identical to the interpreter's repeated adds.
        """
        row_of = self.row_of
        if self.rows_blob is None or start not in row_of:
            return 0, []
        driver = self.engine.driver
        unit = driver.deserializer
        cache = unit._adt_cache
        # Every replayed ADT lookup must hit (the anchor's fold was
        # measured all-hits); interleaved scalar messages of other
        # schemas may have evicted lines, so peek before committing.
        # Within the run only hits occur, so no line is ever evicted.
        if not self.entry_addr_set <= cache._lines.keys():
            return 0, []
        arena = driver._deser_arena
        stop = start + 1
        n = len(buffers)
        while stop < n and stop in row_of:
            stop += 1
        m = stop - start
        alloc_total = self.alloc_total
        if alloc_total:
            # Arithmetic dry run of the allocation schedule: truncate
            # the run to the messages that fit, so a vector replay
            # never raises mid-flight (the first message that would
            # exhaust the arena runs scalar and faults exactly as the
            # interpreter does, partial writes included).
            aligned = -(-arena._bump // 8) * 8
            room = arena.base + arena.size - aligned
            if room < alloc_total * m:
                m = room // alloc_total
                if m <= 0:
                    return 0, []
        memory = driver.memory
        mem_alloc = memory.allocate
        mem_write = memory.write
        issue = driver.transport.issue
        translate_range = unit._tlb.translate_range
        instr = RoccInstruction
        f_info = RoccFunct.DESER_INFO
        f_do = RoccFunct.DO_PROTO_DESER
        adt_addr = self.adt_addr
        obj_size = self.layout.object_size
        blob = self.rows_blob
        alloc_sizes = self.alloc_sizes
        repeated = self.repeated
        arena_alloc = arena.allocate
        pack = struct.pack
        pack_into = struct.pack_into
        fold = self.fold
        length = self.length
        src_len = length if length else 1
        run_bytes_before = arena.bytes_used
        cycles = total.cycles
        tlb_penalty = total.tlb_penalty_cycles
        dests: list[int] = []
        append = dests.append
        for index in range(start, start + m):
            data = buffers[index]
            j = row_of[index]
            src_addr = mem_alloc(src_len, 16)
            if length:
                mem_write(src_addr, data)
            dest_addr = mem_alloc(obj_size, 8)
            issue(instr(f_info, adt_addr, dest_addr))
            issue(instr(f_do, src_addr, length))
            penalty = translate_range(src_addr, src_len)
            if alloc_sizes:
                allocs = [arena_alloc(size, 8) for size in alloc_sizes]
                row = bytearray(blob[j * obj_size:(j + 1) * obj_size])
                for rep in repeated:
                    pack_into("<Q", row, rep.slot_offset,
                              allocs[rep.header_index])
                mem_write(dest_addr, row)
                for rep in repeated:
                    data_addr = allocs[rep.data_index]
                    mem_write(allocs[rep.header_index],
                              pack("<QQQ", data_addr, rep.count,
                                   rep.capacity))
                    if rep.count:
                        esz = rep.elem_size
                        mem_write(data_addr,
                                  rep.elem_blob[j * esz:(j + 1) * esz])
            else:
                mem_write(dest_addr, blob[j * obj_size:(j + 1) * obj_size])
            # cycles is the anchor's FSM total plus this message's real
            # TLB penalty -- the same single float add the interpreter
            # epilogue performs, in the same per-message order.
            cycles += fold + penalty
            tlb_penalty += penalty
            append(dest_addr)
        total.cycles = cycles
        total.tlb_penalty_cycles = tlb_penalty
        # ADT-cache replay: all m passes over the anchor's entry
        # sequence hit (peeked above), and m identical all-hit passes
        # leave exactly the LRU order one pass does -- so run one pass
        # for the recency order and fold the remaining hit counts in.
        entries = len(self.entry_addrs)
        if entries:
            hits_before = cache.hits
            lookup = cache.lookup
            for addr in self.entry_addrs:
                lookup(addr)
            cache.hits = hits_before + entries * m
            # The interpreter epilogue snapshots the *cumulative* unit
            # counter after each message's lookups; the per-message
            # snapshots form an arithmetic series.
            total.adt_cache_hits += (m * hits_before
                                     + entries * (m * (m + 1) // 2))
        else:
            total.adt_cache_hits += cache.hits * m
        total.adt_cache_misses += cache.misses * m
        anchor = self.stats
        # Integer fields of DeserStats.merge, folded: m identical
        # integer adds equal one multiply-add exactly.
        total.wire_bytes += anchor.wire_bytes * m
        total.fields_parsed += anchor.fields_parsed * m
        total.unknown_fields_skipped += anchor.unknown_fields_skipped * m
        total.submessages += anchor.submessages * m
        total.strings += anchor.strings * m
        total.repeated_elements += anchor.repeated_elements * m
        total.arena_bytes += arena.bytes_used - run_bytes_before
        total.stack_spills += anchor.stack_spills * m
        total.max_stack_depth = max(total.max_stack_depth,
                                    anchor.max_stack_depth)
        unit.varint_unit.credit(decodes=self.decode_delta * m,
                                zigzag_ops=self.zigzag_delta * m)
        driver.transport.retire_deser(m)
        return m, dests


class _SerAnchor:
    """Adopted serialize anchor: output template, fold, replay program."""

    def __init__(self, engine, plan, adt_addr: int, layout,
                 descriptor: MessageDescriptor, template: bytes,
                 stats: SerStats, encode_delta: int, zigzag_delta: int):
        self.engine = engine
        self.plan = plan
        self.adt_addr = adt_addr
        self.layout = layout
        self.descriptor = descriptor
        self.template = template
        self.stats = stats
        self.fold = stats.cycles
        self.encode_delta = encode_delta
        self.zigzag_delta = zigzag_delta
        self.length = len(template)
        # SER_INFO's operands are anchor constants; RoccInstruction is
        # frozen, so one instance serves every replayed issue.
        self._info_instr = RoccInstruction(
            RoccFunct.SER_INFO, layout.hasbits_offset,
            descriptor.max_field_number << 32
            | descriptor.min_field_number)
        self.row_of: dict[int, int] = {}
        self.outputs_blob = None      # n_conforming outputs, flattened

    def vectorize(self, addresses: list[int], start: int) -> None:
        """Classify and encode the objects at ``addresses[start:]``."""
        driver = self.engine.driver
        memory = driver.memory
        adt = AdtView(memory, self.adt_addr)
        object_size = self.layout.object_size
        candidates = list(range(start, len(addresses)))
        if not candidates:
            return
        rows = batchwire.stack_rows(
            [memory.read(addresses[i], object_size) for i in candidates])
        anchor_row = np.frombuffer(self.anchor_row, dtype=np.uint8)
        # Condition 1: identical hasbits words (same fields present, in
        # the same frontend scan order).
        words = max(1, -(-adt.span // 64))
        lo = self.layout.hasbits_offset
        hi = lo + words * 8
        ok = (rows[:, lo:hi] == anchor_row[lo:hi]).all(axis=1)
        # Condition 2: per repeated field, the same element count as the
        # anchor (header reads are per-object pointer chases).
        per_field_elements: dict[int, list] = {}
        counts = {number: spec.count
                  for number, spec in self.plan.repeated.items()}
        element_rows: list[dict[int, bytes]] = [None] * len(candidates)
        for j, i in enumerate(candidates):
            if not ok[j]:
                continue
            elements: dict[int, bytes] = {}
            for number, spec in self.plan.repeated.items():
                offset = adt.entry(number).field_offset
                header = int.from_bytes(
                    rows[j, offset:offset + 8].tobytes(), "little")
                if (memory.read_u64(header + 8) != counts[number]):
                    elements = None
                    break
                data_addr = memory.read_u64(header)
                elements[number] = memory.read(
                    data_addr, counts[number] * spec.width)
            if elements is None:
                ok[j] = False
            else:
                element_rows[j] = elements
        conforming = [i for j, i in enumerate(candidates) if ok[j]]
        if not conforming:
            return
        rows = rows[ok] if len(conforming) < len(candidates) else rows
        kept = [e for e in element_rows if e is not None]
        out = np.tile(np.frombuffer(self.template, dtype=np.uint8),
                      (len(conforming), 1))
        keep = np.ones(len(conforming), dtype=bool)
        # Condition 3 + emission: every varint value must encode to the
        # template's width (which pins every output byte position);
        # fixed-width values copy unconditionally.
        for op in self.plan.singular_ops:
            entry = adt.entry(op.number)
            offset = entry.field_offset
            if op.kind == "fixed":
                out[:, op.start:op.start + op.width] = \
                    rows[:, offset:offset + op.width]
                continue
            payload = batchwire.slot_payload_vec(
                rows[:, offset:offset + op.width], entry.field_type)
            keep &= batchwire.varint_length_vec(payload) == op.length
            batchwire.emit_varint(out, op.start, op.length, payload)
        for number, spec in self.plan.repeated.items():
            if not spec.elements:
                continue
            entry = adt.entry(number)
            width = spec.width
            elem = batchwire.stack_rows([e[number] for e in kept])
            for position, element in enumerate(spec.elements):
                column = elem[:, position * width:(position + 1) * width]
                if spec.kind == "fixed":
                    out[:, element.start:element.start + width] = column
                    continue
                payload = batchwire.slot_payload_vec(column,
                                                     entry.field_type)
                keep &= (batchwire.varint_length_vec(payload)
                         == element.length)
                batchwire.emit_varint(out, element.start, element.length,
                                      payload)
        self.row_of = {index: j for j, index
                       in enumerate(conforming) if keep[j]}
        self.outputs_blob = out.tobytes()

    def replay_run(self, addresses: list[int],
                   start: int, total: SerStats):
        """Replay the maximal run of consecutive conforming objects
        starting at ``addresses[start]``; see
        :meth:`_DeserAnchor.replay_run` for the run contract."""
        row_of = self.row_of
        if self.outputs_blob is None or start not in row_of:
            return 0, []
        driver = self.engine.driver
        unit = driver.serializer
        arena = driver._ser_arena
        length = self.length
        stop = start + 1
        n = len(addresses)
        while stop < n and stop in row_of:
            stop += 1
        m = stop - start
        # Arena pre-checks: the data region loses exactly ``length``
        # bytes and one pointer-table entry per replayed message, so
        # truncate the run to what fits; the first message that would
        # fault runs scalar and reproduces the interpreter's fault
        # exactly (partial pushes and all).
        if length:
            room = (arena.cursor - arena.data_base) // length
            if room < m:
                m = room
        table_room = arena.table_entries - arena.output_count
        if table_room < m:
            m = table_room
        if m <= 0:
            return 0, []
        # Watchdog guard: replay only while even a worst-case TLB
        # penalty keeps the operation's progress clock under the
        # budget, so the interpreter provably would not have aborted.
        watchdog = unit.watchdog
        budget = None
        if watchdog is not None:
            params = unit.params
            ceiling_base = (params.dispatch_overhead
                            + params.pipeline_fill
                            + max(self.stats.frontend_cycles,
                                  self.stats.fsu_cycles
                                  / unit.config.field_serializer_units))
            budget = watchdog.budget_cycles
            ptw = unit._tlb.ptw_cycles
        issue = driver.transport.issue
        note_payload = driver.transport.note_payload
        translate_range = unit._tlb.translate_range
        push_bytes = arena.push_bytes
        finish_message = arena.finish_message
        instr = RoccInstruction
        f_do = RoccFunct.DO_PROTO_SER
        info_instr = self._info_instr
        adt_addr = self.adt_addr
        blob = self.outputs_blob
        fold = self.fold
        page = PAGE_BYTES
        cycles = total.cycles
        tlb_penalty = total.tlb_penalty_cycles
        outputs: list[bytes] = []
        append = outputs.append
        done = 0
        for index in range(start, start + m):
            obj_addr = addresses[index]
            if budget is not None:
                pages = (obj_addr + 63) // page - obj_addr // page + 1
                if ceiling_base + pages * ptw >= budget:
                    break
            j = row_of[index]
            issue(info_instr)
            issue(instr(f_do, adt_addr, obj_addr))
            penalty = translate_range(obj_addr, 64)
            data = blob[j * length:(j + 1) * length]
            if length:
                push_bytes(data)
            finish_message()
            cycles += fold + penalty
            tlb_penalty += penalty
            # Output writeback DMA, same per-message note the scalar
            # path makes (no-op on RoCC).
            note_payload(length)
            append(data)
            done += 1
        if not done:
            return 0, []
        m = done
        total.cycles = cycles
        total.tlb_penalty_cycles = tlb_penalty
        anchor = self.stats
        # Integer fields of SerStats.merge, folded (the cycle floats --
        # frontend/fsu/memwriter -- are anchor constants too, but float
        # repeated-addition is not multiplication; keep those exact).
        total.output_bytes += anchor.output_bytes * m
        total.fields_serialized += anchor.fields_serialized * m
        total.submessages += anchor.submessages * m
        total.strings += anchor.strings * m
        total.repeated_elements += anchor.repeated_elements * m
        frontend = total.frontend_cycles
        fsu = total.fsu_cycles
        memwriter = total.memwriter_cycles
        for _ in range(m):
            frontend += anchor.frontend_cycles
            fsu += anchor.fsu_cycles
            memwriter += anchor.memwriter_cycles
        total.frontend_cycles = frontend
        total.fsu_cycles = fsu
        total.memwriter_cycles = memwriter
        total.stack_spills += anchor.stack_spills * m
        total.max_stack_depth = max(total.max_stack_depth,
                                    anchor.max_stack_depth)
        unit.varint_unit.credit(encodes=self.encode_delta * m,
                                zigzag_ops=self.zigzag_delta * m)
        driver.transport.retire_ser(m)
        return m, outputs


class BatchEngine:
    """Per-driver batch execution engine (installed as ``driver.batch``
    when ``fast_path="batch"`` and no fault plan is armed)."""

    def __init__(self, driver):
        self.driver = driver

    def _enabled(self, count: int) -> bool:
        return (np is not None and codegen.codegen_enabled()
                and self.driver.faults is None and count >= MIN_BATCH)

    # -- deserialization -----------------------------------------------------

    def deserialize_batch(self, descriptor: MessageDescriptor,
                          buffers: list[bytes]):
        """Batched deserialize; returns (addresses, total-stats without
        the completion fence) or None to run the driver's plain loop."""
        if not self._enabled(len(buffers)):
            return None
        driver = self.driver
        plans = _schema_plans("batch-deser", descriptor,
                              driver.deserializer)
        if plans is None:
            return None
        adt_addr = driver.adts.adt_address(descriptor)
        layout = driver.layouts.layout(descriptor)
        unit = driver.deserializer
        cache = unit._adt_cache
        total = DeserStats()
        addresses: list[int] = []
        anchor: _DeserAnchor | None = None
        index = 0
        count = len(buffers)
        while index < count:
            if anchor is not None:
                done, dests = anchor.replay_run(buffers, index, total)
                if done:
                    addresses.extend(dests)
                    tiers.note("deser", "batch-vector", done)
                    index += done
                    continue
            data = buffers[index]
            misses_before = cache.misses
            decodes_before = unit.varint_unit.decodes
            zigzag_before = unit.varint_unit.zigzag_ops
            tiers.note("deser", "batch-scalar")
            result = driver.deserialize(descriptor, data)
            addresses.append(result.dest_addr)
            total.merge(result.stats)
            if (anchor is None
                    and result.stats.tlb_penalty_cycles == 0.0
                    and cache.misses == misses_before):
                plan = plans.plan_for(descriptor, data)
                if plan is not None:
                    anchor = _DeserAnchor(
                        self, plan, adt_addr, layout, data, result.stats,
                        driver.memory.read(result.dest_addr,
                                           layout.object_size),
                        unit.varint_unit.decodes - decodes_before,
                        unit.varint_unit.zigzag_ops - zigzag_before)
                    anchor.vectorize(buffers, index + 1)
            index += 1
        return addresses, total

    # -- serialization -------------------------------------------------------

    def serialize_batch(self, descriptor: MessageDescriptor,
                        addresses: list[int]):
        """Batched serialize; returns (outputs, total-stats without the
        completion fence) or None to run the driver's plain loop."""
        if not self._enabled(len(addresses)):
            return None
        driver = self.driver
        plans = _schema_plans("batch-ser", descriptor, driver.serializer)
        if plans is None:
            return None
        adt_addr = driver.adts.adt_address(descriptor)
        layout = driver.layouts.layout(descriptor)
        unit = driver.serializer
        total = SerStats()
        outputs: list[bytes] = []
        anchor: _SerAnchor | None = None
        index = 0
        count = len(addresses)
        while index < count:
            if anchor is not None:
                done, run = anchor.replay_run(addresses, index, total)
                if done:
                    outputs.extend(run)
                    tiers.note("ser", "batch-vector", done)
                    index += done
                    continue
            obj_addr = addresses[index]
            encodes_before = unit.varint_unit.encodes
            zigzag_before = unit.varint_unit.zigzag_ops
            tiers.note("ser", "batch-scalar")
            result = driver.serialize(descriptor, obj_addr)
            outputs.append(result.data)
            total.merge(result.stats)
            if (anchor is None
                    and result.stats.tlb_penalty_cycles == 0.0):
                plan = plans.plan_for(descriptor, result.data)
                if plan is not None:
                    anchor = _SerAnchor(
                        self, plan, adt_addr, layout, descriptor,
                        result.data, result.stats,
                        unit.varint_unit.encodes - encodes_before,
                        unit.varint_unit.zigzag_ops - zigzag_before)
                    anchor.anchor_row = driver.memory.read(
                        obj_addr, layout.object_size)
                    anchor.vectorize(addresses, index + 1)
            index += 1
        return outputs, total
