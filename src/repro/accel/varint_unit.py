"""The combinational varint unit (Sections 2.1.2 and 4.4.4).

Fixed-function hardware decodes or encodes a complete varint in a single
cycle -- the headline per-field advantage over the CPU's byte-at-a-time
loop.  The decoder peeks at up to 10 bytes of the memloader window and
reports both the value and the encoded length so the consumer can discard
exactly that many bytes at the end of the cycle.  A separate combinational
zig-zag stage handles signed (sint) types (Section 4.4.6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import FaultSite
from repro.proto.errors import DecodeError
from repro.proto.varint import (
    MAX_VARINT_LENGTH,
    decode_varint,
    decode_zigzag,
    encode_varint,
    encode_zigzag,
)


@dataclass
class CombinationalVarintUnit:
    """Single-cycle varint decode/encode with invocation statistics."""

    decodes: int = 0
    encodes: int = 0
    zigzag_ops: int = 0
    faults: object = None  # FaultInjector when the device is under test

    def decode(self, window: bytes) -> tuple[int, int]:
        """Decode one varint from the first bytes of ``window``.

        Returns ``(value, encoded_length)``; one cycle in hardware.
        """
        if self.faults is not None:
            # Models the length scanner mis-reading continuation bits and
            # declaring an overlong varint on well-formed input.
            self.faults.poll(FaultSite.VARINT_OVERLONG)
        if not window:
            raise DecodeError("varint unit given an empty window",
                              site="varint")
        value, length = decode_varint(window[:MAX_VARINT_LENGTH])
        self.decodes += 1
        return value, length

    def encode(self, value: int) -> bytes:
        """Encode ``value`` as a varint; one cycle in hardware."""
        self.encodes += 1
        return encode_varint(value)

    def credit(self, *, decodes: int = 0, encodes: int = 0,
               zigzag_ops: int = 0) -> None:
        """Bulk-account operations a fused codegen kernel performed.

        The specialized kernels inline varint handling for speed but the
        unit's invocation statistics must stay identical to the
        interpretive path; kernels credit their totals here."""
        self.decodes += decodes
        self.encodes += encodes
        self.zigzag_ops += zigzag_ops

    def zigzag_decode(self, payload: int) -> int:
        """Combinational zig-zag decode stage (signed varints)."""
        self.zigzag_ops += 1
        return decode_zigzag(payload)

    def zigzag_encode(self, value: int) -> int:
        self.zigzag_ops += 1
        return encode_zigzag(value)
